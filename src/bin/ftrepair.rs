//! `ftrepair` — command-line front end, in the tradition of FTSyn/SYCRAFT.
//!
//! ```text
//! ftrepair repair   <file.ftr> [--cautious] [--pure-lazy] [--iterative-step2]
//!                              [--parallel] [--strict-terminal] [--timeout <secs>]
//!                              [--max-nodes <n>] [--reorder none|sift|auto]
//!                              [--store-dir <path>] [--metrics-out <path>]
//!                              [--checkpoint-dir <path>] [--resume]
//!                              [--trace] [--trace-out <path>]
//! ftrepair check    <file.ftr>
//! ftrepair info     <file.ftr>
//! ftrepair simulate <file.ftr> [--cautious] [--runs N] [--max-faults K] [--seed S]
//!                              [--timeout <secs>] [--max-nodes <n>]
//!                              [--reorder none|sift|auto]
//! ftrepair serve    [--addr host:port] [--workers N] [--queue-cap M]
//!                   [--cache-cap C] [--job-timeout <secs>] [--job-max-nodes <n>]
//!                   [--metrics-out <path>] [--reorder none|sift|auto]
//!                   [--store-dir <path>] [--store-budget-mb N] [--no-warm-start]
//!                   [--store-breaker-threshold N] [--store-breaker-backoff <secs>]
//!                   [--journal <path>] [--drain-timeout <secs>]
//! ftrepair store    <ls|verify|gc> --store-dir <path>
//! ftrepair metrics-dump <reports.jsonl>
//! ftrepair prom-lint    [<exposition.txt>|-]
//! ```
//!
//! `repair` adds masking fault-tolerance and prints the repaired program as
//! guarded commands; `check` validates the input (invariant closure, spec
//! inside the invariant, realizability as written); `info` summarizes the
//! model; `simulate` repairs, then replays random fault-injection batches
//! against the repaired program (the same code path as the daemon's
//! `POST /simulate`); `serve` runs the repair-as-a-service daemon (see the
//! README "Serving" section). `--metrics-out` appends one JSONL run report
//! (phase timings, telemetry counters/gauges, per-iteration BDD sizes,
//! op-cache hit rates, latency histograms) per repair; `--trace` streams
//! span open/close events to stderr; `--trace-out` writes the run's full
//! hierarchical span tree — outer iterations, Step 1/Step 2, fixpoint
//! iterations, with structured fields — as Chrome `trace_event` JSON,
//! viewable in Perfetto or `chrome://tracing`. `metrics-dump` merges a
//! `--metrics-out` JSONL file into one snapshot and prints it in the
//! Prometheus text exposition format; `prom-lint` validates such an
//! exposition (from a file or stdin) and exits non-zero on violations.
//! `--timeout` bounds the repair's wall clock — a run that
//! exhausts it stops at the next cancellation checkpoint and exits 124
//! (the `timeout(1)` convention); `serve --job-timeout` is the same budget
//! applied per job (default 30s, `503 {"error":"timeout"}`). `--max-nodes`
//! is the memory analogue: it bounds the BDD arena's live-node count, and
//! a run that a garbage collection cannot bring back under it exits 125
//! (`serve --job-max-nodes` per job, `503 {"error":"node budget
//! exhausted"}`) instead of being OOM-killed. `--reorder`
//! picks the BDD dynamic variable-reordering policy (default `auto`; see
//! the README's "Performance" section); for `serve` it sets the default a
//! job's `reorder` query parameter can override. `--store-dir` enables the
//! persistent result store (see the README "Persistence" section): `serve`
//! gains a durable tier under its memory cache plus warm-started repairs
//! from near-key neighbors; `repair --store-dir` serves exact hits from
//! disk and writes new repairs through; `store ls|verify|gc` inspect,
//! checksum-verify, and clean a store directory. The daemon's store sits
//! behind a circuit breaker: `--store-breaker-threshold` (default 3)
//! consecutive I/O failures trip it into memory-only degraded mode, and
//! half-open probes (full-jitter backoff from `--store-breaker-backoff`
//! seconds, default 0.5) re-enable it when the volume heals (see the
//! README "Robustness" section). `serve --journal` adds a durable job
//! journal: every accepted repair is recorded before it executes, so a
//! `kill -9` mid-repair loses no work — the next boot on the same journal
//! replays whatever is incomplete (seeded from mid-repair checkpoint
//! slots). `serve --drain-timeout` bounds the graceful shutdown: jobs
//! still queued at the deadline are answered `503` instead of having
//! their sockets dropped. `repair --checkpoint-dir` is the same
//! checkpoint machinery offline: a run that exits 124/125 leaves a
//! resume point behind, and rerunning with `--resume` continues from it
//! instead of starting cold.

use ftrepair::program::decompile::render_process;
use ftrepair::program::{realizability, semantics, DistributedProgram};
use ftrepair::repair::verify::verify_outcome;
use ftrepair::repair::{
    build_run_report, cautious_repair_traced, lazy_repair_traced, LazyOutcome, ReorderMode,
    RepairOptions,
};
use ftrepair::server::{job, signal, Server, ServerConfig};
use ftrepair::telemetry::Telemetry;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

/// Exit code for a repair that exhausted `--timeout`, following the
/// convention of coreutils `timeout(1)`.
const EXIT_TIMED_OUT: u8 = 124;

/// Exit code for a repair that exhausted `--max-nodes` — the memory
/// analogue of 124, one past it and safely below the shell's reserved
/// 126/127. The process exits cleanly where an unbounded run would have
/// been OOM-killed (137).
const EXIT_EXHAUSTED: u8 = 125;

/// Map an abort reason to its exit code (124 deadline, 125 node budget).
fn abort_exit(why: ftrepair::repair::RepairAborted) -> ExitCode {
    match why {
        ftrepair::repair::RepairAborted::ResourceExhausted => ExitCode::from(EXIT_EXHAUSTED),
        _ => ExitCode::from(EXIT_TIMED_OUT),
    }
}

const USAGE: &str =
    "usage: ftrepair <repair|check|info|simulate|serve|store|metrics-dump|prom-lint> [<file>] [options]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    if command == "serve" {
        return serve(&args[1..]);
    }
    if command == "metrics-dump" {
        return metrics_dump(&args[1..]);
    }
    if command == "prom-lint" {
        return prom_lint(&args[1..]);
    }
    if command == "store" {
        return store_cmd(&args[1..]);
    }
    if !matches!(command.as_str(), "info" | "check" | "repair" | "simulate") {
        eprintln!("unknown command {command}");
        return ExitCode::from(2);
    }
    let Some(path) = args.get(1) else {
        eprintln!("missing input file");
        return ExitCode::from(2);
    };
    let source = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    if command == "simulate" {
        return simulate(&source, path, &args[2..]);
    }
    // `repair --store-dir` / `--checkpoint-dir` go through the store-aware
    // job pipeline, which needs the raw source for content addressing —
    // branch before `load`.
    // (`--resume` goes there too so its missing-`--checkpoint-dir` case
    // gets the proper usage error instead of being silently ignored.)
    if command == "repair"
        && args[2..]
            .iter()
            .any(|a| a == "--store-dir" || a == "--checkpoint-dir" || a == "--resume")
    {
        return repair_stored(&source, path, &args[2..]);
    }
    let mut prog = match ftrepair::lang::load(&source) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };

    match command.as_str() {
        "info" => info(&mut prog),
        "check" => check(&mut prog),
        "repair" => repair(&mut prog, &args[2..]),
        _ => unreachable!("command validated above"),
    }
}

fn flag_value<'a>(flags: &'a [String], name: &str) -> Result<Option<&'a str>, String> {
    match flags.iter().position(|a| a == name) {
        Some(i) => match flags.get(i + 1) {
            Some(v) if !v.starts_with("--") => Ok(Some(v)),
            _ => Err(format!("{name} requires an argument")),
        },
        None => Ok(None),
    }
}

fn parsed_flag<T: std::str::FromStr>(
    flags: &[String],
    name: &str,
    default: T,
) -> Result<T, String> {
    match flag_value(flags, name)? {
        Some(v) => v.parse().map_err(|_| format!("{name}: cannot parse {v:?}")),
        None => Ok(default),
    }
}

/// Parse `--reorder none|sift|auto`; the engine default (`auto`) when the
/// flag is absent.
fn reorder_flag(flags: &[String]) -> Result<ReorderMode, String> {
    match flag_value(flags, "--reorder")? {
        Some(v) => ReorderMode::parse(v)
            .ok_or_else(|| format!("--reorder: unknown mode {v:?} (use none, sift or auto)")),
        None => Ok(ReorderMode::default()),
    }
}

/// Parse `name` as non-negative seconds (fractional allowed); `None` when
/// the flag is absent.
fn duration_flag(flags: &[String], name: &str) -> Result<Option<Duration>, String> {
    match flag_value(flags, name)? {
        Some(v) => match v.parse::<f64>() {
            Ok(secs) if secs.is_finite() && secs >= 0.0 => Ok(Some(Duration::from_secs_f64(secs))),
            _ => Err(format!("{name}: cannot parse {v:?} (non-negative seconds)")),
        },
        None => Ok(None),
    }
}

fn serve(flags: &[String]) -> ExitCode {
    let config = (|| -> Result<ServerConfig, String> {
        let defaults = ServerConfig::default();
        Ok(ServerConfig {
            addr: flag_value(flags, "--addr")?.unwrap_or(&defaults.addr).to_string(),
            workers: parsed_flag(flags, "--workers", defaults.workers)?,
            queue_cap: parsed_flag(flags, "--queue-cap", defaults.queue_cap)?,
            cache_cap: parsed_flag(flags, "--cache-cap", defaults.cache_cap)?,
            metrics_out: flag_value(flags, "--metrics-out")?.map(PathBuf::from),
            job_timeout: duration_flag(flags, "--job-timeout")?.unwrap_or(defaults.job_timeout),
            reorder: reorder_flag(flags)?,
            store_dir: flag_value(flags, "--store-dir")?.map(PathBuf::from),
            store_budget: parsed_flag(flags, "--store-budget-mb", 0u64)? * (1 << 20),
            warm_start: !flags.iter().any(|a| a == "--no-warm-start"),
            job_max_nodes: parsed_flag(flags, "--job-max-nodes", defaults.job_max_nodes)?,
            breaker_threshold: parsed_flag(
                flags,
                "--store-breaker-threshold",
                defaults.breaker_threshold,
            )?,
            breaker_backoff: duration_flag(flags, "--store-breaker-backoff")?
                .unwrap_or(defaults.breaker_backoff),
            journal: flag_value(flags, "--journal")?.map(PathBuf::from),
            drain_timeout: duration_flag(flags, "--drain-timeout")?
                .unwrap_or(defaults.drain_timeout),
            ..defaults
        })
    })();
    let config = match config {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };

    signal::install();
    let server = match Server::bind(&config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot bind {}: {e}", config.addr);
            return ExitCode::from(2);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Parseable by scripts and tests (especially with port 0).
            println!("listening on {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("cannot resolve bound address: {e}");
            return ExitCode::from(2);
        }
    }
    if let Err(e) = server.run() {
        eprintln!("server error: {e}");
        return ExitCode::from(1);
    }
    eprintln!("ftrepair-server: drained and stopped");
    ExitCode::SUCCESS
}

/// `metrics-dump <reports.jsonl>` — merge every run report in a JSONL file
/// into one metrics snapshot and print it as Prometheus text exposition.
/// Bridges offline `--metrics-out` files into the same format the daemon
/// serves at `/metrics?format=prometheus`.
fn metrics_dump(args: &[String]) -> ExitCode {
    use ftrepair::telemetry::report::{parse_jsonl, snapshot_from_json};
    let Some(path) = args.first() else {
        eprintln!("usage: ftrepair metrics-dump <reports.jsonl>");
        return ExitCode::from(2);
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let lines = match parse_jsonl(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };
    let mut snap = ftrepair::telemetry::MetricsSnapshot::default();
    for line in &lines {
        snap.merge(&snapshot_from_json(line));
    }
    print!("{}", ftrepair::telemetry::prometheus::render(&snap));
    eprintln!("merged {} report line(s) from {path}", lines.len());
    ExitCode::SUCCESS
}

/// `prom-lint [<file>|-]` — validate a Prometheus text exposition (`-` or
/// no argument reads stdin). Exits 1 listing every violation; this is what
/// CI runs against the live `/metrics?format=prometheus` scrape.
fn prom_lint(args: &[String]) -> ExitCode {
    let (name, text) = match args.first().map(String::as_str) {
        None | Some("-") => {
            let mut buf = String::new();
            use std::io::Read;
            if let Err(e) = std::io::stdin().read_to_string(&mut buf) {
                eprintln!("cannot read stdin: {e}");
                return ExitCode::from(2);
            }
            ("<stdin>".to_string(), buf)
        }
        Some(path) => match std::fs::read_to_string(path) {
            Ok(t) => (path.to_string(), t),
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let violations = ftrepair::telemetry::prometheus::lint(&text);
    if violations.is_empty() {
        eprintln!("prom-lint: {name}: ok");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("prom-lint: {name}: {v}");
        }
        ExitCode::from(1)
    }
}

/// `repair --store-dir <path>`: the CLI end of the persistent tier. An
/// exact content-key hit replays the stored response without recomputing;
/// a miss repairs (warm-started from the nearest stored neighbor when one
/// is close enough) and writes the verified result through synchronously,
/// so a later `serve --store-dir` or `repair --store-dir` run finds it.
///
/// `--checkpoint-dir <path>` is the offline end of the daemon's mid-repair
/// checkpointing: the repair loops snapshot their progress into a per-key
/// slot, so a run killed by `--timeout` (exit 124) or `--max-nodes` (exit
/// 125) leaves a resume point behind. Rerunning with `--resume` seeds the
/// repair from that slot instead of starting cold; a verified success
/// retires the slot.
fn repair_stored(source: &str, path: &str, flags: &[String]) -> ExitCode {
    use ftrepair::repair::{CheckpointPolicy, Checkpointer, Token};
    use ftrepair::store::{
        find_artifact, CheckpointStore, DiskStore, NewEntry, ART_INVARIANT, ART_MS, ART_SPAN,
    };
    use std::sync::Arc;

    let has = |f: &str| flags.iter().any(|a| a == f);
    type Params = (Option<PathBuf>, Option<PathBuf>, Option<Duration>, usize, ReorderMode);
    let params = (|| -> Result<Params, String> {
        Ok((
            flag_value(flags, "--store-dir")?.map(PathBuf::from),
            flag_value(flags, "--checkpoint-dir")?.map(PathBuf::from),
            duration_flag(flags, "--timeout")?,
            parsed_flag(flags, "--max-nodes", 0usize)?,
            reorder_flag(flags)?,
        ))
    })();
    let (store_dir, ckpt_dir, deadline, max_nodes, reorder) = match params {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    if has("--resume") && ckpt_dir.is_none() {
        eprintln!("--resume requires --checkpoint-dir");
        return ExitCode::from(2);
    }
    let mode = if has("--cautious") { job::Mode::Cautious } else { job::Mode::Lazy };
    let opts = RepairOptions {
        restrict_to_reachable: !has("--pure-lazy"),
        step2_closed_form: !has("--iterative-step2"),
        parallel_step2: has("--parallel"),
        allow_new_terminal_inside: !has("--strict-terminal"),
        deadline,
        max_nodes,
        reorder,
        ..Default::default()
    };

    let spec = match job::prepare(source, mode, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };
    let store = match &store_dir {
        Some(dir) => match DiskStore::open(dir, 0, &Telemetry::off()) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("cannot open store {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let ckpts = match &ckpt_dir {
        Some(dir) => match CheckpointStore::open(dir) {
            Ok(c) => Some(Arc::new(c)),
            Err(e) => {
                eprintln!("cannot open checkpoint dir {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
        None => None,
    };

    let print_response = |response: &ftrepair::telemetry::Json| {
        if let Some(program) = response.get("program").and_then(|j| j.as_str()) {
            print!("{program}");
        }
    };

    if let (Some(store), Some(dir)) = (&store, &store_dir) {
        if let Some(stored) = store.get(&spec.key) {
            eprintln!("served from store {} (key {})", dir.display(), &spec.key[..16]);
            if stored.response.get("failed").and_then(|j| j.as_bool()) == Some(true) {
                // Never stored by this code (failures are not persisted), but a
                // foreign entry could say so; honor it rather than lie.
                eprintln!("no masking fault-tolerant repair exists under these inputs");
                return ExitCode::from(1);
            }
            print_response(&stored.response);
            return ExitCode::SUCCESS;
        }
    }

    // `--resume`: this exact key's checkpoint slot beats any neighbor — it
    // is the interrupted run's own progress, distance zero by definition.
    let mut warm: Option<job::WarmInfo> = None;
    if has("--resume") && mode == job::Mode::Lazy {
        if let Some(ckpts) = &ckpts {
            warm = ckpts.get(&spec.key).and_then(|slot| {
                let invariant = find_artifact(&slot.artifacts, ART_INVARIANT)?.clone();
                let span = find_artifact(&slot.artifacts, ART_SPAN)?.clone();
                eprintln!("resuming from checkpoint at iteration {}", slot.iteration);
                Some(job::WarmInfo {
                    neighbor: format!("checkpoint@{}", slot.iteration),
                    distance: 0,
                    invariant,
                    span,
                })
            });
            if warm.is_none() {
                eprintln!("no checkpoint for this spec; starting cold");
            }
        }
    }
    // Miss: look for a warm-start donor before computing from scratch.
    if warm.is_none() && mode == job::Mode::Lazy {
        if let Some(store) = &store {
            warm = store.nearest(&spec.fingerprint, 16).and_then(|(neighbor, distance)| {
                let donor = store.peek(&neighbor)?;
                let mut invariant = None;
                let mut span = None;
                for (name, bdd) in donor.artifacts {
                    match name.as_str() {
                        ART_INVARIANT => invariant = Some(bdd),
                        ART_SPAN => span = Some(bdd),
                        _ => {}
                    }
                }
                Some(job::WarmInfo { neighbor, distance, invariant: invariant?, span: span? })
            });
        }
    }

    let tele = Telemetry::new();
    let mut token = Token::from_options(&spec.opts);
    if let Some(ckpts) = &ckpts {
        // Same sink the daemon installs: policy-approved offers (and the
        // forced final offer when an abort is imminent) land the loop's
        // current (invariant, span, ms) in this key's slot, crash-safely.
        let ckpts = Arc::clone(ckpts);
        let key = spec.key.clone();
        token = token.with_checkpointer(Arc::new(Checkpointer::new(
            CheckpointPolicy::default(),
            move |img| {
                let arts = [
                    (ART_INVARIANT.to_string(), img.invariant.clone()),
                    (ART_SPAN.to_string(), img.span.clone()),
                    (ART_MS.to_string(), img.ms.clone()),
                ];
                if let Err(e) = ckpts.put(&key, img.iteration, &arts) {
                    eprintln!("warning: checkpoint write failed: {e}");
                }
            },
        )));
    }
    let result = match job::execute_store(&spec, &tele, false, &token, warm.as_ref(), true) {
        Ok(r) => r,
        Err(job::ExecError::Aborted(why)) => {
            eprintln!("{path}: {why}");
            if let (Some(ckpts), Some(dir)) = (&ckpts, &ckpt_dir) {
                if ckpts.get(&spec.key).is_some() {
                    eprintln!(
                        "checkpoint saved in {}; rerun with --resume to continue from it",
                        dir.display()
                    );
                }
            }
            return abort_exit(why);
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };
    if result.warm_used {
        if let Some(info) = &warm {
            eprintln!(
                "warm-started from neighbor {} (fingerprint distance {})",
                &info.neighbor[..info.neighbor.len().min(16)],
                info.distance,
            );
        }
    }
    if result.failed {
        eprintln!("no masking fault-tolerant repair exists under these inputs");
        return ExitCode::from(1);
    }
    eprintln!("repaired {} ({} mode), verified: {}", spec.name, mode.as_str(), result.verified);

    // The run is complete: its resume point is stale, retire it.
    if let Some(ckpts) = &ckpts {
        let _ = ckpts.clear(&spec.key);
    }

    // Synchronous write-through (the CLI has no async writer to hand off
    // to); only verified repairs carry artifacts.
    if let (Some(store), Some(artifacts)) = (&store, result.artifacts) {
        let entry = NewEntry {
            key: spec.key.clone(),
            case: spec.name.clone(),
            mode: mode.as_str().to_string(),
            warm_start: result.warm_used,
            fingerprint: spec.fingerprint.clone(),
            response: result.response.clone(),
            artifacts,
        };
        match store.put(&entry) {
            Ok(true) => eprintln!("stored under key {}", &spec.key[..16]),
            Ok(false) => {}
            Err(e) => eprintln!("warning: store write failed: {e}"),
        }
    }
    print_response(&result.response);
    if result.verified {
        ExitCode::SUCCESS
    } else {
        eprintln!("INTERNAL ERROR: output failed verification");
        ExitCode::from(3)
    }
}

/// `store <ls|verify|gc> --store-dir <path>` — offline store maintenance.
fn store_cmd(args: &[String]) -> ExitCode {
    use ftrepair::store::DiskStore;

    const STORE_USAGE: &str = "usage: ftrepair store <ls|verify|gc> --store-dir <path>";
    let Some(action) = args.first().map(String::as_str) else {
        eprintln!("{STORE_USAGE}");
        return ExitCode::from(2);
    };
    if !matches!(action, "ls" | "verify" | "gc") {
        eprintln!("unknown store action {action}\n{STORE_USAGE}");
        return ExitCode::from(2);
    }
    let dir = match flag_value(&args[1..], "--store-dir") {
        Ok(Some(d)) => PathBuf::from(d),
        Ok(None) => {
            eprintln!("--store-dir is required\n{STORE_USAGE}");
            return ExitCode::from(2);
        }
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let store = match DiskStore::open(&dir, 0, &Telemetry::off()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open store {}: {e}", dir.display());
            return ExitCode::from(2);
        }
    };

    match action {
        "ls" => {
            let entries = store.ls();
            println!(
                "{:<20} {:<16} {:<8} {:>5} {:>12} {:>12}",
                "KEY", "CASE", "MODE", "WARM", "BYTES", "AGE_S"
            );
            let now = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0);
            for e in &entries {
                println!(
                    "{:<20} {:<16} {:<8} {:>5} {:>12} {:>12}",
                    &e.key[..e.key.len().min(20)],
                    e.case,
                    e.mode,
                    e.warm_start,
                    e.bytes,
                    now.saturating_sub(e.created_unix),
                );
            }
            eprintln!("{} entries, {} bytes in {}", entries.len(), store.bytes(), dir.display());
            ExitCode::SUCCESS
        }
        "verify" => {
            let (ok, corrupt) = store.verify();
            for key in &corrupt {
                eprintln!("CORRUPT (quarantined): {key}");
            }
            eprintln!("{ok} entries verified, {} corrupt", corrupt.len());
            if corrupt.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        _ => match store.gc() {
            Ok(freed) => {
                eprintln!("freed {freed} bytes of quarantined/stale data from {}", dir.display());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("gc failed: {e}");
                ExitCode::from(1)
            }
        },
    }
}

struct SimFlags {
    runs: usize,
    max_faults: usize,
    seed: u64,
    deadline: Option<Duration>,
    max_nodes: usize,
    reorder: ReorderMode,
}

fn simulate(source: &str, path: &str, flags: &[String]) -> ExitCode {
    let has = |f: &str| flags.iter().any(|a| a == f);
    let params = (|| -> Result<SimFlags, String> {
        Ok(SimFlags {
            runs: parsed_flag(flags, "--runs", 200usize)?,
            max_faults: parsed_flag(flags, "--max-faults", 3usize)?,
            seed: parsed_flag(flags, "--seed", 0xF7_5EEDu64)?,
            deadline: duration_flag(flags, "--timeout")?,
            max_nodes: parsed_flag(flags, "--max-nodes", 0usize)?,
            reorder: reorder_flag(flags)?,
        })
    })();
    let SimFlags { runs, max_faults, seed, deadline, max_nodes, reorder } = match params {
        Ok(p) => p,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let mode = if has("--cautious") { job::Mode::Cautious } else { job::Mode::Lazy };
    let opts = RepairOptions { deadline, max_nodes, reorder, ..Default::default() };

    let spec = match job::prepare(source, mode, opts) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };
    let result = match job::execute(&spec, &Telemetry::off(), true) {
        Ok(r) => r,
        Err(job::ExecError::Aborted(why)) => {
            eprintln!("{path}: {why}");
            return abort_exit(why);
        }
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::from(1);
        }
    };
    if result.failed {
        eprintln!("no masking fault-tolerant repair exists under these inputs");
        return ExitCode::from(1);
    }
    eprintln!("repaired {} ({} mode), verified: {}", spec.name, mode.as_str(), result.verified);
    let Some(bundle) = result.sim.ready() else {
        eprintln!("{}", result.sim.refusal());
        return ExitCode::from(1);
    };

    let config = ftrepair::explicit::simulate::SimConfig { runs, max_faults, ..Default::default() };
    let report = job::run_simulation(bundle, &config, seed);
    println!("{}", job::sim_report_json(&report, seed));
    if report.ok() {
        eprintln!(
            "simulation ok: {} runs, {} steps, {} faults injected",
            report.runs, report.steps, report.faults_injected
        );
        ExitCode::SUCCESS
    } else {
        eprintln!("simulation FAILED: {:?}", report.failure);
        ExitCode::from(1)
    }
}

fn info(prog: &mut DistributedProgram) -> ExitCode {
    println!("program {}", prog.name);
    println!("variables:");
    for v in prog.cx.var_ids() {
        let i = prog.cx.info(v);
        println!("  {} : 0..{}", i.name, i.size - 1);
    }
    let universe = prog.cx.state_universe();
    println!("state space: {} states", prog.cx.count_states(universe));
    println!("invariant:   {} states", prog.cx.count_states(prog.invariant));
    println!("fault transitions: {}", prog.cx.count_transitions(prog.faults));
    for (j, p) in prog.processes.clone().iter().enumerate() {
        let n = prog.cx.count_transitions(p.trans);
        println!("process {} ({} transitions)", p.name, n);
        let _ = j;
    }
    ExitCode::SUCCESS
}

fn check(prog: &mut DistributedProgram) -> ExitCode {
    let mut ok = true;
    let t = prog.program_trans();
    let inv = prog.invariant;

    let closed = semantics::is_closed(&mut prog.cx, inv, t);
    println!("invariant closed under program transitions: {closed}");
    ok &= closed;

    let bad_inside = !prog.cx.mgr().disjoint(inv, prog.safety.bad_states);
    println!("bad states inside the invariant: {bad_inside}");
    ok &= !bad_inside;

    let inside = semantics::project(&mut prog.cx, t, inv);
    let bt_inside = !prog.cx.mgr().disjoint(inside, prog.safety.bad_trans);
    println!("bad transitions executable inside the invariant: {bt_inside}");
    ok &= !bt_inside;

    let realizable = realizability::program_realizable(prog);
    println!("program as written is realizable: {realizable}");
    ok &= realizable;

    let liveness = prog.liveness.clone();
    if !liveness.leads_to.is_empty() {
        let results = ftrepair::program::verify::check_liveness(&mut prog.cx, inv, t, &liveness);
        for (i, holds) in results.iter().enumerate() {
            println!("leadsto property {} holds inside the invariant: {holds}", i + 1);
            ok &= holds;
        }
    }

    if ok {
        println!("check passed");
        ExitCode::SUCCESS
    } else {
        println!("check FAILED");
        ExitCode::from(1)
    }
}

fn repair(prog: &mut DistributedProgram, flags: &[String]) -> ExitCode {
    let has = |f: &str| flags.iter().any(|a| a == f);
    let metrics_out: Option<PathBuf> = match flags.iter().position(|a| a == "--metrics-out") {
        Some(i) => match flags.get(i + 1) {
            Some(p) if !p.starts_with("--") => Some(PathBuf::from(p)),
            _ => {
                eprintln!("--metrics-out requires a path argument");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let deadline = match duration_flag(flags, "--timeout") {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let max_nodes = match parsed_flag(flags, "--max-nodes", 0usize) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let reorder = match reorder_flag(flags) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let trace_out: Option<PathBuf> = match flag_value(flags, "--trace-out") {
        Ok(v) => v.map(PathBuf::from),
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let opts = RepairOptions {
        restrict_to_reachable: !has("--pure-lazy"),
        step2_closed_form: !has("--iterative-step2"),
        parallel_step2: has("--parallel"),
        allow_new_terminal_inside: !has("--strict-terminal"),
        deadline,
        max_nodes,
        reorder,
        ..Default::default()
    };
    // Telemetry costs nothing when off; turn it on whenever the run is
    // observed (a metrics sink, stderr tracing, or a trace export was
    // requested). `--trace-out` needs the hierarchical span log too.
    let trace = has("--trace");
    let tele = if trace_out.is_some() {
        Telemetry::with_spans(trace)
    } else if metrics_out.is_some() || trace {
        Telemetry::with_trace(trace)
    } else {
        Telemetry::off()
    };

    let mode = if has("--cautious") { "cautious" } else { "lazy" };
    // One trace ID per CLI run, same wire format as the server's
    // `X-Trace-Id`; it names the exported trace tree.
    let trace_id = ftrepair::telemetry::trace::mint_trace_id();
    let outcome = {
        // The root span every repair-phase span nests under in the export.
        let mut root = tele.span("job");
        root.field("case", prog.name.as_str().into());
        root.field("mode", mode.into());
        root.field("trace_id", ftrepair::telemetry::trace::format_trace_id(trace_id).into());
        if has("--cautious") {
            cautious_repair_traced(prog, &opts, &tele).map(|c| LazyOutcome {
                processes: c.processes,
                invariant: c.invariant,
                span: c.span,
                trans: c.trans,
                failed: c.failed,
                stats: c.stats,
            })
        } else {
            lazy_repair_traced(prog, &opts, &tele)
        }
    };
    let emit_trace = |tele: &Telemetry, case: &str| -> ExitCode {
        if let Some(path) = &trace_out {
            let records = tele.take_spans();
            let doc = ftrepair::telemetry::trace::chrome_trace(&records, trace_id, case);
            if let Err(e) = std::fs::write(path, doc.to_string()) {
                eprintln!("cannot write trace to {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!(
                "trace {} ({} spans) written to {} (open in Perfetto or chrome://tracing)",
                ftrepair::telemetry::trace::format_trace_id(trace_id),
                records.len(),
                path.display(),
            );
        }
        ExitCode::SUCCESS
    };
    let out: LazyOutcome = match outcome {
        Ok(o) => o,
        Err(aborted) => {
            eprintln!("{aborted}");
            emit_trace(&tele, &prog.name);
            return abort_exit(aborted);
        }
    };

    // Report before verification, so the verifier's BDD traffic does not
    // pollute the run's cache hit rates.
    let mut report =
        build_run_report(&prog.name, mode, &opts, &out.stats, out.failed, &tele, &prog.cx);
    let emit_report = |report: &ftrepair::telemetry::RunReport| -> ExitCode {
        if let Some(path) = &metrics_out {
            if let Err(e) = report.append_to(path) {
                eprintln!("cannot write metrics to {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("metrics appended to {}", path.display());
        }
        ExitCode::SUCCESS
    };

    if out.failed {
        eprintln!("no masking fault-tolerant repair exists under these inputs");
        emit_report(&report);
        emit_trace(&tele, &prog.name);
        return ExitCode::from(1);
    }

    let (m, r) = verify_outcome(prog, &out);
    report.set("verified", (m.ok() && r.ok()).into());
    if emit_report(&report) != ExitCode::SUCCESS {
        return ExitCode::from(2);
    }
    if emit_trace(&tele, &prog.name) != ExitCode::SUCCESS {
        return ExitCode::from(2);
    }
    eprintln!(
        "repaired in {:?} (step1 {:?}, step2 {:?}, {} outer iteration(s))",
        out.stats.total_time(),
        out.stats.step1_time,
        out.stats.step2_time,
        out.stats.outer_iterations,
    );
    eprintln!("verified: masking={} realizability={}", m.ok(), r.ok());
    if !(m.ok() && r.ok()) {
        eprintln!("INTERNAL ERROR: output failed verification: {m:?} {r:?}");
        return ExitCode::from(3);
    }

    println!("// repaired program {}", prog.name);
    println!(
        "// invariant: {} states, fault-span: {} states",
        prog.cx.count_states(out.invariant),
        prog.cx.count_states(out.span),
    );
    println!("// (behavior outside the fault-span is unreachable and omitted)\n");
    for (j, p) in out.processes.iter().enumerate() {
        // Restrict to transitions whose source lies in the fault-span: the
        // realizability construction pads groups with transitions from
        // unreachable states, which would only confuse the reader.
        let reachable_part = prog.cx.mgr().and(p.trans, out.span);
        let shown = ftrepair::program::Process {
            name: p.name.clone(),
            read: p.read.clone(),
            write: p.write.clone(),
            trans: reachable_part,
        };
        println!("{}", render_process(prog, &shown, j));
    }
    ExitCode::SUCCESS
}

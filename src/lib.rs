//! # ftrepair — lazy repair for addition of fault-tolerance
//!
//! Umbrella crate re-exporting the whole workspace: a reproduction of
//! *"Lazy Repair for Addition of Fault-tolerance to Distributed Programs"*
//! (Roohitavaf, Lin, Kulkarni — IPPS 2016).
//!
//! See the `README.md` for a tour and `DESIGN.md` for the system inventory.

pub use ftrepair_bdd as bdd;
pub use ftrepair_casestudies as casestudies;
pub use ftrepair_core as repair;
pub use ftrepair_explicit as explicit;
pub use ftrepair_lang as lang;
pub use ftrepair_program as program;
pub use ftrepair_server as server;
pub use ftrepair_store as store;
pub use ftrepair_symbolic as symbolic;
pub use ftrepair_telemetry as telemetry;

#!/usr/bin/env bash
# Warm-restart demo for the persistent result store.
#
# Starts `ftrepair serve --store-dir`, drives a cold loadgen phase, kills
# the daemon with SIGTERM mid-run (loadgen pauses while we do), restarts it
# on the SAME address and store directory, and lets the warm phase run
# against the restarted daemon. Everything the warm phase asks for is
# already on disk, so its p99 collapses to promotion cost — no repair is
# recomputed. Produces the summary checked in as
# results/loadgen_store_warm.txt.
#
# Usage: scripts/store_warm_demo.sh [addr]
set -euo pipefail
cd "$(dirname "$0")/.."

ADDR="${1:-127.0.0.1:7183}"
STORE="$(mktemp -d)"
LOG="$(mktemp)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null || true
  rm -rf "$STORE" "$LOG"
}
trap cleanup EXIT

cargo build --release -p ftrepair -p ftrepair-bench >/dev/null 2>&1

# GET a path from the daemon over bash's /dev/tcp (no curl dependency).
http_get() {
  exec 3<>"/dev/tcp/${ADDR%:*}/${ADDR#*:}"
  printf 'GET %s HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n' "$1" >&3
  cat <&3 | tr -d '\r' | sed '1,/^$/d'
  exec 3>&- 3<&-
}

start_server() {
  target/release/ftrepair serve --addr "$ADDR" --workers 4 --store-dir "$STORE" &
  SERVER_PID=$!
  for _ in $(seq 50); do
    if http_get /healthz >/dev/null 2>&1; then return; fi
    sleep 0.1
  done
  echo "daemon never came up on $ADDR" >&2
  exit 1
}

start_server
echo "== first daemon up (pid $SERVER_PID), store at $STORE"

target/release/loadgen --addr "$ADDR" \
  --spec examples/specs/toggle_pair.ftr \
  --spec examples/specs/tmr_voter.ftr \
  --spec examples/specs/token_ring.ftr \
  --spec examples/specs/stabilizing_chain10.ftr \
  --conns 4 --requests 120 --restart-after 60 --restart-pause 6 \
  2>"$LOG" &
LOADGEN_PID=$!

# Wait for the cold phase to finish, then restart the daemon inside the
# loadgen pause window.
for _ in $(seq 300); do
  grep -q "pausing" "$LOG" && break
  sleep 0.1
done
grep -q "pausing" "$LOG" || { echo "cold phase never finished" >&2; exit 1; }

echo "== cold phase done; SIGTERM daemon $SERVER_PID"
kill -TERM "$SERVER_PID"
wait "$SERVER_PID" 2>/dev/null || true
start_server
echo "== second daemon up (pid $SERVER_PID), same store dir"

wait "$LOADGEN_PID"
echo
echo "== loadgen summary =="
cat "$LOG"
echo
echo "== second daemon /metrics (store + jobs counters) =="
http_get "/metrics" | tr ',' '\n' | grep -E '"(store\.|server\.jobs\.)' | sed 's/[{}]//g'

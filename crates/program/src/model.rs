//! Distributed programs, processes and the guarded-action builder.

use crate::spec::{Liveness, Safety};
use ftrepair_bdd::{NodeId, FALSE, TRUE};
use ftrepair_symbolic::{SymbolicContext, VarId};

/// One process of a distributed program (Definition 17): read set,
/// write set and transition predicate.
#[derive(Clone, Debug)]
pub struct Process {
    /// Human-readable name (diagnostics, DOT dumps).
    pub name: String,
    /// `R_j` — variables the process may read.
    pub read: Vec<VarId>,
    /// `W_j ⊆ R_j` — variables the process may write.
    pub write: Vec<VarId>,
    /// `δ_j` — the process's transition predicate (over current + next bits).
    pub trans: NodeId,
}

/// A distributed program `⟨V_P, P_P⟩` together with its repair inputs:
/// invariant `S`, faults `f` and safety specification `Sf`.
pub struct DistributedProgram {
    /// Name used in reports and table rows.
    pub name: String,
    /// The symbolic context owning all BDDs below.
    pub cx: SymbolicContext,
    /// The processes; `δ_P` is their union (plus stuttering, Definition 18).
    pub processes: Vec<Process>,
    /// The set of legitimate states `S`.
    pub invariant: NodeId,
    /// Fault transitions `f` (Definition 12).
    pub faults: NodeId,
    /// Safety specification (Definition 7).
    pub safety: Safety,
    /// Leads-to liveness properties (Definition 8) — checked, not
    /// synthesized for; see `verify::check_liveness`.
    pub liveness: Liveness,
}

impl DistributedProgram {
    /// `δ_P` — the union of all process transition predicates (without the
    /// stuttering completion; see [`crate::semantics`]).
    pub fn program_trans(&mut self) -> NodeId {
        let mut acc = FALSE;
        let parts: Vec<NodeId> = self.processes.iter().map(|p| p.trans).collect();
        for t in parts {
            acc = self.cx.mgr().or(acc, t);
        }
        acc
    }

    /// The per-process transition predicates, in process order — the
    /// partitioned form of `δ_P` used by partitioned image computation.
    pub fn partitions(&self) -> Vec<NodeId> {
        self.processes.iter().map(|p| p.trans).collect()
    }

    /// Variables **not** writable by process `j` (the complement of `W_j`),
    /// i.e. the frame the write restriction forces on that process.
    pub fn unwritable(&self, j: usize) -> Vec<VarId> {
        let w = &self.processes[j].write;
        self.cx.var_ids().into_iter().filter(|v| !w.contains(v)).collect()
    }

    /// Variables **not** readable by process `j` — the ones its
    /// read-restriction groups quantify over.
    pub fn unreadable(&self, j: usize) -> Vec<VarId> {
        let r = &self.processes[j].read;
        self.cx.var_ids().into_iter().filter(|v| !r.contains(v)).collect()
    }

    /// Every BDD root the program itself owns: invariant, faults, the
    /// safety and liveness specification, and each process's transition
    /// predicate. A garbage collection or dynamic reorder during a repair
    /// must keep all of these alive for the program to stay meaningful.
    pub fn base_roots(&self) -> Vec<NodeId> {
        let mut roots =
            vec![self.invariant, self.faults, self.safety.bad_states, self.safety.bad_trans];
        roots.extend(self.processes.iter().map(|p| p.trans));
        for &(l, t) in &self.liveness.leads_to {
            roots.push(l);
            roots.push(t);
        }
        roots
    }

    /// Protect every base root in the manager (refcounted, see
    /// [`ftrepair_bdd::Manager::protect`]). Repair entry points that enable
    /// dynamic reordering call this once; the protections deliberately
    /// persist for the life of the program — the roots must stay valid for
    /// post-repair verification anyway.
    pub fn protect_base(&mut self) {
        for r in self.base_roots() {
            self.cx.mgr().protect(r);
        }
    }
}

impl std::fmt::Debug for DistributedProgram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DistributedProgram")
            .field("name", &self.name)
            .field("vars", &self.cx.num_program_vars())
            .field("processes", &self.processes.iter().map(|p| &p.name).collect::<Vec<_>>())
            .finish()
    }
}

/// How an action updates one variable.
#[derive(Clone, Debug)]
pub enum Update {
    /// `v := c`.
    Const(u64),
    /// `v := w` (copy another variable's current value).
    FromVar(VarId),
    /// `v := one of` the listed constants, chosen nondeterministically.
    Choice(Vec<u64>),
    /// An arbitrary relation over current bits and the **next** bits of the
    /// updated variable (escape hatch for anything the other forms can't
    /// say).
    Rel(NodeId),
}

/// Builder for [`DistributedProgram`]: declare variables, then processes,
/// then guarded actions / fault actions / specification parts.
///
/// ```
/// use ftrepair_program::{ProgramBuilder, Update};
///
/// let mut b = ProgramBuilder::new("toggle");
/// let x = b.var("x", 2);
/// b.process("p", &[x], &[x]);
/// let g = b.cx().assign_eq(x, 0);
/// b.action(g, &[(x, Update::Const(1))]);
/// let inv = ftrepair_bdd::TRUE;
/// b.invariant(inv);
/// let p = b.build();
/// assert_eq!(p.processes.len(), 1);
/// ```
pub struct ProgramBuilder {
    name: String,
    cx: SymbolicContext,
    processes: Vec<Process>,
    faults: NodeId,
    invariant: NodeId,
    bad_states: NodeId,
    bad_trans: NodeId,
    liveness: Liveness,
}

impl ProgramBuilder {
    /// Start a new program.
    pub fn new(name: impl Into<String>) -> Self {
        ProgramBuilder {
            name: name.into(),
            cx: SymbolicContext::new(),
            processes: Vec::new(),
            faults: FALSE,
            invariant: TRUE,
            bad_states: FALSE,
            bad_trans: FALSE,
            liveness: Liveness::none(),
        }
    }

    /// Declare a finite-domain variable (domain `0..size`).
    pub fn var(&mut self, name: impl Into<String>, size: u64) -> VarId {
        self.cx.add_var(name, size)
    }

    /// The symbolic context, for building guards and custom relations.
    pub fn cx(&mut self) -> &mut SymbolicContext {
        &mut self.cx
    }

    /// Open a new process with the given read and write sets. Subsequent
    /// [`ProgramBuilder::action`] calls add to this process until the next
    /// `process` call. Enforces `W_j ⊆ R_j` (Definition 17).
    pub fn process(&mut self, name: impl Into<String>, read: &[VarId], write: &[VarId]) {
        let name = name.into();
        for w in write {
            assert!(
                read.contains(w),
                "process {name}: write set must be a subset of the read set (W ⊆ R)"
            );
        }
        self.processes.push(Process {
            name,
            read: read.to_vec(),
            write: write.to_vec(),
            trans: FALSE,
        });
    }

    /// Add a guarded action `guard → updates` to the current process.
    /// Every variable not named in `updates` is framed (left unchanged).
    /// Panics if no process is open or the action writes outside `W_j`.
    pub fn action(&mut self, guard: NodeId, updates: &[(VarId, Update)]) {
        let j = self.processes.len().checked_sub(1).expect("action before any process");
        {
            let p = &self.processes[j];
            for (v, _) in updates {
                assert!(
                    p.write.contains(v),
                    "process {}: action writes {} outside its write set",
                    p.name,
                    self.cx.info(*v).name
                );
            }
        }
        let t = self.action_trans(guard, updates);
        let p = &mut self.processes[j];
        // Borrow dance: `or` needs &mut cx while p.trans is read first.
        let old = p.trans;
        let merged = self.cx.mgr().or(old, t);
        self.processes[j].trans = merged;
    }

    /// Add a fault action (Definition 12). Faults are not bound by any
    /// process's read/write restrictions.
    pub fn fault_action(&mut self, guard: NodeId, updates: &[(VarId, Update)]) {
        let t = self.action_trans(guard, updates);
        self.faults = self.cx.mgr().or(self.faults, t);
    }

    /// Build the transition predicate for one guarded action with automatic
    /// framing of unmentioned variables.
    fn action_trans(&mut self, guard: NodeId, updates: &[(VarId, Update)]) -> NodeId {
        let mut t = guard;
        for (v, u) in updates {
            let constraint = match u {
                Update::Const(c) => self.cx.assign_const(*v, *c),
                Update::FromVar(w) => self.copy_var(*v, *w),
                Update::Choice(vals) => {
                    let mut acc = FALSE;
                    for &c in vals {
                        let e = self.cx.assign_const(*v, c);
                        acc = self.cx.mgr().or(acc, e);
                    }
                    acc
                }
                Update::Rel(r) => *r,
            };
            t = self.cx.mgr().and(t, constraint);
        }
        let updated: Vec<VarId> = updates.iter().map(|(v, _)| *v).collect();
        let framed: Vec<VarId> =
            self.cx.var_ids().into_iter().filter(|v| !updated.contains(v)).collect();
        let frame = self.cx.unchanged_all(&framed);
        let with_frame = self.cx.mgr().and(t, frame);
        // Keep next-state values inside their domains (matters for
        // non-power-of-two domains with relational updates).
        let universe = self.cx.transition_universe();
        self.cx.mgr().and(with_frame, universe)
    }

    /// `next(target) = cur(source)`.
    fn copy_var(&mut self, target: VarId, source: VarId) -> NodeId {
        let st = self.cx.info(target).size;
        let ss = self.cx.info(source).size;
        assert!(
            ss <= st,
            "cannot copy {} (size {ss}) into smaller {} (size {st})",
            self.cx.info(source).name,
            self.cx.info(target).name
        );
        let mut acc = FALSE;
        for val in 0..ss {
            let s = self.cx.assign_eq(source, val);
            let t = self.cx.assign_const(target, val);
            let both = self.cx.mgr().and(s, t);
            acc = self.cx.mgr().or(acc, both);
        }
        acc
    }

    /// Set the invariant `S` (the legitimate states).
    pub fn invariant(&mut self, s: NodeId) {
        self.invariant = s;
    }

    /// Add to the safety specification's bad states `Sf_bs`.
    pub fn bad_states(&mut self, bs: NodeId) {
        self.bad_states = self.cx.mgr().or(self.bad_states, bs);
    }

    /// Add to the safety specification's bad transitions `Sf_bt`.
    pub fn bad_trans(&mut self, bt: NodeId) {
        self.bad_trans = self.cx.mgr().or(self.bad_trans, bt);
    }

    /// Declare a leads-to liveness property `L ↝ T` (Definition 8).
    pub fn leads_to(&mut self, l: NodeId, t: NodeId) {
        self.liveness.add(l, t);
    }

    /// Finish building. The invariant is intersected with the state universe
    /// so non-power-of-two domains stay well-formed.
    pub fn build(mut self) -> DistributedProgram {
        let universe = self.cx.state_universe();
        let invariant = self.cx.mgr().and(self.invariant, universe);
        DistributedProgram {
            name: self.name,
            cx: self.cx,
            processes: self.processes,
            invariant,
            faults: self.faults,
            safety: Safety { bad_states: self.bad_states, bad_trans: self.bad_trans },
            liveness: self.liveness,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two processes incrementing a shared-view counter pair.
    fn sample() -> DistributedProgram {
        let mut b = ProgramBuilder::new("sample");
        let x = b.var("x", 3);
        let y = b.var("y", 3);
        b.process("px", &[x, y], &[x]);
        for v in 0..2 {
            let g = b.cx().assign_eq(x, v);
            b.action(g, &[(x, Update::Const(v + 1))]);
        }
        b.process("py", &[x, y], &[y]);
        let g = b.cx().assign_eq(y, 0);
        b.action(g, &[(y, Update::FromVar(x))]);
        let inv = TRUE;
        b.invariant(inv);
        b.build()
    }

    #[test]
    fn actions_frame_unmentioned_vars() {
        let mut p = sample();
        let t = p.processes[0].trans;
        // Every px transition leaves y unchanged.
        let y = p.cx.find_var("y").unwrap();
        let uy = p.cx.unchanged(y);
        assert!(p.cx.mgr().leq(t, uy));
    }

    #[test]
    fn program_trans_is_union() {
        let mut p = sample();
        let t0 = p.processes[0].trans;
        let t1 = p.processes[1].trans;
        let expected = p.cx.mgr().or(t0, t1);
        assert_eq!(p.program_trans(), expected);
        assert_eq!(p.partitions(), vec![t0, t1]);
    }

    #[test]
    fn copy_var_copies_each_value() {
        let mut p = sample();
        // py's action: y=0 → y := x. Check transition (x=2,y=0) → (2,2).
        let t = p.processes[1].trans;
        let good = p.cx.transition_cube(&[2, 0], &[2, 2]);
        assert!(p.cx.mgr().leq(good, t));
        let bad = p.cx.transition_cube(&[2, 0], &[2, 1]);
        assert!(p.cx.mgr().disjoint(bad, t));
        // Guard y≠0 disables the action.
        let disabled = p.cx.transition_cube(&[2, 1], &[2, 2]);
        assert!(p.cx.mgr().disjoint(disabled, t));
    }

    #[test]
    fn transitions_respect_domains() {
        let mut p = sample();
        let t = p.program_trans();
        let universe = p.cx.transition_universe();
        assert!(p.cx.mgr().leq(t, universe));
    }

    #[test]
    fn unwritable_and_unreadable_sets() {
        let p = sample();
        let x = p.cx.find_var("x").unwrap();
        let y = p.cx.find_var("y").unwrap();
        assert_eq!(p.unwritable(0), vec![y]);
        assert_eq!(p.unwritable(1), vec![x]);
        assert_eq!(p.unreadable(0), vec![]); // px reads everything
    }

    #[test]
    #[should_panic(expected = "W ⊆ R")]
    fn write_outside_read_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.var("x", 2);
        let y = b.var("y", 2);
        b.process("p", &[x], &[y]);
    }

    #[test]
    #[should_panic(expected = "outside its write set")]
    fn action_outside_write_set_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.var("x", 2);
        let y = b.var("y", 2);
        b.process("p", &[x, y], &[x]);
        b.action(TRUE, &[(y, Update::Const(0))]);
    }

    #[test]
    #[should_panic(expected = "action before any process")]
    fn action_before_process_rejected() {
        let mut b = ProgramBuilder::new("bad");
        let x = b.var("x", 2);
        b.action(TRUE, &[(x, Update::Const(0))]);
    }

    #[test]
    fn choice_update_is_nondeterministic() {
        let mut b = ProgramBuilder::new("choice");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g = b.cx().assign_eq(x, 0);
        b.action(g, &[(x, Update::Choice(vec![1, 3]))]);
        b.invariant(TRUE);
        let mut p = b.build();
        let t = p.processes[0].trans;
        assert_eq!(p.cx.count_transitions(t), 2.0);
        let s0 = p.cx.state_cube(&[0]);
        let img = p.cx.image(s0, t);
        let s1 = p.cx.state_cube(&[1]);
        let s3 = p.cx.state_cube(&[3]);
        let expected = p.cx.mgr().or(s1, s3);
        assert_eq!(img, expected);
    }

    #[test]
    fn fault_actions_accumulate_separately() {
        let mut b = ProgramBuilder::new("faulty");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g = b.cx().assign_eq(x, 0);
        b.action(g, &[(x, Update::Const(1))]);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(0))]);
        b.invariant(TRUE);
        let mut p = b.build();
        let prog = p.program_trans();
        assert!(p.cx.mgr().disjoint(prog, p.faults));
        assert_eq!(p.cx.count_transitions(p.faults), 1.0);
    }

    #[test]
    fn invariant_constrained_to_universe() {
        let mut b = ProgramBuilder::new("inv");
        let _x = b.var("x", 3); // 2 bits, one dead encoding
        b.invariant(TRUE);
        let mut p = b.build();
        assert_eq!(p.cx.count_states(p.invariant), 3.0);
        let universe = p.cx.state_universe();
        assert!(p.cx.mgr().leq(p.invariant, universe));
    }
}

//! Graphviz rendering of (small) program state graphs.
//!
//! For instances with at most a few hundred states this draws the full
//! state graph with the repair structure visible at a glance: legitimate
//! states (invariant) as double circles, fault-span states as solid
//! circles, everything else dotted; program transitions as solid edges,
//! faults as dashed red edges. The quickstart-sized examples in the README
//! were eyeballed with exactly this.

use ftrepair_bdd::NodeId;
use ftrepair_symbolic::SymbolicContext;
use std::fmt::Write;

/// Options for [`state_graph_dot`].
pub struct VizOptions {
    /// Cap on rendered states (graphs beyond this are unreadable anyway).
    pub max_states: usize,
    /// The invariant (drawn as double circles).
    pub invariant: NodeId,
    /// The fault-span (solid); states outside are dotted.
    pub span: NodeId,
}

/// Render the state graph of `trans` (+ dashed `faults`) over the states of
/// `universe ∧ span`-ish region as a Graphviz `digraph`. Panics if the
/// region exceeds `max_states`.
pub fn state_graph_dot(
    cx: &mut SymbolicContext,
    trans: NodeId,
    faults: NodeId,
    opts: &VizOptions,
) -> String {
    let universe = cx.state_universe();
    let states = cx.enumerate_states(universe, opts.max_states + 1);
    assert!(
        states.len() <= opts.max_states,
        "state space too large to draw ({}+ states)",
        states.len()
    );

    let label = |s: &[u64]| s.iter().map(u64::to_string).collect::<Vec<_>>().join(",");
    let ident =
        |s: &[u64]| format!("s{}", s.iter().map(u64::to_string).collect::<Vec<_>>().join("_"));

    let mut out = String::from("digraph program {\n  rankdir=LR;\n");
    for s in &states {
        let cube = cx.state_cube(s);
        let in_inv = cx.mgr().leq(cube, opts.invariant);
        let in_span = cx.mgr().leq(cube, opts.span);
        let shape = if in_inv {
            "doublecircle"
        } else if in_span {
            "circle"
        } else {
            "circle\", style=\"dotted"
        };
        writeln!(out, "  {} [label=\"{}\", shape=\"{}\"];", ident(s), label(s), shape).unwrap();
    }
    for from in &states {
        let from_cube = cx.state_cube(from);
        for (rel, attrs) in [(trans, ""), (faults, " [style=dashed, color=red]")] {
            let steps = cx.mgr().and(rel, from_cube);
            for (f, t) in cx.enumerate_transitions(steps, opts.max_states * opts.max_states) {
                debug_assert_eq!(&f, from);
                writeln!(out, "  {} -> {}{};", ident(&f), ident(&t), attrs).unwrap();
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProgramBuilder, Update};

    fn toy() -> crate::model::DistributedProgram {
        let mut b = ProgramBuilder::new("toy");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    #[test]
    fn renders_all_states_and_edges() {
        let mut p = toy();
        let t = p.program_trans();
        let opts = VizOptions { max_states: 16, invariant: p.invariant, span: p.invariant };
        let dot = state_graph_dot(&mut p.cx, t, p.faults, &opts);
        assert!(dot.starts_with("digraph program {"));
        // All three states present, invariant ones double-circled.
        for s in ["s0", "s1", "s2"] {
            assert!(dot.contains(&format!("{s} [label=")), "{dot}");
        }
        assert!(dot.contains("doublecircle"));
        // Program edges and the dashed fault edge.
        assert!(dot.contains("s0 -> s1;"), "{dot}");
        assert!(dot.contains("s1 -> s2 [style=dashed, color=red];"), "{dot}");
    }

    #[test]
    #[should_panic(expected = "too large")]
    fn refuses_oversized_graphs() {
        let mut p = toy();
        let t = p.program_trans();
        let opts = VizOptions { max_states: 1, invariant: p.invariant, span: p.invariant };
        let _ = state_graph_dot(&mut p.cx, t, p.faults, &opts);
    }
}

//! Execution semantics helpers: stuttering completion (Definition 18),
//! closure (Definition 4) and projection (Definition 6).

use ftrepair_bdd::NodeId;
use ftrepair_symbolic::SymbolicContext;

/// The identity relation `s' = s` over all declared variables.
pub fn identity(cx: &mut SymbolicContext) -> NodeId {
    let vars = cx.var_ids();
    cx.unchanged_all(&vars)
}

/// Stuttering completion of Definition 18: self-loops exactly at the states
/// (within `states`) that have no outgoing `trans` step.
pub fn stutter_completion(cx: &mut SymbolicContext, trans: NodeId, states: NodeId) -> NodeId {
    let dead = cx.deadlocks(states, trans);
    let id = identity(cx);
    cx.mgr().and(dead, id)
}

/// `δ_P` per Definition 18: the union of process transitions plus stuttering
/// at global deadlocks of the state universe.
pub fn full_program_trans(cx: &mut SymbolicContext, union_of_processes: NodeId) -> NodeId {
    let universe = cx.state_universe();
    let stutter = stutter_completion(cx, union_of_processes, universe);
    cx.mgr().or(union_of_processes, stutter)
}

/// Is `states` closed in `trans` (Definition 4)?
pub fn is_closed(cx: &mut SymbolicContext, states: NodeId, trans: NodeId) -> bool {
    let img = cx.image(states, trans);
    cx.mgr().leq(img, states)
}

/// Projection `δ|S` (Definition 6): transitions that start **and** end in
/// `S`.
pub fn project(cx: &mut SymbolicContext, trans: NodeId, states: NodeId) -> NodeId {
    let from = cx.mgr().and(trans, states);
    let target = cx.as_next(states);
    cx.mgr().and(from, target)
}

/// The largest subset of `states` containing no `trans`-deadlock, computed
/// by recursively discarding states whose every outgoing step leaves the
/// set (the deadlock-elimination loop inside Add-Masking).
pub fn prune_deadlocks(cx: &mut SymbolicContext, states: NodeId, trans: NodeId) -> NodeId {
    let mut s = states;
    loop {
        let within = project(cx, trans, s);
        let alive = cx.preimage_of_anything(within);
        let keep = cx.mgr().and(s, alive);
        if keep == s {
            return s;
        }
        s = keep;
    }
}

/// Like [`prune_deadlocks`], but states in `exempt` are never removed even
/// if they deadlock.
///
/// Add-Masking uses this with `exempt` = the original program's terminal
/// (stuttering) states: a state that could not move *before* repair is a
/// legal termination point and must not unwind the invariant
/// (Definition 18's stuttering makes it a fixpoint, not a deadlock).
pub fn prune_deadlocks_except(
    cx: &mut SymbolicContext,
    states: NodeId,
    trans: NodeId,
    exempt: NodeId,
) -> NodeId {
    let mut s = states;
    loop {
        let within = project(cx, trans, s);
        let alive = cx.preimage_of_anything(within);
        let allowed = cx.mgr().or(alive, exempt);
        let keep = cx.mgr().and(s, allowed);
        if keep == s {
            return s;
        }
        s = keep;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_bdd::{FALSE, TRUE};
    use ftrepair_symbolic::SymbolicContext;

    fn line_cx() -> (SymbolicContext, NodeId) {
        // x ∈ {0..3}; x' = x+1 while x < 3.
        let mut cx = SymbolicContext::new();
        let x = cx.add_var("x", 4);
        let mut t = FALSE;
        for v in 0..3 {
            let g = cx.assign_eq(x, v);
            let u = cx.assign_const(x, v + 1);
            let step = cx.mgr().and(g, u);
            t = cx.mgr().or(t, step);
        }
        (cx, t)
    }

    #[test]
    fn identity_is_diagonal() {
        let (mut cx, _) = line_cx();
        let id = identity(&mut cx);
        assert_eq!(cx.count_transitions(id), 4.0);
        let d = cx.transition_cube(&[2], &[2]);
        assert!(cx.mgr().leq(d, id));
        let off = cx.transition_cube(&[2], &[3]);
        assert!(cx.mgr().disjoint(off, id));
    }

    #[test]
    fn stuttering_exactly_at_deadlocks() {
        let (mut cx, t) = line_cx();
        let universe = cx.state_universe();
        let st = stutter_completion(&mut cx, t, universe);
        let expected = cx.transition_cube(&[3], &[3]);
        assert_eq!(st, expected);
        let full = full_program_trans(&mut cx, t);
        // Full relation has no deadlocks anywhere.
        let dl = cx.deadlocks(universe, full);
        assert_eq!(dl, FALSE);
    }

    #[test]
    fn closure_checks() {
        let (mut cx, t) = line_cx();
        let x = cx.find_var("x").unwrap();
        let le3 = TRUE; // whole space is closed
        assert!(is_closed(&mut cx, le3, t));
        let ge2 = {
            let a = cx.assign_eq(x, 2);
            let b = cx.assign_eq(x, 3);
            cx.mgr().or(a, b)
        };
        assert!(is_closed(&mut cx, ge2, t), "suffix of the line is closed");
        let le1 = {
            let a = cx.assign_eq(x, 0);
            let b = cx.assign_eq(x, 1);
            cx.mgr().or(a, b)
        };
        assert!(!is_closed(&mut cx, le1, t), "prefix leaks forward");
    }

    #[test]
    fn projection_keeps_interior_transitions() {
        let (mut cx, t) = line_cx();
        let x = cx.find_var("x").unwrap();
        let mid = {
            let a = cx.assign_eq(x, 1);
            let b = cx.assign_eq(x, 2);
            cx.mgr().or(a, b)
        };
        let proj = project(&mut cx, t, mid);
        assert_eq!(cx.count_transitions(proj), 1.0); // only 1→2
        let pairs = cx.enumerate_transitions(proj, 4);
        assert_eq!(pairs, vec![(vec![1], vec![2])]);
    }

    #[test]
    fn prune_deadlocks_unwinds_the_line() {
        let (mut cx, t) = line_cx();
        // Within the whole space, state 3 deadlocks, then 2 (its only exit
        // left the set), and so on: everything unwinds.
        let universe = cx.state_universe();
        let pruned = prune_deadlocks(&mut cx, universe, t);
        assert_eq!(pruned, FALSE);
        // With a cycle, a nonempty core survives.
        let x = cx.find_var("x").unwrap();
        let g3 = cx.assign_eq(x, 3);
        let u0 = cx.assign_const(x, 0);
        let wrap = cx.mgr().and(g3, u0);
        let t_cycle = cx.mgr().or(t, wrap);
        let pruned2 = prune_deadlocks(&mut cx, universe, t_cycle);
        assert_eq!(pruned2, universe);
    }

    #[test]
    fn prune_with_exemption_keeps_terminal_states() {
        let (mut cx, t) = line_cx();
        let x = cx.find_var("x").unwrap();
        let universe = cx.state_universe();
        // State 3 is the original terminal state; exempting it stops the
        // unwinding entirely (everything reaches 3).
        let s3 = cx.assign_eq(x, 3);
        let pruned = prune_deadlocks_except(&mut cx, universe, t, s3);
        assert_eq!(pruned, universe);
        // Exempting an unrelated state still unwinds the rest.
        let s0 = cx.assign_eq(x, 0);
        let pruned2 = prune_deadlocks_except(&mut cx, universe, t, s0);
        assert_eq!(pruned2, s0);
    }

    #[test]
    fn prune_deadlocks_respects_projection() {
        // Deadlock-freedom must be judged inside the candidate set: state 2
        // has an outgoing step, but it leaves {0,1,2}, so the whole prefix
        // unwinds.
        let (mut cx, t) = line_cx();
        let x = cx.find_var("x").unwrap();
        let mut le2 = FALSE;
        for v in 0..3 {
            let s = cx.assign_eq(x, v);
            le2 = cx.mgr().or(le2, s);
        }
        let pruned = prune_deadlocks(&mut cx, le2, t);
        assert_eq!(pruned, FALSE);
    }
}

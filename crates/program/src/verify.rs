//! Independent verification of repair outputs.
//!
//! The repair algorithms are intricate; rather than trusting them, every
//! experiment and test can re-check their output against the definitions:
//! masking fault-tolerance (Definition 15) via [`verify_masking`], and
//! realizability (Definitions 19/20) via [`verify_realizability`].

use crate::model::{DistributedProgram, Process};
use crate::realizability;
use crate::semantics;
use crate::spec::Safety;
use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_symbolic::SymbolicContext;

/// Result of checking masking fault-tolerance. The program is masking
/// `f`-tolerant (per Definition 15, plus the repair-problem side conditions)
/// iff [`MaskingReport::ok`] returns `true`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MaskingReport {
    /// `S' ≠ ∅` — the repair did not collapse the invariant.
    pub invariant_nonempty: bool,
    /// `S' ⊆ S` — repair-problem requirement.
    pub invariant_shrunk: bool,
    /// `δ'|S' ⊆ δ|S'` — no new behavior inside the invariant.
    pub no_new_behavior: bool,
    /// `S'` closed in `δ'` (Definition 10/11).
    pub invariant_closed: bool,
    /// No state of `S'` deadlocks in `δ'` *unless* it already deadlocked in
    /// `δ` (terminal states of the original program stay legal).
    pub no_new_deadlocks_inside: bool,
    /// In the presence of faults, no reachable safety violation: no bad
    /// state in `T'`, no bad transition executable from `T'`.
    pub safe_under_faults: bool,
    /// Every fault-span state recovers: no deadlock and no infinite
    /// program-only path inside `T' − S'`.
    pub recovery_guaranteed: bool,
}

impl MaskingReport {
    /// All checks required by Definition 15 passed. New terminal states
    /// inside the invariant are *allowed*: under Definition 18 they
    /// stutter, which refines every safety property; only specifications
    /// with leads-to liveness inside the invariant could object — use
    /// [`MaskingReport::ok_strict`] for those.
    pub fn ok(&self) -> bool {
        self.invariant_nonempty
            && self.invariant_shrunk
            && self.no_new_behavior
            && self.invariant_closed
            && self.safe_under_faults
            && self.recovery_guaranteed
    }

    /// Like [`MaskingReport::ok`], additionally requiring that no state of
    /// `S'` deadlocks unless it already did in the original program —
    /// what repairs produced with
    /// `RepairOptions::allow_new_terminal_inside = false` guarantee.
    pub fn ok_strict(&self) -> bool {
        self.ok() && self.no_new_deadlocks_inside
    }
}

/// Verify masking fault-tolerance of a repaired program.
///
/// * `orig_trans`, `orig_inv` — the fault-intolerant program (`δ_P` as the
///   raw union of process transitions, *without* stuttering completion —
///   stuttering is applied internally where Definition 18 requires it), and
///   its invariant `S`,
/// * `new_trans`, `new_inv` — the candidate (`δ_P'`, `S'`),
/// * `faults`, `safety` — the fault class and safety specification.
///
/// Returns the full breakdown; use [`MaskingReport::ok`] for the verdict.
pub fn verify_masking(
    cx: &mut SymbolicContext,
    orig_trans: NodeId,
    orig_inv: NodeId,
    new_trans: NodeId,
    new_inv: NodeId,
    faults: NodeId,
    safety: &Safety,
) -> MaskingReport {
    let invariant_nonempty = new_inv != FALSE;
    let invariant_shrunk = cx.mgr().leq(new_inv, orig_inv);

    // Inside the invariant the candidate may use original transitions and
    // (harmless) stutters at originally-terminal states — Definition 18
    // puts those self-loops in δ_P.
    let orig_full = semantics::full_program_trans(cx, orig_trans);
    let new_inside = semantics::project(cx, new_trans, new_inv);
    let orig_inside = semantics::project(cx, orig_full, new_inv);
    let no_new_behavior = cx.mgr().leq(new_inside, orig_inside);

    let invariant_closed = semantics::is_closed(cx, new_inv, new_trans);

    // A state of S' may deadlock only if it deadlocked in the original
    // (raw) program — then Definition 18's stuttering makes it a legal
    // fixpoint rather than a violation.
    let new_dead = cx.deadlocks(new_inv, new_trans);
    let orig_dead = cx.deadlocks(new_inv, orig_trans);
    let no_new_deadlocks_inside = cx.mgr().leq(new_dead, orig_dead);

    // Fault-span: everything reachable from S' under δ' ∪ f.
    let combined = cx.mgr().or(new_trans, faults);
    let span = cx.forward_reachable(new_inv, combined);

    // Safety under faults: no reachable bad state; no executable bad
    // transition out of the span.
    let bad_reach = cx.mgr().and(span, safety.bad_states);
    let executable = cx.mgr().and(combined, span);
    let bad_exec = cx.mgr().and(executable, safety.bad_trans);
    let safe_under_faults = bad_reach == FALSE && bad_exec == FALSE;

    // Recovery: outside the invariant (but inside the span), the program
    // alone must make progress toward S' on *every* computation:
    //  (a) no deadlock in T' − S',
    //  (b) no infinite program path avoiding S' — i.e. the greatest fixpoint
    //      of X ↦ (T'−S') ∩ pre_δ'(X ∩ (T'−S')) is empty.
    let outside = cx.mgr().diff(span, new_inv);
    let dead_outside = cx.deadlocks(outside, new_trans);
    let mut avoid = outside;
    loop {
        let inside_avoid = semantics::project(cx, new_trans, avoid);
        let has_successor_in_avoid = cx.preimage_of_anything(inside_avoid);
        let next = cx.mgr().and(avoid, has_successor_in_avoid);
        if next == avoid {
            break;
        }
        avoid = next;
    }
    let recovery_guaranteed = dead_outside == FALSE && avoid == FALSE;

    MaskingReport {
        invariant_nonempty,
        invariant_shrunk,
        no_new_behavior,
        invariant_closed,
        no_new_deadlocks_inside,
        safe_under_faults,
        recovery_guaranteed,
    }
}

/// Check one leads-to property `L ↝ T` (Definition 8) of computations that
/// stay within `region` under `trans`, with no fairness assumption: the
/// property holds iff no computation starting at a reachable `L`-state can
/// avoid `T` forever (by deadlocking or cycling in `¬T`).
///
/// Stuttering semantics is respected: a state with no outgoing transition
/// stutters forever, which avoids `T` unless the state itself is in `T`.
pub fn check_leads_to(
    cx: &mut SymbolicContext,
    region: NodeId,
    trans: NodeId,
    l: NodeId,
    t: NodeId,
) -> bool {
    // States inside the region from which SOME computation avoids T:
    // greatest fixpoint of X = (region − T) ∩ (deadlock ∨ pre(X)).
    let region_trans = semantics::project(cx, trans, region);
    let not_t = {
        let r = cx.mgr().diff(region, t);
        r
    };
    let dead = cx.deadlocks(not_t, region_trans);
    let mut avoid = not_t;
    loop {
        let into_avoid = cx.trans_to(region_trans, avoid);
        let has_succ_in_avoid = cx.preimage_of_anything(into_avoid);
        let keep = cx.mgr().or(dead, has_succ_in_avoid);
        let next = cx.mgr().and(avoid, keep);
        if next == avoid {
            break;
        }
        avoid = next;
    }
    // L ↝ T fails iff some reachable L-state can avoid T.
    let l_in_region = {
        let a = cx.mgr().and(l, region);
        cx.mgr().diff(a, t) // L-states already in T satisfy immediately
    };
    cx.mgr().disjoint(l_in_region, avoid)
}

/// Check a whole [`crate::spec::Liveness`] within `region` under `trans`.
pub fn check_liveness(
    cx: &mut SymbolicContext,
    region: NodeId,
    trans: NodeId,
    liveness: &crate::spec::Liveness,
) -> Vec<bool> {
    liveness.leads_to.iter().map(|&(l, t)| check_leads_to(cx, region, trans, l, t)).collect()
}

/// Result of checking Definitions 19/20 on a set of per-process transition
/// predicates.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RealizabilityReport {
    /// Per process: does `δ_j` respect the write restriction?
    pub write_ok: Vec<bool>,
    /// Per process: is `δ_j` group-closed under the read restriction?
    pub read_ok: Vec<bool>,
}

impl RealizabilityReport {
    /// All processes pass both restrictions.
    pub fn ok(&self) -> bool {
        self.write_ok.iter().all(|&b| b) && self.read_ok.iter().all(|&b| b)
    }
}

/// Check realizability of candidate per-process transition predicates
/// against the read/write sets of `prog`'s processes.
pub fn verify_realizability(
    prog: &mut DistributedProgram,
    candidate: &[Process],
) -> RealizabilityReport {
    assert_eq!(candidate.len(), prog.processes.len(), "process count mismatch");
    let mut write_ok = Vec::new();
    let mut read_ok = Vec::new();
    for (j, cand) in candidate.iter().enumerate() {
        let unwritable = prog.unwritable(j);
        let ok = realizability::write_ok(&mut prog.cx, &unwritable);
        write_ok.push(prog.cx.mgr().leq(cand.trans, ok));
        let unreadable = prog.unreadable(j);
        read_ok.push(realizability::is_group_closed(&mut prog.cx, &unreadable, cand.trans));
    }
    RealizabilityReport { write_ok, read_ok }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProgramBuilder, Update};
    use ftrepair_bdd::TRUE;

    /// A toy system that is already masking tolerant: x ∈ {0,1,2};
    /// invariant x=0; program: self-loop via 0→0 is... use x toggling 0↔1
    /// inside invariant {0,1}; fault pushes x to 2; recovery 2→0 exists.
    fn tolerant() -> DistributedProgram {
        let mut b = ProgramBuilder::new("toy");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    #[test]
    fn tolerant_program_verifies() {
        let mut p = tolerant();
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let r = verify_masking(&mut p.cx, t, inv, t, inv, faults, &safety);
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn missing_recovery_is_caught() {
        let mut p = tolerant();
        // Remove the recovery action 2→0.
        let x = p.cx.find_var("x").unwrap();
        let g2 = p.cx.assign_eq(x, 2);
        let ng2 = p.cx.mgr().not(g2);
        let t = p.program_trans();
        let crippled = p.cx.mgr().and(t, ng2);
        let (inv, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let r = verify_masking(&mut p.cx, t, inv, crippled, inv, faults, &safety);
        assert!(!r.recovery_guaranteed);
        assert!(!r.ok());
    }

    #[test]
    fn cycles_outside_invariant_are_caught() {
        // Recovery exists but a 2→2 self-loop lets the program dawdle
        // forever: every-computation recovery fails.
        let mut p = tolerant();
        let loop2 = p.cx.transition_cube(&[2], &[2]);
        let t = p.program_trans();
        let with_loop = p.cx.mgr().or(t, loop2);
        let (inv, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let r = verify_masking(&mut p.cx, t, inv, with_loop, inv, faults, &safety);
        assert!(!r.recovery_guaranteed);
    }

    #[test]
    fn reachable_bad_state_is_caught() {
        let mut p = tolerant();
        let x = p.cx.find_var("x").unwrap();
        let bad = p.cx.assign_eq(x, 2); // the fault state itself is now bad
        let safety = Safety { bad_states: bad, bad_trans: FALSE };
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let r = verify_masking(&mut p.cx, t, inv, t, inv, faults, &safety);
        assert!(!r.safe_under_faults);
    }

    #[test]
    fn bad_transition_executable_is_caught() {
        let mut p = tolerant();
        let bt = p.cx.transition_cube(&[2], &[0]); // recovery declared bad
        let safety = Safety { bad_states: FALSE, bad_trans: bt };
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let r = verify_masking(&mut p.cx, t, inv, t, inv, faults, &safety);
        assert!(!r.safe_under_faults);
    }

    #[test]
    fn new_behavior_inside_invariant_is_caught() {
        let mut p = tolerant();
        let extra = p.cx.transition_cube(&[0], &[0]); // 0→0 not in original
        let t = p.program_trans();
        let bigger = p.cx.mgr().or(t, extra);
        let (inv, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let r = verify_masking(&mut p.cx, t, inv, bigger, inv, faults, &safety);
        assert!(!r.no_new_behavior);
    }

    #[test]
    fn grown_invariant_is_caught() {
        let mut p = tolerant();
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let r = verify_masking(&mut p.cx, t, inv, t, TRUE, faults, &safety);
        assert!(!r.invariant_shrunk);
    }

    #[test]
    fn empty_invariant_is_caught() {
        let mut p = tolerant();
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let r = verify_masking(&mut p.cx, t, inv, t, FALSE, faults, &safety);
        assert!(!r.invariant_nonempty);
    }

    #[test]
    fn leads_to_holds_on_progressing_cycle() {
        // 0 → 1 → 2 → 0: from L = {0}, T = {2} is always eventually reached.
        let mut b = ProgramBuilder::new("cycle");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        for v in 0..3u64 {
            let g = b.cx().assign_eq(x, v);
            b.action(g, &[(x, Update::Const((v + 1) % 3))]);
        }
        b.invariant(TRUE);
        let mut p = b.build();
        let t = p.program_trans();
        let x = p.cx.find_var("x").unwrap();
        let l = p.cx.assign_eq(x, 0);
        let tt = p.cx.assign_eq(x, 2);
        assert!(verify_leads_to_wrapper(&mut p, t, l, tt));
    }

    #[test]
    fn leads_to_fails_on_branching_escape() {
        // 0 → 1 and 0 → 0 (self-loop): from L = {0}, T = {1} can be avoided
        // forever by looping.
        let mut b = ProgramBuilder::new("branch");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        b.invariant(TRUE);
        let mut p = b.build();
        let t01 = p.cx.transition_cube(&[0], &[1]);
        let t00 = p.cx.transition_cube(&[0], &[0]);
        let t = p.cx.mgr().or(t01, t00);
        let x = p.cx.find_var("x").unwrap();
        let l = p.cx.assign_eq(x, 0);
        let tt = p.cx.assign_eq(x, 1);
        assert!(!verify_leads_to_wrapper(&mut p, t, l, tt));
    }

    #[test]
    fn leads_to_fails_on_terminal_l_state() {
        // L-state with no transitions stutters forever outside T.
        let mut b = ProgramBuilder::new("stuck");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        b.invariant(TRUE);
        let mut p = b.build();
        let x = p.cx.find_var("x").unwrap();
        let l = p.cx.assign_eq(x, 0);
        let tt = p.cx.assign_eq(x, 1);
        assert!(!verify_leads_to_wrapper(&mut p, FALSE, l, tt));
        // …but trivially holds when L ⊆ T.
        assert!(verify_leads_to_wrapper(&mut p, FALSE, l, l));
    }

    fn verify_leads_to_wrapper(
        p: &mut DistributedProgram,
        trans: ftrepair_bdd::NodeId,
        l: ftrepair_bdd::NodeId,
        t: ftrepair_bdd::NodeId,
    ) -> bool {
        let region = p.cx.state_universe();
        check_leads_to(&mut p.cx, region, trans, l, t)
    }

    #[test]
    fn check_liveness_reports_per_property() {
        let mut b = ProgramBuilder::new("multi");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        b.invariant(TRUE);
        let mut p = b.build();
        let t = p.program_trans();
        let x = p.cx.find_var("x").unwrap();
        let s0 = p.cx.assign_eq(x, 0);
        let s1 = p.cx.assign_eq(x, 1);
        let s2 = p.cx.assign_eq(x, 2);
        let mut lv = crate::spec::Liveness::none();
        lv.add(s0, s1); // holds: 0 → 1
        lv.add(s0, s2); // fails: 2 unreachable from 0
        let region = p.cx.state_universe();
        let results = check_liveness(&mut p.cx, region, t, &lv);
        assert_eq!(results, vec![true, false]);
    }

    #[test]
    fn realizability_report_on_builder_output() {
        // Builder-produced actions read the full state in their guards; a
        // process that reads everything is always group-closed.
        let mut p = tolerant();
        let procs = p.processes.clone();
        let r = verify_realizability(&mut p, &procs);
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn realizability_catches_write_violation() {
        let mut b = ProgramBuilder::new("wv");
        let x = b.var("x", 2);
        let y = b.var("y", 2);
        b.process("p", &[x, y], &[x]);
        b.invariant(TRUE);
        let mut p = b.build();
        // Hand the verifier a δ_j that writes y.
        let t = p.cx.transition_cube(&[0, 0], &[0, 1]);
        let cand = vec![Process {
            name: "p".into(),
            read: p.processes[0].read.clone(),
            write: p.processes[0].write.clone(),
            trans: t,
        }];
        let r = verify_realizability(&mut p, &cand);
        assert_eq!(r.write_ok, vec![false]);
        assert!(!r.ok());
    }

    #[test]
    fn realizability_catches_read_violation() {
        let mut b = ProgramBuilder::new("rv");
        let x = b.var("x", 2);
        let _y = b.var("y", 2);
        b.process("p", &[x], &[x]); // cannot read y
        b.invariant(TRUE);
        let mut p = b.build();
        // δ_j that moves x only when y=0: depends on an unreadable var.
        let t = p.cx.transition_cube(&[0, 0], &[1, 0]);
        let cand = vec![Process {
            name: "p".into(),
            read: p.processes[0].read.clone(),
            write: p.processes[0].write.clone(),
            trans: t,
        }];
        let r = verify_realizability(&mut p, &cand);
        assert_eq!(r.write_ok, vec![true]);
        assert_eq!(r.read_ok, vec![false]);
    }
}

//! Concrete counterexample extraction.
//!
//! When a verification check fails, a boolean is a poor explanation. This
//! module turns symbolic failures into *concrete executions*: a path of
//! states from the invariant to a bad state, a state that cannot recover,
//! or a reachable deadlock — the standard symbolic trace-reconstruction
//! technique (forward BFS layers, then a backward walk picking one concrete
//! state per layer).

use crate::spec::Safety;
use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_symbolic::SymbolicContext;

/// A concrete execution: a sequence of full variable valuations.
pub type Trace = Vec<Vec<u64>>;

/// A shortest path (as concrete states) from some state in `from` to some
/// state in `target`, following `trans`; `None` if unreachable.
pub fn path_to(
    cx: &mut SymbolicContext,
    from: NodeId,
    target: NodeId,
    trans: NodeId,
) -> Option<Trace> {
    let universe = cx.state_universe();
    let from = cx.mgr().and(from, universe);
    let target = cx.mgr().and(target, universe);

    // Forward layers until the target is hit.
    let mut layers = vec![from];
    let mut covered = from;
    loop {
        let hit = cx.mgr().and(covered, target);
        if hit != FALSE {
            break;
        }
        let frontier = *layers.last().unwrap();
        let next = {
            let img = cx.image(frontier, trans);
            cx.mgr().diff(img, covered)
        };
        if next == FALSE {
            return None;
        }
        layers.push(next);
        covered = cx.mgr().or(covered, next);
    }

    // Find the first layer that intersects the target.
    let k = layers
        .iter()
        .position(|&l| {
            let hit = cx.mgr().and(l, target);
            hit != FALSE
        })
        .expect("some layer hits the target");

    // Backward walk: pick one concrete state per layer.
    let endpoint = {
        let hit = cx.mgr().and(layers[k], target);
        pick_state(cx, hit)
    };
    let mut trace = vec![endpoint];
    for i in (0..k).rev() {
        let current = trace.last().unwrap().clone();
        let current_cube = cx.state_cube(&current);
        let pred = cx.preimage(current_cube, trans);
        let in_layer = cx.mgr().and(pred, layers[i]);
        debug_assert_ne!(in_layer, FALSE, "layered BFS must be walkable");
        trace.push(pick_state(cx, in_layer));
    }
    trace.reverse();
    Some(trace)
}

/// One concrete state of a non-empty state predicate.
fn pick_state(cx: &mut SymbolicContext, states: NodeId) -> Vec<u64> {
    debug_assert_ne!(states, FALSE);
    cx.enumerate_states(states, 1).pop().expect("non-empty predicate")
}

/// A concrete execution from the invariant to a safety violation under
/// `trans ∪ faults` — `None` when the program is safe. The last state is a
/// bad state, or the last step executes a bad transition (in which case the
/// trace ends with that step's target).
pub fn safety_counterexample(
    cx: &mut SymbolicContext,
    invariant: NodeId,
    trans: NodeId,
    faults: NodeId,
    safety: &Safety,
) -> Option<Trace> {
    let combined = cx.mgr().or(trans, faults);
    // Bad states, or sources of an executable bad transition (extended by
    // one step below).
    if let Some(t) = path_to(cx, invariant, safety.bad_states, combined) {
        return Some(t);
    }
    let bad_steps = cx.mgr().and(combined, safety.bad_trans);
    if bad_steps == FALSE {
        return None;
    }
    let bad_sources = cx.preimage_of_anything(bad_steps);
    let mut trace = path_to(cx, invariant, bad_sources, combined)?;
    // Append one victim of the bad step itself.
    let last = trace.last().unwrap().clone();
    let last_cube = cx.state_cube(&last);
    let from_here = cx.mgr().and(bad_steps, last_cube);
    let succ = cx.image(ftrepair_bdd::TRUE, from_here);
    trace.push(pick_state(cx, succ));
    Some(trace)
}

/// A concrete fault-span state from which recovery is impossible: reachable
/// from the invariant under `trans ∪ faults`, outside the invariant, and
/// either deadlocked or inside a program-only cycle avoiding the invariant.
pub fn stuck_witness(
    cx: &mut SymbolicContext,
    invariant: NodeId,
    trans: NodeId,
    faults: NodeId,
) -> Option<Trace> {
    let combined = cx.mgr().or(trans, faults);
    let span = cx.forward_reachable(invariant, combined);
    let outside = cx.mgr().diff(span, invariant);
    // Deadlocks.
    let dead = cx.deadlocks(outside, trans);
    if dead != FALSE {
        return path_to(cx, invariant, dead, combined);
    }
    // Livelock core: greatest fixpoint of "has a successor staying outside".
    let mut avoid = outside;
    loop {
        let inside_avoid = crate::semantics::project(cx, trans, avoid);
        let alive = cx.preimage_of_anything(inside_avoid);
        let next = cx.mgr().and(avoid, alive);
        if next == avoid {
            break;
        }
        avoid = next;
    }
    if avoid == FALSE {
        None
    } else {
        path_to(cx, invariant, avoid, combined)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{DistributedProgram, ProgramBuilder, Update};

    fn line_program() -> DistributedProgram {
        // x: 0 →(prog) 1 →(fault) 2 →(prog) 3(bad).
        let mut b = ProgramBuilder::new("line");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(3))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let f = b.cx().assign_eq(x, 1);
        b.fault_action(f, &[(x, Update::Const(2))]);
        let bad = b.cx().assign_eq(x, 3);
        b.bad_states(bad);
        b.build()
    }

    fn is_step(p: &mut DistributedProgram, from: &[u64], to: &[u64], rel: NodeId) -> bool {
        let t = p.cx.transition_cube(from, to);
        p.cx.mgr().leq(t, rel)
    }

    #[test]
    fn path_to_finds_shortest_route() {
        let mut p = line_program();
        let t = p.program_trans();
        let combined = p.cx.mgr().or(t, p.faults);
        let inv = p.invariant;
        let bad = p.safety.bad_states;
        let trace = path_to(&mut p.cx, inv, bad, combined).expect("path exists");
        // Shortest: 1 →f 2 →p 3.
        assert_eq!(trace, vec![vec![1], vec![2], vec![3]]);
        for w in trace.windows(2) {
            assert!(is_step(&mut p, &w[0], &w[1], combined));
        }
    }

    #[test]
    fn path_to_none_when_unreachable() {
        let mut p = line_program();
        let t = p.program_trans(); // program only: 1 cannot reach 2
        let inv = p.invariant;
        let bad = p.safety.bad_states;
        assert!(path_to(&mut p.cx, inv, bad, t).is_none());
    }

    #[test]
    fn path_to_zero_length_when_already_there() {
        let mut p = line_program();
        let t = p.program_trans();
        let inv = p.invariant;
        let trace = path_to(&mut p.cx, inv, inv, t).unwrap();
        assert_eq!(trace.len(), 1);
    }

    #[test]
    fn safety_counterexample_via_bad_state() {
        let mut p = line_program();
        let t = p.program_trans();
        let (inv, faults, safety) = (p.invariant, p.faults, p.safety);
        let trace = safety_counterexample(&mut p.cx, inv, t, faults, &safety).expect("unsafe");
        assert_eq!(trace.last().unwrap(), &vec![3]);
    }

    #[test]
    fn safety_counterexample_via_bad_transition() {
        // Bad transition 1→0 (no bad states): the trace must end just after
        // executing it.
        let mut b = ProgramBuilder::new("bt");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let bt = b.cx().transition_cube(&[1], &[0]);
        b.bad_trans(bt);
        let mut p = b.build();
        let t = p.program_trans();
        let (inv, faults, safety) = (p.invariant, p.faults, p.safety);
        let trace = safety_counterexample(&mut p.cx, inv, t, faults, &safety).expect("unsafe");
        assert_eq!(trace, vec![vec![0], vec![1], vec![0]]);
    }

    #[test]
    fn safe_program_has_no_counterexample() {
        let mut b = ProgramBuilder::new("safe");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        b.invariant(ftrepair_bdd::TRUE);
        let mut p = b.build();
        let t = p.program_trans();
        let (inv, faults, safety) = (p.invariant, p.faults, p.safety);
        assert!(safety_counterexample(&mut p.cx, inv, t, faults, &safety).is_none());
    }

    #[test]
    fn stuck_witness_finds_deadlock() {
        // Fault pushes to 2; no program transition out of 2.
        let mut b = ProgramBuilder::new("stuck");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let f = b.cx().assign_eq(x, 1);
        b.fault_action(f, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let trace = stuck_witness(&mut p.cx, inv, t, faults).expect("stuck state exists");
        assert_eq!(trace.last().unwrap(), &vec![2]);
    }

    #[test]
    fn stuck_witness_finds_livelock() {
        // 2 ↔ 3 cycle outside the invariant: no deadlock, but a livelock.
        let mut b = ProgramBuilder::new("livelock");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(3))]);
        let g3 = b.cx().assign_eq(x, 3);
        b.action(g3, &[(x, Update::Const(2))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let f = b.cx().assign_eq(x, 1);
        b.fault_action(f, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        let trace = stuck_witness(&mut p.cx, inv, t, faults).expect("livelock exists");
        let last = trace.last().unwrap()[0];
        assert!(last == 2 || last == 3, "trace must end in the cycle: {trace:?}");
    }

    #[test]
    fn no_witness_for_recovering_program() {
        let mut b = ProgramBuilder::new("fine");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let f = b.cx().assign_eq(x, 1);
        b.fault_action(f, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let t = p.program_trans();
        let (inv, faults) = (p.invariant, p.faults);
        assert!(stuck_witness(&mut p.cx, inv, t, faults).is_none());
    }
}

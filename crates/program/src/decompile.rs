//! Decompilation: from a process's (group-closed) transition predicate back
//! to human-readable guarded commands.
//!
//! This is the `realizes` arrow of the paper's Figure 1: the repaired model
//! must become a program again. For a predicate that satisfies process
//! `j`'s read/write restrictions, every transition is determined by the
//! values of the readable variables (guard) and the written variables'
//! next values (update) — so the relation can be *exactly* re-expressed as
//! a finite set of guarded commands over exactly the variables the process
//! may read and write.

use crate::model::{DistributedProgram, Process};
use ftrepair_bdd::NodeId;
use ftrepair_symbolic::{SymbolicContext, VarId};

/// One reconstructed guarded command.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GuardedCommand {
    /// Guard: conjunction of per-variable value constraints over readable
    /// variables. A variable absent from the list is unconstrained.
    pub guard: Vec<(VarId, Vec<u64>)>,
    /// Updates: per written variable, the set of values it may take
    /// (singleton = deterministic assignment).
    pub updates: Vec<(VarId, Vec<u64>)>,
}

impl GuardedCommand {
    /// Render as e.g. `(x = 0) & (y in {1, 2}) -> z := 3`.
    pub fn render(&self, cx: &SymbolicContext) -> String {
        let fmt_constraint = |v: VarId, vals: &[u64]| {
            let name = &cx.info(v).name;
            if vals.len() == 1 {
                format!("({name} = {})", vals[0])
            } else {
                let list: Vec<String> = vals.iter().map(u64::to_string).collect();
                format!("({name} in {{{}}})", list.join(", "))
            }
        };
        let guard = if self.guard.is_empty() {
            "true".to_string()
        } else {
            self.guard
                .iter()
                .map(|(v, vals)| fmt_constraint(*v, vals))
                .collect::<Vec<_>>()
                .join(" & ")
        };
        let updates = self
            .updates
            .iter()
            .map(|(v, vals)| {
                let name = &cx.info(*v).name;
                if vals.len() == 1 {
                    format!("{name} := {}", vals[0])
                } else {
                    let list: Vec<String> = vals.iter().map(u64::to_string).collect();
                    format!("{name} := {{{}}}", list.join(", "))
                }
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!("{guard} -> {updates};")
    }
}

/// Reconstruct guarded commands for one process of `prog` from an arbitrary
/// transition predicate `delta` that satisfies the process's write
/// restriction (asserted). Read-restriction violations are tolerated — the
/// output then over-approximates per readable context — but group-closed
/// inputs (anything Step 2 produces) decompile exactly.
///
/// Self-loops (stutters) are skipped: Definition 18 provides them
/// implicitly.
pub fn decompile_process(
    prog: &mut DistributedProgram,
    j: usize,
    delta: NodeId,
) -> Vec<GuardedCommand> {
    let read = prog.processes[j].read.clone();
    let write = prog.processes[j].write.clone();
    decompile_for(&mut prog.cx, &read, &write, delta)
}

/// [`decompile_process`] without a whole program: explicit read/write sets.
pub fn decompile_for(
    cx: &mut SymbolicContext,
    read: &[VarId],
    write: &[VarId],
    delta: NodeId,
) -> Vec<GuardedCommand> {
    // Remove stutters; they are implicit.
    let delta = {
        let vars = cx.var_ids();
        let id = cx.unchanged_all(&vars);
        cx.mgr().diff(delta, id)
    };

    let unwritable: Vec<VarId> = cx.var_ids().into_iter().filter(|v| !write.contains(v)).collect();
    debug_assert!({
        let frame = cx.unchanged_all(&unwritable);
        cx.mgr().leq(delta, frame)
    });

    // Project away: both copies of unreadable variables, and the next
    // copies of read-only variables (determined by the frame). What is
    // left mentions exactly cur(read) and next(write).
    let unreadable: Vec<VarId> = cx.var_ids().into_iter().filter(|v| !read.contains(v)).collect();
    let unread_bits = cx.both_varset(&unreadable);
    let mut rel = cx.mgr().exists(delta, unread_bits);
    let read_only: Vec<VarId> = read.iter().copied().filter(|v| !write.contains(v)).collect();
    let ro_next = cx.next_varset(&read_only);
    rel = cx.mgr().exists(rel, ro_next);

    // Constrain to live encodings so value reconstruction is exact.
    for &v in read {
        let d = cx.domain_cur(v);
        rel = cx.mgr().and(rel, d);
    }
    for &v in write {
        let d = cx.domain_next(v);
        rel = cx.mgr().and(rel, d);
    }

    // Walk the satisfying paths and regroup bit literals into per-variable
    // value sets.
    let paths: Vec<Vec<(u32, bool)>> = cx.mgr_ref().cubes(rel).collect();
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let mut guard = Vec::new();
        let mut updates = Vec::new();
        for &v in read {
            if let Some(vals) = values_of(cx, v, &path, false) {
                guard.push((v, vals));
            }
        }
        for &v in write {
            let vals =
                values_of(cx, v, &path, true).unwrap_or_else(|| (0..cx.info(v).size).collect());
            updates.push((v, vals));
        }
        out.push(GuardedCommand { guard, updates });
    }
    out.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
    out
}

/// The value set of variable `v` consistent with the bit literals fixed on
/// `path`; `None` when no bit of `v` is constrained (and the constraint
/// would be the full domain).
fn values_of(cx: &SymbolicContext, v: VarId, path: &[(u32, bool)], next: bool) -> Option<Vec<u64>> {
    let bits = cx.info(v).bits;
    let size = cx.info(v).size;
    let mut fixed: Vec<(u32, bool)> = Vec::new();
    for k in 0..bits {
        let level = if next { cx.next_level(v, k) } else { cx.cur_level(v, k) };
        if let Some(&(_, val)) = path.iter().find(|(l, _)| *l == level) {
            fixed.push((k, val));
        }
    }
    if fixed.is_empty() {
        return None;
    }
    let vals: Vec<u64> = (0..size)
        .filter(|val| fixed.iter().all(|&(k, bit)| ((val >> k) & 1 == 1) == bit))
        .collect();
    if vals.len() as u64 == size {
        None
    } else {
        Some(vals)
    }
}

/// Render a whole repaired process as text.
pub fn render_process(prog: &mut DistributedProgram, p: &Process, j: usize) -> String {
    use std::fmt::Write;
    let commands = decompile_process(prog, j, p.trans);
    let mut out = String::new();
    let reads: Vec<&str> = p.read.iter().map(|&v| prog.cx.info(v).name.as_str()).collect();
    let writes: Vec<&str> = p.write.iter().map(|&v| prog.cx.info(v).name.as_str()).collect();
    writeln!(out, "process {}", p.name).unwrap();
    writeln!(out, "  read {};", reads.join(", ")).unwrap();
    writeln!(out, "  write {};", writes.join(", ")).unwrap();
    writeln!(out, "begin").unwrap();
    for c in &commands {
        writeln!(out, "  {}", c.render(&prog.cx)).unwrap();
    }
    writeln!(out, "end").unwrap();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{ProgramBuilder, Update};
    use ftrepair_bdd::TRUE;

    fn toy() -> DistributedProgram {
        let mut b = ProgramBuilder::new("toy");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("p", &[x, y], &[x]);
        let g = b.cx().both_eq(x, y, 0);
        b.action(g, &[(x, Update::Const(1))]);
        let g2 = b.cx().assign_eq(x, 1);
        b.action(g2, &[(x, Update::Choice(vec![0, 2]))]);
        b.invariant(TRUE);
        b.build()
    }

    #[test]
    fn decompiles_builder_actions() {
        let mut p = toy();
        let t = p.processes[0].trans;
        let cmds = decompile_process(&mut p, 0, t);
        let rendered: Vec<String> = cmds.iter().map(|c| c.render(&p.cx)).collect();
        let all = rendered.join("\n");
        assert!(all.contains("x := 1"), "{all}");
        assert!(all.contains("(x = 1)"), "{all}");
        // The nondeterministic choice shows as a set (possibly split over
        // cubes, so accept either form).
        assert!(
            all.contains("{0, 2}") || (all.contains("x := 0") && all.contains("x := 2")),
            "{all}"
        );
    }

    /// Round trip: decompiled commands, re-encoded, give back the relation.
    #[test]
    fn decompile_roundtrip_is_exact() {
        let mut p = toy();
        let t = p.processes[0].trans;
        let cmds = decompile_process(&mut p, 0, t);
        let x = p.cx.find_var("x").unwrap();
        let y = p.cx.find_var("y").unwrap();
        let mut rebuilt = ftrepair_bdd::FALSE;
        for c in &cmds {
            let mut g = TRUE;
            for (v, vals) in &c.guard {
                let mut any = ftrepair_bdd::FALSE;
                for &val in vals {
                    let e = p.cx.assign_eq(*v, val);
                    any = p.cx.mgr().or(any, e);
                }
                g = p.cx.mgr().and(g, any);
            }
            for (v, vals) in &c.updates {
                let mut any = ftrepair_bdd::FALSE;
                for &val in vals {
                    let e = p.cx.assign_const(*v, val);
                    any = p.cx.mgr().or(any, e);
                }
                g = p.cx.mgr().and(g, any);
            }
            // Frame everything unwritten.
            let frame = p.cx.unchanged_all(&[y]);
            g = p.cx.mgr().and(g, frame);
            let universe = p.cx.transition_universe();
            g = p.cx.mgr().and(g, universe);
            rebuilt = p.cx.mgr().or(rebuilt, g);
        }
        let _ = x;
        assert_eq!(rebuilt, t);
    }

    #[test]
    fn repaired_recovery_decompiles_readably() {
        // Repair the partial-view system and decompile the result: the
        // synthesized recovery must appear as a guarded command over
        // readable variables only.
        let mut b = ProgramBuilder::new("pv");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("a", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        b.process("b", &[y], &[y]);
        let inv = {
            let a0 = b.cx().assign_eq(x, 0);
            let a1 = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a0, a1)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let out = ftrepair_core_stub_lazy(&mut p);
        let text = render_process(&mut p, &out[0], 0);
        assert!(text.contains("process a"), "{text}");
        assert!(text.contains("(x = 2) ->"), "recovery missing: {text}");
        // No mention of y in process a's commands.
        assert!(!text.replace("read x;", "").contains('y'), "{text}");
    }

    /// Tiny stand-in to avoid a dev-dependency cycle: Step-1-like recovery
    /// (all transitions from x=2 back to the invariant) filtered by process
    /// a's restrictions via the group operator.
    fn ftrepair_core_stub_lazy(p: &mut DistributedProgram) -> Vec<Process> {
        let x = p.cx.find_var("x").unwrap();
        let orig = p.processes[0].trans;
        let s2 = p.cx.assign_eq(x, 2);
        let x0 = p.cx.assign_const(x, 0);
        let x1 = p.cx.assign_const(x, 1);
        let tgt = p.cx.mgr().or(x0, x1);
        let mut rec = p.cx.mgr().and(s2, tgt);
        let y = p.cx.find_var("y").unwrap();
        let frame = p.cx.unchanged(y);
        rec = p.cx.mgr().and(rec, frame);
        let trans = p.cx.mgr().or(orig, rec);
        let unread = p.unreadable(0);
        let closed = crate::realizability::group(&mut p.cx, &unread, trans);
        vec![Process {
            name: p.processes[0].name.clone(),
            read: p.processes[0].read.clone(),
            write: p.processes[0].write.clone(),
            trans: closed,
        }]
    }

    #[test]
    fn stutters_are_skipped() {
        let mut b = ProgramBuilder::new("id");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        b.invariant(TRUE);
        let mut p = b.build();
        let vars = p.cx.var_ids();
        let id = p.cx.unchanged_all(&vars);
        let cmds = decompile_process(&mut p, 0, id);
        assert!(cmds.is_empty(), "stutters must not decompile: {cmds:?}");
    }

    #[test]
    fn unconstrained_guard_renders_true() {
        let mut b = ProgramBuilder::new("t");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        b.invariant(TRUE);
        let mut p = b.build();
        // x' = ¬x, for every x: guard is the full domain → `true`.
        let x0 = p.cx.assign_eq(x, 0);
        let x1n = p.cx.assign_const(x, 1);
        let t1 = p.cx.mgr().and(x0, x1n);
        let x1 = p.cx.assign_eq(x, 1);
        let x0n = p.cx.assign_const(x, 0);
        let t2 = p.cx.mgr().and(x1, x0n);
        let t = p.cx.mgr().or(t1, t2);
        let cmds = decompile_process(&mut p, 0, t);
        // Two commands (different updates), each with a guard on x.
        assert_eq!(cmds.len(), 2, "{cmds:?}");
    }
}

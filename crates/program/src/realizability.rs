//! Realizability constraints for distributed programs (Section III-B):
//! write restrictions, read-restriction *groups*, and the realizability
//! checks of Definitions 19/20.

use crate::model::DistributedProgram;
use ftrepair_bdd::NodeId;
use ftrepair_symbolic::{SymbolicContext, VarId};

/// The transitions a process with unwritable set `NW_j` may have at all:
/// those leaving every variable in `NW_j` unchanged. (`write(W_j)` in the
/// paper is the complement of this predicate.)
pub fn write_ok(cx: &mut SymbolicContext, unwritable: &[VarId]) -> NodeId {
    cx.unchanged_all(unwritable)
}

/// Close a transition predicate under the read restriction of a process
/// whose unreadable set is `unreadable` — the paper's
/// `group_j(δ) = (∃ U, U'. δ) ∧ ⋀_{v∈U} (v' = v)`.
///
/// For transitions that already leave `unreadable` unchanged (guaranteed
/// after write filtering, since `W ⊆ R` makes unreadables unwritable), the
/// result is a superset of `δ`, and `δ` is *group-closed* iff the result
/// equals `δ`.
pub fn group(cx: &mut SymbolicContext, unreadable: &[VarId], delta: NodeId) -> NodeId {
    abstract_vars(cx, unreadable, delta)
}

/// The paper's `ExpandGroup(v, G)`: enlarge a group by also *not reading*
/// variable `v` — the same quantify-and-tie construction applied to one
/// readable variable.
pub fn expand_group(cx: &mut SymbolicContext, v: VarId, g: NodeId) -> NodeId {
    abstract_vars(cx, &[v], g)
}

/// `(∃ vars, vars'. δ) ∧ ⋀_{v∈vars}(v' = v)` — the common core of
/// [`group`] and [`expand_group`]. The abstracted variables are
/// re-constrained to their domains so group members range over *states*,
/// not over dead encodings of non-power-of-two domains.
fn abstract_vars(cx: &mut SymbolicContext, vars: &[VarId], delta: NodeId) -> NodeId {
    if vars.is_empty() {
        return delta;
    }
    let both = cx.both_varset(vars);
    let projected = cx.mgr().exists(delta, both);
    let tie = cx.unchanged_all(vars);
    let mut out = cx.mgr().and(projected, tie);
    for &v in vars {
        let dom = cx.domain_cur(v);
        out = cx.mgr().and(out, dom);
    }
    out
}

/// Whether `delta` is group-closed for a process with the given unreadable
/// set (the read-restriction half of Definition 19). Assumes `delta` leaves
/// unreadable variables unchanged (check write restriction first).
pub fn is_group_closed(cx: &mut SymbolicContext, unreadable: &[VarId], delta: NodeId) -> bool {
    group(cx, unreadable, delta) == delta
}

/// Whether `delta` is realizable by process `j` of `prog` (Definition 19):
/// write restriction and read restriction both hold.
pub fn realizable_by_process(prog: &mut DistributedProgram, j: usize, delta: NodeId) -> bool {
    let unwritable = prog.unwritable(j);
    let ok = write_ok(&mut prog.cx, &unwritable);
    if !prog.cx.mgr().leq(delta, ok) {
        return false;
    }
    let unreadable = prog.unreadable(j);
    is_group_closed(&mut prog.cx, &unreadable, delta)
}

/// Whether the program as currently built is realizable (Definition 20):
/// every process's `δ_j` is realizable by that process.
pub fn program_realizable(prog: &mut DistributedProgram) -> bool {
    (0..prog.processes.len()).all(|j| {
        let d = prog.processes[j].trans;
        realizable_by_process(prog, j, d)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_symbolic::SymbolicContext;

    /// The running example of Section III-B / Figures 3–5:
    /// three boolean variables; `p_j` reads {v0,v1} writes {v1};
    /// `p_k` reads {v0,v2} writes {v2}.
    struct Fig {
        cx: SymbolicContext,
        v: [VarId; 3],
    }

    fn fig() -> Fig {
        let mut cx = SymbolicContext::new();
        let v0 = cx.add_var("v0", 2);
        let v1 = cx.add_var("v1", 2);
        let v2 = cx.add_var("v2", 2);
        Fig { cx, v: [v0, v1, v2] }
    }

    impl Fig {
        fn t(&mut self, from: [u64; 3], to: [u64; 3]) -> NodeId {
            self.cx.transition_cube(&from, &to)
        }
        fn unreadable_j(&self) -> Vec<VarId> {
            vec![self.v[2]]
        }
        fn unwritable_j(&self) -> Vec<VarId> {
            vec![self.v[0], self.v[2]]
        }
        fn unreadable_k(&self) -> Vec<VarId> {
            vec![self.v[1]]
        }
        fn unwritable_k(&self) -> Vec<VarId> {
            vec![self.v[0], self.v[1]]
        }
    }

    #[test]
    fn figure3_write_violation_for_both_processes() {
        // {(000, 011)} changes v1 and v2 at once: neither process can do it.
        let mut f = fig();
        let t = f.t([0, 0, 0], [0, 1, 1]);
        let uw_j = f.unwritable_j();
        let ok_j = write_ok(&mut f.cx, &uw_j);
        assert!(!f.cx.mgr().leq(t, ok_j), "p_j cannot write v2");
        let uw_k = f.unwritable_k();
        let ok_k = write_ok(&mut f.cx, &uw_k);
        assert!(!f.cx.mgr().leq(t, ok_k), "p_k cannot write v1");
    }

    #[test]
    fn figure4_read_violation_for_pj() {
        // {(000, 010)} alone: write-ok for p_j but its group also contains
        // (001, 011), so it is not group-closed.
        let mut f = fig();
        let t = f.t([0, 0, 0], [0, 1, 0]);
        let uw = f.unwritable_j();
        let ok = write_ok(&mut f.cx, &uw);
        assert!(f.cx.mgr().leq(t, ok), "only v1 changes");
        let ur = f.unreadable_j();
        assert!(!is_group_closed(&mut f.cx, &ur, t));
        // The group is exactly the two-transition set of Figure 5.
        let g = group(&mut f.cx, &ur, t);
        let sibling = f.t([0, 0, 1], [0, 1, 1]);
        let expected = f.cx.mgr().or(t, sibling);
        assert_eq!(g, expected);
    }

    #[test]
    fn figure5_group_is_realizable() {
        // {(000,010), (001,011)} is group-closed and write-ok for p_j.
        let mut f = fig();
        let t1 = f.t([0, 0, 0], [0, 1, 0]);
        let t2 = f.t([0, 0, 1], [0, 1, 1]);
        let both = f.cx.mgr().or(t1, t2);
        let uw = f.unwritable_j();
        let ok = write_ok(&mut f.cx, &uw);
        assert!(f.cx.mgr().leq(both, ok));
        let ur = f.unreadable_j();
        assert!(is_group_closed(&mut f.cx, &ur, both));
    }

    #[test]
    fn group_is_extensive_and_idempotent() {
        let mut f = fig();
        let t = f.t([1, 0, 0], [1, 1, 0]);
        let ur = f.unreadable_j();
        let g = group(&mut f.cx, &ur, t);
        assert!(f.cx.mgr().leq(t, g), "group contains the transition");
        let gg = group(&mut f.cx, &ur, g);
        assert_eq!(gg, g, "group is a closure operator");
    }

    #[test]
    fn group_with_empty_unreadable_is_identity() {
        let mut f = fig();
        let t = f.t([0, 0, 0], [0, 1, 0]);
        assert_eq!(group(&mut f.cx, &[], t), t);
        assert!(is_group_closed(&mut f.cx, &[], t));
    }

    #[test]
    fn group_distributes_over_union() {
        // group(δ1 ∪ δ2) = group(δ1) ∪ group(δ2): it's defined per element.
        let mut f = fig();
        let t1 = f.t([0, 0, 0], [0, 1, 0]);
        let t2 = f.t([1, 1, 0], [1, 0, 0]);
        let ur = f.unreadable_j();
        let g1 = group(&mut f.cx, &ur, t1);
        let g2 = group(&mut f.cx, &ur, t2);
        let u = f.cx.mgr().or(t1, t2);
        let gu = group(&mut f.cx, &ur, u);
        let expected = f.cx.mgr().or(g1, g2);
        assert_eq!(gu, expected);
    }

    #[test]
    fn expand_group_absorbs_sibling_guard_values() {
        // p_j's group 'if v0=0 ∧ v1=0 then v1:=1' expanded over v0 becomes
        // 'if v1=0 then v1:=1' — covering both v0 values.
        let mut f = fig();
        let t = f.t([0, 0, 0], [0, 1, 0]);
        let ur = f.unreadable_j();
        let g = group(&mut f.cx, &ur, t);
        let bigger = expand_group(&mut f.cx, f.v[0], g);
        assert!(f.cx.mgr().leq(g, bigger));
        assert_eq!(f.cx.count_transitions(bigger), 4.0); // v0, v2 free
                                                         // The sibling group with v0=1 is inside the expansion.
        let sib = f.t([1, 0, 0], [1, 1, 0]);
        let sib_g = group(&mut f.cx, &ur, sib);
        assert!(f.cx.mgr().leq(sib_g, bigger));
    }

    #[test]
    fn expand_group_ties_the_expanded_variable() {
        // Expansion must not allow the expanded variable to change.
        let mut f = fig();
        let t = f.t([0, 0, 0], [0, 1, 0]);
        let bigger = expand_group(&mut f.cx, f.v[0], t);
        let v0 = f.v[0];
        let tie = f.cx.unchanged(v0);
        assert!(f.cx.mgr().leq(bigger, tie));
    }

    #[test]
    fn pk_group_quantifies_v1() {
        let mut f = fig();
        let t = f.t([0, 0, 0], [0, 0, 1]); // p_k sets v2 := 1
        let ur = f.unreadable_k();
        let g = group(&mut f.cx, &ur, t);
        let sibling = f.t([0, 1, 0], [0, 1, 1]);
        let expected = f.cx.mgr().or(t, sibling);
        assert_eq!(g, expected);
    }

    #[test]
    fn self_loops_are_group_friendly() {
        let mut f = fig();
        let loop_t = f.t([0, 0, 0], [0, 0, 0]);
        let ur = f.unreadable_j();
        let g = group(&mut f.cx, &ur, loop_t);
        // Group of a self-loop: self-loops on both v2 values.
        let sibling = f.t([0, 0, 1], [0, 0, 1]);
        let expected = f.cx.mgr().or(loop_t, sibling);
        assert_eq!(g, expected);
    }
}

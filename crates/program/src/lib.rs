//! # ftrepair-program — the distributed-program model
//!
//! This crate is the paper's Section II and III in code: finite-state
//! **distributed programs** given as a set of finite-domain variables and a
//! set of **processes**, where each process has
//!
//! * a read set `R_j` and a write set `W_j ⊆ R_j` (Definition 17),
//! * a transition predicate `δ_j`, built from *guarded actions* with
//!   automatic frame conditions (an action changes the variables it names
//!   and leaves every other variable unchanged — interleaving semantics,
//!   Definition 18).
//!
//! On top of the model it implements:
//!
//! * **specifications** (Definition 7): safety as a pair of *bad states* and
//!   *bad transitions*; the liveness side of masking tolerance (recovery) is
//!   handled structurally by the repair algorithms,
//! * **faults** (Definition 12) as just another transition predicate,
//! * the **realizability constraints** of Section III-B: write restrictions,
//!   read-restriction *groups* (`group_j`), and the realizability checks of
//!   Definitions 19/20,
//! * an independent **verifier** for masking fault-tolerance
//!   (Definition 15) used by tests and by the experiment harness to
//!   double-check every repaired program.
//!
//! The three-transition examples of the paper's Figures 3–5 appear verbatim
//! as unit tests in [`realizability`](crate::realizability).

pub mod decompile;
pub mod model;
pub mod realizability;
pub mod semantics;
pub mod spec;
pub mod verify;
pub mod viz;
pub mod witness;

pub use decompile::{decompile_process, GuardedCommand};
pub use model::{DistributedProgram, Process, ProgramBuilder, Update};
pub use spec::{Liveness, Safety};
pub use verify::{MaskingReport, RealizabilityReport};

pub use ftrepair_bdd::{NodeId, FALSE, TRUE};
pub use ftrepair_symbolic::{SymbolicContext, VarId};

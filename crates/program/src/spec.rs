//! Safety specifications (Definition 7) and derived transition predicates.

use ftrepair_bdd::NodeId;
use ftrepair_symbolic::SymbolicContext;

/// A safety specification `Sf = (Sf_bs, Sf_bt)`: a computation refines it iff
/// it never visits a bad state and never executes a bad transition.
#[derive(Clone, Copy, Debug)]
pub struct Safety {
    /// `Sf_bs` — states that must never occur (over current bits).
    pub bad_states: NodeId,
    /// `Sf_bt` — transitions that must never execute (over both copies).
    pub bad_trans: NodeId,
}

impl Safety {
    /// The trivially-satisfiable specification.
    pub fn none() -> Self {
        Safety { bad_states: ftrepair_bdd::FALSE, bad_trans: ftrepair_bdd::FALSE }
    }

    /// All transitions whose *execution* violates safety: bad transitions,
    /// transitions entering a bad state, and transitions leaving a bad state
    /// (a computation standing in a bad state has already violated safety,
    /// so such transitions are only relevant for completeness of `mt`).
    pub fn violating_trans(&self, cx: &mut SymbolicContext) -> NodeId {
        let into_bad = cx.as_next(self.bad_states);
        let m = cx.mgr();
        m.or(self.bad_trans, into_bad)
    }

    /// Union with another safety specification.
    pub fn union(&self, cx: &mut SymbolicContext, other: &Safety) -> Safety {
        let bad_states = cx.mgr().or(self.bad_states, other.bad_states);
        let bad_trans = cx.mgr().or(self.bad_trans, other.bad_trans);
        Safety { bad_states, bad_trans }
    }

    /// Extend the bad-transition set (used by the lazy-repair outer loop to
    /// outlaw transitions into deadlock states before re-running).
    pub fn with_bad_trans(&self, cx: &mut SymbolicContext, extra: NodeId) -> Safety {
        Safety { bad_states: self.bad_states, bad_trans: cx.mgr().or(self.bad_trans, extra) }
    }
}

/// A liveness specification (Definition 8): a conjunction of leads-to
/// properties `L ↝ T` — every computation that visits `L` eventually
/// visits `T`.
///
/// The repair algorithms guarantee *recovery* liveness (fault-span ↝
/// invariant) by construction; leads-to properties inside the invariant are
/// a property of the original program that
/// [`crate::verify::check_leads_to`] can check on inputs and re-check on
/// repair outputs.
#[derive(Clone, Debug, Default)]
pub struct Liveness {
    /// The `(L, T)` pairs.
    pub leads_to: Vec<(NodeId, NodeId)>,
}

impl Liveness {
    /// No liveness obligations.
    pub fn none() -> Self {
        Liveness { leads_to: Vec::new() }
    }

    /// Add `L ↝ T`.
    pub fn add(&mut self, l: NodeId, t: NodeId) {
        self.leads_to.push((l, t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_bdd::{FALSE, TRUE};
    use ftrepair_symbolic::SymbolicContext;

    #[test]
    fn none_is_trivial() {
        let s = Safety::none();
        assert_eq!(s.bad_states, FALSE);
        assert_eq!(s.bad_trans, FALSE);
    }

    #[test]
    fn violating_trans_includes_entries_into_bad_states() {
        let mut cx = SymbolicContext::new();
        let x = cx.add_var("x", 2);
        let bad = cx.assign_eq(x, 1);
        let spec = Safety { bad_states: bad, bad_trans: FALSE };
        let viol = spec.violating_trans(&mut cx);
        let into_bad = cx.transition_cube(&[0], &[1]);
        assert!(cx.mgr().leq(into_bad, viol));
        let fine = cx.transition_cube(&[1], &[0]);
        assert!(cx.mgr().disjoint(fine, viol));
    }

    #[test]
    fn violating_trans_includes_bad_trans() {
        let mut cx = SymbolicContext::new();
        let _x = cx.add_var("x", 2);
        let bt = cx.transition_cube(&[0], &[0]);
        let spec = Safety { bad_states: FALSE, bad_trans: bt };
        let viol = spec.violating_trans(&mut cx);
        assert!(cx.mgr().leq(bt, viol));
    }

    #[test]
    fn union_merges_both_parts() {
        let mut cx = SymbolicContext::new();
        let x = cx.add_var("x", 2);
        let s1 = Safety { bad_states: cx.assign_eq(x, 0), bad_trans: FALSE };
        let s2 = Safety { bad_states: cx.assign_eq(x, 1), bad_trans: FALSE };
        let u = s1.union(&mut cx, &s2);
        let universe = cx.state_universe();
        assert_eq!(u.bad_states, universe);
    }

    #[test]
    fn with_bad_trans_extends() {
        let mut cx = SymbolicContext::new();
        let _x = cx.add_var("x", 2);
        let extra = cx.transition_cube(&[1], &[0]);
        let s = Safety::none().with_bad_trans(&mut cx, extra);
        assert_eq!(s.bad_trans, extra);
        assert_eq!(s.bad_states, FALSE);
        let _ = TRUE;
    }
}

//! Store chaos: fault the daemon's disk volume on purpose through an
//! injected [`ErrInjFs`] and pin the circuit breaker's whole life cycle —
//! trip on I/O failures, memory-only degraded mode visible in `/healthz`,
//! half-open probes riding the health endpoint, and exact
//! `store.breaker.*` accounting — plus the ENOSPC emergency-eviction path.
//!
//! Only compiles under the `chaos` cargo feature (the `store_vfs` config
//! field is test/chaos-gated); CI runs it as its own step.
#![cfg(feature = "chaos")]

use ftrepair_server::{Server, ServerConfig, ServerHandle};
use ftrepair_store::{ErrInjFs, Fault, Vfs, VfsOp};
use ftrepair_telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

fn toggle_spec(tag: usize) -> String {
    format!(
        "program toggle{tag};\n\
         var x : 0..2;\n\
         process p read x; write x;\n\
         begin\n  (x = 0) -> x := 1;\n  (x = 1) -> x := 0;\nend\n\
         fault hit begin (x = 1) -> x := 2; end\n\
         invariant (x = 0) | (x = 1);\n"
    )
}

fn temp_store(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ftrepair-store-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// A store-backed config with a hair-trigger breaker (threshold 1) and no
/// probe backoff, so every transition is observable without sleeping.
fn breaker_config(store_dir: &Path, fi: &Arc<ErrInjFs>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        store_dir: Some(store_dir.to_path_buf()),
        store_vfs: Some(Arc::clone(fi) as Arc<dyn Vfs>),
        breaker_threshold: 1,
        breaker_backoff: Duration::ZERO,
        breaker_max_backoff: Duration::ZERO,
        ..ServerConfig::default()
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body ({e}): {json_body:?}"));
    (status, json)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// Poll `/metrics` until `name` reaches `want` (the store writer is
/// asynchronous, so write outcomes land shortly after the POST returns).
fn wait_counter(addr: SocketAddr, name: &str, want: u64) -> Json {
    let mut last = Json::Null;
    for _ in 0..250 {
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        if counter(&metrics, name) >= want {
            return metrics;
        }
        last = metrics;
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("counter {name} never reached {want}: {last}");
}

fn store_field<'a>(health: &'a Json, field: &str) -> Option<&'a Json> {
    health.get("store").and_then(|s| s.get(field))
}

/// The acceptance scenario: a write failure trips the breaker, `/healthz`
/// reports the store degraded while serving normally, writes are dropped
/// and reads skipped during the outage, a failed probe re-opens, and a
/// clean probe recovers — every transition counted exactly.
#[test]
fn breaker_trips_to_degraded_and_recovers_through_half_open_probes() {
    let root = temp_store("breaker");
    let fi = Arc::new(ErrInjFs::new(0xB4EA));
    let (addr, handle, join) = start(breaker_config(&root, &fi));

    // Healthy baseline: first repair persists through the async writer.
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 200, "{body}");
    wait_counter(addr, "store.writes", 1);
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(store_field(&health, "status").and_then(Json::as_str), Some("ok"), "{health}");
    assert_eq!(store_field(&health, "breaker").and_then(Json::as_str), Some("closed"), "{health}");

    // Volume goes bad: the next write-through fails and trips the breaker.
    fi.fail_always(VfsOp::Write, Fault::Eio);
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(1));
    assert_eq!(status, 200, "a sick store must never fail a repair");
    let metrics = wait_counter(addr, "store.breaker.trips", 1);
    assert_eq!(counter(&metrics, "store.breaker.failures"), 1, "{metrics}");

    // Degraded mode: /healthz says so (and its probe write fails, keeping
    // the breaker open); jobs still succeed memory-only — reads skipped,
    // writes dropped, both counted.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "degraded is not down");
    assert_eq!(store_field(&health, "status").and_then(Json::as_str), Some("degraded"), "{health}");
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(2));
    assert_eq!(status, 200);
    let metrics = wait_counter(addr, "store.breaker.dropped_writes", 1);
    assert!(counter(&metrics, "store.breaker.skipped_reads") >= 1, "{metrics}");
    assert_eq!(
        metrics.get("gauges").and_then(|g| g.get("store.breaker.open")).and_then(Json::as_u64),
        Some(1),
        "{metrics}"
    );

    // Volume heals: the next health poll's half-open probe closes the
    // breaker, and the same response already reports the recovery.
    fi.clear();
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(store_field(&health, "status").and_then(Json::as_str), Some("ok"), "{health}");
    assert_eq!(store_field(&health, "breaker").and_then(Json::as_str), Some("closed"), "{health}");

    // Exact books: one trip, two probes (one failed during the outage, one
    // clean), one recovery; the failed probe is the second failure.
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "store.breaker.trips"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "store.breaker.probes"), 2, "{metrics}");
    assert_eq!(counter(&metrics, "store.breaker.recoveries"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "store.breaker.failures"), 2, "{metrics}");
    assert_eq!(
        metrics.get("gauges").and_then(|g| g.get("store.breaker.open")).and_then(Json::as_u64),
        Some(0),
        "{metrics}"
    );

    // Back in business: a fresh repair persists again.
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(3));
    assert_eq!(status, 200);
    wait_counter(addr, "store.writes", 2);

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

/// ENOSPC is not a plain failure: before giving up (and feeding the
/// breaker) the writer evicts the coldest entries and retries, so a store
/// sized near its volume's capacity frees its own space first.
#[test]
fn enospc_write_sheds_coldest_entries_then_degrades_and_recovers() {
    let root = temp_store("enospc");
    let fi = Arc::new(ErrInjFs::new(0xE105));
    let (addr, handle, join) = start(breaker_config(&root, &fi));

    // Seed one persisted entry for the emergency eviction to reclaim.
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 200);
    wait_counter(addr, "store.writes", 1);

    // Disk full, permanently: put fails with ENOSPC, the writer sheds and
    // retries, the retry fails too, and the breaker trips.
    fi.fail_always(VfsOp::Write, Fault::Enospc);
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(1));
    assert_eq!(status, 200);
    let metrics = wait_counter(addr, "store.breaker.trips", 1);
    assert_eq!(counter(&metrics, "store.enospc"), 1, "{metrics}");
    assert!(counter(&metrics, "store.evictions") >= 1, "the shed freed real entries: {metrics}");
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(store_field(&health, "status").and_then(Json::as_str), Some("degraded"), "{health}");

    // Space returns: probe recovers, writes land again.
    fi.clear();
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(store_field(&health, "status").and_then(Json::as_str), Some("ok"), "{health}");
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(2));
    assert_eq!(status, 200);
    wait_counter(addr, "store.writes", 2);

    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&root);
}

//! BDD memory governance over HTTP: a job that blows through its
//! live-node budget answers `503 {"error":"node budget exhausted"}` with
//! the process alive and the result uncached — the memory analogue of the
//! job timeout, reported instead of an OOM kill. Runs in the tier-1 suite
//! (no chaos feature needed: budgets are plain configuration).

use ftrepair_server::{Server, ServerConfig, ServerHandle};
use ftrepair_telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

const SPEC: &str = "program toggle;\n\
     var x : 0..2;\n\
     process p read x; write x;\n\
     begin\n  (x = 0) -> x := 1;\n  (x = 1) -> x := 0;\nend\n\
     fault hit begin (x = 1) -> x := 2; end\n\
     invariant (x = 0) | (x = 1);\n";

fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body ({e}): {json_body:?}"));
    (status, json)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

#[test]
fn starved_job_returns_503_uncached_and_the_server_keeps_serving() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(config);

    // A one-node budget is unsatisfiable for any real spec: the job aborts
    // at a governance checkpoint with the distinct error body.
    let (status, body) = request(addr, "POST", "/repair?max-nodes=1", SPEC);
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("node budget exhausted"), "{body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "server.jobs.exhausted"), 1, "{metrics}");
    assert_eq!(
        metrics.get("cache_entries").and_then(Json::as_u64),
        Some(0),
        "an exhausted result must never be cached: {metrics}"
    );

    // The process shrugged it off: /healthz is fine and the same spec
    // succeeds unbudgeted.
    let (status, _) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200);
    let (status, body) = request(addr, "POST", "/repair", SPEC);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(false), "{body}");

    // Budgets bound whether a job finishes, not what it computes, so they
    // are excluded from the content address: a re-POST under a generous
    // budget hits the cache entry the unbudgeted run just made.
    let (status, body) = request(addr, "POST", "/repair?max-nodes=1000000", SPEC);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true), "{body}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn server_wide_budget_applies_and_clients_may_only_tighten() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        job_max_nodes: 1,
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(config);

    // The operator's ceiling applies to plain requests...
    let (status, body) = request(addr, "POST", "/repair", SPEC);
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("node budget exhausted"), "{body}");

    // ...and a client asking for more is clamped down to it, not up.
    let (status, body) = request(addr, "POST", "/repair?max-nodes=1000000", SPEC);
    assert_eq!(status, 503, "min(client, server) keeps the OOM guard: {body}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "server.jobs.exhausted"), 2, "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn malformed_max_nodes_is_a_400() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        io_timeout: Duration::from_secs(2),
        ..ServerConfig::default()
    };
    let (addr, handle, join) = start(config);
    let (status, body) = request(addr, "POST", "/repair?max-nodes=lots", SPEC);
    assert_eq!(status, 400, "{body}");
    handle.shutdown();
    join.join().unwrap();
}

//! Regression test for the shutdown-after-panic crash: a scoped worker
//! thread that dies panicking re-raises its panic when `std::thread::scope`
//! joins it, so before the supervisor's `catch_unwind` boundary existed a
//! server could absorb a panicking job, serve traffic normally — and then
//! crash at SIGTERM time, inside the drain, with a half-written metrics
//! file. This test pins the fixed behavior: panic, then drain, then a clean
//! return and a valid JSONL summary.
//!
//! Lives in its own integration-test binary because it drives the
//! process-global signal flag (`signal::request`), which must not race the
//! in-process servers of the other test files.
#![cfg(feature = "chaos")]

use ftrepair_core::RepairOptions;
use ftrepair_server::job::{self, Mode};
use ftrepair_server::{signal, Chaos, Server, ServerConfig};
use ftrepair_telemetry::Json;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const SPEC: &str = "program toggle;\n\
    var x : 0..2;\n\
    process p read x; write x;\n\
    begin\n  (x = 0) -> x := 1;\n  (x = 1) -> x := 0;\nend\n\
    fault hit begin (x = 1) -> x := 2; end\n\
    invariant (x = 0) | (x = 1);\n";

#[test]
fn sigterm_drain_after_absorbing_a_panicking_job_exits_cleanly() {
    signal::reset();
    let dir = std::env::temp_dir().join("ftrepair-server-drain-after-panic");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.jsonl");
    let _ = std::fs::remove_file(&path);

    let chaos = Arc::new(Chaos::new());
    let key = job::prepare(SPEC, Mode::Lazy, RepairOptions::default()).unwrap().key;
    chaos.panic_on_key(&key);

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        metrics_out: Some(path.clone()),
        chaos: Some(Arc::clone(&chaos)),
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let join = std::thread::spawn(move || server.run());

    // Absorb one panicking job...
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "POST /repair HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{SPEC}",
        SPEC.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).unwrap();
    assert!(text.starts_with("HTTP/1.1 500 "), "panicking job answers 500: {text:?}");

    // ...then deliver the (emulated) SIGTERM. Before the supervisor's panic
    // boundary this join re-raised the worker's panic and the server thread
    // died mid-drain instead of returning Ok.
    signal::request();
    let result = join.join().expect("server thread must not die at the scope join");
    result.expect("run() returns Ok after draining");
    signal::reset();

    // The metrics file is intact and complete: the panic's postmortem line
    // followed by the shutdown summary.
    let file = std::fs::read_to_string(&path).unwrap();
    let lines: Vec<Json> = file.lines().map(|l| Json::parse(l).expect("valid JSONL")).collect();
    assert_eq!(lines.len(), 2, "{file}");
    assert_eq!(lines[0].get("mode").and_then(Json::as_str), Some("panic"), "{file}");
    assert!(
        lines[0].get("panic").and_then(Json::as_str).unwrap_or("").contains("injected panic"),
        "{file}"
    );
    assert_eq!(lines[0].get("server_key").and_then(Json::as_str), Some(key.as_str()), "{file}");
    assert_eq!(lines[1].get("mode").and_then(Json::as_str), Some("summary"), "{file}");
    let counters = lines[1].get("counters").expect("summary carries the counter snapshot");
    assert_eq!(counters.get("server.workers.panics").and_then(Json::as_u64), Some(1), "{file}");
    assert_eq!(counters.get("server.jobs.quarantined").and_then(Json::as_u64), Some(1), "{file}");
}

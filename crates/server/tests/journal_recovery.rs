//! Crash-recovery integration: the durable job journal, boot-time replay,
//! checkpoint-seeded resume, and the bounded shutdown drain — driven
//! through real sockets against in-process servers sharing one disk
//! volume across simulated reboots.
//!
//! The cancel flag stands in for `kill -9` here: a cancelled job has its
//! journal start record on disk but no completion record (cancellation is
//! deliberately left pending — that is the checkpoint-and-exit contract),
//! which is exactly the state a hard kill leaves behind. The true
//! binary-level kill -9 test lives in `tests/journal_recovery.rs` at the
//! workspace root.

use ftrepair_server::{Server, ServerConfig, ServerHandle};
use ftrepair_telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::time::Duration;

fn toggle_spec(tag: usize) -> String {
    format!(
        "program toggle{tag};\n\
         var x : 0..2;\n\
         process p read x; write x;\n\
         begin\n  (x = 0) -> x := 1;\n  (x = 1) -> x := 0;\nend\n\
         fault hit begin (x = 1) -> x := 2; end\n\
         invariant (x = 0) | (x = 1);\n"
    )
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftrepair-journal-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

/// A journaled, store-backed config rooted at `dir` — the same volume can
/// be handed to a second server to simulate a reboot.
fn config(dir: &Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_timeout: Duration::from_secs(2),
        store_dir: Some(dir.join("store")),
        journal: Some(dir.join("journal.jsonl")),
        ..ServerConfig::default()
    }
}

fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body ({e}): {json_body:?}"));
    (status, json)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// Poll `/metrics` until `name` reaches `want` — boot recovery runs on a
/// background thread, so its effects land shortly after bind.
fn wait_counter(addr: SocketAddr, name: &str, want: u64) -> Json {
    let mut last = Json::Null;
    for _ in 0..500 {
        let (_, metrics) = request(addr, "GET", "/metrics", "");
        if counter(&metrics, name) >= want {
            return metrics;
        }
        last = metrics;
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("counter {name} never reached {want}: {last}");
}

/// The tentpole scenario end to end: a job that dies after its journal
/// start record (the cancel flag stands in for the kill) is replayed to
/// completion by the next boot, seeded from the checkpoint it wrote on the
/// way down, and later requests for the same spec are served cached — no
/// client ever re-pays the repair.
#[test]
fn cancelled_job_is_replayed_on_reboot_and_later_requests_hit_the_cache() {
    let dir = temp_dir("replay");

    // Boot 1: cancel aborts the job after journal_start, before journal_done.
    let (addr, handle, join) = start(config(&dir));
    handle.cancel_jobs();
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("cancelled"), "{body}");
    handle.shutdown();
    join.join().unwrap();

    // Boot 2 on the same volume: the recovery scan finds the incomplete
    // record and replays it to completion in the background.
    let (addr, handle, join) = start(config(&dir));
    let metrics = wait_counter(addr, "server.jobs.replayed", 1);
    assert_eq!(counter(&metrics, "server.jobs.recovered"), 1, "{metrics}");

    // /healthz narrates the recovery.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "{health}");
    let recovery = health.get("recovery").expect("recovery section");
    assert_eq!(recovery.get("journal").and_then(Json::as_bool), Some(true), "{health}");
    assert_eq!(recovery.get("pending_at_boot").and_then(Json::as_u64), Some(1), "{health}");
    assert_eq!(recovery.get("recovered").and_then(Json::as_u64), Some(1), "{health}");
    assert_eq!(recovery.get("checkpointing").and_then(Json::as_bool), Some(true), "{health}");

    // The replay completed and cached the result: the client's retry is a
    // hit, not a recompute.
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("cached").and_then(Json::as_bool), Some(true), "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");

    handle.shutdown();
    join.join().unwrap();

    // Boot 3: the journal was compacted/settled — nothing pending, nothing
    // replayed twice.
    let (addr, handle, join) = start(config(&dir));
    let (_, health) = request(addr, "GET", "/healthz", "");
    let recovery = health.get("recovery").expect("recovery section");
    assert_eq!(recovery.get("pending_at_boot").and_then(Json::as_u64), Some(0), "{health}");
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A pending journal record whose result already sits in the disk store is
/// recovered without recompute: counted `recovered` but not `replayed`,
/// retired as `recovered-cached`.
#[test]
fn pending_record_with_a_stored_result_recovers_without_recompute() {
    let dir = temp_dir("cached");

    // Boot 1 (journaled): cancel leaves a pending record for toggle1.
    let (addr, handle, join) = start(config(&dir));
    handle.cancel_jobs();
    let (status, _) = request(addr, "POST", "/repair", &toggle_spec(1));
    assert_eq!(status, 503);
    handle.shutdown();
    join.join().unwrap();

    // Boot 2 (journal off, same store): the spec completes and persists.
    let no_journal = ServerConfig { journal: None, ..config(&dir) };
    let (addr, handle, join) = start(no_journal);
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(1));
    assert_eq!(status, 200, "{body}");
    wait_counter(addr, "store.writes", 1);
    handle.shutdown();
    join.join().unwrap();

    // Boot 3 (journaled): the pending record is satisfied straight from
    // the store — recovered, not replayed.
    let (addr, handle, join) = start(config(&dir));
    let metrics = wait_counter(addr, "server.jobs.recovered", 1);
    assert_eq!(counter(&metrics, "server.jobs.replayed"), 0, "no recompute: {metrics}");
    handle.shutdown();
    join.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The bounded drain: a job still queued when the drain deadline passes is
/// answered `503` (error mentions the drain) instead of its socket being
/// dropped on the floor, and the shutdown summary counts it abandoned.
#[test]
fn drain_deadline_abandons_queued_jobs_with_503() {
    let dir = temp_dir("drain");
    let metrics_path = dir.join("metrics.jsonl");
    let cfg = ServerConfig {
        workers: 1,
        drain_timeout: Duration::from_millis(200),
        metrics_out: Some(metrics_path.clone()),
        journal: None,
        store_dir: None,
        ..config(&dir)
    };
    let (addr, handle, join) = start(cfg);

    // Occupy the single worker with an idle connection, then queue a real
    // request behind it.
    let idle = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    let queued = std::thread::spawn(move || request(addr, "POST", "/repair", &toggle_spec(2)));
    std::thread::sleep(Duration::from_millis(200));

    // Shutdown: the worker is stuck reading the idle socket, so the queued
    // job cannot start before the 200ms drain deadline.
    handle.shutdown();
    let (status, body) = queued.join().expect("queued client");
    assert_eq!(status, 503, "{body}");
    let error = body.get("error").and_then(Json::as_str).unwrap_or("");
    assert!(error.contains("draining"), "{body}");
    drop(idle);
    join.join().unwrap();

    // The shutdown summary line carries the abandonment count.
    let text = std::fs::read_to_string(&metrics_path).unwrap();
    let summary = text
        .lines()
        .map(|l| Json::parse(l).expect("JSONL line"))
        .find(|j| j.get("mode").and_then(Json::as_str) == Some("summary"))
        .expect("summary line");
    let abandoned =
        summary.get("counters").and_then(|c| c.get("server.jobs.abandoned")).and_then(Json::as_u64);
    assert_eq!(abandoned, Some(1), "{summary}");
    let _ = std::fs::remove_dir_all(&dir);
}

//! Chaos tests: drive the daemon's supervision machinery on purpose —
//! injected job panics under concurrent load, forced queue saturation, and
//! injected delays against the job deadline — and assert the metrics
//! account for every fault exactly.
//!
//! These only compile under the `chaos` cargo feature (see CI's
//! `cargo test --features chaos -p ftrepair-server` step); a plain
//! `cargo test` builds this file down to nothing.
#![cfg(feature = "chaos")]

use ftrepair_core::RepairOptions;
use ftrepair_server::job::{self, Mode};
use ftrepair_server::{Chaos, Server, ServerConfig, ServerHandle};
use ftrepair_telemetry::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// A minimal repairable spec; `tag` varies the program name so each call
/// yields a distinct content key.
fn toggle_spec(tag: usize) -> String {
    format!(
        "program toggle{tag};\n\
         var x : 0..2;\n\
         process p read x; write x;\n\
         begin\n  (x = 0) -> x := 1;\n  (x = 1) -> x := 0;\nend\n\
         fault hit begin (x = 1) -> x := 2; end\n\
         invariant (x = 0) | (x = 1);\n"
    )
}

/// The content key the server will compute for `source` POSTed to
/// `/repair` with no query parameters.
fn key_of(source: &str) -> String {
    job::prepare(source, Mode::Lazy, RepairOptions::default()).expect("valid spec").key
}

fn start(config: ServerConfig) -> (SocketAddr, ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(&config).expect("bind 127.0.0.1:0");
    let addr = server.local_addr().unwrap();
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, handle, join)
}

fn chaos_config(chaos: &Arc<Chaos>) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 4,
        io_timeout: Duration::from_secs(2),
        chaos: Some(Arc::clone(chaos)),
        ..ServerConfig::default()
    }
}

/// Raw one-shot HTTP client matching the server's `Connection: close`
/// contract. Returns (status, parsed JSON body).
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, Json) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
    let raw = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(raw.as_bytes()).expect("write request");
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).expect("read response");
    let text = String::from_utf8(reply).expect("UTF-8 response");
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line: {:?}", text.lines().next()));
    let json_body = text.split("\r\n\r\n").nth(1).unwrap_or("");
    let json =
        Json::parse(json_body).unwrap_or_else(|e| panic!("unparseable body ({e}): {json_body:?}"));
    (status, json)
}

fn counter(metrics: &Json, name: &str) -> u64 {
    metrics.get("counters").and_then(|c| c.get(name)).and_then(Json::as_u64).unwrap_or(0)
}

/// The ISSUE's acceptance scenario: panics injected on 5 distinct content
/// keys while 32 concurrent clients hammer the server. Every request must
/// get a response, the pool must return to full strength, health must
/// degrade during the fault window and recover after it, and the metrics
/// must account for the faults exactly.
#[test]
fn panic_storm_under_concurrent_load_is_absorbed_and_accounted() {
    let chaos = Arc::new(Chaos::new());
    let specs: Vec<String> = (0..5).map(toggle_spec).collect();
    for spec in &specs {
        chaos.panic_on_key(&key_of(spec));
    }
    let config =
        ServerConfig { degraded_window: Duration::from_millis(800), ..chaos_config(&chaos) };
    let (addr, handle, join) = start(config);

    // 32 concurrent POSTs spread across the 5 poisoned specs. Single-flight
    // makes the outcome deterministic: per key, exactly one request leads
    // and eats the injected panic (500); every other request — follower or
    // late arrival — is refused by the quarantine (422).
    let results: Vec<(u16, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..32)
            .map(|i| {
                let body = &specs[i % specs.len()];
                scope.spawn(move || request(addr, "POST", "/repair", body))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });

    assert_eq!(results.len(), 32, "every request got a response");
    let count = |code: u16| results.iter().filter(|(s, _)| *s == code).count();
    assert_eq!(count(500), 5, "exactly one panic per poisoned key: {results:?}");
    assert_eq!(count(422), 27, "everyone else refused by the quarantine: {results:?}");
    for (status, body) in &results {
        let error = body.get("error").and_then(Json::as_str).unwrap_or("");
        match status {
            500 => assert!(error.contains("panicked"), "{body}"),
            _ => assert!(error.contains("quarantined"), "{body}"),
        }
    }

    // Fresh fault window: health is degraded (but still 200), and the
    // supervisor has already restored the pool to full strength.
    let (status, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(status, 200, "degraded is not down");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("degraded"), "{health}");
    assert_eq!(health.get("workers_alive").and_then(Json::as_u64), Some(4), "{health}");

    // The books balance exactly.
    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "server.workers.panics"), 5, "{metrics}");
    assert_eq!(counter(&metrics, "server.jobs.quarantined"), 5, "{metrics}");
    assert_eq!(counter(&metrics, "server.workers.respawned"), 5, "{metrics}");
    assert_eq!(counter(&metrics, "server.http.status.500"), 5, "{metrics}");
    assert_eq!(counter(&metrics, "server.http.status.422"), 27, "{metrics}");
    assert_eq!(metrics.get("quarantined_keys").and_then(Json::as_u64), Some(5), "{metrics}");
    assert_eq!(
        metrics.get("gauges").and_then(|g| g.get("server.workers.alive")).and_then(Json::as_u64),
        Some(4),
        "{metrics}"
    );

    // A resubmission of a poisoned spec never reaches a worker again.
    let (status, body) = request(addr, "POST", "/repair", &specs[0]);
    assert_eq!(status, 422, "{body}");

    // A clean spec still repairs: the pool survived the storm.
    let clean = toggle_spec(99);
    let (status, body) = request(addr, "POST", "/repair", &clean);
    assert_eq!(status, 200, "{body}");
    assert_eq!(body.get("verified").and_then(Json::as_bool), Some(true), "{body}");

    // After the degraded window passes with no new faults, health recovers.
    std::thread::sleep(Duration::from_millis(900));
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"), "{health}");

    handle.shutdown();
    join.join().unwrap();
}

#[test]
fn forced_queue_saturation_degrades_health_then_recovers() {
    let chaos = Arc::new(Chaos::new());
    let config =
        ServerConfig { degraded_window: Duration::from_millis(500), ..chaos_config(&chaos) };
    let (addr, handle, join) = start(config);

    chaos.force_queue_full(true);
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 429, "{body}");
    assert!(body.get("error").and_then(Json::as_str).unwrap_or("").contains("busy"), "{body}");

    chaos.force_queue_full(false);
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("degraded"), "{health}");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "server.queue.saturated"), 1, "{metrics}");

    // Service is already back; health follows once the window expires.
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 200, "{body}");
    std::thread::sleep(Duration::from_millis(600));
    let (_, health) = request(addr, "GET", "/healthz", "");
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"), "{health}");

    handle.shutdown();
    join.join().unwrap();
}

/// An injected delay must not pin a worker past the job budget: the sliced
/// chaos sleep watches the token, and the abort surfaces as a plain 503
/// timeout — no panic, no quarantine, nothing cached.
#[test]
fn injected_delay_is_cut_short_by_the_job_deadline() {
    let chaos = Arc::new(Chaos::new());
    chaos.delay_all(Some(Duration::from_secs(30)));
    let config = ServerConfig { job_timeout: Duration::from_millis(200), ..chaos_config(&chaos) };
    let (addr, handle, join) = start(config);

    let started = std::time::Instant::now();
    let (status, body) = request(addr, "POST", "/repair", &toggle_spec(0));
    assert_eq!(status, 503, "{body}");
    assert_eq!(body.get("error").and_then(Json::as_str), Some("timeout"), "{body}");
    assert!(started.elapsed() < Duration::from_secs(10), "delay must not outlive the budget");

    let (_, metrics) = request(addr, "GET", "/metrics", "");
    assert_eq!(counter(&metrics, "server.jobs.timed_out"), 1, "{metrics}");
    assert_eq!(counter(&metrics, "server.workers.panics"), 0, "{metrics}");
    assert_eq!(metrics.get("cache_entries").and_then(Json::as_u64), Some(0), "{metrics}");

    handle.shutdown();
    join.join().unwrap();
}

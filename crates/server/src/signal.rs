//! SIGTERM / SIGINT → one atomic flag.
//!
//! The workspace links no third-party crates, so the handler is installed
//! through libc's `signal(2)` directly (libc itself is always linked on the
//! platforms we target). The handler does the only async-signal-safe thing
//! worth doing: it sets a flag the accept loop polls, which turns delivery
//! of either signal into a graceful drain-and-exit.

use std::sync::atomic::{AtomicBool, Ordering};

static REQUESTED: AtomicBool = AtomicBool::new(false);

/// Has a shutdown signal been delivered (or [`request`] been called)?
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}

/// Programmatic equivalent of receiving SIGTERM — used by tests and by any
/// embedding that wants to stop the daemon from another thread.
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Reset the flag (tests only; a real daemon exits after one shutdown).
pub fn reset() {
    REQUESTED.store(false, Ordering::SeqCst);
}

extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

/// Install the handler for SIGINT (ctrl-c) and SIGTERM. Safe to call more
/// than once. On non-unix targets this is a no-op and only [`request`]
/// can stop the daemon.
#[cfg(unix)]
pub fn install() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// Non-unix fallback: nothing to install.
#[cfg(not(unix))]
pub fn install() {
    // Keep the handler referenced so the cfg split stays warning-free.
    let _ = on_signal as extern "C" fn(i32);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_sets_and_reset_clears() {
        reset();
        assert!(!requested());
        request();
        assert!(requested());
        reset();
        assert!(!requested());
    }
}

//! Content-addressed result cache.
//!
//! A repair is a pure function of the *canonicalized* spec text and the
//! [`RepairOptions`](ftrepair_core::RepairOptions), so its result can be
//! addressed by a hash of exactly those inputs. Canonicalization (parse →
//! `unparse`) means formatting, comments, and declaration spelling do not
//! fragment the cache; two differently-indented copies of the same program
//! hit the same entry.
//!
//! Keys are SHA-256 digests. The spec text is untrusted network input, so
//! the address must be collision-resistant — a non-cryptographic hash
//! (FNV, FxHash, …) would let a crafted pair of colliding specs poison the
//! cache and serve one spec's repaired program for another. SHA-256 is
//! implemented here (FIPS 180-4) because the workspace takes no
//! third-party dependencies. The capacity is bounded with FIFO eviction —
//! the daemon's memory stays flat no matter how many distinct specs it has
//! seen.

use crate::job::SimBundle;
use ftrepair_telemetry::{Counter, Json, Telemetry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// One cached repair: the `/repair` response document plus, for instances
/// small enough to enumerate, the explicit bundle `/simulate` replays.
pub struct CacheEntry {
    /// Content address of this entry (hex).
    pub key: String,
    /// The full `/repair` response body (without the `cached` flag, which
    /// is stamped per response).
    pub response: Json,
    /// Explicit-state bundle for fault-injection simulation; `None` when
    /// the state space is too large to enumerate.
    pub sim: Option<SimBundle>,
}

struct Inner {
    map: HashMap<String, Arc<CacheEntry>>,
    order: VecDeque<String>,
}

/// The cache. Hit/miss/eviction counts feed the server's telemetry
/// registry, so they show up in `GET /metrics` and the JSONL reports.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// SHA-256 round constants: first 32 bits of the fractional parts of the
/// cube roots of the first 64 primes (FIPS 180-4 §4.2.2).
const SHA256_K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// SHA-256 over `bytes` (FIPS 180-4).
fn sha256(bytes: &[u8]) -> [u8; 32] {
    let mut h: [u32; 8] = [
        0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
        0x5be0cd19,
    ];

    // Pad: message, 0x80, zeros to 56 mod 64, then the bit length as u64.
    let mut msg = bytes.to_vec();
    let bit_len = (bytes.len() as u64).wrapping_mul(8);
    msg.push(0x80);
    while msg.len() % 64 != 56 {
        msg.push(0);
    }
    msg.extend_from_slice(&bit_len.to_be_bytes());

    let mut w = [0u32; 64];
    for block in msg.chunks_exact(64) {
        for (i, word) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 =
                hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(SHA256_K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (hi, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *hi = hi.wrapping_add(v);
        }
    }

    let mut out = [0u8; 32];
    for (chunk, word) in out.chunks_exact_mut(4).zip(h) {
        chunk.copy_from_slice(&word.to_be_bytes());
    }
    out
}

/// The content address of a (canonical spec, options fingerprint) pair.
pub fn content_key(canonical_spec: &str, fingerprint: &str) -> String {
    let mut material = String::with_capacity(canonical_spec.len() + fingerprint.len() + 1);
    material.push_str(fingerprint);
    material.push('\n');
    material.push_str(canonical_spec);
    let digest = sha256(material.as_bytes());
    let mut key = String::with_capacity(64);
    for byte in digest {
        use std::fmt::Write;
        let _ = write!(key, "{byte:02x}");
    }
    key
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, reporting counters into
    /// `tele`'s registry.
    pub fn new(capacity: usize, tele: &Telemetry) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: tele.counter("server.cache.hits"),
            misses: tele.counter("server.cache.misses"),
            evictions: tele.counter("server.cache.evictions"),
        }
    }

    /// Look up a content address, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<CacheEntry>> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(entry) => {
                self.hits.inc();
                Some(Arc::clone(entry))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert an entry, evicting the oldest one when full. Re-inserting an
    /// existing key replaces the value without growing the queue.
    pub fn insert(&self, entry: CacheEntry) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(entry.key.clone(), Arc::clone(&entry)).is_none() {
            inner.order.push_back(entry.key.clone());
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                    self.evictions.inc();
                }
            }
        }
        entry
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct PoisonInner {
    set: HashSet<String>,
    order: VecDeque<String>,
}

/// Quarantine set for content keys whose repair panicked the engine.
///
/// A spec that crashed the worker once will crash it again — the repair is
/// deterministic — so resubmissions are refused (`422`) straight from the
/// cache path instead of being handed to a fresh worker to kill. Like
/// [`ResultCache`] the set is bounded with FIFO eviction: an adversary
/// feeding an endless stream of crashing specs must not grow the daemon's
/// memory, and the oldest quarantine aging out is harmless (the spec just
/// gets one more chance to panic and be re-quarantined).
pub struct PoisonList {
    inner: Mutex<PoisonInner>,
    capacity: usize,
}

impl PoisonList {
    /// A quarantine list holding at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> PoisonList {
        PoisonList {
            inner: Mutex::new(PoisonInner { set: HashSet::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
        }
    }

    /// Quarantine `key`. Returns `true` if it was newly added, `false` if
    /// it was already quarantined (lets callers count distinct keys).
    pub fn insert(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !inner.set.insert(key.to_string()) {
            return false;
        }
        inner.order.push_back(key.to_string());
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.set.remove(&old);
            }
        }
        true
    }

    /// Is `key` currently quarantined?
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().unwrap().set.contains(key)
    }

    /// Keys currently quarantined.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().set.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str) -> CacheEntry {
        CacheEntry { key: key.to_string(), response: Json::obj(), sim: None }
    }

    #[test]
    fn keys_are_content_addressed() {
        let a = content_key("program p;\n", "lazy");
        let b = content_key("program p;\n", "lazy");
        let c = content_key("program q;\n", "lazy");
        let d = content_key("program p;\n", "cautious");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn sha256_matches_fips_test_vectors() {
        let hex = |d: [u8; 32]| d.iter().map(|b| format!("{b:02x}")).collect::<String>();
        assert_eq!(
            hex(sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
        assert_eq!(
            hex(sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(
            hex(sha256(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(8, &tele);
        assert!(cache.get("k").is_none());
        cache.insert(entry("k"));
        assert!(cache.get("k").is_some());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("server.cache.hits"), 1);
        assert_eq!(snap.counter("server.cache.misses"), 1);
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("a"));
        cache.insert(entry("b"));
        cache.insert(entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 1);
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("a"));
        cache.insert(entry("a"));
        cache.insert(entry("b"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 0);
    }

    #[test]
    fn poison_list_quarantines_and_reports_novelty() {
        let poison = PoisonList::new(8);
        assert!(!poison.contains("k"));
        assert!(poison.insert("k"), "first insert is new");
        assert!(!poison.insert("k"), "second insert is a repeat");
        assert!(poison.contains("k"));
        assert_eq!(poison.len(), 1);
    }

    #[test]
    fn poison_list_is_bounded_fifo() {
        let poison = PoisonList::new(2);
        poison.insert("a");
        poison.insert("b");
        poison.insert("c");
        assert_eq!(poison.len(), 2);
        assert!(!poison.contains("a"), "oldest quarantine aged out");
        assert!(poison.contains("b"));
        assert!(poison.contains("c"));
    }
}

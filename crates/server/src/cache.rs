//! Content-addressed result cache.
//!
//! A repair is a pure function of the *canonicalized* spec text and the
//! [`RepairOptions`](ftrepair_core::RepairOptions), so its result can be
//! addressed by a hash of exactly those inputs. Canonicalization (parse →
//! `unparse`) means formatting, comments, and declaration spelling do not
//! fragment the cache; two differently-indented copies of the same program
//! hit the same entry.
//!
//! Keys are 128-bit FNV-1a digests (two independently-seeded 64-bit
//! streams). The capacity is bounded with FIFO eviction — the daemon's
//! memory stays flat no matter how many distinct specs it has seen.

use crate::job::SimBundle;
use ftrepair_telemetry::{Counter, Json, Telemetry};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// One cached repair: the `/repair` response document plus, for instances
/// small enough to enumerate, the explicit bundle `/simulate` replays.
pub struct CacheEntry {
    /// Content address of this entry (hex).
    pub key: String,
    /// The full `/repair` response body (without the `cached` flag, which
    /// is stamped per response).
    pub response: Json,
    /// Explicit-state bundle for fault-injection simulation; `None` when
    /// the state space is too large to enumerate.
    pub sim: Option<SimBundle>,
}

struct Inner {
    map: HashMap<String, Arc<CacheEntry>>,
    order: VecDeque<String>,
}

/// The cache. Hit/miss/eviction counts feed the server's telemetry
/// registry, so they show up in `GET /metrics` and the JSONL reports.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

/// FNV-1a over `bytes`, from an arbitrary offset basis.
fn fnv1a64(bytes: &[u8], basis: u64) -> u64 {
    let mut h = basis;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The content address of a (canonical spec, options fingerprint) pair.
pub fn content_key(canonical_spec: &str, fingerprint: &str) -> String {
    let mut material = String::with_capacity(canonical_spec.len() + fingerprint.len() + 1);
    material.push_str(fingerprint);
    material.push('\n');
    material.push_str(canonical_spec);
    let b = material.as_bytes();
    // Standard FNV offset basis and a second, unrelated odd basis: two
    // independent 64-bit streams give a 128-bit address.
    let h1 = fnv1a64(b, 0xcbf2_9ce4_8422_2325);
    let h2 = fnv1a64(b, 0x9e37_79b9_7f4a_7c15);
    format!("{h1:016x}{h2:016x}")
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, reporting counters into
    /// `tele`'s registry.
    pub fn new(capacity: usize, tele: &Telemetry) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: tele.counter("server.cache.hits"),
            misses: tele.counter("server.cache.misses"),
            evictions: tele.counter("server.cache.evictions"),
        }
    }

    /// Look up a content address, counting the hit or miss.
    pub fn get(&self, key: &str) -> Option<Arc<CacheEntry>> {
        let inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(entry) => {
                self.hits.inc();
                Some(Arc::clone(entry))
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert an entry, evicting the oldest one when full. Re-inserting an
    /// existing key replaces the value without growing the queue.
    pub fn insert(&self, entry: CacheEntry) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(entry.key.clone(), Arc::clone(&entry)).is_none() {
            inner.order.push_back(entry.key.clone());
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                    self.evictions.inc();
                }
            }
        }
        entry
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str) -> CacheEntry {
        CacheEntry { key: key.to_string(), response: Json::obj(), sim: None }
    }

    #[test]
    fn keys_are_content_addressed() {
        let a = content_key("program p;\n", "lazy");
        let b = content_key("program p;\n", "lazy");
        let c = content_key("program q;\n", "lazy");
        let d = content_key("program p;\n", "cautious");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 32);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(8, &tele);
        assert!(cache.get("k").is_none());
        cache.insert(entry("k"));
        assert!(cache.get("k").is_some());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("server.cache.hits"), 1);
        assert_eq!(snap.counter("server.cache.misses"), 1);
    }

    #[test]
    fn capacity_is_bounded_fifo() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("a"));
        cache.insert(entry("b"));
        cache.insert(entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "oldest entry evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 1);
    }

    #[test]
    fn reinsert_replaces_without_evicting() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("a"));
        cache.insert(entry("a"));
        cache.insert(entry("b"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 0);
    }
}

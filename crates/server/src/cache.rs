//! Content-addressed result cache (the in-memory tier).
//!
//! A repair is a pure function of the *canonicalized* spec text and the
//! [`RepairOptions`](ftrepair_core::RepairOptions), so its result can be
//! addressed by a hash of exactly those inputs. Canonicalization (parse →
//! `unparse`) means formatting, comments, and declaration spelling do not
//! fragment the cache; two differently-indented copies of the same program
//! hit the same entry.
//!
//! Keys are SHA-256 digests computed by [`ftrepair_store::content_key`] —
//! the same addressing the on-disk tier uses, so one key identifies a
//! result in both tiers. (The hash must be collision-resistant because the
//! spec text is untrusted network input; see `ftrepair_store::sha`.) The
//! capacity is bounded with LRU eviction — touch-on-hit, matching the disk
//! tier's policy — so the daemon's memory stays flat no matter how many
//! distinct specs it has seen, and a hot key survives capacity pressure
//! from a stream of one-off specs.

use crate::job::SimStatus;
use ftrepair_telemetry::{Counter, Json, Telemetry};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex};

/// The content address of a (canonical spec, options fingerprint) pair —
/// shared with the disk tier.
pub use ftrepair_store::content_key;

/// One cached repair: the `/repair` response document plus, for instances
/// small enough to enumerate, the explicit bundle `/simulate` replays.
pub struct CacheEntry {
    /// Content address of this entry (hex).
    pub key: String,
    /// The full `/repair` response body (without the `cached` flag, which
    /// is stamped per response).
    pub response: Json,
    /// Explicit-state bundle for fault-injection simulation, or the
    /// precise reason `/simulate` must refuse this entry.
    pub sim: SimStatus,
}

struct Inner {
    map: HashMap<String, Arc<CacheEntry>>,
    /// Front = least recently used. A hit moves the key to the back; the
    /// O(n) reposition is fine at the default capacity (256).
    order: VecDeque<String>,
}

/// The cache. Hit/miss/eviction counts feed the server's telemetry
/// registry, so they show up in `GET /metrics` and the JSONL reports.
pub struct ResultCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl ResultCache {
    /// A cache holding at most `capacity` entries, reporting counters into
    /// `tele`'s registry.
    pub fn new(capacity: usize, tele: &Telemetry) -> ResultCache {
        ResultCache {
            inner: Mutex::new(Inner { map: HashMap::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
            hits: tele.counter("server.cache.hits"),
            misses: tele.counter("server.cache.misses"),
            evictions: tele.counter("server.cache.evictions"),
        }
    }

    /// Look up a content address, counting the hit or miss. A hit marks the
    /// key most-recently-used.
    pub fn get(&self, key: &str) -> Option<Arc<CacheEntry>> {
        let mut inner = self.inner.lock().unwrap();
        match inner.map.get(key) {
            Some(entry) => {
                let entry = Arc::clone(entry);
                self.hits.inc();
                if let Some(pos) = inner.order.iter().position(|k| k == key) {
                    inner.order.remove(pos);
                    inner.order.push_back(key.to_string());
                }
                Some(entry)
            }
            None => {
                self.misses.inc();
                None
            }
        }
    }

    /// Insert an entry, evicting the least recently used when full.
    /// Re-inserting an existing key replaces the value and refreshes its
    /// recency without growing the queue.
    pub fn insert(&self, entry: CacheEntry) -> Arc<CacheEntry> {
        let entry = Arc::new(entry);
        let mut inner = self.inner.lock().unwrap();
        if inner.map.insert(entry.key.clone(), Arc::clone(&entry)).is_none() {
            inner.order.push_back(entry.key.clone());
            while inner.order.len() > self.capacity {
                if let Some(old) = inner.order.pop_front() {
                    inner.map.remove(&old);
                    self.evictions.inc();
                }
            }
        } else if let Some(pos) = inner.order.iter().position(|k| k == &entry.key) {
            inner.order.remove(pos);
            inner.order.push_back(entry.key.clone());
        }
        entry
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().map.len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

struct PoisonInner {
    set: HashSet<String>,
    order: VecDeque<String>,
}

/// Quarantine set for content keys whose repair panicked the engine.
///
/// A spec that crashed the worker once will crash it again — the repair is
/// deterministic — so resubmissions are refused (`422`) straight from the
/// cache path instead of being handed to a fresh worker to kill. Like
/// [`ResultCache`] the set is bounded, but with FIFO eviction (quarantine
/// entries have no useful recency): an adversary feeding an endless stream
/// of crashing specs must not grow the daemon's memory, and the oldest
/// quarantine aging out is harmless (the spec just gets one more chance to
/// panic and be re-quarantined).
pub struct PoisonList {
    inner: Mutex<PoisonInner>,
    capacity: usize,
}

impl PoisonList {
    /// A quarantine list holding at most `capacity` keys (minimum 1).
    pub fn new(capacity: usize) -> PoisonList {
        PoisonList {
            inner: Mutex::new(PoisonInner { set: HashSet::new(), order: VecDeque::new() }),
            capacity: capacity.max(1),
        }
    }

    /// Quarantine `key`. Returns `true` if it was newly added, `false` if
    /// it was already quarantined (lets callers count distinct keys).
    pub fn insert(&self, key: &str) -> bool {
        let mut inner = self.inner.lock().unwrap();
        if !inner.set.insert(key.to_string()) {
            return false;
        }
        inner.order.push_back(key.to_string());
        while inner.order.len() > self.capacity {
            if let Some(old) = inner.order.pop_front() {
                inner.set.remove(&old);
            }
        }
        true
    }

    /// Is `key` currently quarantined?
    pub fn contains(&self, key: &str) -> bool {
        self.inner.lock().unwrap().set.contains(key)
    }

    /// Keys currently quarantined.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().set.len()
    }

    /// Is the list empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str) -> CacheEntry {
        CacheEntry { key: key.to_string(), response: Json::obj(), sim: SimStatus::Unavailable }
    }

    #[test]
    fn keys_are_content_addressed() {
        let a = content_key("program p;\n", "lazy");
        let b = content_key("program p;\n", "lazy");
        let c = content_key("program q;\n", "lazy");
        let d = content_key("program p;\n", "cautious");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        assert_eq!(a.len(), 64);
    }

    #[test]
    fn hits_and_misses_are_counted() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(8, &tele);
        assert!(cache.get("k").is_none());
        cache.insert(entry("k"));
        assert!(cache.get("k").is_some());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("server.cache.hits"), 1);
        assert_eq!(snap.counter("server.cache.misses"), 1);
    }

    #[test]
    fn capacity_is_bounded_lru() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("a"));
        cache.insert(entry("b"));
        cache.insert(entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_none(), "least recently used evicted");
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 1);
    }

    #[test]
    fn hot_key_survives_capacity_pressure() {
        // The LRU upgrade's whole point: a key that is *hit* between
        // insertions of one-off keys must outlive them all. Under the old
        // FIFO policy `hot` would age out after two insertions regardless
        // of traffic.
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("hot"));
        for i in 0..10 {
            assert!(cache.get("hot").is_some(), "hot key evicted after {i} one-offs");
            cache.insert(entry(&format!("one-off-{i}")));
        }
        assert!(cache.get("hot").is_some());
        assert_eq!(cache.len(), 2);
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 9);
    }

    #[test]
    fn reinsert_replaces_and_refreshes_recency() {
        let tele = Telemetry::new();
        let cache = ResultCache::new(2, &tele);
        cache.insert(entry("a"));
        cache.insert(entry("b"));
        // Re-inserting `a` marks it most recently used, so `b` is the LRU
        // victim when `c` arrives.
        cache.insert(entry("a"));
        cache.insert(entry("c"));
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert_eq!(tele.snapshot().counter("server.cache.evictions"), 1);
    }

    #[test]
    fn poison_list_quarantines_and_reports_novelty() {
        let poison = PoisonList::new(8);
        assert!(!poison.contains("k"));
        assert!(poison.insert("k"), "first insert is new");
        assert!(!poison.insert("k"), "second insert is a repeat");
        assert!(poison.contains("k"));
        assert_eq!(poison.len(), 1);
    }

    #[test]
    fn poison_list_is_bounded_fifo() {
        let poison = PoisonList::new(2);
        poison.insert("a");
        poison.insert("b");
        poison.insert("c");
        assert_eq!(poison.len(), 2);
        assert!(!poison.contains("a"), "oldest quarantine aged out");
        assert!(poison.contains("b"));
        assert!(poison.contains("c"));
    }
}

//! A deliberately small HTTP/1.1 layer over `std::net` — just enough for
//! the repair daemon's request/response cycle, in keeping with the
//! workspace's no-third-party-code rule.
//!
//! One request per connection (`Connection: close` on every response), a
//! `Content-Length` body (no chunked encoding), and bounded sizes for the
//! request line, each header, the header section, and the body so a
//! hostile client cannot balloon a worker's memory. The socket's read
//! timeout is treated as a deadline for the *whole* request, re-armed with
//! the remaining time before every read, so trickling one byte per timeout
//! window cannot stall a worker indefinitely (slowloris).

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

/// Largest request body accepted, in bytes. Specs are text; anything
/// bigger than this is either a mistake or an attack.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Largest single line (request line or one header), in bytes, excluding
/// nothing — the terminator counts too.
pub const MAX_LINE_BYTES: usize = 8 << 10;

/// Largest header section (all header lines together), in bytes.
pub const MAX_HEADER_BYTES: usize = 64 << 10;

/// A parsed request.
#[derive(Clone, Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// Path without the query string, e.g. `/repair`.
    pub path: String,
    /// Query parameters in order of appearance (no percent-decoding; the
    /// daemon's parameters are all simple tokens).
    pub query: Vec<(String, String)>,
    /// Headers, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Raw body bytes.
    pub body: Vec<u8>,
}

impl Request {
    /// First value of a query parameter.
    pub fn query(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Is the flag-style query parameter present and not `0`/`false`?
    pub fn query_flag(&self, key: &str) -> bool {
        match self.query(key) {
            Some(v) => !matches!(v, "0" | "false"),
            None => false,
        }
    }

    /// A header by (case-insensitive) name.
    pub fn header(&self, key: &str) -> Option<&str> {
        let key = key.to_ascii_lowercase();
        self.headers.iter().find(|(k, _)| *k == key).map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. `status == 0` means the peer closed
/// the connection before sending anything — not worth a response at all.
#[derive(Clone, Debug)]
pub struct HttpError {
    /// Status code to answer with (400, 413, …), or 0 for a silent close.
    pub status: u16,
    /// Human-readable cause, echoed in the error body.
    pub message: String,
}

impl HttpError {
    fn bad_request(message: impl Into<String>) -> HttpError {
        HttpError { status: 400, message: message.into() }
    }
}

/// Re-arm the socket timeout with whatever remains of the whole-request
/// deadline. Without this, each read resets the timeout and a client
/// trickling one byte per window holds the worker forever.
fn arm_deadline(stream: &TcpStream, deadline: Option<Instant>) -> Result<(), HttpError> {
    if let Some(d) = deadline {
        let remaining = d.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(HttpError {
                status: 408,
                message: "request read deadline exceeded".into(),
            });
        }
        let _ = stream.set_read_timeout(Some(remaining));
    }
    Ok(())
}

/// Read one CRLF/LF-terminated line of at most `max` bytes. `Ok(None)`
/// means EOF before any byte arrived. Never buffers more than `max` bytes
/// no matter how the peer frames its writes.
fn read_line_bounded(
    reader: &mut BufReader<&TcpStream>,
    deadline: Option<Instant>,
    max: usize,
) -> Result<Option<String>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        arm_deadline(reader.get_ref(), deadline)?;
        let (consumed, done) = match reader.fill_buf() {
            Ok([]) => {
                if line.is_empty() {
                    return Ok(None);
                }
                return Err(HttpError::bad_request("connection closed mid-line"));
            }
            Ok(buf) => match buf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    line.extend_from_slice(&buf[..i]);
                    (i + 1, true)
                }
                None => {
                    line.extend_from_slice(buf);
                    (buf.len(), false)
                }
            },
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(HttpError { status: 408, message: "timed out reading request".into() });
            }
            Err(e) => {
                return Err(if line.is_empty() {
                    HttpError { status: 0, message: format!("read failed: {e}") }
                } else {
                    HttpError::bad_request(format!("read failed: {e}"))
                });
            }
        };
        reader.consume(consumed);
        if line.len() > max {
            return Err(HttpError { status: 431, message: format!("line exceeds {max} bytes") });
        }
        if done {
            if line.last() == Some(&b'\r') {
                line.pop();
            }
            return String::from_utf8(line)
                .map(Some)
                .map_err(|_| HttpError::bad_request("non-UTF-8 bytes in request head"));
        }
    }
}

/// Read one request from the stream. The socket's read timeout (as
/// configured by the caller) is interpreted as a deadline for the entire
/// request; timeouts and early closes surface as errors.
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let stream: &TcpStream = &*stream;
    let deadline = stream.read_timeout().ok().flatten().map(|t| Instant::now() + t);
    let mut reader = BufReader::new(stream);

    let line = match read_line_bounded(&mut reader, deadline, MAX_LINE_BYTES)? {
        Some(line) => line,
        None => return Err(HttpError { status: 0, message: "closed before request".into() }),
    };
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or_default().to_string();
    let target = parts.next().unwrap_or_default().to_string();
    let version = parts.next().unwrap_or_default();
    if method.is_empty() || target.is_empty() || !version.starts_with("HTTP/1") {
        return Err(HttpError::bad_request(format!("malformed request line {line:?}")));
    }

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), parse_query(q)),
        None => (target, Vec::new()),
    };

    let mut headers = Vec::new();
    let mut header_bytes = 0usize;
    loop {
        let h = match read_line_bounded(&mut reader, deadline, MAX_LINE_BYTES) {
            Ok(Some(h)) => h,
            Ok(None) => return Err(HttpError::bad_request("truncated headers")),
            Err(e) if e.status == 0 => {
                return Err(HttpError::bad_request(format!("header read failed: {}", e.message)));
            }
            Err(e) => return Err(e),
        };
        if h.is_empty() {
            break;
        }
        header_bytes += h.len();
        if headers.len() >= 100 || header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError { status: 431, message: "header section too large".into() });
        }
        match h.split_once(':') {
            Some((k, v)) => headers.push((k.trim().to_ascii_lowercase(), v.trim().to_string())),
            None => return Err(HttpError::bad_request(format!("malformed header {h:?}"))),
        }
    }

    let content_length = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
        .transpose()
        .map_err(|_| HttpError::bad_request("unparsable Content-Length"))?
        .unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError { status: 413, message: "request body too large".into() });
    }
    let mut body = vec![0u8; content_length];
    let mut filled = 0;
    while filled < content_length {
        arm_deadline(reader.get_ref(), deadline)
            .map_err(|_| HttpError::bad_request("request read deadline exceeded mid-body"))?;
        match reader.read(&mut body[filled..]) {
            Ok(0) => return Err(HttpError::bad_request("short body: connection closed")),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(HttpError::bad_request(format!("short body: {e}"))),
        }
    }

    Ok(Request { method, path, query, headers, body })
}

fn parse_query(q: &str) -> Vec<(String, String)> {
    q.split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (kv.to_string(), String::from("1")),
        })
        .collect()
}

/// Write a complete response (status line, headers, body) and flush.
/// Every response closes the connection.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    write_response_with_headers(stream, status, content_type, &[], body)
}

/// [`write_response`] with extra response headers (e.g. the echoed
/// `X-Trace-Id`). Header values must be line-safe; callers only pass
/// values the daemon minted or re-rendered itself.
pub fn write_response_with_headers(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> std::io::Result<()> {
    use std::fmt::Write as _;
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n",
        status,
        reason(status),
        content_type,
        body.len(),
    );
    for (name, value) in extra_headers {
        let _ = write!(head, "{name}: {value}\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Standard reason phrase for the handful of codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    /// Push raw bytes through a real socket pair and parse them.
    fn roundtrip(raw: &[u8]) -> Result<Request, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
            s.shutdown(std::net::Shutdown::Write).unwrap();
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        let result = read_request(&mut stream);
        let _keepalive = writer.join().unwrap();
        result
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = roundtrip(
            b"POST /repair?mode=cautious&trace HTTP/1.1\r\n\
              Host: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/repair");
        assert_eq!(req.query("mode"), Some("cautious"));
        assert!(req.query_flag("trace"));
        assert!(!req.query_flag("missing"));
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body() {
        let req = roundtrip(b"GET /healthz HTTP/1.1\r\n\r\n").unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_garbage_request_line() {
        let err = roundtrip(b"NOT-HTTP\r\n\r\n").unwrap_err();
        assert_eq!(err.status, 400);
    }

    #[test]
    fn rejects_oversized_bodies_with_413() {
        let raw =
            format!("POST /repair HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        let err = roundtrip(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status, 413);
    }

    #[test]
    fn rejects_unterminated_request_line_with_431() {
        // A "request line" that never ends must be rejected once it passes
        // the line cap, not buffered until the peer feels like stopping.
        let mut raw = vec![b'A'; MAX_LINE_BYTES + 1024];
        raw.extend_from_slice(b" / HTTP/1.1\r\n\r\n");
        let err = roundtrip(&raw).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn rejects_oversized_header_line_with_431() {
        let mut raw = b"GET / HTTP/1.1\r\nX-Big: ".to_vec();
        raw.extend(vec![b'x'; MAX_LINE_BYTES + 1024]);
        raw.extend_from_slice(b"\r\n\r\n");
        let err = roundtrip(&raw).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn rejects_oversized_header_section_with_431() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        for i in 0..200 {
            raw.extend_from_slice(format!("X-H{i}: v\r\n").as_bytes());
        }
        raw.extend_from_slice(b"\r\n");
        let err = roundtrip(&raw).unwrap_err();
        assert_eq!(err.status, 431);
    }

    #[test]
    fn slow_trickle_is_bounded_by_a_total_deadline() {
        // One byte per 30ms with a 120ms socket timeout: per-read timeouts
        // alone would never fire; the whole-request deadline must.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            for _ in 0..40 {
                if s.write_all(b"G").is_err() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_millis(30));
            }
            s
        });
        let (mut stream, _) = listener.accept().unwrap();
        stream.set_read_timeout(Some(std::time::Duration::from_millis(120))).unwrap();
        let start = std::time::Instant::now();
        let err = read_request(&mut stream).unwrap_err();
        assert!(err.status == 408 || err.status == 0, "got {err:?}");
        assert!(start.elapsed() < std::time::Duration::from_secs(1));
        drop(stream);
        let _ = writer.join();
    }

    #[test]
    fn empty_connection_is_a_silent_close() {
        let err = roundtrip(b"").unwrap_err();
        assert_eq!(err.status, 0);
    }

    #[test]
    fn short_body_is_a_bad_request() {
        let err = roundtrip(b"POST /repair HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert_eq!(err.status, 400);
    }
}

//! The daemon: accept loop, worker pool, routing, and graceful shutdown.
//!
//! Control flow is deliberately boring:
//!
//! * the accept loop (caller's thread) accepts connections and `try_push`es
//!   them onto the bounded [`JobQueue`]; a full queue answers `429`
//!   immediately — backpressure, not unbounded latency;
//! * `workers` threads pop connections, read one HTTP request each, run the
//!   repair pipeline (through the content-addressed [`ResultCache`]), write
//!   the response, and close;
//! * SIGTERM / ctrl-c (or [`ServerHandle::shutdown`]) flips a flag; the
//!   accept loop stops, closes the queue, and the workers drain every job
//!   already accepted before the scope joins them.

use crate::breaker::Breaker;
use crate::cache::{CacheEntry, PoisonList, ResultCache};
use crate::flight::InFlight;
use crate::http::{self, Request};
use crate::introspect::{JobRecord, JobRing, JobStatus, JOB_RING_CAP};
use crate::job::{self, Mode, SimStatus};
use crate::queue::{JobQueue, PushError};
use crate::signal;
use ftrepair_core::{CheckpointPolicy, Checkpointer, RepairAborted, RepairOptions, Token};
use ftrepair_explicit::simulate::SimConfig;
use ftrepair_store::{
    find_artifact, CheckpointStore, DiskStore, JobJournal, JournalRecord, NewEntry as StoreWrite,
    ART_INVARIANT, ART_MS, ART_SPAN,
};
use ftrepair_telemetry::report::set_snapshot_fields;
use ftrepair_telemetry::trace::{format_trace_id, mint_trace_id, parse_trace_id};
use ftrepair_telemetry::{prometheus, Histogram, Json, RunReport, Telemetry, SCHEMA_VERSION};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything tunable about the daemon.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7177`. Port 0 picks an ephemeral port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads running repairs. 0 means "number of CPUs".
    pub workers: usize,
    /// Bounded queue capacity; beyond it, `POST` gets `429`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries.
    pub cache_cap: usize,
    /// Append one JSONL run report per repair job (plus a summary line on
    /// shutdown) to this path.
    pub metrics_out: Option<PathBuf>,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Wall-clock budget for one repair job. A job that exhausts it is
    /// aborted at the next cancellation checkpoint and answered
    /// `503 {"error":"timeout"}` — never cached. `Duration::ZERO` expires
    /// immediately (every job times out; useful for tests).
    pub job_timeout: Duration,
    /// How long after a worker death or queue saturation `/healthz` keeps
    /// reporting `"degraded"`.
    pub degraded_window: Duration,
    /// Capacity of the poison list quarantining specs that panicked the
    /// engine.
    pub poison_cap: usize,
    /// Default BDD reorder policy for jobs that do not pass an explicit
    /// `reorder` query parameter (`serve --reorder`).
    pub reorder: ftrepair_core::ReorderMode,
    /// Root directory of the on-disk result store (`serve --store-dir`);
    /// `None` runs memory-only, exactly as before the store existed.
    pub store_dir: Option<PathBuf>,
    /// Byte budget for the store's entries (0 = unlimited); beyond it the
    /// coldest entries are evicted.
    pub store_budget: u64,
    /// Warm-start lazy repairs from the nearest cached neighbor when the
    /// exact key misses (`serve --no-warm-start` clears this).
    pub warm_start: bool,
    /// Default BDD live-node budget per job (`serve --job-max-nodes`);
    /// 0 = unlimited. A job that exhausts it is aborted at the next
    /// cancellation checkpoint and answered
    /// `503 {"error":"node budget exhausted"}` — never cached, and the
    /// process survives where an unbounded arena would have been
    /// OOM-killed. Clients may lower (never raise) it per request with
    /// `?max-nodes=N`.
    pub job_max_nodes: usize,
    /// Consecutive store I/O failures that trip the store circuit breaker
    /// into memory-only degraded mode (see [`crate::breaker`]).
    pub breaker_threshold: u32,
    /// Base of the breaker's full-jitter backoff between half-open probes.
    pub breaker_backoff: Duration,
    /// Ceiling of the breaker's backoff.
    pub breaker_max_backoff: Duration,
    /// Durable job journal (`serve --journal`): every job is recorded
    /// before it executes and marked complete when it finishes, so a
    /// `kill -9` mid-repair loses no accepted work — the next boot scans
    /// the journal and replays whatever is incomplete. `None` disables
    /// journaling (no recovery, no WAL writes).
    pub journal: Option<PathBuf>,
    /// Bound on the graceful-shutdown drain. Jobs still *queued* when this
    /// deadline passes are answered `503` and counted under
    /// `server.jobs.abandoned`; jobs already *running* are cancelled at
    /// their next token checkpoint — which forces a final mid-repair
    /// checkpoint when checkpointing is on, and leaves journaled jobs
    /// pending so the next boot resumes them.
    pub drain_timeout: Duration,
    /// Filesystem implementation handed to the disk store — tests inject
    /// an `ErrInjFs` here to fault the volume on purpose.
    #[cfg(any(test, feature = "chaos"))]
    pub store_vfs: Option<Arc<dyn ftrepair_store::Vfs>>,
    /// Fault-injection plan (tests and the `chaos` feature only).
    #[cfg(any(test, feature = "chaos"))]
    pub chaos: Option<Arc<crate::chaos::Chaos>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7177".to_string(),
            workers: 0,
            queue_cap: 64,
            cache_cap: 256,
            metrics_out: None,
            io_timeout: Duration::from_secs(10),
            job_timeout: Duration::from_secs(30),
            degraded_window: Duration::from_secs(60),
            poison_cap: 64,
            reorder: ftrepair_core::ReorderMode::default(),
            store_dir: None,
            store_budget: 0,
            warm_start: true,
            job_max_nodes: 0,
            breaker_threshold: 3,
            breaker_backoff: Duration::from_millis(500),
            breaker_max_backoff: Duration::from_secs(30),
            journal: None,
            drain_timeout: Duration::from_secs(30),
            #[cfg(any(test, feature = "chaos"))]
            store_vfs: None,
            #[cfg(any(test, feature = "chaos"))]
            chaos: None,
        }
    }
}

/// Fingerprint distance (differing action hashes) up to which a cached
/// neighbor is considered close enough to donate warm-start seeds. One
/// edited action costs 2 (one hash removed, one added), so this admits a
/// handful of action edits — beyond that the seed's head start fades and
/// the lookup is just wasted imports.
const WARM_MAX_DISTANCE: usize = 16;

struct Shared {
    /// Accepted connections, each paired with its enqueue instant so the
    /// worker that pops it can record the queue wait.
    queue: JobQueue<(TcpStream, Instant)>,
    cache: ResultCache,
    /// The durable tier under the in-memory cache; `None` when the daemon
    /// runs without `--store-dir`.
    store: Option<Arc<DiskStore>>,
    /// Trips the store into memory-only degraded mode after consecutive
    /// I/O failures; `/healthz` drives its half-open recovery probes.
    breaker: Breaker,
    /// Completed repairs queued for asynchronous write-through — the
    /// response path never waits on disk.
    store_writes: JobQueue<StoreWrite>,
    /// Warm-start lookups enabled?
    warm_start: bool,
    poison: PoisonList,
    inflight: InFlight,
    /// Ring of the most recent jobs for `GET /jobs`.
    jobs: JobRing,
    tele: Telemetry,
    /// Pre-registered handles for the two per-request histograms — the
    /// hot path must not take the registry lock per connection.
    h_request: Histogram,
    h_queue_wait: Histogram,
    metrics_out: Option<PathBuf>,
    metrics_lock: Mutex<()>,
    shutdown: AtomicBool,
    /// Raised by [`ServerHandle::cancel_jobs`]; every job token carries it.
    cancel_jobs: Arc<AtomicBool>,
    io_timeout: Duration,
    job_timeout: Duration,
    job_max_nodes: usize,
    default_reorder: ftrepair_core::ReorderMode,
    degraded_window: Duration,
    /// Write-ahead job journal (`--journal`); `None` disables recovery.
    journal: Option<JobJournal>,
    /// Per-key mid-repair checkpoint slots. Present whenever the store or
    /// the journal gives them a durable home; absent in pure-memory mode.
    ckpts: Option<Arc<CheckpointStore>>,
    /// Incomplete journal records found at boot (each is either completed
    /// from the store without recompute, or replayed).
    recovered: AtomicU64,
    /// Recovered records that actually re-executed.
    replayed: AtomicU64,
    /// Jobs shed at the shutdown drain deadline.
    abandoned: AtomicU64,
    /// Pending journal records the boot scan found (frozen at bind).
    pending_at_boot: u64,
    /// Connections (and boot replays) a worker is currently handling —
    /// what the bounded drain waits on.
    active: AtomicUsize,
    drain_timeout: Duration,
    workers: usize,
    /// Workers currently inside their serve loop (dips while the
    /// supervisor recycles one, returns to `workers` after).
    workers_alive: Mutex<usize>,
    last_worker_fault: Mutex<Option<Instant>>,
    last_saturation: Mutex<Option<Instant>>,
    started: Instant,
    #[cfg(any(test, feature = "chaos"))]
    chaos: Option<Arc<crate::chaos::Chaos>>,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    /// The cancellation token one repair job runs under: the server-wide
    /// cancel flag plus this job's deadline.
    fn job_token(&self) -> Token {
        Token::unbounded()
            .with_flag(Arc::clone(&self.cancel_jobs))
            .with_deadline_in(self.job_timeout)
    }

    /// Run one read-path operation against the store under the breaker:
    /// skipped entirely while the breaker is not closed (memory-only
    /// degraded mode), and classified by the store's I/O error counter
    /// afterwards — `DiskStore` reports transient volume errors there
    /// rather than in return values (a flaky read is a miss, not data
    /// loss, so `get` has no error channel to inspect).
    fn with_store<T>(&self, f: impl FnOnce(&DiskStore) -> T) -> Option<T> {
        let store = self.store.as_ref()?;
        if !self.breaker.allow() {
            self.tele.add("store.breaker.skipped_reads", 1);
            return None;
        }
        let before = store.io_errors();
        let out = f(store);
        if store.io_errors() > before {
            self.breaker.record_failure();
        } else {
            self.breaker.record_success();
        }
        Some(out)
    }

    /// WAL a job before it executes (no-op without `--journal`). Once the
    /// fsynced append returns, a crash at any later point leaves the job
    /// recoverable from the journal alone. Append failures are counted and
    /// logged, never fatal — journaling is crash insurance, not a hard
    /// dependency of the response path.
    fn journal_start(&self, spec: &job::JobSpec, trace_id: u64) {
        if let Some(journal) = &self.journal {
            let rec = JournalRecord {
                key: spec.key.clone(),
                case: spec.name.clone(),
                mode: spec.mode.as_str().to_string(),
                trace_id: format_trace_id(trace_id),
                opts: job::options_fingerprint(spec.mode, &spec.opts),
                spec: spec.canonical.clone(),
            };
            if let Err(e) = journal.append_start(&rec) {
                self.tele.add("telemetry.write_errors", 1);
                eprintln!("ftrepair-server: journal start for {} failed: {e}", spec.key);
            }
        }
    }

    /// Journal a terminal outcome for `key` (no-op without `--journal`).
    /// Deliberately *not* called for `Cancelled` aborts: a drain-cancelled
    /// job stays pending so the next boot resumes it — that is the
    /// checkpoint-and-exit contract.
    fn journal_done(&self, key: &str, outcome: &str) {
        if let Some(journal) = &self.journal {
            if let Err(e) = journal.append_done(key, outcome) {
                self.tele.add("telemetry.write_errors", 1);
                eprintln!("ftrepair-server: journal done for {key} failed: {e}");
            }
        }
    }

    /// The checkpoint sink for one job: every policy-approved offer from
    /// the repair loops lands the job's current `(invariant, span, ms)` in
    /// its slot — crash-safely, so the slot is always the previous or the
    /// new snapshot, never a torn one.
    fn checkpointer_for(&self, key: &str) -> Option<Arc<Checkpointer>> {
        let ckpts = Arc::clone(self.ckpts.as_ref()?);
        let key = key.to_string();
        let tele = self.tele.clone();
        Some(Arc::new(Checkpointer::new(CheckpointPolicy::default(), move |img| {
            match ckpts.put(
                &key,
                img.iteration,
                &[
                    (ART_INVARIANT.to_string(), img.invariant.clone()),
                    (ART_SPAN.to_string(), img.span.clone()),
                    (ART_MS.to_string(), img.ms.clone()),
                ],
            ) {
                Ok(()) => tele.add("server.jobs.checkpoints_written", 1),
                Err(e) => {
                    tele.add("telemetry.write_errors", 1);
                    eprintln!("ftrepair-server: checkpoint write for {key} failed: {e}");
                }
            }
        })))
    }

    /// A previous incarnation's mid-repair snapshot for this exact key,
    /// repackaged as warm-start seeds (distance 0): a resumed run seeds
    /// Step 1 from where the interrupted one stopped instead of from zero.
    /// Lazy mode only — the cautious baseline has no seedable phase.
    fn checkpoint_resume(&self, spec: &job::JobSpec) -> Option<job::WarmInfo> {
        if spec.mode != Mode::Lazy {
            return None;
        }
        let slot = self.ckpts.as_ref()?.get(&spec.key)?;
        let invariant = find_artifact(&slot.artifacts, ART_INVARIANT)?.clone();
        let span = find_artifact(&slot.artifacts, ART_SPAN)?.clone();
        self.tele.add("server.jobs.checkpoint_resumes", 1);
        Some(job::WarmInfo {
            neighbor: format!("checkpoint@{}", slot.iteration),
            distance: 0,
            invariant,
            span,
        })
    }

    fn note_worker_fault(&self) {
        *self.last_worker_fault.lock().unwrap() = Some(Instant::now());
    }

    fn note_saturation(&self) {
        *self.last_saturation.lock().unwrap() = Some(Instant::now());
    }

    /// Did a worker die or the queue saturate within the degraded window?
    fn degraded(&self) -> bool {
        let recent = |slot: &Mutex<Option<Instant>>| {
            slot.lock().unwrap().is_some_and(|at| at.elapsed() < self.degraded_window)
        };
        recent(&self.last_worker_fault) || recent(&self.last_saturation)
    }

    fn worker_started(&self) {
        let mut alive = self.workers_alive.lock().unwrap();
        *alive += 1;
        self.tele.set_gauge("server.workers.alive", *alive as u64);
    }

    fn worker_stopped(&self) {
        let mut alive = self.workers_alive.lock().unwrap();
        *alive = alive.saturating_sub(1);
        self.tele.set_gauge("server.workers.alive", *alive as u64);
    }

    /// Record a job panic: count it, flag health, quarantine the key, and
    /// put the payload in the JSONL stream so a postmortem has it even
    /// after the process is gone.
    fn quarantine(&self, spec: &job::JobSpec, why: &str) {
        self.tele.add("server.workers.panics", 1);
        self.note_worker_fault();
        if self.poison.insert(&spec.key) {
            self.tele.add("server.jobs.quarantined", 1);
        }
        let mut report = RunReport::new(&spec.name, "panic");
        report.set("server_key", spec.key.as_str().into());
        report.set("panic", why.into());
        self.append_report(&report);
        eprintln!(
            "ftrepair-server: repair of {} panicked ({why}); key {} quarantined",
            spec.name, spec.key
        );
    }

    /// Serialize JSONL appends: lines can exceed the pipe-atomicity size,
    /// and interleaved lines would corrupt the file for every consumer.
    /// Failed appends are counted (`telemetry.write_errors`) as well as
    /// logged — a full disk shows up on `/metrics` scrapes, not only in a
    /// log nobody tails.
    fn append_report(&self, report: &RunReport) {
        if let Some(path) = &self.metrics_out {
            let _guard = self.metrics_lock.lock().unwrap();
            if let Err(e) = report.append_to(path) {
                self.tele.add("telemetry.write_errors", 1);
                eprintln!("ftrepair-server: cannot append metrics to {}: {e}", path.display());
            }
        }
    }
}

/// Handle for stopping a running server from another thread (tests, or an
/// embedding with its own signal story).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, drain queued jobs, exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// Abort every in-flight and future repair job at its next
    /// cancellation checkpoint (`503 {"error":"cancelled"}`). The flag is
    /// sticky — pair it with [`ServerHandle::shutdown`] when the drain
    /// must not wait out long-running fixpoints.
    pub fn cancel_jobs(&self) {
        self.shared.cancel_jobs.store(true, Ordering::SeqCst);
    }

    /// The server's telemetry (live; snapshot to read).
    pub fn telemetry(&self) -> Telemetry {
        self.shared.tele.clone()
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    /// Pending journal records the boot scan found; `run` replays them on
    /// a dedicated thread while the accept loop serves fresh traffic.
    recovery: Vec<JournalRecord>,
}

/// Bind with `SO_REUSEADDR` so a restarted daemon can reclaim its port
/// immediately. The daemon closes every connection (`Connection: close`),
/// which leaves server-side TIME_WAIT pairs behind; without the option a
/// warm restart on the same `--addr` fails with `EADDRINUSE` for up to a
/// minute — exactly the window the persistent store is meant to cover. The
/// workspace links no third-party crates, so the option is set through raw
/// `socket(2)`/`setsockopt(2)` (libc is always linked on Linux); on other
/// targets or non-IPv4 addresses this falls back to a plain bind.
fn bind_reusable(addr: &str) -> io::Result<TcpListener> {
    #[cfg(target_os = "linux")]
    {
        use std::net::{SocketAddr, ToSocketAddrs};
        use std::os::fd::FromRawFd;
        extern "C" {
            fn socket(domain: i32, ty: i32, protocol: i32) -> i32;
            fn setsockopt(fd: i32, level: i32, name: i32, value: *const i32, len: u32) -> i32;
            fn bind(fd: i32, addr: *const u8, len: u32) -> i32;
            fn listen(fd: i32, backlog: i32) -> i32;
            fn close(fd: i32) -> i32;
        }
        const AF_INET: i32 = 2;
        const SOCK_STREAM: i32 = 1;
        const SOL_SOCKET: i32 = 1;
        const SO_REUSEADDR: i32 = 2;

        let v4 = addr.to_socket_addrs().ok().and_then(|mut addrs| {
            addrs.find_map(|a| match a {
                SocketAddr::V4(v4) => Some(v4),
                SocketAddr::V6(_) => None,
            })
        });
        if let Some(v4) = v4 {
            unsafe {
                let fd = socket(AF_INET, SOCK_STREAM, 0);
                if fd >= 0 {
                    let one: i32 = 1;
                    // struct sockaddr_in: family, port (BE), addr (BE), pad.
                    let mut sa = [0u8; 16];
                    sa[0..2].copy_from_slice(&(AF_INET as u16).to_ne_bytes());
                    sa[2..4].copy_from_slice(&v4.port().to_be_bytes());
                    sa[4..8].copy_from_slice(&v4.ip().octets());
                    if setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, 4) == 0
                        && bind(fd, sa.as_ptr(), 16) == 0
                        && listen(fd, 128) == 0
                    {
                        return Ok(TcpListener::from_raw_fd(fd));
                    }
                    let err = io::Error::last_os_error();
                    close(fd);
                    return Err(err);
                }
            }
        }
    }
    TcpListener::bind(addr)
}

impl Server {
    /// Bind the listener and set up queue, cache, and telemetry.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = bind_reusable(&config.addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            config.workers
        };
        let tele = Telemetry::new();
        let cache = ResultCache::new(config.cache_cap, &tele);
        let store = match &config.store_dir {
            Some(dir) => {
                #[cfg(any(test, feature = "chaos"))]
                let opened = match &config.store_vfs {
                    Some(vfs) => {
                        DiskStore::open_with_vfs(dir, config.store_budget, &tele, Arc::clone(vfs))?
                    }
                    None => DiskStore::open(dir, config.store_budget, &tele)?,
                };
                #[cfg(not(any(test, feature = "chaos")))]
                let opened = DiskStore::open(dir, config.store_budget, &tele)?;
                Some(Arc::new(opened))
            }
            None => None,
        };
        // The WAL: scan for work the previous incarnation accepted but
        // never finished. The scan also compacts the file, so journal
        // growth is bounded by the in-flight set.
        let mut recovery = Vec::new();
        let mut pending_at_boot = 0u64;
        let journal = match &config.journal {
            Some(path) => {
                let (journal, scan) = JobJournal::open(path)?;
                if !scan.pending.is_empty() || scan.dropped_lines > 0 {
                    eprintln!(
                        "ftrepair-server: journal {}: {} pending job(s) to recover, \
                         {} completed, {} torn line(s) dropped",
                        path.display(),
                        scan.pending.len(),
                        scan.completed,
                        scan.dropped_lines
                    );
                }
                pending_at_boot = scan.pending.len() as u64;
                recovery = scan.pending;
                Some(journal)
            }
            None => None,
        };
        // Checkpoint slots live beside the store when there is one, else
        // beside the journal; without either durable root, mid-repair
        // checkpointing is off (there is nowhere to resume from anyway).
        let ckpt_root = config
            .store_dir
            .as_ref()
            .map(|dir| dir.join("checkpoints"))
            .or_else(|| config.journal.as_ref().map(|p| p.with_file_name("checkpoints")));
        let ckpts = match ckpt_root {
            Some(root) => Some(Arc::new(CheckpointStore::open(&root)?)),
            None => None,
        };
        // Seeded per-process: a fleet sharing one sick volume must not
        // probe it in lockstep, which is the whole point of the jitter.
        let breaker = Breaker::new(
            config.breaker_threshold,
            config.breaker_backoff,
            config.breaker_max_backoff,
            u64::from(std::process::id()) ^ 0xB4EA_4E37_5EED_0001,
            &tele,
        );
        let h_request = tele.histogram("server.request.seconds");
        let h_queue_wait = tele.histogram("server.queue_wait.seconds");
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_cap),
            cache,
            store,
            breaker,
            // Same bound as the connection queue: a burst beyond it drops
            // writes (counted), never blocks a worker.
            store_writes: JobQueue::new(config.queue_cap.max(16)),
            warm_start: config.warm_start,
            poison: PoisonList::new(config.poison_cap),
            inflight: InFlight::new(),
            jobs: JobRing::new(JOB_RING_CAP),
            tele,
            h_request,
            h_queue_wait,
            metrics_out: config.metrics_out.clone(),
            metrics_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            cancel_jobs: Arc::new(AtomicBool::new(false)),
            io_timeout: config.io_timeout,
            job_timeout: config.job_timeout,
            job_max_nodes: config.job_max_nodes,
            default_reorder: config.reorder,
            degraded_window: config.degraded_window,
            journal,
            ckpts,
            recovered: AtomicU64::new(0),
            replayed: AtomicU64::new(0),
            abandoned: AtomicU64::new(0),
            pending_at_boot,
            active: AtomicUsize::new(0),
            drain_timeout: config.drain_timeout,
            workers,
            workers_alive: Mutex::new(0),
            last_worker_fault: Mutex::new(None),
            last_saturation: Mutex::new(None),
            started: Instant::now(),
            #[cfg(any(test, feature = "chaos"))]
            chaos: config.chaos.clone(),
        });
        Ok(Server { listener, shared, recovery })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server later.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Run until shutdown is requested (signal or handle), then drain
    /// in-flight jobs, write the summary report, and return.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared, recovery } = self;
        listener.set_nonblocking(true)?;
        let accepted = shared.tele.counter("server.http.accepted");
        let rejected = shared.tele.counter("server.http.rejected_busy");

        // The store writer outlives the worker scope (it must drain writes
        // the last workers enqueue), so it runs as a plain spawned thread
        // holding its own `Arc<Shared>` and is joined explicitly after the
        // scope — deterministic drain, no writes lost at shutdown.
        let writer = shared.store.as_ref().map(|store| {
            let store = Arc::clone(store);
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || store_writer(&shared, &store))
        });

        // Boot recovery runs on its own thread so a slow replay never
        // delays the accept loop. Joined before the store-write queue
        // closes (replays enqueue write-throughs like any other job); the
        // bounded drain covers it via `active`, and a shutdown mid-replay
        // leaves the untouched records pending for the next boot.
        let recoverer = (!recovery.is_empty()).then(|| {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || recover_jobs(&shared, recovery))
        });

        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                let shared = Arc::clone(&shared);
                scope.spawn(move || supervise_worker(&shared));
            }

            while !shared.shutting_down() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        accepted.inc();
                        let _ = stream.set_read_timeout(Some(shared.io_timeout));
                        let _ = stream.set_write_timeout(Some(shared.io_timeout));
                        let item = (stream, Instant::now());
                        #[cfg(any(test, feature = "chaos"))]
                        let push = match &shared.chaos {
                            Some(chaos) if chaos.queue_forced_full() => {
                                Err((item, PushError::Full))
                            }
                            _ => shared.queue.try_push(item),
                        };
                        #[cfg(not(any(test, feature = "chaos")))]
                        let push = shared.queue.try_push(item);
                        if let Err(((mut stream, _queued_at), why)) = push {
                            rejected.inc();
                            if why == PushError::Full {
                                shared.note_saturation();
                                shared.tele.add("server.queue.saturated", 1);
                            }
                            let body = error_body(match why {
                                PushError::Full => "server busy: job queue is full, retry later",
                                PushError::Closed => "server is shutting down",
                            });
                            let _ = http::write_response(&mut stream, 429, JSON, &body);
                            discard_request_bytes(&mut stream);
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("ftrepair-server: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            // Drain: no new connections, and every accepted job is served
            // — up to the drain deadline, after which still-queued jobs
            // are shed with a 503 and running repairs are cancelled at
            // their next checkpoint (leaving resume points behind).
            shared.queue.close();
            drain_with_deadline(&shared);
        });
        if let Some(handle) = recoverer {
            let _ = handle.join();
        }
        // Workers are done, so nothing can enqueue further writes: close
        // the write queue and wait for the writer to flush what is left.
        shared.store_writes.close();
        if let Some(handle) = writer {
            let _ = handle.join();
        }

        let mut summary = RunReport::new("server", "summary");
        summary.set("uptime_s", shared.started.elapsed().as_secs_f64().into());
        summary.set("workers", shared.workers.into());
        summary.set("cache_entries", shared.cache.len().into());
        summary.set_snapshot(&shared.tele.snapshot());
        shared.append_report(&summary);
        Ok(())
    }
}

const JSON: &str = "application/json";
/// Prometheus text exposition format 0.0.4.
const PROMETHEUS: &str = "text/plain; version=0.0.4";

fn error_body(message: &str) -> String {
    let mut j = Json::obj();
    j.set("ok", false.into());
    j.set("error", message.into());
    j.to_string()
}

/// Drain the write-through queue into the disk store until it closes.
/// Failures are counted and logged but never propagate — persistence is an
/// optimization, and a full disk must not take repairs down with it.
///
/// Two escalations beyond count-and-log:
///
/// * `ENOSPC` triggers an emergency eviction of the coldest entries and
///   one retry — a store sized near its volume's capacity frees its own
///   space before giving up;
/// * each failed write feeds the circuit breaker; while the breaker is
///   open, queued writes are dropped outright (counted) instead of
///   hammering a volume already known to be sick.
const ENOSPC: i32 = 28;

fn store_writer(shared: &Shared, store: &DiskStore) {
    while let Some(entry) = shared.store_writes.pop() {
        if !shared.breaker.allow() {
            shared.tele.add("store.breaker.dropped_writes", 1);
            continue;
        }
        let mut result = store.put(&entry);
        if let Err(e) = &result {
            if e.raw_os_error() == Some(ENOSPC) {
                shared.tele.add("store.enospc", 1);
                if store.shed_coldest(2) > 0 {
                    result = store.put(&entry);
                }
            }
        }
        match result {
            Ok(true) => {
                shared.tele.add("store.writes", 1);
                shared.breaker.record_success();
            }
            Ok(false) => shared.breaker.record_success(), // benign race: another writer landed this key
            Err(e) => {
                shared.tele.add("telemetry.write_errors", 1);
                shared.breaker.record_failure();
                eprintln!("ftrepair-server: store write for {} failed: {e}", entry.key);
            }
        }
    }
}

/// How one incarnation of a worker's serve loop ended.
enum WorkerExit {
    /// The queue is closed and empty; the pool is draining for shutdown.
    Drained,
    /// A job panicked (absorbed, client answered). Retire this incarnation
    /// and start a fresh one: a panic mid-repair can leak or corrupt
    /// anything that was live on this thread, and the next job must not
    /// inherit that.
    Recycle,
}

/// Keep one worker slot alive until shutdown, restarting the serve loop
/// after every recycle or escaped panic.
///
/// The `catch_unwind` here is what keeps one hostile spec from taking the
/// whole daemon down at shutdown: a scoped thread that dies panicking
/// re-raises the panic when `std::thread::scope` joins it, so without this
/// boundary the server would absorb a panicking job, drain cleanly — and
/// then crash in the scope join. Absorbing the panic and looping means the
/// scope only ever joins threads that returned.
fn supervise_worker(shared: &Shared) {
    loop {
        shared.worker_started();
        let exit = catch_unwind(AssertUnwindSafe(|| worker_loop(shared)));
        shared.worker_stopped();
        match exit {
            Ok(WorkerExit::Drained) => return,
            Ok(WorkerExit::Recycle) => {}
            Err(payload) => {
                // A panic that escaped the per-job boundary (i.e. not a
                // repair panic — those are absorbed in `cached_repair`).
                shared.tele.add("server.workers.panics", 1);
                shared.note_worker_fault();
                eprintln!(
                    "ftrepair-server: worker died outside a job ({}); respawning",
                    panic_message(payload.as_ref())
                );
            }
        }
        shared.tele.add("server.workers.respawned", 1);
    }
}

fn worker_loop(shared: &Shared) -> WorkerExit {
    while let Some((stream, queued_at)) = shared.queue.pop() {
        // Guard, not a pair of calls: a panic escaping the connection
        // handler must still decrement, or the shutdown drain would wait
        // its full deadline on a phantom job.
        let _active = ActiveGuard::enter(&shared.active);
        if handle_connection(shared, stream, queued_at) {
            return WorkerExit::Recycle;
        }
        #[cfg(any(test, feature = "chaos"))]
        if let Some(chaos) = &shared.chaos {
            chaos.maybe_kill_worker();
        }
    }
    WorkerExit::Drained
}

/// RAII increment of the in-flight job count the bounded drain waits on.
struct ActiveGuard<'a>(&'a AtomicUsize);

impl<'a> ActiveGuard<'a> {
    fn enter(counter: &'a AtomicUsize) -> ActiveGuard<'a> {
        counter.fetch_add(1, Ordering::SeqCst);
        ActiveGuard(counter)
    }
}

impl Drop for ActiveGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Bound the shutdown drain. Wait for the queue to empty and every worker
/// (and boot replay) to go idle; at `drain_timeout`, cancel in-flight
/// repairs — their tokens force one final checkpoint on the way out — and
/// answer every still-queued connection `503`, counted under
/// `server.jobs.abandoned`, instead of dropping sockets on the floor.
/// Read and discard whatever request bytes the client already sent on a
/// socket we are answering without serving: dropping a socket with unread
/// data provokes an RST that can destroy the just-written response before
/// the peer reads it. Bounded by a total deadline AND a byte budget — this
/// runs on the accept/drain thread, and per-read timeouts alone would let
/// a trickling client stall it indefinitely.
fn discard_request_bytes(stream: &mut std::net::TcpStream) {
    use io::Read;
    let deadline = Instant::now() + Duration::from_millis(100);
    let mut budget: usize = 64 << 10;
    let mut sink = [0u8; 4096];
    while budget > 0 {
        let left = deadline.saturating_duration_since(Instant::now());
        if left.is_zero() || stream.set_read_timeout(Some(left)).is_err() {
            break;
        }
        match stream.read(&mut sink) {
            Ok(n) if n > 0 => budget = budget.saturating_sub(n),
            _ => break,
        }
    }
}

fn drain_with_deadline(shared: &Shared) {
    let deadline = Instant::now() + shared.drain_timeout;
    loop {
        if shared.queue.is_empty() && shared.active.load(Ordering::SeqCst) == 0 {
            return;
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    shared.cancel_jobs.store(true, Ordering::SeqCst);
    let shed = shared.queue.drain_remaining();
    if !shed.is_empty() {
        eprintln!(
            "ftrepair-server: drain deadline passed; abandoning {} queued job(s)",
            shed.len()
        );
    }
    for (mut stream, _queued_at) in shed {
        shared.abandoned.fetch_add(1, Ordering::Relaxed);
        shared.tele.add("server.jobs.abandoned", 1);
        let body = error_body("server draining: job abandoned before a worker picked it up");
        let _ = http::write_response(&mut stream, 503, JSON, &body);
        discard_request_bytes(&mut stream);
    }
    // In-flight repairs unwind at their next token poll; the worker scope
    // join (and the journal, which keeps cancelled jobs pending) covers
    // the rest.
}

/// Replay the journal's pending records. A key already durable in the
/// disk store completes as `recovered` without recompute; the rest
/// re-execute (`replayed`), seeded from their checkpoint slot when the
/// previous incarnation left one. Shutdown mid-recovery stops cleanly:
/// untouched records stay pending for the next boot.
fn recover_jobs(shared: &Shared, pending: Vec<JournalRecord>) {
    let _active = ActiveGuard::enter(&shared.active);
    for rec in pending {
        if shared.shutting_down() {
            break;
        }
        shared.recovered.fetch_add(1, Ordering::Relaxed);
        shared.tele.add("server.jobs.recovered", 1);
        replay_job(shared, &rec);
    }
}

/// Re-run one journaled job exactly as it was submitted: same canonical
/// spec, same options (re-parsed from the fingerprint), fresh trace
/// honoring the recorded ID.
fn replay_job(shared: &Shared, rec: &JournalRecord) {
    let trace_id = parse_trace_id(&rec.trace_id).unwrap_or_else(mint_trace_id);
    let Some((mode, opts)) = job::options_from_fingerprint(&rec.opts) else {
        eprintln!(
            "ftrepair-server: journal record {} has unparseable options {:?}; retiring it",
            rec.key, rec.opts
        );
        shared.journal_done(&rec.key, "unparseable-options");
        return;
    };
    // Budgets are not journaled (they are not part of the content key);
    // re-apply this server's own limits like any fresh submission.
    let opts = RepairOptions { max_nodes: shared.job_max_nodes, ..opts };
    let spec = match job::prepare(&rec.spec, mode, opts) {
        Ok(spec) => spec,
        Err(message) => {
            eprintln!("ftrepair-server: journaled spec {} no longer parses ({message})", rec.key);
            shared.journal_done(&rec.key, "invalid");
            return;
        }
    };
    if spec.key != rec.key {
        // Canonicalization or fingerprint drift between incarnations —
        // the record cannot be completed under its own key; surface it
        // loudly and retire it rather than replaying into a boot loop.
        eprintln!(
            "ftrepair-server: journal key mismatch: recorded {} re-prepares to {}; retiring it",
            rec.key, spec.key
        );
        shared.journal_done(&rec.key, "key-mismatch");
        return;
    }

    let record =
        JobRecord::new(trace_id, &spec.name, spec.mode.as_str(), &spec.key, Duration::ZERO);
    shared.jobs.push(Arc::clone(&record));

    if shared.poison.contains(&spec.key) {
        record.finish(JobStatus::Quarantined);
        shared.journal_done(&spec.key, "quarantined");
        return;
    }
    // Already durable? Recovery completes without recompute — the crash
    // happened after the result landed but before the done record did.
    if shared.cache.get(&spec.key).is_some()
        || shared.with_store(|store| store.get(&spec.key)).flatten().is_some()
    {
        record.finish(JobStatus::Recovered);
        shared.journal_done(&spec.key, "recovered-cached");
        return;
    }

    let _lead = loop {
        if shared.cache.get(&spec.key).is_some() {
            // A live client raced us to this key and completed it.
            record.finish(JobStatus::Recovered);
            shared.journal_done(&spec.key, "recovered-cached");
            return;
        }
        match shared.inflight.begin(&spec.key) {
            Some(guard) => break guard,
            None => continue,
        }
    };

    shared.replayed.fetch_add(1, Ordering::Relaxed);
    shared.tele.add("server.jobs.replayed", 1);
    let warm = shared.checkpoint_resume(&spec).or_else(|| warm_lookup(shared, &spec));

    let job_tele = Telemetry::new();
    let mut token = shared.job_token();
    if let Some(ckpt) = shared.checkpointer_for(&spec.key) {
        token = token.with_checkpointer(ckpt);
    }
    let run = catch_unwind(AssertUnwindSafe(|| {
        job::execute_store(&spec, &job_tele, true, &token, warm.as_ref(), shared.store.is_some())
    }));
    let job_snap = job_tele.snapshot();
    shared.tele.absorb_snapshot(&job_snap);
    match run {
        Err(payload) => {
            record.finish(JobStatus::Panicked);
            shared.quarantine(&spec, &panic_message(payload.as_ref()));
            // Retired, not left pending: replaying a deterministic panic
            // at every boot would be a crash loop, not fault tolerance.
            shared.journal_done(&spec.key, "panicked");
        }
        Ok(Err(job::ExecError::Invalid(message))) => {
            record.finish(JobStatus::Invalid);
            eprintln!("ftrepair-server: replay of {} failed to compile ({message})", spec.key);
            shared.journal_done(&spec.key, "invalid");
        }
        Ok(Err(job::ExecError::Aborted(why))) => match why {
            RepairAborted::Cancelled => {
                // Shutdown mid-replay: the forced checkpoint is on disk
                // and the record stays pending — the next boot resumes.
                record.finish(JobStatus::Cancelled);
                shared.tele.add("server.jobs.cancelled", 1);
            }
            RepairAborted::Timeout => {
                record.finish(JobStatus::Timeout);
                shared.tele.add("server.jobs.timed_out", 1);
                shared.journal_done(&spec.key, "timeout");
            }
            RepairAborted::ResourceExhausted => {
                record.finish(JobStatus::Exhausted);
                shared.tele.add("server.jobs.exhausted", 1);
                shared.journal_done(&spec.key, "exhausted");
            }
        },
        Ok(Ok(result)) => {
            let failed = result.failed;
            finalize_success(shared, &spec, &record, result, &job_snap);
            shared.journal_done(&spec.key, if failed { "unrepairable" } else { "completed" });
        }
    }
}

/// Best-effort rendering of a panic payload (panics carry `&str` or
/// `String` unless someone panicked with an exotic value).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// One HTTP response; `job_panicked` tells the worker loop to recycle
/// after the reply is written. Bodies are JSON except the Prometheus
/// exposition, which carries its own content type.
struct Reply {
    status: u16,
    content_type: &'static str,
    body: String,
    job_panicked: bool,
}

impl Reply {
    fn json(status: u16, body: String) -> Reply {
        Reply { status, content_type: JSON, body, job_panicked: false }
    }

    fn error(status: u16, message: &str) -> Reply {
        Reply::json(status, error_body(message))
    }
}

/// Per-request context threaded from `handle_connection` down to the job
/// pipeline: the trace ID (client-supplied or minted) and how long the
/// connection waited in the queue.
struct ReqCtx {
    trace_id: u64,
    queue_wait: Duration,
}

/// Serve exactly one request on `stream`. Returns whether a repair job
/// panicked while producing the response.
fn handle_connection(shared: &Shared, mut stream: TcpStream, queued_at: Instant) -> bool {
    let queue_wait = queued_at.elapsed();
    shared.h_queue_wait.observe_duration(queue_wait);
    let started = Instant::now();
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) if e.status == 0 => return false, // peer went away; nothing to say
        Err(e) => {
            let _ = http::write_response(&mut stream, e.status, JSON, &error_body(&e.message));
            return false;
        }
    };

    // One trace ID per request: honor a well-formed `X-Trace-Id` header,
    // mint otherwise, and echo it back so the client can correlate its
    // request with `/jobs/<trace-id>` and any exported trace tree.
    let trace_id =
        request.header("x-trace-id").and_then(parse_trace_id).unwrap_or_else(mint_trace_id);
    let ctx = ReqCtx { trace_id, queue_wait };

    let _span = shared.tele.span("server.request");
    shared.tele.add("server.http.requests", 1);
    let reply = route(shared, &request, &ctx);
    shared.tele.add(&format!("server.http.status.{}", reply.status), 1);
    let trace_hex = format_trace_id(trace_id);
    let headers = [("X-Trace-Id", trace_hex.as_str())];
    if http::write_response_with_headers(
        &mut stream,
        reply.status,
        reply.content_type,
        &headers,
        &reply.body,
    )
    .is_err()
    {
        shared.tele.add("server.http.write_failures", 1);
    }
    shared.h_request.observe_duration(started.elapsed());
    reply.job_panicked
}

fn route(shared: &Shared, req: &Request, ctx: &ReqCtx) -> Reply {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/metrics") => handle_metrics(shared, req.query("format")),
        ("GET", "/jobs") => handle_jobs(shared),
        ("GET", path) if path.starts_with("/jobs/") => handle_job(shared, &path["/jobs/".len()..]),
        ("POST", "/repair") => handle_repair(shared, req, ctx),
        ("POST", "/simulate") => handle_simulate(shared, req, ctx),
        ("GET", "/repair" | "/simulate") | ("POST", "/healthz" | "/metrics" | "/jobs") => {
            Reply::error(405, "method not allowed for this path")
        }
        _ => Reply::error(404, &format!("no such endpoint {}", req.path)),
    }
}

fn handle_healthz(shared: &Shared) -> Reply {
    // Always 200: load balancers poll this, and a degraded-but-serving
    // daemon should keep receiving traffic. The `status` field carries the
    // nuance — "ok", "degraded" (a worker died or the queue saturated
    // within the degraded window), or "draining" (shutdown in progress).
    let status = if shared.shutting_down() {
        "draining"
    } else if shared.degraded() {
        "degraded"
    } else {
        "ok"
    };
    let mut j = Json::obj();
    j.set("ok", true.into());
    j.set("status", status.into());
    j.set("uptime_s", shared.started.elapsed().as_secs_f64().into());
    j.set("workers", shared.workers.into());
    j.set("workers_alive", (*shared.workers_alive.lock().unwrap()).into());
    let mut store = Json::obj();
    match &shared.store {
        Some(s) => {
            // `/healthz` is the daemon's only periodic traffic, so the
            // breaker's half-open probes ride it: once the backoff deadline
            // passes, the next poll writes/reads/deletes a probe file and
            // either closes the breaker or re-opens it with a longer wait.
            if shared.breaker.try_probe() {
                match s.probe() {
                    Ok(()) => shared.breaker.record_success(),
                    Err(_) => shared.breaker.record_failure(),
                }
            }
            store.set("enabled", true.into());
            store.set("status", if shared.breaker.degraded() { "degraded" } else { "ok" }.into());
            store.set("breaker", shared.breaker.state_str().into());
            store.set("path", s.root().display().to_string().into());
            store.set("entries", s.len().into());
            store.set("bytes", s.bytes().into());
            store.set("write_queue_depth", shared.store_writes.len().into());
            store.set("io_errors", s.io_errors().into());
        }
        None => {
            store.set("enabled", false.into());
        }
    }
    j.set("store", store);
    let mut recovery = Json::obj();
    recovery.set("journal", shared.journal.is_some().into());
    if let Some(journal) = &shared.journal {
        recovery.set("journal_path", journal.path().display().to_string().into());
        recovery.set("pending_at_boot", shared.pending_at_boot.into());
        recovery.set("recovered", shared.recovered.load(Ordering::Relaxed).into());
        recovery.set("replayed", shared.replayed.load(Ordering::Relaxed).into());
    }
    recovery.set("checkpointing", shared.ckpts.is_some().into());
    if let Some(ckpts) = &shared.ckpts {
        recovery.set("checkpoint_slots", ckpts.len().into());
    }
    recovery.set("abandoned", shared.abandoned.load(Ordering::Relaxed).into());
    j.set("recovery", recovery);
    Reply::json(200, j.to_string())
}

fn handle_metrics(shared: &Shared, format: Option<&str>) -> Reply {
    // Stamp the scrape-time gauges first so both renderings carry them.
    shared.tele.set_gauge("server.uptime_seconds", shared.started.elapsed().as_secs());
    shared.tele.set_gauge("server.queue.depth", shared.queue.len() as u64);
    shared.tele.set_gauge("server.cache.entries", shared.cache.len() as u64);
    shared.tele.set_gauge("server.jobs.quarantined_keys", shared.poison.len() as u64);
    if shared.store.is_some() {
        // store.bytes / store.entries are published by the store itself on
        // every operation; only the queue depth is scrape-time state.
        shared.tele.set_gauge("store.write_queue.depth", shared.store_writes.len() as u64);
    }
    let snap = shared.tele.snapshot();

    match format {
        Some("prometheus") => Reply {
            status: 200,
            content_type: PROMETHEUS,
            body: prometheus::render(&snap),
            job_panicked: false,
        },
        None | Some("json") => {
            // The snapshot is rendered straight into the response — no
            // intermediate RunReport per scrape — but keeps the run-report
            // field shape (schema_version/case/mode + snapshot fields) so
            // consumers parse exactly one format.
            let mut j = Json::obj();
            j.set("schema_version", SCHEMA_VERSION.into());
            j.set("case", "server".into());
            j.set("mode", "metrics".into());
            j.set("uptime_s", shared.started.elapsed().as_secs_f64().into());
            j.set("workers", shared.workers.into());
            j.set("queue_depth", shared.queue.len().into());
            j.set("cache_entries", shared.cache.len().into());
            j.set("quarantined_keys", shared.poison.len().into());
            set_snapshot_fields(&mut j, &snap);
            Reply::json(200, j.to_string())
        }
        Some(other) => {
            Reply::error(400, &format!("unknown format {other:?} (use json or prometheus)"))
        }
    }
}

fn handle_jobs(shared: &Shared) -> Reply {
    let jobs: Vec<Json> = shared.jobs.recent().iter().map(|r| r.to_json()).collect();
    let mut j = Json::obj();
    j.set("ok", true.into());
    j.set("jobs", Json::Arr(jobs));
    Reply::json(200, j.to_string())
}

fn handle_job(shared: &Shared, id: &str) -> Reply {
    let Some(trace_id) = parse_trace_id(id) else {
        return Reply::error(400, &format!("malformed trace id {id:?} (want 16 hex chars)"));
    };
    match shared.jobs.find(trace_id) {
        Some(record) => {
            let mut j = record.to_json();
            j.set("ok", true.into());
            Reply::json(200, j.to_string())
        }
        None => Reply::error(404, "no retained job with that trace id"),
    }
}

/// Decode the repair knobs shared by `/repair` and `/simulate`.
fn job_params(
    req: &Request,
    default_reorder: ftrepair_core::ReorderMode,
    job_max_nodes: usize,
) -> Result<(Mode, RepairOptions), String> {
    let mode = match req.query("mode") {
        None | Some("lazy") => Mode::Lazy,
        Some("cautious") => Mode::Cautious,
        Some(other) => return Err(format!("unknown mode {other:?} (use lazy or cautious)")),
    };
    let reorder = match req.query("reorder") {
        None => default_reorder,
        Some(s) => ftrepair_core::ReorderMode::parse(s)
            .ok_or_else(|| format!("unknown reorder {s:?} (use none, sift or auto)"))?,
    };
    // A client may tighten the node budget below the server's, never relax
    // it — `--job-max-nodes` is the operator's OOM guard. Not part of the
    // content key: like the deadline, it bounds whether a job finishes,
    // not what it computes.
    let max_nodes = match req.query("max-nodes") {
        None => job_max_nodes,
        Some(v) => {
            let requested: usize = v
                .parse()
                .map_err(|_| format!("max-nodes must be a non-negative integer, got {v:?}"))?;
            match (requested, job_max_nodes) {
                (0, server) => server,
                (client, 0) => client,
                (client, server) => client.min(server),
            }
        }
    };
    let opts = RepairOptions {
        restrict_to_reachable: !req.query_flag("pure-lazy"),
        step2_closed_form: !req.query_flag("iterative-step2"),
        parallel_step2: req.query_flag("parallel"),
        allow_new_terminal_inside: !req.query_flag("strict-terminal"),
        max_nodes,
        reorder,
        ..Default::default()
    };
    Ok((mode, opts))
}

/// Why `cached_repair` could not produce a cache entry.
struct JobFailure {
    status: u16,
    message: String,
    /// The job panicked (absorbed); the worker recycles after replying.
    panicked: bool,
}

fn refuse(status: u16, message: impl Into<String>) -> JobFailure {
    JobFailure { status, message: message.into(), panicked: false }
}

impl JobFailure {
    fn reply(&self) -> Reply {
        Reply {
            status: self.status,
            content_type: JSON,
            body: error_body(&self.message),
            job_panicked: self.panicked,
        }
    }
}

/// Run a spec through the cache: prepare, look up, execute on miss. Returns
/// the entry plus whether it was served from cache, or an HTTP failure.
/// Every request that survives `prepare` — cache hits included — gets a
/// [`JobRecord`] in the introspection ring under its own trace ID.
fn cached_repair(
    shared: &Shared,
    req: &Request,
    ctx: &ReqCtx,
) -> Result<(Arc<CacheEntry>, bool), JobFailure> {
    let source =
        std::str::from_utf8(&req.body).map_err(|_| refuse(400, "spec must be UTF-8 text"))?;
    if source.trim().is_empty() {
        return Err(refuse(400, "empty request body: POST the .ftr spec text"));
    }
    let (mode, opts) = job_params(req, shared.default_reorder, shared.job_max_nodes)
        .map_err(|m| refuse(400, m))?;
    let spec = job::prepare(source, mode, opts).map_err(|m| refuse(400, m))?;

    let record =
        JobRecord::new(ctx.trace_id, &spec.name, spec.mode.as_str(), &spec.key, ctx.queue_wait);
    shared.jobs.push(Arc::clone(&record));

    // Single-flight: the first request for a key becomes the leader and
    // runs the repair; concurrent requests for the same key block in
    // `begin` until the leader finishes (guard drop), then find the entry
    // in the cache instead of duplicating the fixpoint computation. If the
    // leader errors out, one waiting follower claims leadership and tries.
    let _lead = loop {
        // The quarantine check sits on the cache path, before the cache
        // itself: a resubmission of a spec that panicked the engine — and
        // every follower woken by a panicking leader — is refused here
        // without ever reaching a worker again.
        if shared.poison.contains(&spec.key) {
            record.finish(JobStatus::Quarantined);
            return Err(refuse(422, "quarantined: this spec previously crashed the repair engine"));
        }
        if let Some(entry) = shared.cache.get(&spec.key) {
            record.finish(JobStatus::CacheHit);
            return Ok((entry, true));
        }
        match shared.inflight.begin(&spec.key) {
            Some(guard) => break guard,
            None => continue,
        }
    };
    // Re-check after winning leadership: a request that passed the poison
    // check while the previous leader was still running can acquire the
    // flight right after that leader panicked — without this it would
    // re-execute the crashing spec once per such race.
    if shared.poison.contains(&spec.key) {
        record.finish(JobStatus::Quarantined);
        return Err(refuse(422, "quarantined: this spec previously crashed the repair engine"));
    }

    // The durable tier: an exact key persisted by an earlier process
    // incarnation is promoted into the memory cache — no recomputation,
    // and followers of this flight find it there. Corrupt entries read
    // as misses (counted and quarantined inside the store); with the
    // breaker open the lookup is skipped and the job recomputes —
    // memory-only degraded mode costs work, never availability.
    if let Some(stored) = shared.with_store(|store| store.get(&spec.key)).flatten() {
        shared.tele.add("store.promotions", 1);
        let sim = job::rebuild_sim_bundle(&spec.ast, &stored.artifacts);
        let entry = shared.cache.insert(CacheEntry {
            key: spec.key.clone(),
            response: stored.response,
            sim,
        });
        record.finish(JobStatus::DiskHit);
        return Ok((entry, true));
    }

    // WAL: leadership is won and no tier has the result, so this job will
    // execute. Journal it first — once the fsynced append returns, a crash
    // at any later point (including mid-repair) leaves the job
    // recoverable at the next boot.
    shared.journal_start(&spec, ctx.trace_id);

    // Full miss. A checkpoint slot from an interrupted run of this exact
    // key is the best possible seed (distance 0 — resume, don't restart);
    // failing that, ask the store for the nearest structural neighbor's
    // artifacts.
    let warm = shared.checkpoint_resume(&spec).or_else(|| warm_lookup(shared, &spec));

    // Per-job telemetry keeps concurrent jobs' reports separate; the
    // snapshot is folded into the server registry afterwards so /metrics
    // still aggregates everything.
    let job_tele = Telemetry::new();
    let mut token = shared.job_token();
    if let Some(ckpt) = shared.checkpointer_for(&spec.key) {
        token = token.with_checkpointer(ckpt);
    }
    // The per-job panic boundary: a crashing repair costs the client a 500
    // and the server one recycled worker — nothing more, and the response
    // is written by this (surviving) thread, so no connection is ever
    // dropped. `AssertUnwindSafe` is honest here: the job owns all of its
    // state (program, BDD manager, and telemetry are built inside
    // `execute_cancellable` or are this job's own), and everything shared
    // that we touch afterwards is lock-protected.
    let run = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(any(test, feature = "chaos"))]
        if let Some(chaos) = &shared.chaos {
            chaos.before_execute(&spec.key, &token);
        }
        job::execute_store(&spec, &job_tele, true, &token, warm.as_ref(), shared.store.is_some())
    }));
    let job_snap = job_tele.snapshot();
    shared.tele.absorb_snapshot(&job_snap);
    let result = match run {
        Err(payload) => {
            record.finish(JobStatus::Panicked);
            shared.quarantine(&spec, &panic_message(payload.as_ref()));
            // Retired in the journal too: a deterministic panic replayed
            // at every boot would be a crash loop, not fault tolerance.
            shared.journal_done(&spec.key, "panicked");
            return Err(JobFailure {
                status: 500,
                message: "internal error: repair engine panicked; spec quarantined".to_string(),
                panicked: true,
            });
        }
        Ok(Err(job::ExecError::Invalid(message))) => {
            record.finish(JobStatus::Invalid);
            shared.journal_done(&spec.key, "invalid");
            return Err(refuse(400, message));
        }
        Ok(Err(job::ExecError::Aborted(why))) => {
            // Aborted runs are never cached: the next attempt may run
            // under a larger budget (or after the cancel flag clears) and
            // succeed, while a cached failure would pin the 503 forever.
            // Deadline and budget aborts are journaled done (an identical
            // replay would abort identically at every boot); a *cancel* is
            // the shutdown drain, and stays pending on purpose — the
            // forced checkpoint plus the pending record is exactly what
            // the next boot resumes from.
            let message = match why {
                RepairAborted::Timeout => {
                    record.finish(JobStatus::Timeout);
                    shared.tele.add("server.jobs.timed_out", 1);
                    shared.journal_done(&spec.key, "timeout");
                    "timeout"
                }
                RepairAborted::Cancelled => {
                    record.finish(JobStatus::Cancelled);
                    shared.tele.add("server.jobs.cancelled", 1);
                    "cancelled"
                }
                RepairAborted::ResourceExhausted => {
                    record.finish(JobStatus::Exhausted);
                    shared.tele.add("server.jobs.exhausted", 1);
                    shared.journal_done(&spec.key, "exhausted");
                    "node budget exhausted"
                }
            };
            return Err(refuse(503, message));
        }
        Ok(Ok(result)) => result,
    };

    let failed = result.failed;
    let entry = finalize_success(shared, &spec, &record, result, &job_snap);
    shared.journal_done(&spec.key, if failed { "unrepairable" } else { "completed" });
    Ok((entry, false))
}

/// Ask the store for the nearest structural neighbor's artifacts: a
/// resubmitted spec differing in a few actions imports the neighbor's
/// invariant/fault-span BDDs and seeds the first reachability fixpoint
/// (lazy mode only — the cautious baseline has no seedable phase).
fn warm_lookup(shared: &Shared, spec: &job::JobSpec) -> Option<job::WarmInfo> {
    if !shared.warm_start || spec.mode != Mode::Lazy {
        return None;
    }
    let warm = shared
        .with_store(|store| {
            store.nearest(&spec.fingerprint, WARM_MAX_DISTANCE).and_then(|(neighbor, distance)| {
                let donor = store.peek(&neighbor)?;
                let mut invariant = None;
                let mut span = None;
                for (name, bdd) in donor.artifacts {
                    match name.as_str() {
                        ART_INVARIANT => invariant = Some(bdd),
                        ART_SPAN => span = Some(bdd),
                        _ => {}
                    }
                }
                Some(job::WarmInfo { neighbor, distance, invariant: invariant?, span: span? })
            })
        })
        .flatten();
    if warm.is_some() {
        shared.tele.add("store.warm_lookups", 1);
    }
    warm
}

/// Everything a finished (non-aborted) execution does after the repair
/// returns, shared by the request path and boot replay: introspection
/// detail, the JSONL report, counters, checkpoint-slot retirement, the
/// async store write-through, and the cache insert.
fn finalize_success(
    shared: &Shared,
    spec: &job::JobSpec,
    record: &JobRecord,
    result: job::JobResult,
    job_snap: &ftrepair_telemetry::MetricsSnapshot,
) -> Arc<CacheEntry> {
    // The outcome document `/jobs` shows for this record: iteration and
    // phase data from the repair stats, BDD peaks from the job's own
    // telemetry (gauges would smear across jobs in the shared registry).
    let mut detail = Json::obj();
    detail.set("outer_iterations", (result.stats.outer_iterations as u64).into());
    detail.set("step1_s", result.stats.step1_time.as_secs_f64().into());
    detail.set("step2_s", result.stats.step2_time.as_secs_f64().into());
    detail.set("groups_kept", result.stats.groups_kept.into());
    detail.set("groups_dropped", result.stats.groups_dropped.into());
    detail.set("bdd_peak_live_nodes", job_snap.gauge("bdd.peak_live_nodes").into());
    detail.set("verified", result.verified.into());
    detail.set("warm_start", result.warm_used.into());
    record.set_detail(detail);
    record.finish(if result.failed { JobStatus::Unrepairable } else { JobStatus::Done });

    let mut report = result.report;
    report.set("server_key", spec.key.as_str().into());
    shared.append_report(&report);
    shared.tele.add("server.jobs.completed", 1);
    if result.failed {
        shared.tele.add("server.jobs.unrepairable", 1);
    }
    if result.warm_used {
        shared.tele.add("server.jobs.warm_started", 1);
    }

    // The job reached a terminal result, so its mid-repair snapshot is
    // stale — retire the slot rather than letting it seed a future run
    // with older state than the cached answer.
    if let Some(ckpts) = &shared.ckpts {
        let _ = ckpts.clear(&spec.key);
    }

    // Write-through: hand verified successful repairs (the only ones
    // `execute_store` exports artifacts for) to the async writer. The
    // response path never blocks on disk; a full queue drops the write and
    // counts it.
    if shared.store.is_some() {
        if let Some(artifacts) = result.artifacts {
            let write = StoreWrite {
                key: spec.key.clone(),
                case: spec.name.clone(),
                mode: spec.mode.as_str().to_string(),
                warm_start: result.warm_used,
                fingerprint: spec.fingerprint.clone(),
                response: result.response.clone(),
                artifacts,
            };
            if shared.store_writes.try_push(write).is_err() {
                shared.tele.add("telemetry.write_errors", 1);
                eprintln!(
                    "ftrepair-server: store write queue full; dropping write for {}",
                    spec.key
                );
            }
        }
    }

    shared.cache.insert(CacheEntry {
        key: spec.key.clone(),
        response: result.response,
        sim: result.sim,
    })
}

fn handle_repair(shared: &Shared, req: &Request, ctx: &ReqCtx) -> Reply {
    match cached_repair(shared, req, ctx) {
        Ok((entry, cached)) => {
            let mut body = entry.response.clone();
            body.set("cached", cached.into());
            body.set("trace_id", format_trace_id(ctx.trace_id).into());
            Reply::json(200, body.to_string())
        }
        Err(failure) => failure.reply(),
    }
}

fn handle_simulate(shared: &Shared, req: &Request, ctx: &ReqCtx) -> Reply {
    let config = SimConfig {
        runs: req.query("runs").and_then(|v| v.parse().ok()).unwrap_or(200),
        max_faults: req.query("max-faults").and_then(|v| v.parse().ok()).unwrap_or(3),
        ..Default::default()
    };
    if config.runs == 0 || config.runs > 100_000 {
        return Reply::error(400, "runs must be between 1 and 100000");
    }
    // Every injected fault re-arms the recovery budget and grows the trace,
    // so an unbounded max-faults lets one request pin a worker arbitrarily
    // long. Bound it like runs.
    if config.max_faults > 1_000 {
        return Reply::error(400, "max-faults must be between 0 and 1000");
    }
    let seed = req.query("seed").and_then(|v| v.parse().ok()).unwrap_or(0xF7_5EED);

    let (entry, cached) = match cached_repair(shared, req, ctx) {
        Ok(pair) => pair,
        Err(failure) => return failure.reply(),
    };
    if entry.response.get("failed").and_then(Json::as_bool) == Some(true) {
        return Reply::error(422, "no repair exists for this spec; nothing to simulate");
    }
    let bundle = match &entry.sim {
        SimStatus::Ready(bundle) => bundle,
        refusal => return Reply::error(422, &refusal.refusal()),
    };

    let report = {
        let _span = shared.tele.span("server.simulate");
        job::run_simulation(bundle, &config, seed)
    };
    shared.tele.add("server.sim.batches", 1);
    shared.tele.add("server.sim.runs", report.runs as u64);
    shared.tele.add("server.sim.faults_injected", report.faults_injected);

    let mut body = Json::obj();
    body.set("ok", true.into());
    body.set("key", entry.key.as_str().into());
    body.set("cached", cached.into());
    body.set("trace_id", format_trace_id(ctx.trace_id).into());
    body.set("case", entry.response.get("case").cloned().unwrap_or(Json::Null));
    body.set("simulation", job::sim_report_json(&report, seed));
    Reply::json(200, body.to_string())
}

//! The daemon: accept loop, worker pool, routing, and graceful shutdown.
//!
//! Control flow is deliberately boring:
//!
//! * the accept loop (caller's thread) accepts connections and `try_push`es
//!   them onto the bounded [`JobQueue`]; a full queue answers `429`
//!   immediately — backpressure, not unbounded latency;
//! * `workers` threads pop connections, read one HTTP request each, run the
//!   repair pipeline (through the content-addressed [`ResultCache`]), write
//!   the response, and close;
//! * SIGTERM / ctrl-c (or [`ServerHandle::shutdown`]) flips a flag; the
//!   accept loop stops, closes the queue, and the workers drain every job
//!   already accepted before the scope joins them.

use crate::cache::{CacheEntry, ResultCache};
use crate::flight::InFlight;
use crate::http::{self, Request};
use crate::job::{self, Mode};
use crate::queue::{JobQueue, PushError};
use crate::signal;
use ftrepair_core::RepairOptions;
use ftrepair_explicit::simulate::SimConfig;
use ftrepair_telemetry::{Json, RunReport, Telemetry};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Everything tunable about the daemon.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7177`. Port 0 picks an ephemeral port
    /// (see [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads running repairs. 0 means "number of CPUs".
    pub workers: usize,
    /// Bounded queue capacity; beyond it, `POST` gets `429`.
    pub queue_cap: usize,
    /// Result-cache capacity in entries.
    pub cache_cap: usize,
    /// Append one JSONL run report per repair job (plus a summary line on
    /// shutdown) to this path.
    pub metrics_out: Option<PathBuf>,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7177".to_string(),
            workers: 0,
            queue_cap: 64,
            cache_cap: 256,
            metrics_out: None,
            io_timeout: Duration::from_secs(10),
        }
    }
}

struct Shared {
    queue: JobQueue<TcpStream>,
    cache: ResultCache,
    inflight: InFlight,
    tele: Telemetry,
    metrics_out: Option<PathBuf>,
    metrics_lock: Mutex<()>,
    shutdown: AtomicBool,
    io_timeout: Duration,
    workers: usize,
    started: Instant,
}

impl Shared {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst) || signal::requested()
    }

    /// Serialize JSONL appends: lines can exceed the pipe-atomicity size,
    /// and interleaved lines would corrupt the file for every consumer.
    fn append_report(&self, report: &RunReport) {
        if let Some(path) = &self.metrics_out {
            let _guard = self.metrics_lock.lock().unwrap();
            if let Err(e) = report.append_to(path) {
                eprintln!("ftrepair-server: cannot append metrics to {}: {e}", path.display());
            }
        }
    }
}

/// Handle for stopping a running server from another thread (tests, or an
/// embedding with its own signal story).
#[derive(Clone)]
pub struct ServerHandle {
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// Begin a graceful shutdown: stop accepting, drain queued jobs, exit.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
    }

    /// The server's telemetry (live; snapshot to read).
    pub fn telemetry(&self) -> Telemetry {
        self.shared.tele.clone()
    }
}

/// A bound-but-not-yet-running server.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Bind the listener and set up queue, cache, and telemetry.
    pub fn bind(config: &ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let workers = if config.workers == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            config.workers
        };
        let tele = Telemetry::new();
        let cache = ResultCache::new(config.cache_cap, &tele);
        let shared = Arc::new(Shared {
            queue: JobQueue::new(config.queue_cap),
            cache,
            inflight: InFlight::new(),
            tele,
            metrics_out: config.metrics_out.clone(),
            metrics_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            io_timeout: config.io_timeout,
            workers,
            started: Instant::now(),
        });
        Ok(Server { listener, shared })
    }

    /// The actual bound address (resolves port 0).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle that can stop this server later.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { shared: Arc::clone(&self.shared) }
    }

    /// Run until shutdown is requested (signal or handle), then drain
    /// in-flight jobs, write the summary report, and return.
    pub fn run(self) -> io::Result<()> {
        let Server { listener, shared } = self;
        listener.set_nonblocking(true)?;
        let accepted = shared.tele.counter("server.http.accepted");
        let rejected = shared.tele.counter("server.http.rejected_busy");

        std::thread::scope(|scope| {
            for _ in 0..shared.workers {
                let shared = Arc::clone(&shared);
                scope.spawn(move || {
                    while let Some(stream) = shared.queue.pop() {
                        handle_connection(&shared, stream);
                    }
                });
            }

            while !shared.shutting_down() {
                match listener.accept() {
                    Ok((stream, _peer)) => {
                        accepted.inc();
                        let _ = stream.set_read_timeout(Some(shared.io_timeout));
                        let _ = stream.set_write_timeout(Some(shared.io_timeout));
                        if let Err((mut stream, why)) = shared.queue.try_push(stream) {
                            rejected.inc();
                            let body = error_body(match why {
                                PushError::Full => "server busy: job queue is full, retry later",
                                PushError::Closed => "server is shutting down",
                            });
                            let _ = http::write_response(&mut stream, 429, JSON, &body);
                            // Drain whatever request bytes the client already
                            // sent before closing: dropping a socket with
                            // unread data provokes an RST that can destroy
                            // the 429 before the peer reads it. This runs on
                            // the accept thread, so it is bounded by a total
                            // deadline AND a byte budget — per-read timeouts
                            // alone would let a trickling client stall
                            // accepts indefinitely.
                            use io::Read;
                            let deadline = Instant::now() + Duration::from_millis(100);
                            let mut budget: usize = 64 << 10;
                            let mut sink = [0u8; 4096];
                            while budget > 0 {
                                let left = deadline.saturating_duration_since(Instant::now());
                                if left.is_zero() || stream.set_read_timeout(Some(left)).is_err() {
                                    break;
                                }
                                match stream.read(&mut sink) {
                                    Ok(n) if n > 0 => budget = budget.saturating_sub(n),
                                    _ => break,
                                }
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                    Err(e) => {
                        eprintln!("ftrepair-server: accept failed: {e}");
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            // Drain: no new connections, but every accepted one is served.
            shared.queue.close();
        });

        let mut summary = RunReport::new("server", "summary");
        summary.set("uptime_s", shared.started.elapsed().as_secs_f64().into());
        summary.set("workers", shared.workers.into());
        summary.set("cache_entries", shared.cache.len().into());
        summary.set_snapshot(&shared.tele.snapshot());
        shared.append_report(&summary);
        Ok(())
    }
}

const JSON: &str = "application/json";

fn error_body(message: &str) -> String {
    let mut j = Json::obj();
    j.set("ok", false.into());
    j.set("error", message.into());
    j.to_string()
}

/// Serve exactly one request on `stream`.
fn handle_connection(shared: &Shared, mut stream: TcpStream) {
    let request = match http::read_request(&mut stream) {
        Ok(r) => r,
        Err(e) if e.status == 0 => return, // peer went away; nothing to say
        Err(e) => {
            let _ = http::write_response(&mut stream, e.status, JSON, &error_body(&e.message));
            return;
        }
    };

    let _span = shared.tele.span("server.request");
    shared.tele.add("server.http.requests", 1);
    let (status, content_type, body) = route(shared, &request);
    shared.tele.add(&format!("server.http.status.{status}"), 1);
    if http::write_response(&mut stream, status, content_type, &body).is_err() {
        shared.tele.add("server.http.write_failures", 1);
    }
}

fn route(shared: &Shared, req: &Request) -> (u16, &'static str, String) {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => handle_healthz(shared),
        ("GET", "/metrics") => handle_metrics(shared),
        ("POST", "/repair") => handle_repair(shared, req),
        ("POST", "/simulate") => handle_simulate(shared, req),
        ("GET", "/repair" | "/simulate") | ("POST", "/healthz" | "/metrics") => {
            (405, JSON, error_body("method not allowed for this path"))
        }
        _ => (404, JSON, error_body(&format!("no such endpoint {}", req.path))),
    }
}

fn handle_healthz(shared: &Shared) -> (u16, &'static str, String) {
    let mut j = Json::obj();
    j.set("ok", true.into());
    j.set("status", if shared.shutting_down() { "draining" } else { "up" }.into());
    j.set("uptime_s", shared.started.elapsed().as_secs_f64().into());
    (200, JSON, j.to_string())
}

fn handle_metrics(shared: &Shared) -> (u16, &'static str, String) {
    // Same rendering as a run report so consumers parse one shape.
    let mut r = RunReport::new("server", "metrics");
    r.set("uptime_s", shared.started.elapsed().as_secs_f64().into());
    r.set("workers", shared.workers.into());
    r.set("queue_depth", shared.queue.len().into());
    r.set("cache_entries", shared.cache.len().into());
    r.set_snapshot(&shared.tele.snapshot());
    (200, JSON, r.to_json_line())
}

/// Decode the repair knobs shared by `/repair` and `/simulate`.
fn job_params(req: &Request) -> Result<(Mode, RepairOptions), String> {
    let mode = match req.query("mode") {
        None | Some("lazy") => Mode::Lazy,
        Some("cautious") => Mode::Cautious,
        Some(other) => return Err(format!("unknown mode {other:?} (use lazy or cautious)")),
    };
    let opts = RepairOptions {
        restrict_to_reachable: !req.query_flag("pure-lazy"),
        step2_closed_form: !req.query_flag("iterative-step2"),
        parallel_step2: req.query_flag("parallel"),
        allow_new_terminal_inside: !req.query_flag("strict-terminal"),
        ..Default::default()
    };
    Ok((mode, opts))
}

/// Run a spec through the cache: prepare, look up, execute on miss. Returns
/// the entry plus whether it was served from cache, or an HTTP error pair.
fn cached_repair(shared: &Shared, req: &Request) -> Result<(Arc<CacheEntry>, bool), (u16, String)> {
    let source =
        std::str::from_utf8(&req.body).map_err(|_| (400, "spec must be UTF-8 text".to_string()))?;
    if source.trim().is_empty() {
        return Err((400, "empty request body: POST the .ftr spec text".to_string()));
    }
    let (mode, opts) = job_params(req).map_err(|m| (400, m))?;
    let spec = job::prepare(source, mode, opts).map_err(|m| (400, m))?;

    // Single-flight: the first request for a key becomes the leader and
    // runs the repair; concurrent requests for the same key block in
    // `begin` until the leader finishes (guard drop), then find the entry
    // in the cache instead of duplicating the fixpoint computation. If the
    // leader errors out, one waiting follower claims leadership and tries.
    let _lead = loop {
        if let Some(entry) = shared.cache.get(&spec.key) {
            return Ok((entry, true));
        }
        match shared.inflight.begin(&spec.key) {
            Some(guard) => break guard,
            None => continue,
        }
    };

    // Per-job telemetry keeps concurrent jobs' reports separate; the
    // snapshot is folded into the server registry afterwards so /metrics
    // still aggregates everything.
    let job_tele = Telemetry::new();
    let result = job::execute(&spec, &job_tele, true).map_err(|m| (400, m))?;
    shared.tele.absorb_snapshot(&job_tele.snapshot());

    let mut report = result.report;
    report.set("server_key", spec.key.as_str().into());
    shared.append_report(&report);
    shared.tele.add("server.jobs.completed", 1);
    if result.failed {
        shared.tele.add("server.jobs.unrepairable", 1);
    }

    let entry = shared.cache.insert(CacheEntry {
        key: spec.key,
        response: result.response,
        sim: result.sim,
    });
    Ok((entry, false))
}

fn handle_repair(shared: &Shared, req: &Request) -> (u16, &'static str, String) {
    match cached_repair(shared, req) {
        Ok((entry, cached)) => {
            let mut body = entry.response.clone();
            body.set("cached", cached.into());
            (200, JSON, body.to_string())
        }
        Err((status, message)) => (status, JSON, error_body(&message)),
    }
}

fn handle_simulate(shared: &Shared, req: &Request) -> (u16, &'static str, String) {
    let config = SimConfig {
        runs: req.query("runs").and_then(|v| v.parse().ok()).unwrap_or(200),
        max_faults: req.query("max-faults").and_then(|v| v.parse().ok()).unwrap_or(3),
        ..Default::default()
    };
    if config.runs == 0 || config.runs > 100_000 {
        return (400, JSON, error_body("runs must be between 1 and 100000"));
    }
    // Every injected fault re-arms the recovery budget and grows the trace,
    // so an unbounded max-faults lets one request pin a worker arbitrarily
    // long. Bound it like runs.
    if config.max_faults > 1_000 {
        return (400, JSON, error_body("max-faults must be between 0 and 1000"));
    }
    let seed = req.query("seed").and_then(|v| v.parse().ok()).unwrap_or(0xF7_5EED);

    let (entry, cached) = match cached_repair(shared, req) {
        Ok(pair) => pair,
        Err((status, message)) => return (status, JSON, error_body(&message)),
    };
    if entry.response.get("failed").and_then(Json::as_bool) == Some(true) {
        return (422, JSON, error_body("no repair exists for this spec; nothing to simulate"));
    }
    let Some(bundle) = &entry.sim else {
        return (
            422,
            JSON,
            error_body(&format!(
                "state space exceeds {} states; explicit simulation is only for oracle-sized instances",
                job::SIM_STATE_CAP
            )),
        );
    };

    let report = {
        let _span = shared.tele.span("server.simulate");
        job::run_simulation(bundle, &config, seed)
    };
    shared.tele.add("server.sim.batches", 1);
    shared.tele.add("server.sim.runs", report.runs as u64);
    shared.tele.add("server.sim.faults_injected", report.faults_injected);

    let mut body = Json::obj();
    body.set("ok", true.into());
    body.set("key", entry.key.as_str().into());
    body.set("cached", cached.into());
    body.set("case", entry.response.get("case").cloned().unwrap_or(Json::Null));
    body.set("simulation", job::sim_report_json(&report, seed));
    (200, JSON, body.to_string())
}

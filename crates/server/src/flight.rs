//! Per-key single-flight: when several requests miss the cache on the same
//! content address at once, exactly one (the leader) runs the repair; the
//! rest block until the leader finishes, then re-check the cache. Without
//! this, N concurrent submissions of the same spec run N full fixpoint
//! computations and the cache stores N-1 of them for nothing.

use std::collections::HashSet;
use std::sync::{Condvar, Mutex};

/// The set of content keys currently being computed.
pub struct InFlight {
    keys: Mutex<HashSet<String>>,
    done: Condvar,
}

impl Default for InFlight {
    fn default() -> Self {
        InFlight::new()
    }
}

impl InFlight {
    pub fn new() -> InFlight {
        InFlight { keys: Mutex::new(HashSet::new()), done: Condvar::new() }
    }

    /// Try to become the leader for `key`. Returns a guard (release on
    /// drop, including panics and error returns) if no one holds the key;
    /// otherwise blocks until the current leader releases it and returns
    /// `None` — the caller should then re-check the cache and retry.
    pub fn begin<'a>(&'a self, key: &str) -> Option<FlightGuard<'a>> {
        let mut keys = self.keys.lock().unwrap();
        if keys.insert(key.to_string()) {
            return Some(FlightGuard { inflight: self, key: key.to_string() });
        }
        let _waited = self.done.wait_while(keys, |keys| keys.contains(key)).unwrap();
        None
    }

    fn release(&self, key: &str) {
        self.keys.lock().unwrap().remove(key);
        self.done.notify_all();
    }
}

/// Leadership over one key; dropping it wakes every waiting follower.
pub struct FlightGuard<'a> {
    inflight: &'a InFlight,
    key: String,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        self.inflight.release(&self.key);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn second_claim_waits_for_the_first() {
        let inflight = Arc::new(InFlight::new());
        let guard = inflight.begin("k").expect("first claim leads");

        let follower = {
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || inflight.begin("k").is_none())
        };
        // Give the follower time to block, then release.
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(guard);
        assert!(follower.join().unwrap(), "follower returns None after leader releases");

        // The key is free again: the next claim leads.
        assert!(inflight.begin("k").is_some());
    }

    #[test]
    fn distinct_keys_do_not_block_each_other() {
        let inflight = InFlight::new();
        let a = inflight.begin("a");
        let b = inflight.begin("b");
        assert!(a.is_some() && b.is_some());
    }

    #[test]
    fn only_one_leader_among_many_racers() {
        let inflight = Arc::new(InFlight::new());
        let executions = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..16 {
            let inflight = Arc::clone(&inflight);
            let executions = Arc::clone(&executions);
            handles.push(std::thread::spawn(move || {
                loop {
                    // Stand-in for "check cache": once someone executed,
                    // everyone is satisfied.
                    if executions.load(Ordering::SeqCst) > 0 {
                        return;
                    }
                    match inflight.begin("k") {
                        Some(_guard) => {
                            std::thread::sleep(std::time::Duration::from_millis(10));
                            executions.fetch_add(1, Ordering::SeqCst);
                            return;
                        }
                        None => continue,
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(executions.load(Ordering::SeqCst), 1, "exactly one racer executed");
    }
}

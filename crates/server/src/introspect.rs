//! Live job introspection: a bounded ring of the most recent job records,
//! served at `GET /jobs` and `GET /jobs/<trace-id>`.
//!
//! Every request that reaches the repair pipeline (cache hits included)
//! gets a [`JobRecord`] keyed by its trace ID. The record is pushed into
//! the ring *before* the job runs and mutated in place as it progresses,
//! so `/jobs` shows running jobs too — status `running` with a live
//! elapsed time — not just finished ones. The ring holds the last
//! [`JOB_RING_CAP`] records; older ones are overwritten, which bounds
//! memory no matter how long the daemon lives.
//!
//! Concurrency: the ring claims a slot with one `fetch_add` and each slot
//! is its own tiny mutex, so concurrent workers never contend on a shared
//! lock for more than a pointer swap. Record fields that change after
//! publication (`status`, `run_ns`) are atomics; the one-shot `detail`
//! document sits behind a per-record mutex taken exactly twice (fill,
//! render).

use ftrepair_telemetry::{trace::format_trace_id, Json};
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// How many recent jobs `GET /jobs` can see.
pub const JOB_RING_CAP: usize = 256;

/// Where a job is in its lifecycle, or how it ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum JobStatus {
    /// Still executing (or waiting on the single-flight leader).
    Running = 0,
    /// Finished with a repair; response cached.
    Done = 1,
    /// Served from the content-addressed cache.
    CacheHit = 2,
    /// The algorithm proved no repair exists.
    Unrepairable = 3,
    /// The spec failed semantic checks (HTTP 400).
    Invalid = 4,
    /// Refused because the spec previously crashed the engine (HTTP 422).
    Quarantined = 5,
    /// Aborted by the job deadline (HTTP 503).
    Timeout = 6,
    /// Aborted by the server-wide cancel flag (HTTP 503).
    Cancelled = 7,
    /// The repair engine panicked on this spec (HTTP 500).
    Panicked = 8,
    /// Served from the on-disk store (promoted into the memory cache).
    DiskHit = 9,
    /// Aborted by the BDD node budget (HTTP 503) — the memory analogue of
    /// `Timeout`, reported instead of an OOM kill.
    Exhausted = 10,
    /// Completed by boot recovery without recompute: the journal said the
    /// job was in flight when the previous process died, but its result was
    /// already durable in the disk store.
    Recovered = 11,
    /// Shed at shutdown: still queued when the drain deadline passed
    /// (HTTP 503).
    Abandoned = 12,
}

impl JobStatus {
    pub fn as_str(self) -> &'static str {
        match self {
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::CacheHit => "cache_hit",
            JobStatus::Unrepairable => "unrepairable",
            JobStatus::Invalid => "invalid",
            JobStatus::Quarantined => "quarantined",
            JobStatus::Timeout => "timeout",
            JobStatus::Cancelled => "cancelled",
            JobStatus::Panicked => "panicked",
            JobStatus::DiskHit => "disk_hit",
            JobStatus::Exhausted => "exhausted",
            JobStatus::Recovered => "recovered",
            JobStatus::Abandoned => "abandoned",
        }
    }

    fn from_u8(v: u8) -> JobStatus {
        match v {
            1 => JobStatus::Done,
            2 => JobStatus::CacheHit,
            3 => JobStatus::Unrepairable,
            4 => JobStatus::Invalid,
            5 => JobStatus::Quarantined,
            6 => JobStatus::Timeout,
            7 => JobStatus::Cancelled,
            8 => JobStatus::Panicked,
            9 => JobStatus::DiskHit,
            10 => JobStatus::Exhausted,
            11 => JobStatus::Recovered,
            12 => JobStatus::Abandoned,
            _ => JobStatus::Running,
        }
    }
}

/// One job as the introspection endpoints see it. Identity fields are
/// immutable; progress fields are atomics so readers never block a worker.
#[derive(Debug)]
pub struct JobRecord {
    /// The request's trace ID (client-supplied or minted).
    pub trace_id: u64,
    /// Program name from the spec.
    pub case: String,
    /// `"lazy"` or `"cautious"`.
    pub mode: &'static str,
    /// Content address of spec + options.
    pub key: String,
    /// Time the connection spent queued before a worker picked it up.
    pub queue_wait: Duration,
    started: Instant,
    status: AtomicU8,
    /// Nanoseconds from record creation to finish; 0 while running.
    run_ns: AtomicU64,
    detail: Mutex<Json>,
}

impl JobRecord {
    pub fn new(
        trace_id: u64,
        case: &str,
        mode: &'static str,
        key: &str,
        queue_wait: Duration,
    ) -> Arc<JobRecord> {
        Arc::new(JobRecord {
            trace_id,
            case: case.to_string(),
            mode,
            key: key.to_string(),
            queue_wait,
            started: Instant::now(),
            status: AtomicU8::new(JobStatus::Running as u8),
            run_ns: AtomicU64::new(0),
            detail: Mutex::new(Json::Null),
        })
    }

    pub fn status(&self) -> JobStatus {
        JobStatus::from_u8(self.status.load(Ordering::Acquire))
    }

    /// Mark the job finished: stamps the run time and the final status.
    pub fn finish(&self, status: JobStatus) {
        let ns = u64::try_from(self.started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        self.run_ns.store(ns.max(1), Ordering::Relaxed);
        self.status.store(status as u8, Ordering::Release);
    }

    /// Attach the outcome document (iteration counts, phase timings, BDD
    /// peaks, verification flags) shown under `"detail"`.
    pub fn set_detail(&self, detail: Json) {
        *self.detail.lock().unwrap() = detail;
    }

    /// Render for the `/jobs` endpoints. `run_s` is the finished run time,
    /// or the live elapsed time while the job is still running.
    pub fn to_json(&self) -> Json {
        let status = self.status();
        let run_ns = self.run_ns.load(Ordering::Relaxed);
        let run_s = if run_ns == 0 {
            self.started.elapsed().as_secs_f64()
        } else {
            Duration::from_nanos(run_ns).as_secs_f64()
        };
        let mut j = Json::obj();
        j.set("trace_id", format_trace_id(self.trace_id).into());
        j.set("case", self.case.as_str().into());
        j.set("mode", self.mode.into());
        j.set("key", self.key.as_str().into());
        j.set("status", status.as_str().into());
        j.set("queue_wait_s", self.queue_wait.as_secs_f64().into());
        j.set("run_s", run_s.into());
        let detail = self.detail.lock().unwrap();
        if !matches!(*detail, Json::Null) {
            j.set("detail", detail.clone());
        }
        j
    }
}

/// The bounded ring itself. `push` claims a slot with one `fetch_add`;
/// `recent`/`find` walk the slots without stopping writers.
pub struct JobRing {
    slots: Vec<Mutex<Option<Arc<JobRecord>>>>,
    head: AtomicUsize,
}

impl JobRing {
    pub fn new(capacity: usize) -> JobRing {
        let capacity = capacity.max(1);
        JobRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            head: AtomicUsize::new(0),
        }
    }

    /// Publish a record, overwriting the oldest one once the ring is full.
    pub fn push(&self, record: Arc<JobRecord>) {
        let seq = self.head.fetch_add(1, Ordering::AcqRel);
        *self.slots[seq % self.slots.len()].lock().unwrap() = Some(record);
    }

    /// The retained records, newest first.
    pub fn recent(&self) -> Vec<Arc<JobRecord>> {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(self.slots.len());
        (1..=n)
            .filter_map(|k| self.slots[(head - k) % self.slots.len()].lock().unwrap().clone())
            .collect()
    }

    /// Look a retained record up by trace ID (newest match wins).
    pub fn find(&self, trace_id: u64) -> Option<Arc<JobRecord>> {
        self.recent().into_iter().find(|r| r.trace_id == trace_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64) -> Arc<JobRecord> {
        JobRecord::new(id, "ring", "lazy", "k", Duration::from_millis(2))
    }

    #[test]
    fn ring_keeps_the_last_n_newest_first() {
        let ring = JobRing::new(3);
        for id in 1..=5u64 {
            ring.push(record(id));
        }
        let ids: Vec<u64> = ring.recent().iter().map(|r| r.trace_id).collect();
        assert_eq!(ids, vec![5, 4, 3]);
        assert!(ring.find(5).is_some());
        assert!(ring.find(1).is_none(), "overwritten records are gone");
    }

    #[test]
    fn record_reports_running_then_finished() {
        let r = record(7);
        assert_eq!(r.status(), JobStatus::Running);
        let live = r.to_json();
        assert_eq!(live.get("status").unwrap().as_str(), Some("running"));
        assert!(live.get("run_s").unwrap().as_f64().unwrap() >= 0.0);
        assert!(live.get("detail").is_none(), "no detail until one is set");

        let mut d = Json::obj();
        d.set("outer_iterations", 2u64.into());
        r.set_detail(d);
        r.finish(JobStatus::Done);

        let done = r.to_json();
        assert_eq!(done.get("status").unwrap().as_str(), Some("done"));
        assert_eq!(done.get("trace_id").unwrap().as_str(), Some("0000000000000007"));
        assert_eq!(done.get("detail").unwrap().get("outer_iterations").unwrap().as_u64(), Some(2));
        let frozen = done.get("run_s").unwrap().as_f64().unwrap();
        assert!(frozen > 0.0);
        std::thread::sleep(Duration::from_millis(5));
        assert_eq!(r.to_json().get("run_s").unwrap().as_f64(), Some(frozen), "run_s frozen");
    }

    #[test]
    fn concurrent_pushes_lose_nothing_recent() {
        let ring = Arc::new(JobRing::new(64));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let ring = Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..16u64 {
                        ring.push(record(t * 100 + i));
                    }
                });
            }
        });
        let recent = ring.recent();
        assert_eq!(recent.len(), 64, "64 pushes into 64 slots retain all");
        for t in 0..4u64 {
            for i in 0..16u64 {
                assert!(ring.find(t * 100 + i).is_some());
            }
        }
    }
}

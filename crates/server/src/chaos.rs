//! Fault injection for exercising the daemon's supervision machinery.
//!
//! The supervision paths — panic absorption, quarantine, worker respawn,
//! degraded health — only run when something goes wrong, which in normal
//! operation is never. This module makes "something goes wrong" a
//! deterministic, scriptable event so tests (and the `chaos`-feature CI
//! job) can drive those paths on purpose: inject a panic when a specific
//! content key is executed, stretch a job with an artificial delay, kill a
//! worker between jobs, or pretend the queue is full.
//!
//! Compiled only under `cfg(test)` or the `chaos` cargo feature
//! (`cfg(test)` alone would not reach integration tests, which build the
//! crate as a normal dependency). A default release build contains none of
//! this code, and every knob defaults to "do nothing".

use ftrepair_core::Token;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Shared fault-injection plan. Build one, hand it to
/// [`ServerConfig::chaos`](crate::ServerConfig), and flip knobs from the
/// test thread while the server runs — every method takes `&self`.
#[derive(Default)]
pub struct Chaos {
    panic_keys: Mutex<HashSet<String>>,
    delay_keys: Mutex<HashMap<String, Duration>>,
    delay_all: Mutex<Option<Duration>>,
    panic_per_mille: AtomicU32,
    kill_worker_per_mille: AtomicU32,
    queue_full: AtomicBool,
    rng: Mutex<u64>,
}

impl Chaos {
    /// A plan with every fault disabled.
    pub fn new() -> Chaos {
        Chaos::default()
    }

    /// Panic whenever a job with this exact content key starts executing.
    pub fn panic_on_key(&self, key: &str) {
        self.panic_keys.lock().unwrap().insert(key.to_string());
    }

    /// Delay execution of jobs with this content key by `delay`.
    pub fn delay_key(&self, key: &str, delay: Duration) {
        self.delay_keys.lock().unwrap().insert(key.to_string(), delay);
    }

    /// Delay execution of every job by `delay` (keyed delays take
    /// precedence). `None` clears it.
    pub fn delay_all(&self, delay: Option<Duration>) {
        *self.delay_all.lock().unwrap() = delay;
    }

    /// Panic at the start of a random `per_mille` in 1000 job executions.
    pub fn panic_per_mille(&self, per_mille: u32) {
        self.panic_per_mille.store(per_mille, Ordering::Relaxed);
    }

    /// Kill a worker (panic outside any job) after a random `per_mille` in
    /// 1000 served connections.
    pub fn kill_worker_per_mille(&self, per_mille: u32) {
        self.kill_worker_per_mille.store(per_mille, Ordering::Relaxed);
    }

    /// Make the accept loop treat the queue as full (`429` every POST).
    pub fn force_queue_full(&self, on: bool) {
        self.queue_full.store(on, Ordering::Relaxed);
    }

    pub(crate) fn queue_forced_full(&self) -> bool {
        self.queue_full.load(Ordering::Relaxed)
    }

    /// Hook run inside the job's panic boundary, just before `execute`.
    pub(crate) fn before_execute(&self, key: &str, token: &Token) {
        let delay = self
            .delay_keys
            .lock()
            .unwrap()
            .get(key)
            .copied()
            .or_else(|| *self.delay_all.lock().unwrap());
        if let Some(d) = delay {
            // Sleep in short slices so an injected delay still honors the
            // job's deadline/cancel token — a 10s chaos delay must not pin
            // a worker past its budget.
            let until = Instant::now() + d;
            while Instant::now() < until && token.check().is_ok() {
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        if token.check().is_err() {
            // Let `execute` report the abort; panicking on top of it
            // would turn a clean 503 into a quarantine.
            return;
        }
        if self.panic_keys.lock().unwrap().contains(key) {
            panic!("chaos: injected panic for content key {key}");
        }
        if self.roll(self.panic_per_mille.load(Ordering::Relaxed)) {
            panic!("chaos: injected random panic");
        }
    }

    /// Hook run by the worker loop between jobs, outside any panic
    /// boundary — an escape here exercises the supervisor's respawn path.
    pub(crate) fn maybe_kill_worker(&self) {
        if self.roll(self.kill_worker_per_mille.load(Ordering::Relaxed)) {
            panic!("chaos: worker killed between jobs");
        }
    }

    /// SplitMix64 coin: true with probability `per_mille`/1000.
    fn roll(&self, per_mille: u32) -> bool {
        if per_mille == 0 {
            return false;
        }
        let mut state = self.rng.lock().unwrap();
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z % 1000) < u64::from(per_mille)
    }
}

impl fmt::Debug for Chaos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Chaos")
            .field("panic_keys", &self.panic_keys.lock().unwrap().len())
            .field("delay_keys", &self.delay_keys.lock().unwrap().len())
            .field("panic_per_mille", &self.panic_per_mille.load(Ordering::Relaxed))
            .field("kill_worker_per_mille", &self.kill_worker_per_mille.load(Ordering::Relaxed))
            .field("queue_full", &self.queue_full.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_chaos_does_nothing() {
        let chaos = Chaos::new();
        chaos.before_execute("anykey", &Token::unbounded());
        chaos.maybe_kill_worker();
        assert!(!chaos.queue_forced_full());
    }

    #[test]
    fn keyed_panic_fires_only_on_its_key() {
        let chaos = Chaos::new();
        chaos.panic_on_key("deadbeef");
        chaos.before_execute("cafebabe", &Token::unbounded());
        let hit = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            chaos.before_execute("deadbeef", &Token::unbounded());
        }));
        assert!(hit.is_err(), "matching key must panic");
    }

    #[test]
    fn delay_respects_the_token() {
        let chaos = Chaos::new();
        chaos.delay_all(Some(Duration::from_secs(30)));
        let started = Instant::now();
        // An already-expired deadline means the slice loop exits at once.
        chaos.before_execute("k", &Token::deadline_in(Duration::ZERO));
        assert!(started.elapsed() < Duration::from_secs(1), "delay must not outlive the budget");
    }

    #[test]
    fn probability_extremes_behave() {
        let chaos = Chaos::new();
        assert!(!chaos.roll(0), "0 per mille never fires");
        assert!(chaos.roll(1000), "1000 per mille always fires");
    }
}

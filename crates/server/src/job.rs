//! The repair job pipeline shared by the HTTP handlers and the CLI's
//! `simulate` subcommand: canonicalize a spec, address it, run the repair,
//! and (for small instances) build the explicit bundle that fault-injection
//! simulation replays.

use ftrepair_bdd::{NodeId, SerializedBdd};
use ftrepair_core::{
    build_run_report, cautious_repair_cancellable, lazy_repair_warm, verify::verify_outcome,
    LazyOutcome, ReorderMode, RepairAborted, RepairOptions, RepairStats, Token, WarmSeeds,
};
use ftrepair_explicit::extract::{bdd_to_edges, bdd_to_states, ExplicitProgram};
use ftrepair_explicit::simulate::{simulate, SimConfig, SimFailure, SimReport};
use ftrepair_lang::ast::Program as Ast;
use ftrepair_program::Process;
use ftrepair_store::{find_artifact, SpecFingerprint, ART_INVARIANT, ART_SPAN, ART_TRANS};
use ftrepair_telemetry::{Json, RunReport, Telemetry};
use std::collections::HashSet;

/// Largest state space the simulation bundle is built for. The explicit
/// extraction is quadratic in the number of states, so it is reserved for
/// oracle-sized instances; larger specs still repair fine but answer
/// `/simulate` with an explanation instead.
pub const SIM_STATE_CAP: u64 = 4096;

/// Repair algorithm selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// Algorithm 1 (the paper's contribution).
    Lazy,
    /// The cautious baseline of Section IV.
    Cautious,
}

impl Mode {
    pub fn as_str(self) -> &'static str {
        match self {
            Mode::Lazy => "lazy",
            Mode::Cautious => "cautious",
        }
    }
}

/// A validated, content-addressed job: spec in canonical form plus the
/// exact knobs the repair will run with.
#[derive(Debug)]
pub struct JobSpec {
    /// Program name from the spec.
    pub name: String,
    /// Canonical text (`parse` → `unparse`), the cache-key material.
    pub canonical: String,
    /// Parsed AST, kept so execution does not re-parse.
    pub ast: Ast,
    /// Algorithm.
    pub mode: Mode,
    /// Knobs (part of the content address — different options, different
    /// result).
    pub opts: RepairOptions,
    /// Content address (see [`crate::cache::content_key`]).
    pub key: String,
    /// Structural fingerprint for near-key lookups in the disk store: a
    /// resubmitted spec that differs in a few actions can find its nearest
    /// cached neighbor and warm-start from its artifacts.
    pub fingerprint: SpecFingerprint,
}

/// Options rendered into a short stable string for the content address.
/// `RepairOptions::deadline` is deliberately left out: a deadline changes
/// whether the repair *finishes*, never what it computes, and aborted runs
/// are never cached — so two clients differing only in timeout share one
/// entry.
/// `reorder` IS part of the address: all modes compute a semantically
/// identical repair, but the rendered guarded commands enumerate cubes in
/// BDD-structure order, so the cached *text* can differ between orders.
/// The options half of the content key. Deliberately an *explicit* field
/// list, not a derive over the whole struct: `deadline` and `max_nodes`
/// bound whether a job finishes, never what it computes, so including them
/// would fragment the cache — the same spec run under ten budgets would
/// compute the same repair ten times.
pub fn options_fingerprint(mode: Mode, o: &RepairOptions) -> String {
    format!(
        "{}:r{}c{}e{}p{}t{}m{}:{}",
        mode.as_str(),
        o.restrict_to_reachable as u8,
        o.step2_closed_form as u8,
        o.use_expand_group as u8,
        o.parallel_step2 as u8,
        o.allow_new_terminal_inside as u8,
        o.max_outer_iterations,
        o.reorder.as_str(),
    )
}

/// Invert [`options_fingerprint`]: parse `"lazy:r1c1e1p0t1m32:auto"` back
/// into the mode and options it encodes. Used by boot recovery to replay a
/// journaled job exactly as it was submitted — the journal stores the
/// fingerprint, not the options struct, so the two stay in lockstep by
/// construction (see the roundtrip test). Budgets (`deadline`,
/// `max_nodes`) are not in the fingerprint; the caller re-applies the
/// server's own limits.
pub fn options_from_fingerprint(s: &str) -> Option<(Mode, RepairOptions)> {
    fn flag(rest: &str, tag: char) -> Option<(bool, &str)> {
        let rest = rest.strip_prefix(tag)?;
        let value = match rest.as_bytes().first()? {
            b'0' => false,
            b'1' => true,
            _ => return None,
        };
        Some((value, &rest[1..]))
    }
    let mut parts = s.split(':');
    let mode = match parts.next()? {
        "lazy" => Mode::Lazy,
        "cautious" => Mode::Cautious,
        _ => return None,
    };
    let flags = parts.next()?;
    let reorder = ReorderMode::parse(parts.next()?)?;
    if parts.next().is_some() {
        return None;
    }
    let (restrict_to_reachable, rest) = flag(flags, 'r')?;
    let (step2_closed_form, rest) = flag(rest, 'c')?;
    let (use_expand_group, rest) = flag(rest, 'e')?;
    let (parallel_step2, rest) = flag(rest, 'p')?;
    let (allow_new_terminal_inside, rest) = flag(rest, 't')?;
    let max_outer_iterations = rest.strip_prefix('m')?.parse().ok()?;
    Some((
        mode,
        RepairOptions {
            restrict_to_reachable,
            step2_closed_form,
            use_expand_group,
            parallel_step2,
            allow_new_terminal_inside,
            max_outer_iterations,
            reorder,
            ..RepairOptions::default()
        },
    ))
}

/// Parse and canonicalize a spec. The error string is ready to serve as an
/// HTTP 400 body ("parse error: …").
pub fn prepare(source: &str, mode: Mode, opts: RepairOptions) -> Result<JobSpec, String> {
    let ast = ftrepair_lang::parse(source).map_err(|e| format!("parse error: {e}"))?;
    let canonical = ftrepair_lang::unparse(&ast);
    let key = crate::cache::content_key(&canonical, &options_fingerprint(mode, &opts));
    let fingerprint = SpecFingerprint::of(&ast);
    Ok(JobSpec { name: ast.name.clone(), canonical, ast, mode, opts, key, fingerprint })
}

/// Everything `/simulate` needs, explicit and manager-free so it can live
/// in the cache across jobs (BDD node ids die with their manager; state
/// indices do not).
#[derive(Clone, Debug)]
pub struct SimBundle {
    /// The original program, fully enumerated (faults, bad states/trans).
    pub explicit: ExplicitProgram,
    /// The repaired transition relation as edges.
    pub trans: Vec<(u32, u32)>,
    /// The repaired invariant as a state set.
    pub invariant: HashSet<u32>,
}

/// Whether a cached repair can answer `/simulate` — and when it cannot,
/// precisely why, so the refusal is an explained `422` rather than a
/// panic or a shrug. (This used to be `Option<SimBundle>`, which conflated
/// "state space over the cap" with "count overflowed u64" with "artifacts
/// would not rebuild".)
#[derive(Clone, Debug)]
pub enum SimStatus {
    /// The instance enumerated; simulation can run. Boxed: the bundle
    /// carries a full explicit program and dwarfs the other variants.
    Ready(Box<SimBundle>),
    /// The state space is over [`SIM_STATE_CAP`]. `states` carries the
    /// exact count when it fit in a `u64`, `None` when even the count
    /// overflowed.
    TooLarge {
        /// Exact state count, when representable.
        states: Option<u64>,
    },
    /// No bundle exists: it was not requested at repair time, or the
    /// stored artifacts could not be rebuilt into one.
    Unavailable,
}

impl SimStatus {
    /// The bundle, when simulation can run.
    pub fn ready(&self) -> Option<&SimBundle> {
        match self {
            SimStatus::Ready(bundle) => Some(bundle),
            _ => None,
        }
    }

    /// The `422` body explaining why `/simulate` cannot run against this
    /// entry. Meaningless for [`SimStatus::Ready`].
    pub fn refusal(&self) -> String {
        match self {
            SimStatus::Ready(_) => "simulation available".to_string(),
            SimStatus::TooLarge { states: Some(n) } => format!(
                "state space exceeds {SIM_STATE_CAP} states ({n}); \
                 simulation is reserved for oracle-sized instances"
            ),
            SimStatus::TooLarge { states: None } => format!(
                "state space exceeds {SIM_STATE_CAP} states (count overflows u64); \
                 simulation is reserved for oracle-sized instances"
            ),
            SimStatus::Unavailable => "simulation bundle unavailable for this entry; \
                 resubmit the spec with a fresh repair to rebuild it"
                .to_string(),
        }
    }
}

/// A finished repair job.
#[derive(Debug)]
pub struct JobResult {
    /// The `/repair` response document (no `cached` flag yet).
    pub response: Json,
    /// The per-job JSONL run report (same schema as `--metrics-out`).
    pub report: RunReport,
    /// Did the algorithm declare failure (no repair exists)?
    pub failed: bool,
    /// Did the output pass the independent verifiers?
    pub verified: bool,
    /// Explicit bundle for simulation, or the reason there is none.
    pub sim: SimStatus,
    /// Repair statistics (iterations, phase times) for job introspection.
    pub stats: RepairStats,
    /// Serialized BDD artifacts (repaired transition relation, invariant,
    /// fault-span) for the disk store; only exported on request and only
    /// for verified successful repairs.
    pub artifacts: Option<Vec<(String, SerializedBdd)>>,
    /// Did a near-key neighbor's artifacts actually seed this repair?
    pub warm_used: bool,
}

/// A cached neighbor's artifacts, handed to [`execute_store`] to seed the
/// repair's first reachability fixpoint.
#[derive(Debug)]
pub struct WarmInfo {
    /// Content address of the donor entry (reported in the response).
    pub neighbor: String,
    /// Fingerprint distance between donor and job (number of differing
    /// action hashes).
    pub distance: usize,
    /// The donor's repaired invariant.
    pub invariant: SerializedBdd,
    /// The donor's fault-span.
    pub span: SerializedBdd,
}

/// Why a job produced no result.
#[derive(Debug)]
pub enum ExecError {
    /// The spec is semantically broken ("compile error: …") — a client
    /// error, ready to serve as an HTTP 400 body.
    Invalid(String),
    /// The job's deadline or cancellation token fired mid-repair — a
    /// transient server condition (503), never cached.
    Aborted(RepairAborted),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Invalid(msg) => f.write_str(msg),
            ExecError::Aborted(why) => write!(f, "{why}"),
        }
    }
}

/// Compile and repair a prepared job. [`ExecError::Invalid`] carries a
/// compile-time semantic error ("compile error: …"); the deadline (from
/// [`RepairOptions::deadline`]) surfaces as [`ExecError::Aborted`].
/// `build_sim` additionally extracts the explicit bundle when the state
/// space is at most [`SIM_STATE_CAP`] states.
pub fn execute(spec: &JobSpec, tele: &Telemetry, build_sim: bool) -> Result<JobResult, ExecError> {
    execute_cancellable(spec, tele, build_sim, &Token::from_options(&spec.opts))
}

/// [`execute`] against an externally owned token — the server arms one per
/// job with its `--job-timeout` and drain flag.
pub fn execute_cancellable(
    spec: &JobSpec,
    tele: &Telemetry,
    build_sim: bool,
    token: &Token,
) -> Result<JobResult, ExecError> {
    execute_store(spec, tele, build_sim, token, None, false)
}

/// Compile, optionally warm-start, and run one repair. Seeds are accepted
/// only for [`Mode::Lazy`] (the cautious baseline has no seedable phase).
/// Returns the outcome plus whether the seeds were actually used.
fn run_repair(
    prog: &mut ftrepair_program::DistributedProgram,
    spec: &JobSpec,
    tele: &Telemetry,
    token: &Token,
    seeds: &WarmSeeds,
) -> Result<(LazyOutcome, bool), ExecError> {
    match spec.mode {
        Mode::Lazy => {
            let out = lazy_repair_warm(prog, &spec.opts, tele, token, seeds)
                .map_err(ExecError::Aborted)?;
            Ok((out, !seeds.is_empty()))
        }
        Mode::Cautious => {
            let c = cautious_repair_cancellable(prog, &spec.opts, tele, token)
                .map_err(ExecError::Aborted)?;
            Ok((
                LazyOutcome {
                    processes: c.processes,
                    invariant: c.invariant,
                    span: c.span,
                    trans: c.trans,
                    failed: c.failed,
                    stats: c.stats,
                },
                false,
            ))
        }
    }
}

/// The full store-aware pipeline behind [`execute_cancellable`].
///
/// `warm` carries a cached neighbor's invariant/fault-span artifacts; when
/// they import cleanly (and the mode is lazy) they seed Step 1's first
/// reachability fixpoint. Seeding never changes the result — the seeded
/// span is clamped and Phase 4 shrinks it back to the fixpoint — but the
/// output is belt-and-braces re-verified anyway, and on the (never yet
/// observed) event of a warm run failing verification the job is rerun
/// cold from a fresh compile. `export_artifacts` additionally serializes
/// the repaired transition relation, invariant, and fault-span for the
/// disk store (verified successful repairs only).
pub fn execute_store(
    spec: &JobSpec,
    tele: &Telemetry,
    build_sim: bool,
    token: &Token,
    warm: Option<&WarmInfo>,
    export_artifacts: bool,
) -> Result<JobResult, ExecError> {
    let mut prog = ftrepair_lang::compile(&spec.ast)
        .map_err(|e| ExecError::Invalid(format!("compile error: {e}")))?;

    let seeds = match (spec.mode, warm) {
        (Mode::Lazy, Some(info)) => {
            let invariant = prog.cx.mgr().try_import(&info.invariant);
            let span = prog.cx.mgr().try_import(&info.span);
            match (invariant, span) {
                (Ok(invariant), Ok(span)) => {
                    WarmSeeds { invariant: Some(invariant), span: Some(span) }
                }
                _ => {
                    // Artifacts from an incompatible manager shape (e.g. a
                    // different variable count) — run cold, don't fail.
                    tele.add("repair.warm_import_failures", 1);
                    WarmSeeds::none()
                }
            }
        }
        _ => WarmSeeds::none(),
    };

    let (mut out, mut warm_used) = run_repair(&mut prog, spec, tele, token, &seeds)?;

    // Snapshot the report before the verifier pollutes cache hit rates
    // (same ordering as the CLI).
    let mut report = build_run_report(
        &spec.name,
        spec.mode.as_str(),
        &spec.opts,
        &out.stats,
        out.failed,
        tele,
        &prog.cx,
    );

    let mut verified = false;
    if !out.failed {
        let (m, r) = verify_outcome(&mut prog, &out);
        verified = m.ok() && r.ok();
        if !verified && warm_used {
            // Warm seeding is proven sound, but a cached artifact is still
            // external input: if the seeded run somehow fails the
            // independent verifiers, distrust the seed and redo the job
            // cold from scratch rather than serving an unverified repair.
            tele.add("repair.warm_verify_failures", 1);
            prog = ftrepair_lang::compile(&spec.ast)
                .map_err(|e| ExecError::Invalid(format!("compile error: {e}")))?;
            let (cold, _) = run_repair(&mut prog, spec, tele, token, &WarmSeeds::none())?;
            out = cold;
            warm_used = false;
            report = build_run_report(
                &spec.name,
                spec.mode.as_str(),
                &spec.opts,
                &out.stats,
                out.failed,
                tele,
                &prog.cx,
            );
            verified = if out.failed {
                false
            } else {
                let (m, r) = verify_outcome(&mut prog, &out);
                m.ok() && r.ok()
            };
        }
    }

    let mut response = Json::obj();
    response.set("ok", true.into());
    response.set("key", spec.key.as_str().into());
    response.set("case", spec.name.as_str().into());
    response.set("mode", spec.mode.as_str().into());
    response.set("failed", out.failed.into());
    response.set("warm_start", warm_used.into());
    if warm_used {
        if let Some(info) = warm {
            response.set("warm_neighbor", info.neighbor.as_str().into());
            response.set("warm_distance", (info.distance as u64).into());
            report.set("warm_neighbor", info.neighbor.as_str().into());
            report.set("warm_distance", (info.distance as u64).into());
        }
    }

    let mut sim = SimStatus::Unavailable;
    let mut artifacts = None;
    if !out.failed {
        report.set("verified", verified.into());
        response.set("invariant_states", prog.cx.count_states(out.invariant).into());
        response.set("span_states", prog.cx.count_states(out.span).into());
        response.set("program", render_repaired(&mut prog, &out).into());
        if build_sim {
            sim = build_sim_bundle(&mut prog, out.trans, out.invariant);
        }
        if export_artifacts && verified {
            artifacts = Some(vec![
                (ART_TRANS.to_string(), prog.cx.mgr_ref().export(out.trans)),
                (ART_INVARIANT.to_string(), prog.cx.mgr_ref().export(out.invariant)),
                (ART_SPAN.to_string(), prog.cx.mgr_ref().export(out.span)),
            ]);
        }
    }
    response.set("verified", verified.into());
    response.set("report", report.0.clone());

    Ok(JobResult {
        response,
        report,
        failed: out.failed,
        verified,
        sim,
        stats: out.stats,
        artifacts,
        warm_used,
    })
}

/// Render the repaired program as guarded commands, restricted to the
/// fault-span exactly as the CLI does (realizability padding from
/// unreachable states would only confuse the reader).
fn render_repaired(prog: &mut ftrepair_program::DistributedProgram, out: &LazyOutcome) -> String {
    use std::fmt::Write;
    let mut text = String::new();
    writeln!(text, "// repaired program {}", prog.name).unwrap();
    for (j, p) in out.processes.iter().enumerate() {
        let reachable_part = prog.cx.mgr().and(p.trans, out.span);
        let shown = Process {
            name: p.name.clone(),
            read: p.read.clone(),
            write: p.write.clone(),
            trans: reachable_part,
        };
        writeln!(text, "{}", ftrepair_program::decompile::render_process(prog, &shown, j)).unwrap();
    }
    text
}

/// Enumerate the repaired program if it is small enough; otherwise report
/// exactly how oversized it is (count, or `None` when the product of the
/// variable domains overflows `u64` — those are different refusals).
fn build_sim_bundle(
    prog: &mut ftrepair_program::DistributedProgram,
    trans: NodeId,
    invariant: NodeId,
) -> SimStatus {
    let mut states: Option<u64> = Some(1);
    for v in prog.cx.var_ids() {
        states = states.and_then(|s| s.checked_mul(prog.cx.info(v).size));
    }
    match states {
        Some(n) if n <= SIM_STATE_CAP => {
            let explicit = ExplicitProgram::from_symbolic(prog);
            let trans = bdd_to_edges(prog, &explicit.space, trans);
            let invariant = bdd_to_states(prog, &explicit.space, invariant);
            SimStatus::Ready(Box::new(SimBundle { explicit, trans, invariant }))
        }
        over => SimStatus::TooLarge { states: over },
    }
}

/// Reconstruct the `/simulate` bundle for a repair promoted from the disk
/// store: recompile the spec and import the stored transition-relation and
/// invariant artifacts. A missing artifact or an import mismatch yields
/// [`SimStatus::Unavailable`]; an oversized state space yields the same
/// [`SimStatus::TooLarge`] a fresh repair would — each refuses `/simulate`
/// with its own explanation.
pub fn rebuild_sim_bundle(ast: &Ast, artifacts: &[(String, SerializedBdd)]) -> SimStatus {
    let Ok(mut prog) = ftrepair_lang::compile(ast) else {
        return SimStatus::Unavailable;
    };
    let trans = find_artifact(artifacts, ART_TRANS).and_then(|a| prog.cx.mgr().try_import(a).ok());
    let invariant =
        find_artifact(artifacts, ART_INVARIANT).and_then(|a| prog.cx.mgr().try_import(a).ok());
    match (trans, invariant) {
        (Some(trans), Some(invariant)) => build_sim_bundle(&mut prog, trans, invariant),
        _ => SimStatus::Unavailable,
    }
}

/// Run one fault-injection batch against a bundle.
pub fn run_simulation(bundle: &SimBundle, config: &SimConfig, seed: u64) -> SimReport {
    let mut rng = ftrepair_bdd::SplitMix64::seed_from_u64(seed);
    simulate(&bundle.explicit, &bundle.trans, &bundle.invariant, config, &mut rng)
}

/// Render a simulation report as the `/simulate` response fragment.
pub fn sim_report_json(report: &SimReport, seed: u64) -> Json {
    let mut j = Json::obj();
    j.set("runs", report.runs.into());
    j.set("steps", report.steps.into());
    j.set("faults_injected", report.faults_injected.into());
    j.set("seed", seed.into());
    j.set("ok", report.ok().into());
    match &report.failure {
        None => {
            j.set("failure", Json::Null);
        }
        Some(f) => {
            let (kind, trace) = match f {
                SimFailure::BadState(t) => ("bad_state", t),
                SimFailure::BadTransition(t) => ("bad_transition", t),
                SimFailure::NoRecovery(t) => ("no_recovery", t),
            };
            let mut fj = Json::obj();
            fj.set("kind", kind.into());
            fj.set("trace", Json::Arr(trace.iter().map(|&s| Json::from(u64::from(s))).collect()));
            j.set("failure", fj);
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOGGLE: &str = r#"
    program toggle;
    var x : 0..2;
    process p read x; write x;
    begin
      (x = 0) -> x := 1;
      (x = 1) -> x := 0;
    end
    fault hit begin (x = 1) -> x := 2; end
    invariant (x = 0) | (x = 1);
    "#;

    #[test]
    fn prepare_is_formatting_insensitive() {
        let a = prepare(TOGGLE, Mode::Lazy, RepairOptions::default()).unwrap();
        let squashed = TOGGLE.split_whitespace().collect::<Vec<_>>().join(" ");
        let b = prepare(&squashed, Mode::Lazy, RepairOptions::default()).unwrap();
        assert_eq!(a.key, b.key, "whitespace must not fragment the cache");
        let c = prepare(TOGGLE, Mode::Cautious, RepairOptions::default()).unwrap();
        assert_ne!(a.key, c.key, "mode is part of the address");
        let d = prepare(TOGGLE, Mode::Lazy, RepairOptions::pure_lazy()).unwrap();
        assert_ne!(a.key, d.key, "options are part of the address");
    }

    #[test]
    fn budgets_do_not_fragment_the_content_address() {
        // Deadline and node budget bound whether a run finishes, not what
        // it computes; a budgeted rerun must hit the unbudgeted cache.
        let plain = prepare(TOGGLE, Mode::Lazy, RepairOptions::default()).unwrap();
        let budgeted = RepairOptions {
            deadline: Some(std::time::Duration::from_secs(5)),
            max_nodes: 10_000,
            ..Default::default()
        };
        let bounded = prepare(TOGGLE, Mode::Lazy, budgeted).unwrap();
        assert_eq!(plain.key, bounded.key, "budgets are not part of the address");
    }

    #[test]
    fn prepare_rejects_malformed_specs() {
        let err = prepare("program oops", Mode::Lazy, RepairOptions::default()).unwrap_err();
        assert!(err.starts_with("parse error:"), "{err}");
    }

    #[test]
    fn execute_repairs_verifies_and_builds_sim_bundle() {
        let spec = prepare(TOGGLE, Mode::Lazy, RepairOptions::default()).unwrap();
        let result = execute(&spec, &Telemetry::off(), true).unwrap();
        assert!(!result.failed);
        assert!(result.verified);
        assert_eq!(result.response.get("ok").unwrap().as_bool(), Some(true));
        assert!(result.response.get("program").unwrap().as_str().unwrap().contains("(x = 2) ->"));

        let bundle = match &result.sim {
            SimStatus::Ready(bundle) => bundle,
            other => panic!("3 states is well under the cap, got {}", other.refusal()),
        };
        let report = run_simulation(bundle, &SimConfig::default(), 7);
        assert!(report.ok(), "{:?}", report.failure);
        assert!(report.faults_injected > 0);
        let j = sim_report_json(&report, 7);
        assert_eq!(j.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(j.get("failure"), Some(&Json::Null));
    }

    #[test]
    fn oversized_state_space_degrades_to_too_large_not_a_panic() {
        // Same toggle program, but with a 10 000-value domain: far over
        // SIM_STATE_CAP, so the bundle must degrade to an explained
        // refusal instead of enumerating (or panicking a worker).
        let big = TOGGLE.replace("0..2", "0..9999");
        let ast = ftrepair_lang::parse(&big).unwrap();
        let mut prog = ftrepair_lang::compile(&ast).unwrap();
        let status = build_sim_bundle(&mut prog, ftrepair_bdd::FALSE, ftrepair_bdd::FALSE);
        match &status {
            SimStatus::TooLarge { states: Some(n) } => assert_eq!(*n, 10_000),
            other => panic!("expected TooLarge with an exact count, got {other:?}"),
        }
        assert!(status.refusal().contains("state space exceeds"), "{}", status.refusal());
        assert!(status.refusal().contains("10000"), "{}", status.refusal());
        assert!(status.ready().is_none());
    }

    #[test]
    fn sim_refusals_distinguish_their_causes() {
        let overflow = SimStatus::TooLarge { states: None };
        assert!(overflow.refusal().contains("overflows u64"), "{}", overflow.refusal());
        let missing = SimStatus::Unavailable;
        assert!(missing.refusal().contains("unavailable"), "{}", missing.refusal());
    }

    #[test]
    fn options_fingerprint_roundtrips_through_the_parser() {
        // Every (mode, flag, reorder) combination the fingerprint can
        // encode must replay to options that re-fingerprint identically —
        // this is what makes journal replay faithful to the original
        // submission.
        let variants = [
            RepairOptions::default(),
            RepairOptions::pure_lazy(),
            RepairOptions {
                step2_closed_form: false,
                parallel_step2: true,
                allow_new_terminal_inside: false,
                max_outer_iterations: 7,
                reorder: ReorderMode::Sift,
                ..RepairOptions::default()
            },
            RepairOptions {
                use_expand_group: false,
                reorder: ReorderMode::None,
                ..Default::default()
            },
        ];
        for mode in [Mode::Lazy, Mode::Cautious] {
            for opts in &variants {
                let fp = options_fingerprint(mode, opts);
                let (mode2, opts2) =
                    options_from_fingerprint(&fp).unwrap_or_else(|| panic!("parses: {fp}"));
                assert_eq!(mode2, mode, "{fp}");
                assert_eq!(options_fingerprint(mode2, &opts2), fp, "roundtrip: {fp}");
            }
        }
        assert!(options_from_fingerprint("lazy:r1c1e1p0t1m32").is_none(), "missing reorder part");
        assert!(options_from_fingerprint("eager:r1c1e1p0t1m32:auto").is_none(), "unknown mode");
        assert!(options_from_fingerprint("lazy:r1c1e1p0t9m32:auto").is_none(), "bad flag bit");
    }

    #[test]
    fn execute_surfaces_compile_errors() {
        let spec = prepare(
            "program t; process p read x; write x; begin (x = 0) -> x := 1; end invariant true;",
            Mode::Lazy,
            RepairOptions::default(),
        )
        .unwrap();
        let err = execute(&spec, &Telemetry::off(), false).unwrap_err();
        let msg = err.to_string();
        assert!(matches!(err, ExecError::Invalid(_)), "{err:?}");
        assert!(msg.starts_with("compile error:"), "{msg}");
        assert!(msg.contains("unknown variable"), "{msg}");
    }

    #[test]
    fn execute_surfaces_deadline_aborts() {
        let opts =
            RepairOptions { deadline: Some(std::time::Duration::ZERO), ..RepairOptions::default() };
        let spec = prepare(TOGGLE, Mode::Lazy, opts).unwrap();
        let err = execute(&spec, &Telemetry::off(), false).unwrap_err();
        assert!(matches!(err, ExecError::Aborted(RepairAborted::Timeout)), "{err:?}");
        // The deadline is not part of the content address.
        let plain = prepare(TOGGLE, Mode::Lazy, RepairOptions::default()).unwrap();
        assert_eq!(spec.key, plain.key, "deadline must not fragment the cache");
    }
}

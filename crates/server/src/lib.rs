//! # ftrepair-server — repair as a service
//!
//! The CLI repairs one spec per invocation and rebuilds the BDD world from
//! scratch every time. This crate turns the pipeline into a long-running
//! daemon that amortizes that cost: accept `.ftr` specs over HTTP, queue
//! and schedule repair jobs across a `std::thread` worker pool, and serve
//! cached results keyed by the content hash of the canonicalized spec plus
//! its [`RepairOptions`](ftrepair_core::RepairOptions).
//!
//! Like the rest of the workspace the crate is dependency-free: the HTTP
//! layer is hand-rolled over [`std::net::TcpListener`] ([`http`]), the
//! bounded MPMC queue is a mutex/condvar pair ([`queue`]), and signal
//! handling goes through libc's `signal(2)` directly ([`signal`]).
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /repair` | body = `.ftr` spec; returns repaired guarded commands + run report (JSON). Query: `mode=lazy\|cautious`, `pure-lazy`, `iterative-step2`, `parallel`, `strict-terminal`. |
//! | `POST /simulate` | same body/query, plus `runs=N`, `max-faults=K`, `seed=S`; replays fault-injection batches against the (cached) repair. |
//! | `GET /healthz` | liveness + uptime. |
//! | `GET /metrics` | telemetry registry snapshot (cache hits/misses, queue depth, per-status counts, span times). |
//!
//! Backpressure: the job queue is bounded; when it is full new connections
//! are answered `429` immediately. Shutdown: SIGTERM/ctrl-c stops the
//! accept loop, queued jobs are drained, then the process exits (writing a
//! summary JSONL line when `--metrics-out` is set).

pub mod cache;
pub mod flight;
pub mod http;
pub mod job;
pub mod queue;
pub mod server;
pub mod signal;

pub use cache::{content_key, CacheEntry, ResultCache};
pub use job::{JobResult, JobSpec, Mode, SimBundle};
pub use queue::{JobQueue, PushError};
pub use server::{Server, ServerConfig, ServerHandle};

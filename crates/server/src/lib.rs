//! # ftrepair-server — repair as a service
//!
//! The CLI repairs one spec per invocation and rebuilds the BDD world from
//! scratch every time. This crate turns the pipeline into a long-running
//! daemon that amortizes that cost: accept `.ftr` specs over HTTP, queue
//! and schedule repair jobs across a `std::thread` worker pool, and serve
//! cached results keyed by the content hash of the canonicalized spec plus
//! its [`RepairOptions`](ftrepair_core::RepairOptions).
//!
//! Like the rest of the workspace the crate is dependency-free: the HTTP
//! layer is hand-rolled over [`std::net::TcpListener`] ([`http`]), the
//! bounded MPMC queue is a mutex/condvar pair ([`queue`]), and signal
//! handling goes through libc's `signal(2)` directly ([`signal`]).
//!
//! ## Endpoints
//!
//! | Endpoint | Meaning |
//! |---|---|
//! | `POST /repair` | body = `.ftr` spec; returns repaired guarded commands + run report (JSON). Query: `mode=lazy\|cautious`, `pure-lazy`, `iterative-step2`, `parallel`, `strict-terminal`. |
//! | `POST /simulate` | same body/query, plus `runs=N`, `max-faults=K`, `seed=S`; replays fault-injection batches against the (cached) repair. |
//! | `GET /healthz` | liveness + uptime + degraded/ok verdict; the `store` block reports the disk tier's entry count, I/O errors, and circuit-breaker state, and each poll doubles as the breaker's half-open probe. |
//! | `GET /metrics` | telemetry registry snapshot (cache hits/misses, queue depth, per-status counts, span times, latency histograms). `?format=prometheus` renders the Prometheus 0.0.4 text exposition instead of JSON. |
//! | `GET /jobs` | the most recent jobs (bounded ring), newest first — running jobs included, each keyed by its trace ID. |
//! | `GET /jobs/<trace-id>` | one retained job record: status, queue wait, run time, iteration/phase/BDD detail. |
//!
//! Every request carries a 64-bit trace ID — taken from a well-formed
//! `X-Trace-Id` header or minted server-side — echoed back in the
//! `X-Trace-Id` response header and in `/repair` / `/simulate` bodies,
//! and used as the `/jobs` key.
//!
//! Backpressure: the job queue is bounded; when it is full new connections
//! are answered `429` immediately. Shutdown: SIGTERM/ctrl-c stops the
//! accept loop, queued jobs are drained, then the process exits (writing a
//! summary JSONL line when `--metrics-out` is set).
//!
//! Robustness: every repair job runs under a deadline
//! ([`ServerConfig::job_timeout`], CLI `--job-timeout`, default 30s), a
//! BDD live-node budget ([`ServerConfig::job_max_nodes`], CLI
//! `--job-max-nodes`, tightened but never relaxed by a `?max-nodes=`
//! query), and inside a panic boundary. A job that exhausts its time
//! budget answers `503 {"error":"timeout"}`; one that exhausts its node
//! budget answers `503 {"error":"node budget exhausted"}` instead of
//! being OOM-killed; neither is cached. A job that panics answers `500`,
//! quarantines its content key in a bounded [`PoisonList`] (resubmission
//! → `422`), and retires the worker, which the supervisor respawns. The
//! disk store sits behind a circuit [`breaker`]: consecutive I/O failures
//! trip the daemon into memory-only degraded mode (ENOSPC first triggers
//! an emergency eviction and a retry), and half-open probes driven by
//! `/healthz` re-enable it when the volume heals. `GET /healthz` stays
//! 200 but reports `"degraded"` while a worker died or the queue
//! saturated within the last [`ServerConfig::degraded_window`], and
//! reports the store degraded while the breaker is open. The [`chaos`]
//! module (tests and the `chaos` cargo feature only) injects panics,
//! delays, queue-full conditions, and — via the chaos-gated
//! `ServerConfig::store_vfs` hook — disk faults, to exercise all of this
//! on purpose. The full failure-domain matrix lives in the repository's
//! `DESIGN.md`.

pub mod breaker;
pub mod cache;
#[cfg(any(test, feature = "chaos"))]
pub mod chaos;
pub mod flight;
pub mod http;
pub mod introspect;
pub mod job;
pub mod queue;
pub mod server;
pub mod signal;

pub use cache::{content_key, CacheEntry, PoisonList, ResultCache};
#[cfg(any(test, feature = "chaos"))]
pub use chaos::Chaos;
pub use introspect::{JobRecord, JobRing, JobStatus};
pub use job::{JobResult, JobSpec, Mode, SimBundle};
pub use queue::{JobQueue, PushError};
pub use server::{Server, ServerConfig, ServerHandle};

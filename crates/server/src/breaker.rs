//! Circuit breaker guarding the disk store.
//!
//! The store is an optimization: every read can miss and every write can
//! be dropped without affecting correctness. A flaky or full volume must
//! therefore never slow the repair path down — after `threshold`
//! *consecutive* I/O failures the breaker trips and the daemon runs
//! memory-only (reads skip the store, the writer drops entries, both
//! counted) until a half-open probe proves the volume healthy again.
//!
//! States follow the classic pattern:
//!
//! * **Closed** — normal operation, counting consecutive failures;
//! * **Open** — store bypassed until a backoff deadline passes. The
//!   backoff is *full jitter* (`delay = U(0, min(max, base·2^attempt))`)
//!   so a fleet of daemons sharing one sick NFS volume does not probe it
//!   in lockstep;
//! * **HalfOpen** — one probe in flight ([`crate::server`] drives it from
//!   `/healthz`, the only periodic traffic a pull-based daemon has).
//!   Success closes the breaker; failure re-opens it with a doubled
//!   backoff ceiling.
//!
//! Every transition is visible: `store.breaker.trips`, `.probes`,
//! `.recoveries`, `.failures` counters and the `store.breaker.open` gauge.

use ftrepair_telemetry::Telemetry;
use std::sync::Mutex;
use std::time::{Duration, Instant};

#[derive(Clone, Copy, Debug)]
enum State {
    Closed { failures: u32 },
    Open { until: Instant, attempt: u32 },
    HalfOpen { attempt: u32 },
}

/// See the module docs. All methods take `&self`; one mutex guards the
/// state (transitions are rare and cheap — the hot path is a single lock
/// + match in [`Breaker::allow`]).
pub struct Breaker {
    state: Mutex<State>,
    /// Consecutive failures that trip Closed → Open.
    threshold: u32,
    /// Backoff base; attempt `n` waits `U(0, min(max, base·2ⁿ))`.
    base: Duration,
    max: Duration,
    /// SplitMix64 state for the jitter.
    rng: Mutex<u64>,
    tele: Telemetry,
}

impl Breaker {
    pub fn new(
        threshold: u32,
        base: Duration,
        max: Duration,
        seed: u64,
        tele: &Telemetry,
    ) -> Breaker {
        let b = Breaker {
            state: Mutex::new(State::Closed { failures: 0 }),
            threshold: threshold.max(1),
            base,
            max: max.max(base),
            rng: Mutex::new(seed),
            tele: tele.clone(),
        };
        b.tele.set_gauge("store.breaker.open", 0);
        b
    }

    /// May the store be used right now? `false` while Open or HalfOpen —
    /// normal traffic stays off the volume until the probe clears it.
    pub fn allow(&self) -> bool {
        matches!(
            *self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
            State::Closed { .. }
        )
    }

    /// Is the breaker anywhere but Closed? (`/healthz` reports the store
    /// as `"degraded"` while this holds.)
    pub fn degraded(&self) -> bool {
        !self.allow()
    }

    /// An operation against the store succeeded. Closed: clears the
    /// consecutive-failure count. HalfOpen: the probe passed — close and
    /// count a recovery. Open: stale report from a racing thread; ignored.
    pub fn record_success(&self) {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match *state {
            State::Closed { failures: 0 } => {}
            State::Closed { .. } => *state = State::Closed { failures: 0 },
            State::HalfOpen { .. } => {
                *state = State::Closed { failures: 0 };
                self.tele.add("store.breaker.recoveries", 1);
                self.tele.set_gauge("store.breaker.open", 0);
            }
            State::Open { .. } => {}
        }
    }

    /// An operation against the store failed. Counts it, and trips or
    /// re-opens per state.
    pub fn record_failure(&self) {
        self.tele.add("store.breaker.failures", 1);
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match *state {
            State::Closed { failures } => {
                let failures = failures + 1;
                if failures >= self.threshold {
                    *state = State::Open { until: Instant::now() + self.backoff(1), attempt: 1 };
                    self.tele.add("store.breaker.trips", 1);
                    self.tele.set_gauge("store.breaker.open", 1);
                } else {
                    *state = State::Closed { failures };
                }
            }
            State::HalfOpen { attempt } => {
                // The probe failed: back off harder before the next one.
                let attempt = attempt + 1;
                *state = State::Open { until: Instant::now() + self.backoff(attempt), attempt };
            }
            State::Open { .. } => {}
        }
    }

    /// If the breaker is Open and its backoff deadline has passed, move to
    /// HalfOpen and return `true`: the caller owns the single probe and
    /// must report its outcome via [`Breaker::record_success`] /
    /// [`Breaker::record_failure`]. Any other state returns `false`.
    pub fn try_probe(&self) -> bool {
        let mut state = self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        match *state {
            State::Open { until, attempt } if Instant::now() >= until => {
                *state = State::HalfOpen { attempt };
                self.tele.add("store.breaker.probes", 1);
                true
            }
            _ => false,
        }
    }

    /// One word for `/healthz`.
    pub fn state_str(&self) -> &'static str {
        match *self.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner) {
            State::Closed { .. } => "closed",
            State::Open { .. } => "open",
            State::HalfOpen { .. } => "half-open",
        }
    }

    /// Full-jitter backoff for the given attempt number (1-based).
    fn backoff(&self, attempt: u32) -> Duration {
        let ceiling = self
            .base
            .checked_mul(1u32.checked_shl(attempt.min(16)).unwrap_or(u32::MAX))
            .map_or(self.max, |d| d.min(self.max));
        let nanos = ceiling.as_nanos().min(u128::from(u64::MAX)) as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let mut rng = self.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *rng = rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *rng;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        Duration::from_nanos(z % nanos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, tele: &Telemetry) -> Breaker {
        // Zero backoff: Open is immediately probeable, keeping tests
        // deterministic and instant.
        Breaker::new(threshold, Duration::ZERO, Duration::ZERO, 7, tele)
    }

    #[test]
    fn trips_after_consecutive_failures_only() {
        let tele = Telemetry::new();
        let b = breaker(3, &tele);
        b.record_failure();
        b.record_failure();
        b.record_success(); // breaks the streak
        b.record_failure();
        b.record_failure();
        assert!(b.allow(), "2 failures after a success: still closed");
        b.record_failure();
        assert!(!b.allow(), "3rd consecutive failure trips");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.breaker.trips"), 1);
        assert_eq!(snap.counter("store.breaker.failures"), 5);
        assert_eq!(snap.gauges["store.breaker.open"], 1);
    }

    #[test]
    fn probe_success_closes_and_counts_a_recovery() {
        let tele = Telemetry::new();
        let b = breaker(1, &tele);
        b.record_failure();
        assert_eq!(b.state_str(), "open");
        assert!(b.try_probe(), "zero backoff: probeable immediately");
        assert_eq!(b.state_str(), "half-open");
        assert!(!b.try_probe(), "one probe at a time");
        b.record_success();
        assert!(b.allow());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.breaker.probes"), 1);
        assert_eq!(snap.counter("store.breaker.recoveries"), 1);
        assert_eq!(snap.gauges["store.breaker.open"], 0);
    }

    #[test]
    fn probe_failure_reopens_with_a_higher_attempt() {
        let tele = Telemetry::new();
        let b = breaker(1, &tele);
        b.record_failure();
        assert!(b.try_probe());
        b.record_failure();
        assert_eq!(b.state_str(), "open", "failed probe re-opens");
        assert!(b.try_probe(), "zero backoff: next probe allowed");
        b.record_success();
        assert!(b.allow());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.breaker.probes"), 2);
        assert_eq!(snap.counter("store.breaker.trips"), 1, "re-open is not a new trip");
    }

    #[test]
    fn nonzero_backoff_delays_the_probe() {
        let tele = Telemetry::new();
        let b = Breaker::new(1, Duration::from_secs(30), Duration::from_secs(60), 7, &tele);
        b.record_failure();
        // Full jitter can land anywhere in (0, 60s]; equality with zero is
        // astronomically unlikely with this seed, and the assert below only
        // needs "not immediately".
        assert!(!b.try_probe(), "backoff deadline not reached yet");
        assert_eq!(b.state_str(), "open");
    }
}

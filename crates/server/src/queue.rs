//! A bounded multi-producer/multi-consumer job queue with explicit
//! backpressure.
//!
//! The accept loop `try_push`es accepted connections; when the queue is
//! full the push fails *immediately* and the server answers `429` instead
//! of letting latency grow without bound. Workers block in [`JobQueue::pop`]
//! until a job arrives or the queue is closed; closing wakes everyone and
//! lets workers drain whatever is still queued — that is what makes
//! graceful shutdown a one-liner.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a push was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue holds `capacity` jobs already — shed load.
    Full,
    /// The queue was closed (shutdown in progress) — stop accepting.
    Closed,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// The queue. All methods take `&self`; share it behind an `Arc`.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A queue holding at most `capacity` jobs (minimum 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            available: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Enqueue without blocking; `Err` means the caller must shed the job.
    pub fn try_push(&self, item: T) -> Result<(), (T, PushError)> {
        let mut s = self.state.lock().unwrap();
        if s.closed {
            return Err((item, PushError::Closed));
        }
        if s.items.len() >= self.capacity {
            return Err((item, PushError::Full));
        }
        s.items.push_back(item);
        drop(s);
        self.available.notify_one();
        Ok(())
    }

    /// Block until a job is available or the queue is closed *and* empty.
    /// `None` is the worker's signal to exit; jobs queued before the close
    /// are still handed out (drain semantics).
    pub fn pop(&self) -> Option<T> {
        let mut s = self.state.lock().unwrap();
        loop {
            if let Some(item) = s.items.pop_front() {
                return Some(item);
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).unwrap();
        }
    }

    /// Close the queue: further pushes fail, blocked poppers wake up, and
    /// already-queued jobs remain poppable.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.available.notify_all();
    }

    /// Take every still-queued job at once, leaving the queue empty. The
    /// shutdown drain deadline uses this: jobs that did not get a worker in
    /// time are pulled out en masse and answered `503` instead of being
    /// silently dropped when the process exits.
    pub fn drain_remaining(&self) -> Vec<T> {
        let mut s = self.state.lock().unwrap();
        s.items.drain(..).collect()
    }

    /// Jobs currently waiting (diagnostic; racy by nature).
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().items.len()
    }

    /// Is the queue empty right now?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_fifo() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_sheds_load() {
        let q = JobQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        let (item, err) = q.try_push(3).unwrap_err();
        assert_eq!(item, 3);
        assert_eq!(err, PushError::Full);
        // Popping frees a slot again.
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
    }

    #[test]
    fn close_wakes_poppers_and_drains() {
        let q = Arc::new(JobQueue::new(4));
        q.try_push(7).unwrap();
        q.close();
        // Queued items survive the close…
        assert_eq!(q.pop(), Some(7));
        // …then poppers see the end.
        assert_eq!(q.pop(), None);
        // And pushes are refused.
        assert_eq!(q.try_push(8).unwrap_err().1, PushError::Closed);
    }

    #[test]
    fn drain_remaining_empties_the_queue_in_order() {
        let q = JobQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.drain_remaining(), vec![1, 2]);
        assert_eq!(q.pop(), None, "drained queue hands out nothing further");
    }

    #[test]
    fn blocked_pop_wakes_on_close() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn mpmc_under_contention_loses_nothing() {
        let q = Arc::new(JobQueue::new(1024));
        let total = 4 * 250;
        std::thread::scope(|s| {
            for t in 0..4 {
                let q = Arc::clone(&q);
                s.spawn(move || {
                    for i in 0..250 {
                        while q.try_push(t * 1000 + i).is_err() {
                            std::thread::yield_now();
                        }
                    }
                });
            }
            let mut handles = Vec::new();
            for _ in 0..4 {
                let q = Arc::clone(&q);
                handles.push(s.spawn(move || {
                    let mut got = 0;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                }));
            }
            // Give producers time to finish, then close to release consumers.
            s.spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(200));
                q.close();
            });
            let got: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(got, total);
        });
    }
}

//! Regenerate the paper's tables.
//!
//! ```text
//! cargo run --release -p ftrepair-bench --bin tables -- \
//!     [table1|table2|table3|ablations|ablation_reorder|all] [--large] [--metrics-out <path>]
//! ```
//!
//! `--large` extends every sweep to the biggest instances (minutes of
//! runtime); without it each table completes in well under a minute.
//! `--huge` additionally runs the chain at Sc^20 (≈10^18 states — several
//! minutes and ~10 GB of peak memory, measurement plus re-verification).
//! `--metrics-out <path>` appends every measured row's JSONL run report —
//! the same schema the CLI's `ftrepair repair --metrics-out` emits — so
//! downstream tooling can consume table runs and CLI runs uniformly.

use ftrepair_bench::{
    ablation_reorder, ablation_warm_start, measure, render, render_reorder, render_warm_start,
    table1, table1_lazy_only, table2, table3, Row,
};
use ftrepair_casestudies::{byzantine_agreement, stabilizing_chain};
use ftrepair_core::RepairOptions;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let huge = args.iter().any(|a| a == "--huge");
    let large = huge || args.iter().any(|a| a == "--large");
    let metrics_out: Option<PathBuf> =
        args.iter().position(|a| a == "--metrics-out").map(|i| match args.get(i + 1) {
            Some(p) if !p.starts_with("--") => PathBuf::from(p),
            _ => {
                eprintln!("--metrics-out requires a path argument");
                std::process::exit(1);
            }
        });
    let what = args
        .iter()
        .enumerate()
        .filter(|&(i, a)| !a.starts_with("--") && (i == 0 || args[i - 1] != "--metrics-out"))
        .map(|(_, a)| a.as_str())
        .next()
        .unwrap_or("all");

    let rows = match what {
        "table1" => run_table1(large),
        "table2" => run_table2(large),
        "table3" => run_table3(large, huge),
        "ablations" => run_ablations(large),
        "ablation_reorder" => run_ablation_reorder(large),
        "ablation_warm" => run_ablation_warm(large),
        "all" => {
            let mut rows = run_table1(large);
            rows.extend(run_table2(large));
            rows.extend(run_table3(large, huge));
            rows.extend(run_ablations(large));
            rows.extend(run_ablation_reorder(large));
            rows.extend(run_ablation_warm(large));
            rows
        }
        other => {
            eprintln!(
                "unknown selector {other}; use table1|table2|table3|ablations|ablation_reorder|ablation_warm|all"
            );
            std::process::exit(1);
        }
    };

    if let Some(path) = metrics_out {
        for row in &rows {
            if let Err(e) = row.report.append_to(&path) {
                eprintln!("failed to append metrics to {}: {e}", path.display());
                std::process::exit(1);
            }
        }
        eprintln!("wrote {} JSONL report lines to {}", rows.len(), path.display());
    }
}

fn run_table1(large: bool) -> Vec<Row> {
    let sizes: &[usize] = if large { &[2, 3, 4, 5, 6, 8] } else { &[2, 3, 4, 5] };
    let mut rows = table1(sizes);
    // Lazy-only extension, like the paper's largest rows where the cautious
    // baseline becomes impractical.
    let extension: &[usize] = if large { &[10, 12] } else { &[6, 8] };
    rows.extend(table1_lazy_only(extension));
    println!("{}", render(&rows, "Table I — Byzantine agreement: cautious vs lazy repair"));
    rows
}

fn run_table2(large: bool) -> Vec<Row> {
    let sizes: &[usize] = if large { &[2, 3, 4, 5, 6] } else { &[2, 3, 4] };
    let rows = table2(sizes);
    println!(
        "{}",
        render(&rows, "Table II — Byzantine agreement with fail-stop faults (lazy repair)")
    );
    rows
}

fn run_table3(large: bool, huge: bool) -> Vec<Row> {
    let sizes: &[usize] = if huge {
        &[8, 10, 12, 14, 16, 20]
    } else if large {
        &[8, 10, 12, 14, 16]
    } else {
        &[6, 8, 10, 12]
    };
    let rows = table3(sizes, 8);
    println!("{}", render(&rows, "Table III — Stabilizing chain Sc^n (lazy repair, d = 8)"));
    rows
}

fn run_ablations(large: bool) -> Vec<Row> {
    let n = if large { 5 } else { 4 };

    // Ablation A: the reachable-states heuristic (paper: "pure lazy repair
    // does not improve the performance"). On the fail-stop model the
    // difference is qualitative: without the heuristic the outer loop
    // churns on unreachable deadlock states and does not converge.
    let fs_n = if large { 4 } else { 3 };
    let with = measure(
        format!("BAFS^{fs_n} heuristic"),
        || ftrepair_casestudies::byzantine_failstop(fs_n).0,
        &RepairOptions::default(),
        false,
    );
    let without = measure(
        format!("BAFS^{fs_n} pure-lazy"),
        || ftrepair_casestudies::byzantine_failstop(fs_n).0,
        &RepairOptions::pure_lazy(),
        false,
    );
    println!(
        "{}",
        render(
            &[with.clone(), without.clone()],
            "Ablation A — reachable-states heuristic on/off (Section V-A)"
        )
    );

    // Ablation B: Step 2 strategies — closed form vs Algorithm 2's loop
    // with and without ExpandGroup.
    let chain_n = if large { 8 } else { 6 };
    let closed = measure(
        format!("Sc^{chain_n} closed-form"),
        || stabilizing_chain(chain_n, 4).0,
        &RepairOptions::default(),
        false,
    );
    let iter_expand = measure(
        format!("Sc^{chain_n} iterative+expand"),
        || stabilizing_chain(chain_n, 4).0,
        &RepairOptions::iterative_step2(),
        false,
    );
    let iter_plain = measure(
        format!("Sc^{chain_n} iterative"),
        || stabilizing_chain(chain_n, 4).0,
        &RepairOptions { use_expand_group: false, ..RepairOptions::iterative_step2() },
        false,
    );
    println!(
        "{}",
        render(
            &[closed.clone(), iter_expand.clone(), iter_plain.clone()],
            "Ablation B — Step 2 strategy: closed form vs Algorithm 2 loop ± ExpandGroup (Section V-B)"
        )
    );

    // Ablation C: parallel Step 2 (ours).
    let seq = measure(
        format!("BA^{n} sequential"),
        || byzantine_agreement(n).0,
        &RepairOptions::default(),
        false,
    );
    let par = measure(
        format!("BA^{n} parallel"),
        || byzantine_agreement(n).0,
        &RepairOptions { parallel_step2: true, ..Default::default() },
        false,
    );
    println!(
        "{}",
        render(&[seq.clone(), par.clone()], "Ablation C — parallel Step 2 (per-process workers)")
    );

    vec![with, without, closed, iter_expand, iter_plain, seq, par]
}

/// Ablation E: warm-start repair from the disk store. A one-action edit of
/// a spec whose repair is already persisted seeds Step 1's reachability
/// from the stored neighbor's invariant/span BDDs; cold and warm results
/// are compared root-for-root (exact parity) and both re-verified.
fn run_ablation_warm(large: bool) -> Vec<Row> {
    let sizes: &[(usize, u64)] =
        if large { &[(6, 8), (8, 8), (10, 8), (12, 8)] } else { &[(6, 8), (8, 8), (10, 8)] };
    let measured = ablation_warm_start(sizes);
    println!(
        "{}",
        render_warm_start(&measured, "Ablation E — warm-start from stored neighbor (ours)")
    );
    measured.into_iter().flat_map(|r| [r.cold, r.warm]).collect()
}

/// Ablation D: dynamic variable reordering. Runs the big chain instances —
/// the only case studies whose peaks clear the Auto trigger's threshold —
/// under all three [`ftrepair_core::ReorderMode`]s, reporting the peak
/// live-node counts next to wall-clock so the memory/time trade is visible
/// in one table.
fn run_ablation_reorder(large: bool) -> Vec<Row> {
    let mut sizes = vec![12usize];
    if large {
        sizes.push(14);
    }
    let mut rows = Vec::new();
    for n in sizes {
        let measured = ablation_reorder(format!("Sc^{n}"), || stabilizing_chain(n, 8).0);
        println!(
            "{}",
            render_reorder(
                &measured,
                &format!("Ablation D — dynamic variable reordering on Sc^{n} (d = 8)")
            )
        );
        rows.extend(measured.into_iter().map(|r| r.row));
    }
    rows
}

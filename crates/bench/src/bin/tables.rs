//! Regenerate the paper's tables.
//!
//! ```text
//! cargo run --release -p ftrepair-bench --bin tables -- [table1|table2|table3|ablations|all] [--large]
//! ```
//!
//! `--large` extends every sweep to the biggest instances (minutes of
//! runtime); without it each table completes in well under a minute.
//! `--huge` additionally runs the chain at Sc^20 (≈10^18 states — several
//! minutes and ~10 GB of peak memory, measurement plus re-verification).

use ftrepair_bench::{measure, render, table1, table1_lazy_only, table2, table3};
use ftrepair_casestudies::{byzantine_agreement, stabilizing_chain};
use ftrepair_core::RepairOptions;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let huge = args.iter().any(|a| a == "--huge");
    let large = huge || args.iter().any(|a| a == "--large");
    let what = args.iter().find(|a| !a.starts_with("--")).map(String::as_str).unwrap_or("all");

    match what {
        "table1" => run_table1(large),
        "table2" => run_table2(large),
        "table3" => run_table3(large, huge),
        "ablations" => run_ablations(large),
        "all" => {
            run_table1(large);
            run_table2(large);
            run_table3(large, huge);
            run_ablations(large);
        }
        other => {
            eprintln!("unknown selector {other}; use table1|table2|table3|ablations|all");
            std::process::exit(1);
        }
    }
}

fn run_table1(large: bool) {
    let sizes: &[usize] = if large { &[2, 3, 4, 5, 6, 8] } else { &[2, 3, 4, 5] };
    let mut rows = table1(sizes);
    // Lazy-only extension, like the paper's largest rows where the cautious
    // baseline becomes impractical.
    let extension: &[usize] = if large { &[10, 12] } else { &[6, 8] };
    rows.extend(table1_lazy_only(extension));
    println!(
        "{}",
        render(&rows, "Table I — Byzantine agreement: cautious vs lazy repair")
    );
}

fn run_table2(large: bool) {
    let sizes: &[usize] = if large { &[2, 3, 4, 5, 6] } else { &[2, 3, 4] };
    let rows = table2(sizes);
    println!(
        "{}",
        render(&rows, "Table II — Byzantine agreement with fail-stop faults (lazy repair)")
    );
}

fn run_table3(large: bool, huge: bool) {
    let sizes: &[usize] = if huge {
        &[8, 10, 12, 14, 16, 20]
    } else if large {
        &[8, 10, 12, 14, 16]
    } else {
        &[6, 8, 10, 12]
    };
    let rows = table3(sizes, 8);
    println!("{}", render(&rows, "Table III — Stabilizing chain Sc^n (lazy repair, d = 8)"));
}

fn run_ablations(large: bool) {
    let n = if large { 5 } else { 4 };

    // Ablation A: the reachable-states heuristic (paper: "pure lazy repair
    // does not improve the performance"). On the fail-stop model the
    // difference is qualitative: without the heuristic the outer loop
    // churns on unreachable deadlock states and does not converge.
    let fs_n = if large { 4 } else { 3 };
    let with = measure(
        format!("BAFS^{fs_n} heuristic"),
        || ftrepair_casestudies::byzantine_failstop(fs_n).0,
        &RepairOptions::default(),
        false,
    );
    let without = measure(
        format!("BAFS^{fs_n} pure-lazy"),
        || ftrepair_casestudies::byzantine_failstop(fs_n).0,
        &RepairOptions::pure_lazy(),
        false,
    );
    println!(
        "{}",
        render(&[with, without], "Ablation A — reachable-states heuristic on/off (Section V-A)")
    );

    // Ablation B: Step 2 strategies — closed form vs Algorithm 2's loop
    // with and without ExpandGroup.
    let chain_n = if large { 8 } else { 6 };
    let closed = measure(
        format!("Sc^{chain_n} closed-form"),
        || stabilizing_chain(chain_n, 4).0,
        &RepairOptions::default(),
        false,
    );
    let iter_expand = measure(
        format!("Sc^{chain_n} iterative+expand"),
        || stabilizing_chain(chain_n, 4).0,
        &RepairOptions::iterative_step2(),
        false,
    );
    let iter_plain = measure(
        format!("Sc^{chain_n} iterative"),
        || stabilizing_chain(chain_n, 4).0,
        &RepairOptions { use_expand_group: false, ..RepairOptions::iterative_step2() },
        false,
    );
    println!(
        "{}",
        render(
            &[closed, iter_expand, iter_plain],
            "Ablation B — Step 2 strategy: closed form vs Algorithm 2 loop ± ExpandGroup (Section V-B)"
        )
    );

    // Ablation C: parallel Step 2 (ours).
    let seq = measure(
        format!("BA^{n} sequential"),
        || byzantine_agreement(n).0,
        &RepairOptions::default(),
        false,
    );
    let par = measure(
        format!("BA^{n} parallel"),
        || byzantine_agreement(n).0,
        &RepairOptions { parallel_step2: true, ..Default::default() },
        false,
    );
    println!("{}", render(&[seq, par], "Ablation C — parallel Step 2 (per-process workers)"));
}

//! `loadgen` — HTTP load generator for the `ftrepair serve` daemon.
//!
//! ```text
//! loadgen --addr 127.0.0.1:7177 --spec examples/specs/toggle_pair.ftr
//!         [--spec more.ftr ...] [--conns 8] [--requests 64]
//!         [--mode lazy|cautious] [--endpoint repair|simulate]
//!         [--connect-timeout <secs>] [--retries <n>]
//!         [--metrics-out <path>]
//! ```
//!
//! Opens `--conns` worker threads, each issuing `POST /<endpoint>` requests
//! over raw TCP (one request per connection, matching the server's
//! `Connection: close` contract) until `--requests` total have completed,
//! rotating through the given specs. Connects are bounded by
//! `--connect-timeout` (a dead daemon fails fast instead of hanging the
//! batch), and a failed connect or a `429` is retried up to `--retries`
//! times with full-jitter exponential backoff, so the generator behaves
//! like a disciplined client instead of re-slamming a saturated queue in
//! lockstep. Every request carries a deterministically minted `X-Trace-Id`
//! header and checks that the daemon echoes it back, so any retained
//! sample can be looked up at `/jobs/<trace-id>` afterwards. Per-request
//! latency goes into a lock-free log-bucketed histogram (every request, no
//! sampling); the report's percentiles are derived from it. Reports
//! throughput, latency percentiles, retries, and status/cache breakdowns,
//! with failures classified by kind — `shed` (429), `5xx`, `connect`,
//! `timeout`, `transport` — because each calls for a different reaction
//! (back off / inspect jobs / restart daemon / raise deadline / check the
//! network); `--metrics-out` appends the summary as one JSONL run report
//! in the same schema as the CLI and the bench tables, histogram included.
//!
//! `--restart-after N` splits the run into two phases for measuring the
//! persistent store's warm restart: the first N requests form the *cold*
//! phase, then the generator pauses `--restart-pause` seconds — long
//! enough for a harness to SIGTERM the daemon and restart it on the same
//! `--store-dir` — and the remaining requests form the *warm* phase
//! against the restarted daemon (connect retries absorb the gap). The
//! report then carries separate `cold_*`/`warm_*` latency percentiles, so
//! the post-restart p99 collapse is one JSONL line.

use ftrepair_telemetry::report::histogram_to_json;
use ftrepair_telemetry::trace::format_trace_id;
use ftrepair_telemetry::{Histogram, Json, RunReport};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

struct Args {
    addr: String,
    specs: Vec<(String, String)>, // (path, body)
    conns: usize,
    requests: usize,
    mode: String,
    endpoint: String,
    connect_timeout: Duration,
    max_retries: usize,
    metrics_out: Option<PathBuf>,
    restart_after: Option<usize>,
    restart_pause: Duration,
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut args = Args {
        addr: "127.0.0.1:7177".to_string(),
        specs: Vec::new(),
        conns: 8,
        requests: 64,
        mode: "lazy".to_string(),
        endpoint: "repair".to_string(),
        connect_timeout: Duration::from_secs(5),
        max_retries: 3,
        metrics_out: None,
        restart_after: None,
        restart_pause: Duration::from_secs(2),
    };
    let mut i = 0;
    while i < argv.len() {
        let value = |i: usize| -> Result<&String, String> {
            argv.get(i + 1).ok_or_else(|| format!("{} requires an argument", argv[i]))
        };
        match argv[i].as_str() {
            "--addr" => args.addr = value(i)?.clone(),
            "--spec" => {
                let path = value(i)?.clone();
                let body = std::fs::read_to_string(&path)
                    .map_err(|e| format!("cannot read {path}: {e}"))?;
                args.specs.push((path, body));
            }
            "--conns" => args.conns = value(i)?.parse().map_err(|_| "--conns: not a number")?,
            "--requests" => {
                args.requests = value(i)?.parse().map_err(|_| "--requests: not a number")?
            }
            "--mode" => args.mode = value(i)?.clone(),
            "--endpoint" => args.endpoint = value(i)?.clone(),
            "--connect-timeout" => {
                let secs: f64 = value(i)?.parse().map_err(|_| "--connect-timeout: not a number")?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err("--connect-timeout must be positive seconds".to_string());
                }
                args.connect_timeout = Duration::from_secs_f64(secs);
            }
            "--retries" => {
                args.max_retries = value(i)?.parse().map_err(|_| "--retries: not a number")?
            }
            "--metrics-out" => args.metrics_out = Some(PathBuf::from(value(i)?)),
            "--restart-after" => {
                args.restart_after =
                    Some(value(i)?.parse().map_err(|_| "--restart-after: not a number")?)
            }
            "--restart-pause" => {
                let secs: f64 = value(i)?.parse().map_err(|_| "--restart-pause: not a number")?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err("--restart-pause must be non-negative seconds".to_string());
                }
                args.restart_pause = Duration::from_secs_f64(secs);
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += if argv[i].starts_with("--") { 2 } else { 1 };
    }
    if args.specs.is_empty() {
        return Err("at least one --spec <file.ftr> is required".to_string());
    }
    if !matches!(args.mode.as_str(), "lazy" | "cautious") {
        return Err(format!("--mode must be lazy or cautious, not {}", args.mode));
    }
    if !matches!(args.endpoint.as_str(), "repair" | "simulate") {
        return Err(format!("--endpoint must be repair or simulate, not {}", args.endpoint));
    }
    if args.conns == 0 || args.requests == 0 {
        return Err("--conns and --requests must be at least 1".to_string());
    }
    if let Some(n) = args.restart_after {
        if n == 0 || n >= args.requests {
            return Err("--restart-after must leave requests in both phases".to_string());
        }
    }
    Ok(args)
}

/// One completed request, as seen from the client.
struct Sample {
    latency: Duration,
    status: u16,
    cached: bool,
    /// Did the daemon echo our `X-Trace-Id` back unchanged?
    trace_echoed: bool,
}

/// Why a request produced no HTTP status, split at the source so the
/// summary can tell a dead daemon from a hung one from a torn reply.
enum RequestError {
    /// TCP connect (or name resolution) failed — the daemon is down,
    /// restarting, or its listen backlog overflowed. Retryable.
    Connect(String),
    /// The connection opened but a read or write hit its timeout — the
    /// daemon accepted us and then went quiet.
    Timeout(String),
    /// Everything else: reset mid-reply, malformed response, short read.
    Transport(String),
}

impl RequestError {
    fn class(&self) -> &'static str {
        match self {
            RequestError::Connect(_) => "connect",
            RequestError::Timeout(_) => "timeout",
            RequestError::Transport(_) => "transport",
        }
    }

    fn message(&self) -> &str {
        match self {
            RequestError::Connect(m) | RequestError::Timeout(m) | RequestError::Transport(m) => m,
        }
    }
}

/// Classify a post-connect I/O failure: blocking sockets with a deadline
/// report `TimedOut` or (on some platforms) `WouldBlock`.
fn io_error(stage: &str, e: std::io::Error) -> RequestError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => {
            RequestError::Timeout(format!("{stage}: {e}"))
        }
        _ => RequestError::Transport(format!("{stage}: {e}")),
    }
}

/// Issue one request and parse the status line + body out of the raw reply.
fn one_request(
    addr: &str,
    endpoint: &str,
    mode: &str,
    body: &str,
    trace_id: u64,
    connect_timeout: Duration,
) -> Result<Sample, RequestError> {
    use std::net::ToSocketAddrs;
    let started = Instant::now();
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| RequestError::Connect(format!("connect {addr}: {e}")))?
        .next()
        .ok_or_else(|| RequestError::Connect(format!("connect {addr}: no address resolved")))?;
    let mut stream = TcpStream::connect_timeout(&sock, connect_timeout)
        .map_err(|e| RequestError::Connect(format!("connect {addr}: {e}")))?;
    stream.set_read_timeout(Some(Duration::from_secs(60))).ok();
    stream.set_write_timeout(Some(Duration::from_secs(60))).ok();
    let trace_hex = format_trace_id(trace_id);
    let request = format!(
        "POST /{endpoint}?mode={mode} HTTP/1.1\r\nHost: {addr}\r\nX-Trace-Id: {trace_hex}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    );
    stream.write_all(request.as_bytes()).map_err(|e| io_error("write", e))?;
    let mut reply = Vec::new();
    stream.read_to_end(&mut reply).map_err(|e| io_error("read", e))?;
    let latency = started.elapsed();

    let text = String::from_utf8_lossy(&reply);
    let status: u16 = text
        .strip_prefix("HTTP/1.1 ")
        .and_then(|rest| rest.get(..3))
        .and_then(|code| code.parse().ok())
        .ok_or_else(|| {
            RequestError::Transport(format!(
                "malformed reply: {:?}",
                text.lines().next().unwrap_or("")
            ))
        })?;
    let (head, json_body) = match text.split_once("\r\n\r\n") {
        Some((h, b)) => (h, b),
        None => (text.as_ref(), ""),
    };
    let trace_echoed = head.lines().any(|line| {
        line.split_once(':').is_some_and(|(name, value)| {
            name.eq_ignore_ascii_case("x-trace-id") && value.trim() == trace_hex
        })
    });
    let cached = Json::parse(json_body)
        .ok()
        .and_then(|j| j.get("cached").and_then(Json::as_bool))
        .unwrap_or(false);
    Ok(Sample { latency, status, cached, trace_echoed })
}

/// One SplitMix64 step.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One SplitMix64 step mapped to `[0, 1)`.
fn next_unit(state: &mut u64) -> f64 {
    (next_u64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Issue a request, retrying failed connects and `429`s up to
/// `args.max_retries` times. Returns the final result plus how many
/// retries it took.
fn request_with_retry(
    args: &Args,
    body: &str,
    rng: &mut u64,
) -> (Result<Sample, RequestError>, usize) {
    const BACKOFF_BASE: Duration = Duration::from_millis(50);
    // One trace ID per logical request (retries reuse it — they are the
    // same attempt from the client's point of view). `max(1)`: trace IDs
    // are nonzero by contract.
    let trace_id = next_u64(rng).max(1);
    let mut retries = 0;
    loop {
        let result = one_request(
            &args.addr,
            &args.endpoint,
            &args.mode,
            body,
            trace_id,
            args.connect_timeout,
        );
        let retryable = match &result {
            // Connects are retryable (daemon restarting, listen backlog
            // full); read/write errors are not — the job may have run, and
            // replaying it could double non-idempotent work downstream.
            Err(e) => matches!(e, RequestError::Connect(_)),
            Ok(s) => s.status == 429,
        };
        if !retryable || retries >= args.max_retries {
            return (result, retries);
        }
        // Full-jitter exponential backoff: sleep a uniform random slice of
        // base * 2^attempt, so the herd that saturated the queue does not
        // re-arrive in lockstep and saturate it again.
        let cap = BACKOFF_BASE.as_secs_f64() * (1u64 << retries.min(6)) as f64;
        std::thread::sleep(Duration::from_secs_f64((cap * next_unit(rng)).max(0.001)));
        retries += 1;
    }
}

/// Issue `count` requests over `args.conns` connections, rotating through
/// the spec list from index 0 (both phases of a restart run post the same
/// spec rotation — that is what makes the second phase warm). `phase`
/// seeds the jitter streams so the two phases do not replay identical
/// backoff schedules.
fn run_batch(args: &Args, count: usize, phase: u64) -> Vec<(Result<Sample, RequestError>, usize)> {
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..args.conns)
            .map(|conn| {
                let next = &next;
                scope.spawn(move || {
                    // Per-connection jitter stream, seeded distinctly so
                    // concurrent backoffs do not march in step.
                    let mut rng: u64 = 0x10AD_6E4E
                        ^ (conn as u64).wrapping_mul(0xA5A5_A5A5)
                        ^ phase.wrapping_mul(0x5EED_0CE1);
                    let mut out = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        let (_, body) = &args.specs[i % args.specs.len()];
                        out.push(request_with_retry(args, body, &mut rng));
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("worker panicked")).collect()
    })
}

/// Latency percentiles of one phase's successful requests.
fn phase_latency(results: &[(Result<Sample, RequestError>, usize)]) -> (Duration, Duration, u64) {
    let hist = Histogram::new();
    for (r, _) in results {
        if let Ok(s) = r {
            hist.observe_duration(s.latency);
        }
    }
    let snap = hist.snapshot();
    (snap.percentile_duration(50.0), snap.percentile_duration(99.0), snap.count)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("loadgen: {e}");
            return ExitCode::from(2);
        }
    };

    // `elapsed` sums the measuring windows only — the restart pause is not
    // the daemon's latency and must not dilute the throughput number.
    let cold_count = args.restart_after.unwrap_or(args.requests);
    let started = Instant::now();
    let cold_results = run_batch(&args, cold_count, 0);
    let mut elapsed = started.elapsed();
    let warm_results = if args.restart_after.is_some() {
        eprintln!(
            "loadgen: cold phase done ({} requests); pausing {:.2?} for the daemon restart",
            cold_results.len(),
            args.restart_pause,
        );
        std::thread::sleep(args.restart_pause);
        let warm_started = Instant::now();
        let warm = run_batch(&args, args.requests - cold_count, 1);
        elapsed += warm_started.elapsed();
        warm
    } else {
        Vec::new()
    };
    let results: Vec<&(Result<Sample, RequestError>, usize)> =
        cold_results.iter().chain(warm_results.iter()).collect();

    // Every completed request's latency lands in the histogram — no
    // sampling, fixed memory — and the reported percentiles come straight
    // out of its buckets (≤6.25% relative error).
    let latency_hist = Histogram::new();
    let mut ok = 0usize;
    // Failure classes, kept apart because each calls for a different
    // reaction: `shed` (429) means the queue held — back off; `server_5xx`
    // means jobs are dying; `connect` means the daemon is down; `timeout`
    // means it accepted and hung; `transport` is a torn or malformed reply.
    let mut shed = 0usize;
    let mut server_5xx = 0usize;
    let mut other_status = 0usize;
    let mut connect_errors = 0usize;
    let mut timeout_errors = 0usize;
    let mut transport_errors = 0usize;
    let mut cached = 0usize;
    let mut retries = 0usize;
    let mut trace_mismatches = 0usize;
    for (r, tries) in results.iter().copied() {
        retries += tries;
        match r {
            Ok(s) => {
                latency_hist.observe_duration(s.latency);
                match s.status {
                    200 => ok += 1,
                    429 => shed += 1,
                    500..=599 => server_5xx += 1,
                    _ => other_status += 1,
                }
                cached += s.cached as usize;
                trace_mismatches += !s.trace_echoed as usize;
            }
            Err(e) => {
                match e {
                    RequestError::Connect(_) => connect_errors += 1,
                    RequestError::Timeout(_) => timeout_errors += 1,
                    RequestError::Transport(_) => transport_errors += 1,
                }
                eprintln!("loadgen: request failed ({}): {}", e.class(), e.message());
            }
        }
    }
    let errors = connect_errors + timeout_errors + transport_errors;
    let latency = latency_hist.snapshot();
    let (p50, p90, p99, p999) = (
        latency.percentile_duration(50.0),
        latency.percentile_duration(90.0),
        latency.percentile_duration(99.0),
        latency.percentile_duration(99.9),
    );
    let throughput = results.len() as f64 / elapsed.as_secs_f64().max(1e-9);

    eprintln!(
        "loadgen: {} requests in {:.2?} over {} conns -> {:.1} req/s",
        results.len(),
        elapsed,
        args.conns,
        throughput,
    );
    eprintln!(
        "  status: {ok} ok, {shed} shed (429), {server_5xx} 5xx, {other_status} other; \
         failed: {connect_errors} connect, {timeout_errors} timeout, {transport_errors} transport; \
         {cached} cache hits; {retries} retries",
    );
    eprintln!("  latency: p50 {p50:.2?}, p90 {p90:.2?}, p99 {p99:.2?}, p999 {p999:.2?} (histogram, {} samples)", latency.count);
    if args.restart_after.is_some() {
        let (cold_p50, cold_p99, cold_n) = phase_latency(&cold_results);
        let (warm_p50, warm_p99, warm_n) = phase_latency(&warm_results);
        eprintln!(
            "  cold (before restart): p50 {cold_p50:.2?}, p99 {cold_p99:.2?} ({cold_n} samples)"
        );
        eprintln!(
            "  warm (after restart):  p50 {warm_p50:.2?}, p99 {warm_p99:.2?} ({warm_n} samples)"
        );
    }
    if trace_mismatches > 0 {
        eprintln!("  WARNING: {trace_mismatches} responses did not echo X-Trace-Id");
    }

    let mut report = RunReport::new("loadgen", &args.endpoint);
    report.set("addr", args.addr.as_str().into());
    report
        .set("specs", Json::Arr(args.specs.iter().map(|(p, _)| Json::from(p.as_str())).collect()));
    report.set("mode", args.mode.as_str().into());
    report.set("conns", args.conns.into());
    report.set("requests", results.len().into());
    report.set("elapsed_s", elapsed.as_secs_f64().into());
    report.set("throughput_rps", throughput.into());
    report.set("status_ok", ok.into());
    report.set("status_shed", shed.into());
    report.set("status_5xx", server_5xx.into());
    report.set("status_other", other_status.into());
    report.set("errors_connect", connect_errors.into());
    report.set("errors_timeout", timeout_errors.into());
    report.set("errors_transport", transport_errors.into());
    report.set("retries", retries.into());
    report.set("cache_hits", cached.into());
    report.set("trace_mismatches", trace_mismatches.into());
    report.set("latency_p50_s", p50.as_secs_f64().into());
    report.set("latency_p90_s", p90.as_secs_f64().into());
    report.set("latency_p99_s", p99.as_secs_f64().into());
    report.set("latency_p999_s", p999.as_secs_f64().into());
    report.set("latency_count", latency.count.into());
    if let Some(n) = args.restart_after {
        let (cold_p50, cold_p99, cold_n) = phase_latency(&cold_results);
        let (warm_p50, warm_p99, warm_n) = phase_latency(&warm_results);
        report.set("restart_after", n.into());
        report.set("restart_pause_s", args.restart_pause.as_secs_f64().into());
        report.set("cold_p50_s", cold_p50.as_secs_f64().into());
        report.set("cold_p99_s", cold_p99.as_secs_f64().into());
        report.set("cold_count", cold_n.into());
        report.set("warm_p50_s", warm_p50.as_secs_f64().into());
        report.set("warm_p99_s", warm_p99.as_secs_f64().into());
        report.set("warm_count", warm_n.into());
    }
    // The full histogram, in the same shape the schema-v2 run reports use,
    // so `ftrepair metrics-dump` can merge loadgen files too.
    let mut hists = Json::obj();
    hists.set("loadgen.request.seconds", histogram_to_json(&latency));
    report.set("histograms", hists);
    match &args.metrics_out {
        Some(path) => {
            if let Err(e) = report.append_to(path) {
                eprintln!("loadgen: cannot write metrics to {}: {e}", path.display());
                return ExitCode::from(2);
            }
            eprintln!("metrics appended to {}", path.display());
        }
        None => println!("{}", report.to_json_line()),
    }

    if errors > 0 || server_5xx > 0 || other_status > 0 {
        return ExitCode::from(1);
    }
    ExitCode::SUCCESS
}

//! Self-contained timing harness for the `[[bench]]` targets: one warmup
//! run, then the median (plus min/max) of `runs` timed runs, printed one
//! line per benchmark. Keeps `cargo bench` building offline; the shape of
//! the output mirrors `crates/bdd/benches/ops.rs`.

use std::time::{Duration, Instant};

/// Time `f` (median over `runs` after one warmup) and print one line.
pub fn bench<T>(name: &str, runs: usize, mut f: impl FnMut() -> T) {
    std::hint::black_box(f());
    let mut times: Vec<Duration> = (0..runs)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed()
        })
        .collect();
    times.sort_unstable();
    let median = times[times.len() / 2];
    let (min, max) = (times[0], times[times.len() - 1]);
    println!("{name:<36} median {median:>10.3?}   min {min:>10.3?}   max {max:>10.3?}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_warmup_plus_n() {
        let mut calls = 0;
        bench("noop", 5, || calls += 1);
        assert_eq!(calls, 6);
    }
}

//! # ftrepair-bench — the experiment harness
//!
//! Regenerates every table of the paper's evaluation section:
//!
//! * **Table I** — byzantine agreement: cautious repair vs lazy repair
//!   (Step 1 / Step 2 split), over growing numbers of non-generals.
//! * **Table II** — byzantine agreement with fail-stop faults: lazy only,
//!   as in the paper.
//! * **Table III** — the stabilizing chain `Sc^n`: lazy Step 1 / Step 2
//!   times at state counts that grow by roughly a decade per row.
//!
//! plus the ablations the paper's narrative calls for (the
//! reachable-states heuristic, `ExpandGroup`/closed-form Step 2, and our
//! parallel Step 2).
//!
//! Every measured repair is re-verified (masking + realizability) before a
//! row is reported; rows carry the measured reachable-state counts so the
//! tables are self-describing, and every row also carries the same JSONL
//! [`RunReport`] the CLI's `--metrics-out` emits (one schema, two
//! producers). Use `cargo run --release -p ftrepair-bench --bin tables --
//! all` for the paper-style output, or `cargo bench -p ftrepair-bench` for
//! median-of-N timings on the smaller instances.

pub mod harness;

use ftrepair_casestudies::{byzantine_agreement, byzantine_failstop, stabilizing_chain};
use ftrepair_core::{
    build_run_report, cautious_repair, lazy_repair_traced, verify::verify_outcome, LazyOutcome,
    ReorderMode, RepairOptions,
};
use ftrepair_program::DistributedProgram;
use ftrepair_telemetry::{RunReport, Telemetry};
use std::time::Duration;

/// One row of an experiment table.
#[derive(Clone, Debug)]
pub struct Row {
    /// Instance label (e.g. `BA^4`, `Sc^12`).
    pub instance: String,
    /// States reachable from the invariant under program ∪ faults.
    pub reachable_states: f64,
    /// Total cautious-repair time (`None` when not measured, as in the
    /// paper's Tables II/III).
    pub cautious: Option<Duration>,
    /// Lazy Step 1 (Add-Masking) time, summed over outer iterations.
    pub step1: Duration,
    /// Lazy Step 2 (realizability) time.
    pub step2: Duration,
    /// Outer iterations of Algorithm 1.
    pub outer_iterations: usize,
    /// Did the lazy output pass the independent verifiers?
    pub verified: bool,
    /// Did lazy repair declare failure (no repair found / did not
    /// converge)? `verified` is false in that case.
    pub failed: bool,
    /// The lazy run's JSONL report — identical schema to the CLI's
    /// `--metrics-out` lines.
    pub report: RunReport,
}

impl Row {
    /// Total lazy time.
    pub fn lazy_total(&self) -> Duration {
        self.step1 + self.step2
    }
}

/// Count the states reachable from the invariant under `δ_P ∪ f`.
pub fn reachable_states(prog: &mut DistributedProgram) -> f64 {
    let t = prog.program_trans();
    let combined = prog.cx.mgr().or(t, prog.faults);
    let inv = prog.invariant;
    let reach = prog.cx.forward_reachable(inv, combined);
    prog.cx.count_states(reach)
}

/// Run lazy repair on a fresh instance from `factory`, verify the result,
/// and measure the paper's quantities. Optionally also run cautious repair
/// (on another fresh instance, so BDD caches don't cross-contaminate).
pub fn measure(
    label: impl Into<String>,
    factory: impl Fn() -> DistributedProgram,
    opts: &RepairOptions,
    with_cautious: bool,
) -> Row {
    let label = label.into();
    let mut prog = factory();
    let reachable = reachable_states(&mut prog);

    let mut prog = factory();
    let tele = Telemetry::new();
    // Bench runs carry no deadline, so an abort is impossible here.
    let out: LazyOutcome =
        lazy_repair_traced(&mut prog, opts, &tele).expect("bench runs have no deadline");
    // Report before verification: the verifier's BDD traffic must not
    // pollute the run's cache hit rates.
    let mut report =
        build_run_report(&label, "lazy", opts, &out.stats, out.failed, &tele, &prog.cx);
    let verified = if out.failed {
        false
    } else {
        let (m, r) = verify_outcome(&mut prog, &out);
        m.ok() && r.ok()
    };
    report.set("reachable_states", reachable.into());
    report.set("verified", verified.into());

    let cautious = with_cautious.then(|| {
        let mut prog = factory();
        let c = cautious_repair(&mut prog, opts).expect("bench runs have no deadline");
        assert!(!c.failed, "cautious repair failed on {}", prog.name);
        c.stats.total_time()
    });

    Row {
        instance: label,
        reachable_states: reachable,
        cautious,
        step1: out.stats.step1_time,
        step2: out.stats.step2_time,
        outer_iterations: out.stats.outer_iterations,
        verified,
        failed: out.failed,
        report,
    }
}

/// Table I rows: byzantine agreement, cautious vs lazy.
pub fn table1(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            measure(format!("BA^{n}"), || byzantine_agreement(n).0, &RepairOptions::default(), true)
        })
        .collect()
}

/// Table I lazy-only extension rows (sizes where cautious is impractical).
pub fn table1_lazy_only(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            measure(
                format!("BA^{n}"),
                || byzantine_agreement(n).0,
                &RepairOptions::default(),
                false,
            )
        })
        .collect()
}

/// Table II rows: byzantine agreement with fail-stop, lazy only.
pub fn table2(sizes: &[usize]) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            measure(
                format!("BAFS^{n}"),
                || byzantine_failstop(n).0,
                &RepairOptions::default(),
                false,
            )
        })
        .collect()
}

/// Table III rows: the stabilizing chain, lazy only. `d` is the cell
/// domain size (8 keeps encodings dense and matches the paper's state-count
/// growth of roughly a decade per pair of cells).
pub fn table3(sizes: &[usize], d: u64) -> Vec<Row> {
    sizes
        .iter()
        .map(|&n| {
            measure(
                format!("Sc^{n}"),
                || stabilizing_chain(n, d).0,
                &RepairOptions::default(),
                false,
            )
        })
        .collect()
}

/// One measurement of the reorder ablation: an ordinary [`Row`] plus the
/// BDD manager's node-count statistics from the same run.
#[derive(Clone, Debug)]
pub struct ReorderRow {
    /// The reorder policy this row ran under.
    pub mode: ReorderMode,
    /// High-water mark of the manager's live-node count over the repair.
    pub peak_live_nodes: usize,
    /// Live nodes right after the most recent sift (0 when none fired).
    pub post_reorder_nodes: usize,
    /// Completed sifting passes.
    pub reorder_runs: u64,
    /// Adjacent-level swaps performed across all passes.
    pub reorder_swaps: u64,
    /// Garbage collections — the Auto trigger's cheap first response.
    pub gc_runs: usize,
    /// Timings, verification verdict, and the JSONL report.
    pub row: Row,
}

/// Run lazy repair on `factory`'s instance under every [`ReorderMode`] and
/// capture the manager's node statistics alongside the usual measurements.
/// The reachable-state count is mode-independent, so it is computed once.
pub fn ablation_reorder(
    label: impl Into<String>,
    factory: impl Fn() -> DistributedProgram,
) -> Vec<ReorderRow> {
    let label = label.into();
    let reachable = reachable_states(&mut factory());
    [ReorderMode::None, ReorderMode::Sift, ReorderMode::Auto]
        .into_iter()
        .map(|mode| {
            let opts = RepairOptions { reorder: mode, ..Default::default() };
            let mut prog = factory();
            let tele = Telemetry::new();
            let out: LazyOutcome =
                lazy_repair_traced(&mut prog, &opts, &tele).expect("bench runs have no deadline");
            let stats = prog.cx.mgr_ref().stats();
            let instance = format!("{label} ({})", mode.as_str());
            let mut report =
                build_run_report(&instance, "lazy", &opts, &out.stats, out.failed, &tele, &prog.cx);
            let verified = if out.failed {
                false
            } else {
                let (m, r) = verify_outcome(&mut prog, &out);
                m.ok() && r.ok()
            };
            report.set("reachable_states", reachable.into());
            report.set("verified", verified.into());
            ReorderRow {
                mode,
                peak_live_nodes: stats.peak_live_nodes,
                post_reorder_nodes: stats.post_reorder_nodes,
                reorder_runs: stats.reorder_runs,
                reorder_swaps: stats.reorder_swaps,
                gc_runs: stats.gc_runs,
                row: Row {
                    instance,
                    reachable_states: reachable,
                    cautious: None,
                    step1: out.stats.step1_time,
                    step2: out.stats.step2_time,
                    outer_iterations: out.stats.outer_iterations,
                    verified,
                    failed: out.failed,
                    report,
                },
            }
        })
        .collect()
}

/// One measurement of the warm-start ablation: the same one-action-edited
/// spec repaired cold and warm (seeded through the disk store's near-key
/// lookup), plus the exact parity verdict between the two results.
#[derive(Clone, Debug)]
pub struct WarmStartRow {
    /// Fingerprint distance between the edited spec and its stored donor.
    pub neighbor_distance: usize,
    /// The edited spec repaired from scratch.
    pub cold: Row,
    /// The edited spec repaired with the donor's invariant/span seeds.
    pub warm: Row,
    /// `cold total / warm total`.
    pub speedup: f64,
    /// Did warm and cold produce semantically identical invariant, span,
    /// and repaired transition relation? Checked exactly: the cold BDDs are
    /// exported, re-imported into the warm run's manager (canonicalizing
    /// them in its order), and compared root-for-root.
    pub parity: bool,
}

/// The stabilizing chain `Sc^n` written in the input language, so the
/// warm-start ablation exercises the same text → fingerprint → store →
/// seed pipeline the daemon uses. `edited` adds one action to the first
/// cell — a different content key at fingerprint distance 1.
pub fn warm_chain_spec(n: usize, d: u64, edited: bool) -> String {
    use std::fmt::Write;
    assert!(n >= 2 && d >= 2);
    let mut s = String::new();
    writeln!(s, "program warmchain{n}x{d}{};\n", if edited { "e" } else { "" }).unwrap();
    for i in 0..n {
        writeln!(s, "var x{i} : 0..{};", d - 1).unwrap();
    }
    for i in 1..n {
        writeln!(s, "\nprocess c{i}\n  read x{}, x{i};\n  write x{i};\nbegin", i - 1).unwrap();
        writeln!(s, "  !(x{i} = x{}) -> x{i} := x{};", i - 1, i - 1).unwrap();
        if edited && i == 1 {
            // The one-action edit: a distinct action whose transitions are
            // already covered by the copy action above, so the program's
            // behavior (and its repair) is unchanged — only the text, the
            // content key, and the fingerprint move.
            writeln!(s, "  (x1 < x0) -> x1 := x0;").unwrap();
        }
        writeln!(s, "end").unwrap();
    }
    let choices = (0..d).map(|v| v.to_string()).collect::<Vec<_>>().join(", ");
    writeln!(s, "\nfault transient\nbegin").unwrap();
    for i in 0..n {
        writeln!(s, "  true -> x{i} := {{{choices}}};").unwrap();
    }
    writeln!(s, "end\n").unwrap();
    let inv = (1..n).map(|i| format!("(x{} = x{i})", i - 1)).collect::<Vec<_>>().join(" & ");
    writeln!(s, "invariant {inv};").unwrap();
    s
}

/// The warm-start ablation: persist the unedited chain's repair in a
/// throwaway [`DiskStore`], then repair the one-action-edited chain twice —
/// cold, and warm via the store's fingerprint nearest-neighbor lookup (the
/// full serialize → disk → decode → import round trip). Each row reports
/// the speedup and an exact parity check between the two repairs.
///
/// [`DiskStore`]: ftrepair_store::DiskStore
pub fn ablation_warm_start(sizes: &[(usize, u64)]) -> Vec<WarmStartRow> {
    use ftrepair_store::{
        DiskStore, NewEntry, SpecFingerprint, ART_INVARIANT, ART_SPAN, ART_TRANS,
    };

    let store_root =
        std::env::temp_dir().join(format!("ftrepair-bench-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let tele = Telemetry::off();
    let store = DiskStore::open(&store_root, 0, &tele).expect("open bench store");

    let rows = sizes
        .iter()
        .map(|&(n, d)| {
            let instance = format!("Sc^{n}(d={d})");
            let opts = RepairOptions::default();

            // Donor: cold-repair the unedited spec, persist its artifacts.
            let donor_src = warm_chain_spec(n, d, false);
            let donor_ast = ftrepair_lang::parse(&donor_src).expect("donor parses");
            let mut donor = ftrepair_lang::compile(&donor_ast).expect("donor compiles");
            let donor_out = lazy_repair_traced(&mut donor, &opts, &Telemetry::off())
                .expect("bench runs have no deadline");
            assert!(!donor_out.failed, "donor repair failed on {instance}");
            let mgr = donor.cx.mgr_ref();
            store
                .put(&NewEntry {
                    key: ftrepair_store::content_key(&donor_src, "lazy"),
                    case: instance.clone(),
                    mode: "lazy".into(),
                    warm_start: false,
                    fingerprint: SpecFingerprint::of(&donor_ast),
                    response: ftrepair_telemetry::Json::obj(),
                    artifacts: vec![
                        (ART_TRANS.into(), mgr.export(donor_out.trans)),
                        (ART_INVARIANT.into(), mgr.export(donor_out.invariant)),
                        (ART_SPAN.into(), mgr.export(donor_out.span)),
                    ],
                })
                .expect("store donor entry");

            // Cold baseline on the edited spec.
            let edited_src = warm_chain_spec(n, d, true);
            let edited_ast = ftrepair_lang::parse(&edited_src).expect("edited parses");
            let factory = || ftrepair_lang::compile(&edited_ast).expect("edited compiles");
            let cold = measure(format!("{instance} cold"), factory, &opts, false);
            assert!(cold.verified, "cold repair unverified on {instance}");

            // Warm: fingerprint lookup → donor artifacts → seeded repair.
            let fp = SpecFingerprint::of(&edited_ast);
            let (donor_key, neighbor_distance) =
                store.nearest(&fp, 16).expect("donor is within warm distance");
            let stored = store.peek(&donor_key).expect("donor entry readable");
            let mut prog = factory();
            let seeds = ftrepair_core::WarmSeeds {
                invariant: ftrepair_store::find_artifact(&stored.artifacts, ART_INVARIANT)
                    .map(|a| prog.cx.mgr().try_import(a).expect("invariant imports")),
                span: ftrepair_store::find_artifact(&stored.artifacts, ART_SPAN)
                    .map(|a| prog.cx.mgr().try_import(a).expect("span imports")),
            };
            for root in seeds.roots() {
                prog.cx.mgr().protect(root);
            }
            let wtele = Telemetry::new();
            let winstance = format!("{instance} warm");
            let wout = ftrepair_core::lazy_repair_warm(
                &mut prog,
                &opts,
                &wtele,
                &ftrepair_core::Token::unbounded(),
                &seeds,
            )
            .expect("bench runs have no deadline");
            assert!(!wout.failed, "warm repair failed on {instance}");
            let mut wreport = build_run_report(
                &winstance,
                "lazy",
                &opts,
                &wout.stats,
                wout.failed,
                &wtele,
                &prog.cx,
            );
            let wverified = {
                let (m, r) = verify_outcome(&mut prog, &wout);
                m.ok() && r.ok()
            };
            assert!(wverified, "warm repair unverified on {instance}");
            wreport.set("reachable_states", cold.reachable_states.into());
            wreport.set("verified", wverified.into());

            // Exact parity: canonicalize the cold roots in the warm
            // manager and compare. Import is order-robust, so this holds
            // even if dynamic reordering moved the two managers apart.
            let parity = {
                let cold_prog_exports = {
                    let mut cp = factory();
                    let cout = ftrepair_core::lazy_repair(&mut cp, &opts)
                        .expect("bench runs have no deadline");
                    let m = cp.cx.mgr_ref();
                    [m.export(cout.invariant), m.export(cout.span), m.export(cout.trans)]
                };
                let m = prog.cx.mgr();
                m.try_import(&cold_prog_exports[0]) == Ok(wout.invariant)
                    && m.try_import(&cold_prog_exports[1]) == Ok(wout.span)
                    && m.try_import(&cold_prog_exports[2]) == Ok(wout.trans)
            };

            let warm = Row {
                instance: winstance,
                reachable_states: cold.reachable_states,
                cautious: None,
                step1: wout.stats.step1_time,
                step2: wout.stats.step2_time,
                outer_iterations: wout.stats.outer_iterations,
                verified: wverified,
                failed: wout.failed,
                report: wreport,
            };
            let speedup =
                cold.lazy_total().as_secs_f64() / warm.lazy_total().as_secs_f64().max(f64::EPSILON);
            WarmStartRow { neighbor_distance, cold, warm, speedup, parity }
        })
        .collect();

    let _ = std::fs::remove_dir_all(&store_root);
    rows
}

/// Render warm-start ablation rows as a markdown table.
pub fn render_warm_start(rows: &[WarmStartRow], title: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "### {title}\n").unwrap();
    writeln!(
        out,
        "| Instance | Reachable states | Distance | Cold total | Warm total | Speedup | Parity | Verified |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            out,
            "| {} | 10^{:.1} | {} | {:.3}s | {:.3}s | {:.2}× | {} | {} |",
            r.cold.instance.trim_end_matches(" cold"),
            r.cold.reachable_states.log10(),
            r.neighbor_distance,
            r.cold.lazy_total().as_secs_f64(),
            r.warm.lazy_total().as_secs_f64(),
            r.speedup,
            if r.parity { "exact" } else { "DIVERGED" },
            if r.cold.verified && r.warm.verified { "yes" } else { "NO" },
        )
        .unwrap();
    }
    out
}

/// One measurement of the checkpoint-resume ablation: the same chain
/// repaired cold, aborted mid-repair by a deadline (leaving a checkpoint
/// slot behind), and resumed from that slot — through the same
/// serialize → disk → decode → import pipeline the CLI's
/// `repair --checkpoint-dir`/`--resume` and the daemon's journal replay
/// use.
#[derive(Clone, Debug)]
pub struct CheckpointResumeRow {
    /// Human-readable instance name, e.g. `Sc^14(d=8)`.
    pub instance: String,
    /// Wall-clock of the uninterrupted cold repair.
    pub cold: Duration,
    /// Deadline the aborted run was given (starts at half the cold time;
    /// widened if it fired before the first checkpointable boundary).
    pub abort_after: Duration,
    /// Offer index recorded in the slot the abort left behind.
    pub checkpoint_iteration: u64,
    /// Wall-clock of the repair resumed from the slot.
    pub resumed: Duration,
    /// `cold / resumed`.
    pub speedup: f64,
    /// Root-for-root parity between the resumed and the cold repair
    /// (cold roots exported, re-imported into the resumed manager, and
    /// compared — order-robust).
    pub parity: bool,
    /// Resumed repair independently re-verified (masking + realizability).
    pub verified: bool,
}

/// The checkpoint-resume ablation: cold-repair the chain, re-run it under
/// a deadline with a [`Checkpointer`] writing into a real
/// [`CheckpointStore`] (the abort's forced write lands the resume point),
/// then repair once more seeded from the reopened slot and compare.
///
/// [`Checkpointer`]: ftrepair_core::Checkpointer
/// [`CheckpointStore`]: ftrepair_store::CheckpointStore
pub fn ablation_checkpoint_resume(sizes: &[(usize, u64)]) -> Vec<CheckpointResumeRow> {
    use ftrepair_core::{lazy_repair_warm, CheckpointPolicy, Checkpointer, Token, WarmSeeds};
    use ftrepair_store::{
        content_key, find_artifact, CheckpointStore, ART_INVARIANT, ART_MS, ART_SPAN,
    };
    use std::sync::Arc;
    use std::time::Instant;

    let store_root =
        std::env::temp_dir().join(format!("ftrepair-bench-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&store_root);
    let ckpts = Arc::new(CheckpointStore::open(&store_root).expect("open bench checkpoint store"));
    let tele = Telemetry::off();

    let rows = sizes
        .iter()
        .map(|&(n, d)| {
            let instance = format!("Sc^{n}(d={d})");
            let opts = RepairOptions::default();
            let src = warm_chain_spec(n, d, false);
            let ast = ftrepair_lang::parse(&src).expect("chain parses");
            let factory = || ftrepair_lang::compile(&ast).expect("chain compiles");
            let key = content_key(&src, "lazy");

            // Cold baseline, roots exported for the parity check.
            let mut cold_prog = factory();
            let t0 = Instant::now();
            let cold_out = lazy_repair_warm(
                &mut cold_prog,
                &opts,
                &tele,
                &Token::unbounded(),
                &WarmSeeds::none(),
            )
            .expect("unbounded run cannot abort");
            let cold = t0.elapsed();
            assert!(!cold_out.failed, "cold repair failed on {instance}");
            let cold_exports = {
                let m = cold_prog.cx.mgr_ref();
                [m.export(cold_out.invariant), m.export(cold_out.span), m.export(cold_out.trans)]
            };
            drop(cold_prog);

            // Aborted run: a deadline at half the cold time; the offer
            // preceding the aborting governance check force-writes the
            // slot. A deadline that fires before the first boundary with
            // anything to save leaves no slot — widen and retry; one that
            // the whole repair beats (timer noise) is shrunk.
            let mut abort_after = cold / 2;
            for attempt in 0.. {
                assert!(attempt < 6, "no checkpoint slot after {attempt} attempts on {instance}");
                let _ = ckpts.clear(&key);
                let sink_store = Arc::clone(&ckpts);
                let sink_key = key.clone();
                let token = Token::deadline_in(abort_after).with_checkpointer(Arc::new(
                    Checkpointer::new(CheckpointPolicy::default(), move |img| {
                        let arts = [
                            (ART_INVARIANT.to_string(), img.invariant.clone()),
                            (ART_SPAN.to_string(), img.span.clone()),
                            (ART_MS.to_string(), img.ms.clone()),
                        ];
                        sink_store
                            .put(&sink_key, img.iteration, &arts)
                            .expect("bench checkpoint write");
                    }),
                ));
                let mut prog = factory();
                match lazy_repair_warm(&mut prog, &opts, &tele, &token, &WarmSeeds::none()) {
                    Err(_) if ckpts.get(&key).is_some() => break,
                    Err(_) => abort_after += cold / 4,
                    Ok(_) => abort_after = abort_after.mul_f64(0.5),
                }
            }
            let slot = ckpts.get(&key).expect("slot exists after the retry loop");

            // Resume: reopen the slot off disk, seed, run to completion.
            let mut prog = factory();
            let seeds = WarmSeeds {
                invariant: find_artifact(&slot.artifacts, ART_INVARIANT)
                    .map(|a| prog.cx.mgr().try_import(a).expect("invariant imports")),
                span: find_artifact(&slot.artifacts, ART_SPAN)
                    .map(|a| prog.cx.mgr().try_import(a).expect("span imports")),
            };
            assert!(!seeds.is_empty(), "slot for {instance} is missing its artifacts");
            for seed_root in seeds.roots() {
                prog.cx.mgr().protect(seed_root);
            }
            let t0 = Instant::now();
            let out = lazy_repair_warm(&mut prog, &opts, &tele, &Token::unbounded(), &seeds)
                .expect("unbounded run cannot abort");
            let resumed = t0.elapsed();
            assert!(!out.failed, "resumed repair failed on {instance}");
            let verified = {
                let (m, r) = verify_outcome(&mut prog, &out);
                m.ok() && r.ok()
            };
            let parity = {
                let m = prog.cx.mgr();
                m.try_import(&cold_exports[0]) == Ok(out.invariant)
                    && m.try_import(&cold_exports[1]) == Ok(out.span)
                    && m.try_import(&cold_exports[2]) == Ok(out.trans)
            };
            CheckpointResumeRow {
                instance,
                cold,
                abort_after,
                checkpoint_iteration: slot.iteration,
                resumed,
                speedup: cold.as_secs_f64() / resumed.as_secs_f64().max(f64::EPSILON),
                parity,
                verified,
            }
        })
        .collect();

    let _ = std::fs::remove_dir_all(&store_root);
    rows
}

/// Render checkpoint-resume ablation rows as a markdown table.
pub fn render_checkpoint_resume(rows: &[CheckpointResumeRow], title: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "### {title}\n").unwrap();
    writeln!(
        out,
        "| Instance | Cold total | Aborted after | Slot @ offer | Resumed total | Speedup | Parity | Verified |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        writeln!(
            out,
            "| {} | {:.3}s | {:.3}s | {} | {:.3}s | {:.2}× | {} | {} |",
            r.instance,
            r.cold.as_secs_f64(),
            r.abort_after.as_secs_f64(),
            r.checkpoint_iteration,
            r.resumed.as_secs_f64(),
            r.speedup,
            if r.parity { "exact" } else { "DIVERGED" },
            if r.verified { "yes" } else { "NO" },
        )
        .unwrap();
    }
    out
}

/// Render reorder-ablation rows as a markdown table. "Peak ×" is the
/// baseline (`none`) peak divided by this row's peak — the factor by which
/// the mode shrinks the repair's memory high-water mark.
pub fn render_reorder(rows: &[ReorderRow], title: &str) -> String {
    use std::fmt::Write;
    let baseline_peak =
        rows.iter().find(|r| r.mode == ReorderMode::None).map(|r| r.peak_live_nodes).unwrap_or(0);
    let mut out = String::new();
    writeln!(out, "### {title}\n").unwrap();
    writeln!(
        out,
        "| Instance | Reorder | Lazy total | Peak live nodes | Peak × | Sift runs | Swaps | GCs | Verified |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        let ratio = if r.peak_live_nodes > 0 && baseline_peak > 0 {
            format!("{:.2}×", baseline_peak as f64 / r.peak_live_nodes as f64)
        } else {
            "—".into()
        };
        writeln!(
            out,
            "| {} | {} | {:.3}s | {} | {} | {} | {} | {} | {} |",
            r.row.instance,
            r.mode.as_str(),
            r.row.lazy_total().as_secs_f64(),
            r.peak_live_nodes,
            ratio,
            r.reorder_runs,
            r.reorder_swaps,
            r.gc_runs,
            if r.row.verified { "yes" } else { "NO" },
        )
        .unwrap();
    }
    out
}

/// Render rows as a markdown table (paper style).
pub fn render(rows: &[Row], title: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    writeln!(out, "### {title}\n").unwrap();
    writeln!(
        out,
        "| Instance | Reachable states | Cautious | Lazy Step 1 | Lazy Step 2 | Lazy total | Speedup | Verified |"
    )
    .unwrap();
    writeln!(out, "|---|---|---|---|---|---|---|---|").unwrap();
    for r in rows {
        let cautious =
            r.cautious.map(|d| format!("{:.3}s", d.as_secs_f64())).unwrap_or_else(|| "—".into());
        let speedup = r
            .cautious
            .map(|c| format!("{:.1}×", c.as_secs_f64() / r.lazy_total().as_secs_f64()))
            .unwrap_or_else(|| "—".into());
        let verdict = if r.failed {
            "failed"
        } else if r.verified {
            "✓"
        } else {
            "✗"
        };
        writeln!(
            out,
            "| {} | 10^{:.1} | {} | {:.3}s | {:.3}s | {:.3}s | {} | {} |",
            r.instance,
            r.reachable_states.log10(),
            cautious,
            r.step1.as_secs_f64(),
            r.step2.as_secs_f64(),
            r.lazy_total().as_secs_f64(),
            speedup,
            verdict,
        )
        .unwrap();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_byzantine_row() {
        let row = measure("BA^1", || byzantine_agreement(1).0, &RepairOptions::default(), true);
        assert!(row.verified);
        assert!(row.cautious.is_some());
        assert!(row.reachable_states > 0.0);
        assert!(row.lazy_total() > Duration::ZERO);
        // The attached report is a valid JSONL line in the CLI schema.
        let j = ftrepair_telemetry::Json::parse(&row.report.to_json_line()).unwrap();
        assert_eq!(j.get("case").unwrap().as_str(), Some("BA^1"));
        assert_eq!(j.get("mode").unwrap().as_str(), Some("lazy"));
        assert_eq!(j.get("verified").unwrap().as_bool(), Some(true));
        assert_eq!(
            j.get("counters").unwrap().get("repair.outer_iterations").unwrap().as_u64(),
            Some(row.outer_iterations as u64)
        );
        assert!(j.get("caches").unwrap().get("apply").is_some());
    }

    #[test]
    fn reachable_count_for_chain() {
        let mut p = stabilizing_chain(3, 2).0;
        // Transient faults make everything reachable: 2^3 states.
        assert_eq!(reachable_states(&mut p), 8.0);
    }

    #[test]
    fn render_produces_markdown() {
        let rows = vec![Row {
            instance: "X^1".into(),
            reachable_states: 1000.0,
            cautious: Some(Duration::from_millis(60)),
            step1: Duration::from_millis(5),
            step2: Duration::from_millis(5),
            outer_iterations: 1,
            verified: true,
            failed: false,
            report: RunReport::new("X^1", "lazy"),
        }];
        let md = render(&rows, "Demo");
        assert!(md.contains("### Demo"));
        assert!(md.contains("X^1"));
        assert!(md.contains("10^3.0"));
        assert!(md.contains("6.0×"));
    }
}

//! Ablation F — resume from a mid-repair checkpoint (our crash-recovery
//! extension, not in the paper).
//!
//! A repair that dies mid-flight should not restart from zero: the
//! checkpointer snapshots the invariant/fault-span at the same governed
//! boundaries where cancellation is polled, and a resumed run seeds
//! Step 1's reachability from the slot exactly like a warm-start
//! neighbor at fingerprint distance 0. This bench cold-repairs the
//! stabilizing chain, aborts a second run halfway by deadline (the
//! forced write lands the slot in a real on-disk `CheckpointStore`),
//! resumes from the slot, and asserts exact parity with the cold repair
//! plus the ≥2× speedup the recovery story is sized for.

use ftrepair_bench::{ablation_checkpoint_resume, render_checkpoint_resume};

fn main() {
    let rows = ablation_checkpoint_resume(&[(10, 8), (14, 8)]);
    for r in &rows {
        assert!(r.parity, "resumed/cold diverged on {}", r.instance);
        assert!(r.verified, "resumed repair unverified on {}", r.instance);
        assert!(
            r.speedup >= 2.0,
            "resume on {} only {:.2}× faster than cold (cold {:.3}s, resumed {:.3}s)",
            r.instance,
            r.speedup,
            r.cold.as_secs_f64(),
            r.resumed.as_secs_f64(),
        );
    }
    print!(
        "{}",
        render_checkpoint_resume(&rows, "Ablation F — resume from a mid-repair checkpoint")
    );
}

//! Table II — byzantine agreement with fail-stop faults, lazy repair only
//! (the configuration the paper reports for this model family).

use ftrepair_bench::harness::bench;
use ftrepair_casestudies::byzantine_failstop;
use ftrepair_core::{lazy_repair, RepairOptions};

fn main() {
    for &n in &[2usize, 3] {
        bench(&format!("table2_failstop/lazy/{n}"), 10, || {
            let mut prog = byzantine_failstop(n).0;
            let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
            assert!(!out.failed);
            out.stats.outer_iterations
        });
    }
}

//! Table II — byzantine agreement with fail-stop faults, lazy repair only
//! (the configuration the paper reports for this model family).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ftrepair_casestudies::byzantine_failstop;
use ftrepair_core::{lazy_repair, RepairOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_failstop");
    group.sample_size(10);
    for &n in &[2usize, 3] {
        group.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_failstop(n).0,
                |mut prog| {
                    let out = lazy_repair(&mut prog, &RepairOptions::default());
                    assert!(!out.failed);
                    out.stats.outer_iterations
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation C — parallel Step 2 (our HPC extension, not in the paper).
//!
//! Step 2's per-process partitions are independent; the parallel variant
//! runs one worker (with its own BDD manager) per process, shipping the
//! Step 1 relation across as a serialized DAG. The break-even point
//! depends on how much of the per-process work the import/export round
//! trip costs back.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ftrepair_casestudies::byzantine_agreement;
use ftrepair_core::{lazy_repair, RepairOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallel");
    group.sample_size(10);
    for &n in &[3usize, 4, 5] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_agreement(n).0,
                |mut prog| {
                    let out = lazy_repair(&mut prog, &RepairOptions::default());
                    assert!(!out.failed);
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("parallel", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_agreement(n).0,
                |mut prog| {
                    let opts = RepairOptions { parallel_step2: true, ..Default::default() };
                    let out = lazy_repair(&mut prog, &opts);
                    assert!(!out.failed);
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation C — parallel Step 2 (our HPC extension, not in the paper).
//!
//! Step 2's per-process partitions are independent; the parallel variant
//! runs one worker (with its own BDD manager) per process, shipping the
//! Step 1 relation across as a serialized DAG. The break-even point
//! depends on how much of the per-process work the import/export round
//! trip costs back.

use ftrepair_bench::harness::bench;
use ftrepair_casestudies::byzantine_agreement;
use ftrepair_core::{lazy_repair, RepairOptions};

fn main() {
    for &n in &[3usize, 4, 5] {
        bench(&format!("ablation_parallel/sequential/{n}"), 10, || {
            let mut prog = byzantine_agreement(n).0;
            let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
            assert!(!out.failed);
        });
        bench(&format!("ablation_parallel/parallel/{n}"), 10, || {
            let mut prog = byzantine_agreement(n).0;
            let opts = RepairOptions { parallel_step2: true, ..Default::default() };
            let out = lazy_repair(&mut prog, &opts).unwrap();
            assert!(!out.failed);
        });
    }
}

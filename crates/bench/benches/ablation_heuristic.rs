//! Ablation A — the reachable-states heuristic of Section V-A.
//!
//! The paper's motivating observation: *pure* lazy repair (searching the
//! whole non-`ms` state space for the fault-span) does not beat the
//! cautious baseline; restricting Step 1 to the states the fault-intolerant
//! program actually reaches under faults is what makes lazy repair win.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ftrepair_casestudies::byzantine_agreement;
use ftrepair_core::{lazy_repair, RepairOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_heuristic");
    group.sample_size(10);
    for &n in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("with_heuristic", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_agreement(n).0,
                |mut prog| {
                    let out = lazy_repair(&mut prog, &RepairOptions::default());
                    assert!(!out.failed);
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("pure_lazy", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_agreement(n).0,
                |mut prog| {
                    let out = lazy_repair(&mut prog, &RepairOptions::pure_lazy());
                    assert!(!out.failed);
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Ablation A — the reachable-states heuristic of Section V-A.
//!
//! The paper's motivating observation: *pure* lazy repair (searching the
//! whole non-`ms` state space for the fault-span) does not beat the
//! cautious baseline; restricting Step 1 to the states the fault-intolerant
//! program actually reaches under faults is what makes lazy repair win.

use ftrepair_bench::harness::bench;
use ftrepair_casestudies::byzantine_agreement;
use ftrepair_core::{lazy_repair, RepairOptions};

fn main() {
    for &n in &[2usize, 3, 4] {
        bench(&format!("ablation_heuristic/with_heuristic/{n}"), 10, || {
            let mut prog = byzantine_agreement(n).0;
            let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
            assert!(!out.failed);
        });
        bench(&format!("ablation_heuristic/pure_lazy/{n}"), 10, || {
            let mut prog = byzantine_agreement(n).0;
            let out = lazy_repair(&mut prog, &RepairOptions::pure_lazy()).unwrap();
            assert!(!out.failed);
        });
    }
}

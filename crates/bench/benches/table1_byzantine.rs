//! Table I — byzantine agreement: cautious repair vs lazy repair.
//!
//! The paper's headline comparison: total synthesis time of the cautious
//! baseline against the two-step lazy algorithm, as the number of
//! non-generals (and with it the reachable state count) grows. The
//! expected *shape* is lazy ≪ cautious with a gap that widens with size.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ftrepair_casestudies::byzantine_agreement;
use ftrepair_core::{cautious_repair, lazy_repair, RepairOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_byzantine");
    group.sample_size(10);
    for &n in &[2usize, 3, 4] {
        group.bench_with_input(BenchmarkId::new("lazy", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_agreement(n).0,
                |mut prog| {
                    let out = lazy_repair(&mut prog, &RepairOptions::default());
                    assert!(!out.failed);
                    out.stats.outer_iterations
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("cautious", n), &n, |b, &n| {
            b.iter_batched(
                || byzantine_agreement(n).0,
                |mut prog| {
                    let out = cautious_repair(&mut prog, &RepairOptions::default());
                    assert!(!out.failed);
                    out.stats.outer_iterations
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

//! Table I — byzantine agreement: cautious repair vs lazy repair.
//!
//! The paper's headline comparison: total synthesis time of the cautious
//! baseline against the two-step lazy algorithm, as the number of
//! non-generals (and with it the reachable state count) grows. The
//! expected *shape* is lazy ≪ cautious with a gap that widens with size.

use ftrepair_bench::harness::bench;
use ftrepair_casestudies::byzantine_agreement;
use ftrepair_core::{cautious_repair, lazy_repair, RepairOptions};

fn main() {
    for &n in &[2usize, 3, 4] {
        bench(&format!("table1_byzantine/lazy/{n}"), 10, || {
            let mut prog = byzantine_agreement(n).0;
            let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
            assert!(!out.failed);
            out.stats.outer_iterations
        });
        bench(&format!("table1_byzantine/cautious/{n}"), 10, || {
            let mut prog = byzantine_agreement(n).0;
            let out = cautious_repair(&mut prog, &RepairOptions::default()).unwrap();
            assert!(!out.failed);
            out.stats.outer_iterations
        });
    }
}

//! Ablation B — Step 2 strategies (Section V-B).
//!
//! Three ways to enforce the read restriction, all producing identical
//! results (asserted by unit tests):
//!
//! * `closed_form` — the two-group-operation set computation (default),
//! * `iterative_expand` — Algorithm 2's loop with `ExpandGroup`,
//! * `iterative_plain` — the loop without expansion (exponentially many
//!   picks in the number of ignorable guard variables).

use ftrepair_bench::harness::bench;
use ftrepair_casestudies::stabilizing_chain;
use ftrepair_core::{lazy_repair, RepairOptions};

fn main() {
    let configs: [(&str, RepairOptions); 3] = [
        ("closed_form", RepairOptions::default()),
        ("iterative_expand", RepairOptions::iterative_step2()),
        (
            "iterative_plain",
            RepairOptions { use_expand_group: false, ..RepairOptions::iterative_step2() },
        ),
    ];
    for &n in &[4usize, 5, 6] {
        for (name, opts) in &configs {
            bench(&format!("ablation_expandgroup/{name}/{n}"), 10, || {
                let mut prog = stabilizing_chain(n, 4).0;
                let out = lazy_repair(&mut prog, opts).unwrap();
                assert!(!out.failed);
                out.stats.step2_picks
            });
        }
    }
}

//! Table III — the stabilizing chain `Sc^n` under lazy repair, with the
//! per-step split the paper reports (Step 1 dominates; Step 2 stays flat).

use ftrepair_bench::harness::bench;
use ftrepair_casestudies::stabilizing_chain;
use ftrepair_core::{lazy_repair, RepairOptions};

fn main() {
    for &n in &[6usize, 8, 10] {
        bench(&format!("table3_chain/lazy_d8/{n}"), 10, || {
            let mut prog = stabilizing_chain(n, 8).0;
            let out = lazy_repair(&mut prog, &RepairOptions::default()).unwrap();
            assert!(!out.failed);
            out.stats.outer_iterations
        });
    }
}

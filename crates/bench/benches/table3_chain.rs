//! Table III — the stabilizing chain `Sc^n` under lazy repair, with the
//! per-step split the paper reports (Step 1 dominates; Step 2 stays flat).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use ftrepair_casestudies::stabilizing_chain;
use ftrepair_core::{lazy_repair, RepairOptions};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_chain");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        group.bench_with_input(BenchmarkId::new("lazy_d8", n), &n, |b, &n| {
            b.iter_batched(
                || stabilizing_chain(n, 8).0,
                |mut prog| {
                    let out = lazy_repair(&mut prog, &RepairOptions::default());
                    assert!(!out.failed);
                    out.stats.outer_iterations
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);

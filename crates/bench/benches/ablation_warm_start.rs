//! Ablation E — warm-start repair from a stored neighbor (our persistence
//! extension, not in the paper).
//!
//! A one-action edit of a spec whose repair is already on disk should not
//! pay for the full forward-reachability fixpoint again: the stored
//! invariant/fault-span BDDs seed Step 1's Phase 3, and Phase 4 shrinks
//! any over-approximation back to the same fixpoint. This bench prints
//! cold vs warm totals for the stabilizing chain and asserts exact parity
//! between the two repairs.

use ftrepair_bench::{ablation_warm_start, render_warm_start};

fn main() {
    let rows = ablation_warm_start(&[(6, 8), (8, 8), (10, 8)]);
    for r in &rows {
        assert!(r.parity, "warm/cold diverged on {}", r.cold.instance);
        assert!(r.cold.verified && r.warm.verified);
    }
    print!("{}", render_warm_start(&rows, "Ablation E — warm-start from stored neighbor"));
}

//! Cautious-repair parity on the case studies: wherever lazy succeeds the
//! baseline must also produce a verified repair, and on byzantine agreement
//! the two must agree on the invariant exactly (they do more group work in
//! different places, not different repairs).

use ftrepair_casestudies::{byzantine_agreement, stabilizing_chain, tmr, token_ring};
use ftrepair_core::{
    cautious_repair, lazy_repair, verify::verify_outcome, LazyOutcome, RepairOptions,
};
use ftrepair_program::DistributedProgram;

fn check_cautious(p: &mut DistributedProgram) -> LazyOutcome {
    let c = cautious_repair(p, &RepairOptions::default()).unwrap();
    assert!(!c.failed, "cautious failed on {}", p.name);
    let shaped = LazyOutcome {
        processes: c.processes,
        invariant: c.invariant,
        span: c.span,
        trans: c.trans,
        failed: false,
        stats: c.stats,
    };
    let (m, r) = verify_outcome(p, &shaped);
    assert!(m.ok(), "{}: {m:?}", p.name);
    assert!(r.ok(), "{}: {r:?}", p.name);
    shaped
}

#[test]
fn cautious_verifies_on_byzantine_and_matches_lazy_invariant() {
    let (mut p, _) = byzantine_agreement(2);
    let c = check_cautious(&mut p);
    let l = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!l.failed);
    assert_eq!(c.invariant, l.invariant);
}

#[test]
fn cautious_verifies_on_chain() {
    let (mut p, _) = stabilizing_chain(4, 3);
    check_cautious(&mut p);
}

#[test]
fn cautious_verifies_on_tmr() {
    let (mut p, _) = tmr(2);
    check_cautious(&mut p);
}

#[test]
fn cautious_verifies_on_token_ring() {
    let (mut p, _) = token_ring(3, 3);
    check_cautious(&mut p);
}

#[test]
fn cautious_pays_more_group_work_than_lazy_on_chain() {
    let (mut p, _) = stabilizing_chain(4, 4);
    let c = cautious_repair(&mut p, &RepairOptions::default()).unwrap();
    let l = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
    assert!(!c.failed && !l.failed);
    // The structural claim of the paper, as a counter: the cautious loop
    // runs the group machinery every iteration.
    assert!(
        c.stats.step2_picks >= l.stats.step2_picks,
        "cautious {} vs lazy {}",
        c.stats.step2_picks,
        l.stats.step2_picks
    );
}

//! Byzantine agreement with fail-stop faults (the paper's Table II).
//!
//! The byzantine-agreement protocol of [`crate::byzantine`], extended with
//! a detectable fail-stop fault class: each non-general gets an `up.j`
//! flag, at most one non-general may crash (`up.j := 0`), a crashed process
//! executes no actions, and every process may read the `up` flags
//! (detectable failure). The byzantine fault class is kept, so the
//! combined model is the `BAFS` family from the cautious-repair tool's
//! evaluation; the paper reports lazy-repair numbers only for this one.

use crate::byzantine::BOT;
use ftrepair_bdd::{NodeId, FALSE, TRUE};
use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use ftrepair_symbolic::VarId;

/// Variable handles for a generated instance.
#[derive(Clone, Debug)]
pub struct FailStopVars {
    /// `b.g`, `d.g` — the general.
    pub bg: VarId,
    /// The general's decision.
    pub dg: VarId,
    /// Per non-general: byzantine flag, decision, finalized flag, up flag.
    pub b: Vec<VarId>,
    /// Decisions.
    pub d: Vec<VarId>,
    /// Finalized flags.
    pub f: Vec<VarId>,
    /// Up flags (fail-stop).
    pub up: Vec<VarId>,
}

/// Build byzantine agreement with fail-stop for `n` non-generals.
pub fn byzantine_failstop(n: usize) -> (DistributedProgram, FailStopVars) {
    assert!(n >= 1, "need at least one non-general");
    let mut bld = ProgramBuilder::new(format!("byzantine-failstop-{n}"));

    let bg = bld.var("b.g", 2);
    let dg = bld.var("d.g", 2);
    let (mut b, mut d, mut f, mut up) = (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    for j in 0..n {
        b.push(bld.var(format!("b.{j}"), 2));
        d.push(bld.var(format!("d.{j}"), 3));
        f.push(bld.var(format!("f.{j}"), 2));
        up.push(bld.var(format!("up.{j}"), 2));
    }
    let vars = FailStopVars { bg, dg, b, d, f, up };

    // Processes: like plain BA, plus every process reads all up flags and
    // only acts while up.
    for j in 0..n {
        let mut read = vec![vars.dg];
        read.extend(vars.d.iter().copied());
        read.extend(vars.up.iter().copied());
        read.push(vars.b[j]);
        read.push(vars.f[j]);
        let write = vec![vars.d[j], vars.f[j]];
        bld.process(format!("p{j}"), &read, &write);

        let is_up = bld.cx().assign_eq(vars.up[j], 1);
        let undecided = bld.cx().assign_eq(vars.d[j], BOT);
        let unfinal = bld.cx().assign_eq(vars.f[j], 0);
        let g1 = {
            let a = bld.cx().mgr().and(undecided, unfinal);
            bld.cx().mgr().and(a, is_up)
        };
        bld.action(g1, &[(vars.d[j], Update::FromVar(vars.dg))]);

        let decided = {
            let e = bld.cx().assign_eq(vars.d[j], BOT);
            bld.cx().mgr().not(e)
        };
        let g2 = {
            let a = bld.cx().mgr().and(decided, unfinal);
            bld.cx().mgr().and(a, is_up)
        };
        bld.action(g2, &[(vars.f[j], Update::Const(1))]);
    }

    // Byzantine faults (at most one byzantine across general+non-generals).
    let nobody_byz = {
        let mut acc = bld.cx().assign_eq(vars.bg, 0);
        for &bj in &vars.b {
            let nb = bld.cx().assign_eq(bj, 0);
            acc = bld.cx().mgr().and(acc, nb);
        }
        acc
    };
    bld.fault_action(nobody_byz, &[(vars.bg, Update::Const(1))]);
    for j in 0..n {
        bld.fault_action(nobody_byz, &[(vars.b[j], Update::Const(1))]);
    }
    let g_byz = bld.cx().assign_eq(vars.bg, 1);
    bld.fault_action(g_byz, &[(vars.dg, Update::Choice(vec![0, 1]))]);
    for j in 0..n {
        let j_byz = bld.cx().assign_eq(vars.b[j], 1);
        // A crashed byzantine process no longer emits decisions.
        let j_up = bld.cx().assign_eq(vars.up[j], 1);
        let guard = bld.cx().mgr().and(j_byz, j_up);
        bld.fault_action(guard, &[(vars.d[j], Update::Choice(vec![0, 1]))]);
    }

    // Fail-stop faults: at most one non-general crashes, ever.
    let all_up = {
        let mut acc = TRUE;
        for &u in &vars.up {
            let e = bld.cx().assign_eq(u, 1);
            acc = bld.cx().mgr().and(acc, e);
        }
        acc
    };
    for j in 0..n {
        bld.fault_action(all_up, &[(vars.up[j], Update::Const(0))]);
    }

    // Invariant: the BA invariant (agnostic to up flags) extended with
    // "at most one process is down".
    let inv = {
        let base = ba_like_invariant(&mut bld, &vars);
        let amod = at_most_one_down(&mut bld, &vars);
        bld.cx().mgr().and(base, amod)
    };
    bld.invariant(inv);

    // Safety: same validity/agreement bad states and frozen-decision bad
    // transitions as plain BA.
    let bs = bad_states(&mut bld, &vars);
    bld.bad_states(bs);
    let bt = bad_transitions(&mut bld, &vars);
    bld.bad_trans(bt);

    (bld.build(), vars)
}

fn at_most_one_down(bld: &mut ProgramBuilder, vars: &FailStopVars) -> NodeId {
    let n = vars.up.len();
    let mut acc = TRUE;
    for i in 0..n {
        for k in (i + 1)..n {
            let di = bld.cx().assign_eq(vars.up[i], 0);
            let dk = bld.cx().assign_eq(vars.up[k], 0);
            let both = bld.cx().mgr().and(di, dk);
            let nboth = bld.cx().mgr().not(both);
            acc = bld.cx().mgr().and(acc, nboth);
        }
    }
    acc
}

fn ba_like_invariant(bld: &mut ProgramBuilder, vars: &FailStopVars) -> NodeId {
    let n = vars.b.len();
    // At most one byzantine.
    let mut all = vec![vars.bg];
    all.extend(vars.b.iter().copied());
    let mut amob = TRUE;
    for i in 0..all.len() {
        for k in (i + 1)..all.len() {
            let bi = bld.cx().assign_eq(all[i], 1);
            let bk = bld.cx().assign_eq(all[k], 1);
            let both = bld.cx().mgr().and(bi, bk);
            let nboth = bld.cx().mgr().not(both);
            amob = bld.cx().mgr().and(amob, nboth);
        }
    }

    let g_good = bld.cx().assign_eq(vars.bg, 0);
    let mut good_part = TRUE;
    for j in 0..n {
        let bj = bld.cx().assign_eq(vars.b[j], 1);
        let dbot = bld.cx().assign_eq(vars.d[j], BOT);
        let deq = {
            let mut acc = FALSE;
            for v in 0..2 {
                let a = bld.cx().assign_eq(vars.d[j], v);
                let g = bld.cx().assign_eq(vars.dg, v);
                let both = bld.cx().mgr().and(a, g);
                acc = bld.cx().mgr().or(acc, both);
            }
            acc
        };
        let dok = bld.cx().mgr().or(dbot, deq);
        let fok = {
            let unfinal = bld.cx().assign_eq(vars.f[j], 0);
            let decided = bld.cx().mgr().not(dbot);
            bld.cx().mgr().or(unfinal, decided)
        };
        let sound_ok = bld.cx().mgr().and(dok, fok);
        let clause = bld.cx().mgr().or(bj, sound_ok);
        good_part = bld.cx().mgr().and(good_part, clause);
    }
    let ng = bld.cx().mgr().not(g_good);
    let good_clause = bld.cx().mgr().or(ng, good_part);

    let mut byz_part = TRUE;
    for j in 0..n {
        let dbot = bld.cx().assign_eq(vars.d[j], BOT);
        let decided = bld.cx().mgr().not(dbot);
        let unfinal = bld.cx().assign_eq(vars.f[j], 0);
        let fok = bld.cx().mgr().or(unfinal, decided);
        byz_part = bld.cx().mgr().and(byz_part, fok);
    }
    // Only *active* decisions matter for agreement with a byzantine
    // general: a crashed, unfinalized process will never finalize, so its
    // pending decision is moot. active(j) = d.j≠⊥ ∧ (up.j ∨ f.j).
    let active: Vec<NodeId> = (0..n)
        .map(|j| {
            let dbot = bld.cx().assign_eq(vars.d[j], BOT);
            let dec = bld.cx().mgr().not(dbot);
            let up = bld.cx().assign_eq(vars.up[j], 1);
            let fin = bld.cx().assign_eq(vars.f[j], 1);
            let live = bld.cx().mgr().or(up, fin);
            bld.cx().mgr().and(dec, live)
        })
        .collect();
    for j in 0..n {
        for k in (j + 1)..n {
            let dis = decided_disagreement(bld, vars, j, k);
            let both_active = bld.cx().mgr().and(active[j], active[k]);
            let viol = bld.cx().mgr().and(dis, both_active);
            let nd = bld.cx().mgr().not(viol);
            byz_part = bld.cx().mgr().and(byz_part, nd);
        }
    }
    // Closure of the b.g case: as long as some *up* process may still copy
    // d.g, d.g must agree with every active decision.
    let all_settled = {
        // Nobody will copy d.g anymore: every process is decided or down.
        let mut acc = TRUE;
        for j in 0..n {
            let dbot = bld.cx().assign_eq(vars.d[j], BOT);
            let dec = bld.cx().mgr().not(dbot);
            let down = bld.cx().assign_eq(vars.up[j], 0);
            let settled = bld.cx().mgr().or(dec, down);
            acc = bld.cx().mgr().and(acc, settled);
        }
        acc
    };
    for (k, &act) in active.iter().enumerate().take(n) {
        let matches = {
            let mut acc = FALSE;
            for v in 0..2 {
                let a = bld.cx().assign_eq(vars.d[k], v);
                let g = bld.cx().assign_eq(vars.dg, v);
                let both = bld.cx().mgr().and(a, g);
                acc = bld.cx().mgr().or(acc, both);
            }
            acc
        };
        let inactive = bld.cx().mgr().not(act);
        let ok = {
            let a = bld.cx().mgr().or(inactive, matches);
            bld.cx().mgr().or(a, all_settled)
        };
        byz_part = bld.cx().mgr().and(byz_part, ok);
    }
    let g_byz = bld.cx().assign_eq(vars.bg, 1);
    let ngb = bld.cx().mgr().not(g_byz);
    let byz_clause = bld.cx().mgr().or(ngb, byz_part);

    let both = bld.cx().mgr().and(good_clause, byz_clause);
    bld.cx().mgr().and(amob, both)
}

fn decided_disagreement(
    bld: &mut ProgramBuilder,
    vars: &FailStopVars,
    j: usize,
    k: usize,
) -> NodeId {
    let j0 = bld.cx().assign_eq(vars.d[j], 0);
    let j1 = bld.cx().assign_eq(vars.d[j], 1);
    let k0 = bld.cx().assign_eq(vars.d[k], 0);
    let k1 = bld.cx().assign_eq(vars.d[k], 1);
    let a = bld.cx().mgr().and(j0, k1);
    let b = bld.cx().mgr().and(j1, k0);
    bld.cx().mgr().or(a, b)
}

fn sound_finalized(bld: &mut ProgramBuilder, vars: &FailStopVars, j: usize) -> NodeId {
    let nb = bld.cx().assign_eq(vars.b[j], 0);
    let fj = bld.cx().assign_eq(vars.f[j], 1);
    bld.cx().mgr().and(nb, fj)
}

fn bad_states(bld: &mut ProgramBuilder, vars: &FailStopVars) -> NodeId {
    let n = vars.b.len();
    let mut bad = FALSE;
    for j in 0..n {
        for k in (j + 1)..n {
            let sj = sound_finalized(bld, vars, j);
            let sk = sound_finalized(bld, vars, k);
            let dis = decided_disagreement(bld, vars, j, k);
            let t = bld.cx().mgr().and(sj, sk);
            let v = bld.cx().mgr().and(t, dis);
            bad = bld.cx().mgr().or(bad, v);
        }
    }
    let g_good = bld.cx().assign_eq(vars.bg, 0);
    for j in 0..n {
        let sj = sound_finalized(bld, vars, j);
        let mut eq = FALSE;
        for v in 0..2 {
            let a = bld.cx().assign_eq(vars.d[j], v);
            let g = bld.cx().assign_eq(vars.dg, v);
            let both = bld.cx().mgr().and(a, g);
            eq = bld.cx().mgr().or(eq, both);
        }
        let neq = bld.cx().mgr().not(eq);
        let dbot = bld.cx().assign_eq(vars.d[j], BOT);
        let ndbot = bld.cx().mgr().not(dbot);
        let wrong = bld.cx().mgr().and(neq, ndbot);
        let t = bld.cx().mgr().and(g_good, sj);
        let v = bld.cx().mgr().and(t, wrong);
        bad = bld.cx().mgr().or(bad, v);
    }
    bad
}

fn bad_transitions(bld: &mut ProgramBuilder, vars: &FailStopVars) -> NodeId {
    let n = vars.b.len();
    let mut bad = FALSE;
    for j in 0..n {
        let guard = sound_finalized(bld, vars, j);
        let dj_same = bld.cx().unchanged(vars.d[j]);
        let fj_same = bld.cx().unchanged(vars.f[j]);
        let frozen = bld.cx().mgr().and(dj_same, fj_same);
        let thawed = bld.cx().mgr().not(frozen);
        let v = bld.cx().mgr().and(guard, thawed);
        bad = bld.cx().mgr().or(bad, v);
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_core::{lazy_repair, verify::verify_outcome, RepairOptions};

    #[test]
    fn instance_shape() {
        let (mut p, vars) = byzantine_failstop(2);
        assert_eq!(p.processes.len(), 2);
        assert_eq!(vars.up.len(), 2);
        let universe = p.cx.state_universe();
        // 2·2 · (2·3·2·2)² = 4 · 576 = 2304.
        assert_eq!(p.cx.count_states(universe), 2304.0);
    }

    #[test]
    fn crashed_process_is_inert() {
        let (mut p, vars) = byzantine_failstop(1);
        // State: everyone sound, j undecided but down.
        let down = p.cx.state_cube(&[0, 1, 0, BOT, 0, 0]);
        let t = p.processes[0].trans;
        let img = p.cx.image(down, t);
        assert_eq!(img, FALSE, "a crashed process must not act");
        let _ = vars;
    }

    #[test]
    fn at_most_one_crash() {
        let (mut p, _) = byzantine_failstop(2);
        let one_down = p.cx.state_cube(&[0, 0, 0, BOT, 0, 0, 0, BOT, 0, 1]);
        let img = p.cx.image(one_down, p.faults);
        let both_down = {
            let u0 = p.cx.find_var("up.0").unwrap();
            let u1 = p.cx.find_var("up.1").unwrap();
            let a = p.cx.assign_eq(u0, 0);
            let b = p.cx.assign_eq(u1, 0);
            p.cx.mgr().and(a, b)
        };
        assert!(p.cx.mgr().disjoint(img, both_down));
    }

    #[test]
    fn invariant_is_closed_and_safe() {
        let (mut p, _) = byzantine_failstop(1);
        let t = p.program_trans();
        let inv = p.invariant;
        assert!(ftrepair_program::semantics::is_closed(&mut p.cx, inv, t));
        assert!(p.cx.mgr().disjoint(inv, p.safety.bad_states));
        let inside = ftrepair_program::semantics::project(&mut p.cx, t, inv);
        assert!(p.cx.mgr().disjoint(inside, p.safety.bad_trans));
    }

    #[test]
    fn repair_n1_verifies() {
        let (mut p, _) = byzantine_failstop(1);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
    }
}

//! Dijkstra's K-state token ring — a second self-stabilization case study
//! (extension beyond the paper's three, in the same family as the chain).
//!
//! `n` processes in a ring, each holding a counter `x_i ∈ {0..k-1}`.
//! Process 0 *holds the token* when `x_0 = x_{n-1}` and fires by
//! incrementing modulo `k`; process `i > 0` holds it when
//! `x_i ≠ x_{i-1}` and fires by copying. The legitimate states are those
//! with exactly one token; transient faults corrupt single counters,
//! creating multiple tokens. For `k ≥ n` the protocol famously
//! self-stabilizes — repair verifies that and adds nothing inside the
//! invariant, while the fault-span covers the entire state space.

use ftrepair_bdd::{NodeId, FALSE, TRUE};
use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use ftrepair_symbolic::VarId;

/// Build the ring with `n` processes over counters `0..k`. Requires
/// `k ≥ n` (Dijkstra's stabilization condition) and `n ≥ 2`.
pub fn token_ring(n: usize, k: u64) -> (DistributedProgram, Vec<VarId>) {
    assert!(n >= 2, "a ring needs at least two processes");
    assert!(k >= n as u64, "Dijkstra's theorem needs k ≥ n");
    let mut b = ProgramBuilder::new(format!("token-ring-{n}x{k}"));
    let x: Vec<VarId> = (0..n).map(|i| b.var(format!("x.{i}"), k)).collect();

    // Process 0: increments modulo k when it sees its own value behind it.
    b.process("p0", &[x[n - 1], x[0]], &[x[0]]);
    let token0 = b.cx().vars_equal(x[0], x[n - 1]);
    let inc = {
        let mut rel = FALSE;
        for v in 0..k {
            let cur = b.cx().assign_eq(x[0], v);
            let nxt = b.cx().assign_const(x[0], (v + 1) % k);
            let arm = b.cx().mgr().and(cur, nxt);
            rel = b.cx().mgr().or(rel, arm);
        }
        rel
    };
    b.action(token0, &[(x[0], Update::Rel(inc))]);

    // Processes 1..n: copy the left neighbour when they differ.
    for i in 1..n {
        b.process(format!("p{i}"), &[x[i - 1], x[i]], &[x[i]]);
        let eq = b.cx().vars_equal(x[i - 1], x[i]);
        let token = b.cx().mgr().not(eq);
        b.action(token, &[(x[i], Update::FromVar(x[i - 1]))]);
    }

    // Invariant: exactly one token.
    let inv = exactly_one_token(&mut b, &x);
    b.invariant(inv);

    // Transient faults: any single counter jumps anywhere.
    let all_values: Vec<u64> = (0..k).collect();
    for &xi in &x {
        b.fault_action(TRUE, &[(xi, Update::Choice(all_values.clone()))]);
    }

    (b.build(), x)
}

/// The predicate "exactly one process holds a token".
fn exactly_one_token(b: &mut ProgramBuilder, x: &[VarId]) -> NodeId {
    let n = x.len();
    let tokens: Vec<NodeId> = (0..n)
        .map(|i| {
            if i == 0 {
                b.cx().vars_equal(x[0], x[n - 1])
            } else {
                let eq = b.cx().vars_equal(x[i - 1], x[i]);
                b.cx().mgr().not(eq)
            }
        })
        .collect();
    let mut exactly_one = FALSE;
    for i in 0..n {
        let mut only_i = tokens[i];
        for (j, &t) in tokens.iter().enumerate() {
            if j != i {
                let nt = b.cx().mgr().not(t);
                only_i = b.cx().mgr().and(only_i, nt);
            }
        }
        exactly_one = b.cx().mgr().or(exactly_one, only_i);
    }
    exactly_one
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_core::{lazy_repair, verify::verify_outcome, RepairOptions};

    #[test]
    fn legitimate_states_have_one_token() {
        let (mut p, x) = token_ring(3, 3);
        // All-equal: only p0 enabled.
        let s = p.cx.state_cube(&[1, 1, 1]);
        assert!(p.cx.mgr().leq(s, p.invariant));
        // One step behind: only one copier enabled.
        let s2 = p.cx.state_cube(&[2, 1, 1]);
        assert!(p.cx.mgr().leq(s2, p.invariant));
        // Two tokens: not legitimate.
        let s3 = p.cx.state_cube(&[2, 1, 2]);
        assert!(p.cx.mgr().disjoint(s3, p.invariant));
        let _ = x;
    }

    #[test]
    fn invariant_is_closed_and_rotates() {
        let (mut p, _) = token_ring(3, 3);
        let t = p.program_trans();
        let inv = p.invariant;
        assert!(ftrepair_program::semantics::is_closed(&mut p.cx, inv, t));
        // The ring never stops: no deadlocks inside the invariant.
        let dl = p.cx.deadlocks(inv, t);
        assert_eq!(dl, FALSE);
    }

    #[test]
    fn ring_self_stabilizes() {
        // Dijkstra: from every state, the invariant is reachable via the
        // original program when k ≥ n.
        let (mut p, _) = token_ring(3, 3);
        let t = p.program_trans();
        let back = p.cx.backward_reachable(p.invariant, t);
        let universe = p.cx.state_universe();
        assert_eq!(back, universe);
    }

    #[test]
    fn repair_verifies_and_keeps_the_rotation() {
        let (mut p, _) = token_ring(3, 3);
        let orig_inside = {
            let t = p.program_trans();
            let inv = p.invariant;
            ftrepair_program::semantics::project(&mut p.cx, t, inv)
        };
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
        // The token rotation inside the invariant survives untouched.
        assert!(p.cx.mgr().leq(orig_inside, out.trans));
    }

    #[test]
    fn repair_verifies_on_a_larger_ring() {
        let (mut p, _) = token_ring(4, 4);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok() && r.ok(), "{m:?} {r:?}");
    }
}

//! The stabilizing chain (`Sc^n` in the paper's tables).
//!
//! `n` cells `x.0 … x.{n-1}` over the domain `{0..d-1}`. Cell 0 is the
//! root and never changes; every other cell copies its left neighbour when
//! they differ. The legitimate states are "all cells equal"; transient
//! faults corrupt any single cell to any value, so the fault-span is the
//! entire state space — which is how the paper's `Sc` rows reach 10^19 to
//! 10^30 reachable states.
//!
//! The original program is already self-stabilizing; what repair adds is
//! the *verified* maximal recovery structure, and what the experiment
//! measures is the cost of the fixpoints (Step 1) versus the group
//! enforcement (Step 2) at these state-space sizes.

use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use ftrepair_symbolic::VarId;

/// Build the stabilizing chain with `n` cells over domain `{0..d-1}`.
pub fn stabilizing_chain(n: usize, d: u64) -> (DistributedProgram, Vec<VarId>) {
    assert!(n >= 2, "a chain needs at least two cells");
    assert!(d >= 2, "cells need at least two values");
    let mut bld = ProgramBuilder::new(format!("stabilizing-chain-{n}x{d}"));
    let x: Vec<VarId> = (0..n).map(|i| bld.var(format!("x.{i}"), d)).collect();

    // Process i (1..n): reads x.{i-1} and x.i, writes x.i;
    // action: x.i ≠ x.{i-1} → x.i := x.{i-1}.
    for i in 1..n {
        bld.process(format!("c{i}"), &[x[i - 1], x[i]], &[x[i]]);
        let eq = bld.cx().vars_equal(x[i - 1], x[i]);
        let neq = bld.cx().mgr().not(eq);
        bld.action(neq, &[(x[i], Update::FromVar(x[i - 1]))]);
    }

    // Invariant: all cells equal.
    let mut inv = ftrepair_bdd::TRUE;
    for i in 1..n {
        let eq = bld.cx().vars_equal(x[i - 1], x[i]);
        inv = bld.cx().mgr().and(inv, eq);
    }
    bld.invariant(inv);

    // Transient faults: any one cell (including the root) jumps anywhere.
    let all_values: Vec<u64> = (0..d).collect();
    for &xi in &x {
        bld.fault_action(ftrepair_bdd::TRUE, &[(xi, Update::Choice(all_values.clone()))]);
    }

    (bld.build(), x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_core::{lazy_repair, verify::verify_outcome, RepairOptions};

    #[test]
    fn instance_shape() {
        let (mut p, x) = stabilizing_chain(3, 3);
        assert_eq!(p.processes.len(), 2); // root has no process
        assert_eq!(x.len(), 3);
        let universe = p.cx.state_universe();
        assert_eq!(p.cx.count_states(universe), 27.0);
        assert_eq!(p.cx.count_states(p.invariant), 3.0); // all-equal states
    }

    #[test]
    fn faults_reach_everything() {
        let (mut p, _) = stabilizing_chain(3, 2);
        let init = p.cx.state_cube(&[0, 0, 0]);
        let combined = {
            let t = p.program_trans();
            p.cx.mgr().or(t, p.faults)
        };
        let reach = p.cx.forward_reachable(init, combined);
        let universe = p.cx.state_universe();
        assert_eq!(reach, universe);
    }

    #[test]
    fn original_program_already_stabilizes() {
        // From any state, program-only execution reaches the invariant:
        // backward reachability of the invariant covers the universe.
        let (mut p, _) = stabilizing_chain(4, 2);
        let t = p.program_trans();
        let back = p.cx.backward_reachable(p.invariant, t);
        let universe = p.cx.state_universe();
        assert_eq!(back, universe);
    }

    #[test]
    fn repair_small_chain_verifies() {
        let (mut p, _) = stabilizing_chain(3, 2);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn repair_nonbinary_domain_verifies() {
        let (mut p, _) = stabilizing_chain(3, 3);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn chain_actions_survive_repair() {
        // The original copy-left actions must survive both steps: their
        // groups are complete by construction.
        let (mut p, _) = stabilizing_chain(3, 2);
        let orig: Vec<_> = p.partitions();
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        for (j, &t) in orig.iter().enumerate() {
            // Restricted to the final span, the original actions remain.
            let in_span = {
                let from = p.cx.mgr().and(t, out.span);
                let tgt = p.cx.as_next(out.span);
                p.cx.mgr().and(from, tgt)
            };
            assert!(
                p.cx.mgr().leq(in_span, out.processes[j].trans),
                "process {j} lost original actions"
            );
        }
    }
}

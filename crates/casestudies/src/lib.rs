//! # ftrepair-casestudies — the paper's case studies, parameterized
//!
//! Generators for the three workloads of the evaluation section:
//!
//! * [`byzantine::byzantine_agreement`] — the classic byzantine-agreement
//!   protocol of Section VI: a general plus `n` non-generals, byzantine
//!   faults affecting at most one of them (**Table I**, lazy vs cautious).
//! * [`failstop::byzantine_failstop`] — the same protocol with an
//!   additional fail-stop fault class (**Table II**, lazy only — the paper
//!   reports the cautious tool was not applicable at these sizes).
//! * [`chain::stabilizing_chain`] — a chain of `n` cells over a domain of
//!   size `d` that must stabilize to "all cells equal the root" from
//!   arbitrary transient corruption (**Table III**, `Sc^n` rows whose state
//!   counts reach 10^19…10^30 in the paper).
//!
//! Two extension studies go beyond the paper's evaluation:
//! [`tmr::tmr`] (triple modular redundancy with a naive voter) and
//! [`token_ring::token_ring`] (Dijkstra's K-state ring).
//!
//! Each generator returns a ready-to-repair
//! [`ftrepair_program::DistributedProgram`]; tests repair small instances
//! and hold the outputs to the independent masking/realizability verifiers.

pub mod byzantine;
pub mod chain;
pub mod failstop;
pub mod tmr;
pub mod token_ring;

pub use byzantine::byzantine_agreement;
pub use chain::stabilizing_chain;
pub use failstop::byzantine_failstop;
pub use tmr::tmr;
pub use token_ring::token_ring;

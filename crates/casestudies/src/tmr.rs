//! Triple modular redundancy (TMR) — the classic FTSyn-family extension
//! case study.
//!
//! Three replicas latch an input bit; a naive voter copies replica 0 once
//! all replicas are latched. A fault may corrupt **one** replica. The
//! fault-intolerant voter then publishes garbage; repair must (a) stop the
//! voter from trusting a minority replica and (b) synthesize replica
//! recovery — all under the voter's inability to read the input or the
//! corruption flag.

use ftrepair_bdd::{NodeId, TRUE};
use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use ftrepair_symbolic::VarId;

/// "Not yet latched" marker for replicas and the output.
pub const EMPTY: u64 = 2;

/// Variable handles of a TMR instance.
#[derive(Clone, Debug)]
pub struct TmrVars {
    /// The input bit.
    pub input: VarId,
    /// The replicas (`{0, 1, EMPTY}`).
    pub replicas: Vec<VarId>,
    /// The output (`{0, 1, EMPTY}`).
    pub output: VarId,
    /// Has the (single) corruption fault fired yet?
    pub corrupted: VarId,
}

/// Build a TMR instance with `n` replicas (the classic setting is 3).
pub fn tmr(n: usize) -> (DistributedProgram, TmrVars) {
    assert!(n >= 2, "redundancy needs at least two replicas");
    let mut b = ProgramBuilder::new(format!("tmr-{n}"));
    let input = b.var("i", 2);
    let replicas: Vec<VarId> = (0..n).map(|j| b.var(format!("r{j}"), 3)).collect();
    let output = b.var("o", 3);
    let corrupted = b.var("c", 2);
    let vars = TmrVars { input, replicas: replicas.clone(), output, corrupted };

    // Replica processes: latch the input once.
    for (j, &r) in replicas.iter().enumerate() {
        b.process(format!("p{j}"), &[input, r], &[r]);
        let unlatched = b.cx().assign_eq(r, EMPTY);
        b.action(unlatched, &[(r, Update::FromVar(input))]);
    }

    // The naive voter: copies replica 0 once everyone latched.
    let mut read = replicas.clone();
    read.push(output);
    b.process("voter", &read, &[output]);
    let guard = {
        let mut acc = b.cx().assign_eq(output, EMPTY);
        for &r in &replicas {
            let latched = {
                let e = b.cx().assign_eq(r, EMPTY);
                b.cx().mgr().not(e)
            };
            acc = b.cx().mgr().and(acc, latched);
        }
        acc
    };
    b.action(guard, &[(output, Update::FromVar(replicas[0]))]);

    // Faults: corrupt any one replica, once.
    let fresh = b.cx().assign_eq(corrupted, 0);
    for &r in &replicas {
        b.fault_action(fresh, &[(r, Update::Choice(vec![0, 1])), (corrupted, Update::Const(1))]);
    }

    // Invariant: every replica is unlatched or correct; output undecided or
    // correct.
    let inv = {
        let mut acc = TRUE;
        for &r in &replicas {
            let ok = latched_correct_or_empty(&mut b, r, input);
            acc = b.cx().mgr().and(acc, ok);
        }
        let out_ok = latched_correct_or_empty(&mut b, output, input);
        b.cx().mgr().and(acc, out_ok)
    };
    b.invariant(inv);

    // Safety: a wrong output is bad; a decided output never changes.
    let wrong = {
        let undecided = b.cx().assign_eq(output, EMPTY);
        let matches = matches_input(&mut b, output, input);
        let okay = b.cx().mgr().or(undecided, matches);
        b.cx().mgr().not(okay)
    };
    b.bad_states(wrong);
    let bt = {
        let decided = {
            let e = b.cx().assign_eq(output, EMPTY);
            b.cx().mgr().not(e)
        };
        let same = b.cx().unchanged(output);
        let changes = b.cx().mgr().not(same);
        b.cx().mgr().and(decided, changes)
    };
    b.bad_trans(bt);

    (b.build(), vars)
}

fn latched_correct_or_empty(b: &mut ProgramBuilder, v: VarId, input: VarId) -> NodeId {
    let empty = b.cx().assign_eq(v, EMPTY);
    let m = matches_input(b, v, input);
    b.cx().mgr().or(empty, m)
}

fn matches_input(b: &mut ProgramBuilder, v: VarId, input: VarId) -> NodeId {
    let mut acc = ftrepair_bdd::FALSE;
    for val in 0..2 {
        let a = b.cx().assign_eq(v, val);
        let i = b.cx().assign_eq(input, val);
        let both = b.cx().mgr().and(a, i);
        acc = b.cx().mgr().or(acc, both);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_core::{lazy_repair, verify::verify_outcome, RepairOptions};

    #[test]
    fn instance_shape() {
        let (mut p, vars) = tmr(3);
        assert_eq!(p.processes.len(), 4); // 3 replicas + voter
        let u = p.cx.state_universe();
        // 2 · 3³ · 3 · 2 = 324.
        assert_eq!(p.cx.count_states(u), 324.0);
        let _ = vars;
    }

    #[test]
    fn naive_voter_violates_safety_under_faults() {
        // Unrepaired: corrupt r0 before the voter runs → wrong output.
        let (mut p, _) = tmr(3);
        let t = p.program_trans();
        let combined = p.cx.mgr().or(t, p.faults);
        let inv = p.invariant;
        let reach = p.cx.forward_reachable(inv, combined);
        let bad = p.cx.mgr().and(reach, p.safety.bad_states);
        assert_ne!(bad, ftrepair_bdd::FALSE, "the intolerant voter must be unsafe");
    }

    #[test]
    fn repair_makes_tmr_masking_tolerant() {
        let (mut p, _) = tmr(3);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn repaired_voter_does_not_trust_a_minority_replica() {
        let (mut p, vars) = tmr(3);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        // State: i=0, replicas (1,0,0) — r0 corrupted — o undecided, c=1.
        let s = p.cx.state_cube(&[0, 1, 0, 0, EMPTY, 1]);
        assert!(p.cx.mgr().leq(s, out.span), "corruption state must be in the span");
        // The voter (process index 3) must not publish r0's value 1 here.
        let voter = &out.processes[3];
        let publish_wrong = {
            let o1 = p.cx.assign_const(vars.output, 1);
            let step = p.cx.mgr().and(s, o1);
            p.cx.mgr().and(step, voter.trans)
        };
        assert_eq!(publish_wrong, ftrepair_bdd::FALSE, "voter still trusts r0");
    }

    #[test]
    fn two_replicas_also_repairable() {
        // With n=2 there is no majority, but replica recovery (p_j re-reads
        // the input) still yields a masking-tolerant system.
        let (mut p, _) = tmr(2);
        let out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok() && r.ok(), "{m:?} {r:?}");
    }
}

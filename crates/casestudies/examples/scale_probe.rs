use ftrepair_casestudies::{byzantine_agreement, byzantine_failstop, stabilizing_chain};
use ftrepair_core::{cautious_repair, lazy_repair, RepairOptions};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let what = args.get(1).map(String::as_str).unwrap_or("ba");
    let n: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(3);
    let d: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(2);
    let opts = RepairOptions::default();
    match what {
        "ba" => {
            let (mut p, _) = byzantine_agreement(n);
            let t0 = Instant::now();
            let out = lazy_repair(&mut p, &opts).unwrap();
            println!("BA n={n} lazy: failed={} time={:?} (s1={:?} s2={:?}) picks={} kept={} dropped={} exp={}",
                out.failed, t0.elapsed(), out.stats.step1_time, out.stats.step2_time,
                out.stats.step2_picks, out.stats.groups_kept, out.stats.groups_dropped, out.stats.expansions);
        }
        "bac" => {
            let (mut p, _) = byzantine_agreement(n);
            let t0 = Instant::now();
            let out = cautious_repair(&mut p, &opts).unwrap();
            println!(
                "BA n={n} cautious: failed={} time={:?} iters={} picks={}",
                out.failed,
                t0.elapsed(),
                out.stats.outer_iterations,
                out.stats.step2_picks
            );
        }
        "fs" => {
            let (mut p, _) = byzantine_failstop(n);
            let t0 = Instant::now();
            let out = lazy_repair(&mut p, &opts).unwrap();
            println!(
                "FS n={n} lazy: failed={} time={:?} (s1={:?} s2={:?})",
                out.failed,
                t0.elapsed(),
                out.stats.step1_time,
                out.stats.step2_time
            );
        }
        "chain" => {
            let (mut p, _) = stabilizing_chain(n, d);
            let t0 = Instant::now();
            let out = lazy_repair(&mut p, &opts).unwrap();
            println!(
                "Chain n={n} d={d} lazy: failed={} time={:?} (s1={:?} s2={:?}) picks={}",
                out.failed,
                t0.elapsed(),
                out.stats.step1_time,
                out.stats.step2_time,
                out.stats.step2_picks
            );
            println!("  manager: {:?}", p.cx.mgr_ref().stats());
        }
        _ => eprintln!("unknown {what}"),
    }
}

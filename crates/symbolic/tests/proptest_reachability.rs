//! Property-based validation of the symbolic image/preimage/reachability
//! machinery against a brute-force explicit evaluator.

use ftrepair_symbolic::{SymbolicContext, VarId};
use proptest::prelude::*;
use std::collections::HashSet;

/// Blueprint: up to 3 variables with domains 2..=3 and a random edge list
/// given as concrete (from, to) value vectors.
#[derive(Clone, Debug)]
struct Blueprint {
    sizes: Vec<u64>,
    edges: Vec<(Vec<u64>, Vec<u64>)>,
    init: Vec<u64>,
}

fn arb_blueprint() -> impl Strategy<Value = Blueprint> {
    proptest::collection::vec(2..=3u64, 1..=3).prop_flat_map(|sizes| {
        let state = {
            let sizes = sizes.clone();
            move || {
                let per: Vec<_> = sizes.iter().map(|&s| 0..s).collect();
                per
            }
        };
        let one_state = state().into_iter().collect::<Vec<_>>();
        let state_strategy = one_state;
        let edge = (state_strategy.clone(), state_strategy.clone());
        (
            Just(sizes),
            proptest::collection::vec(edge, 0..12),
            state_strategy,
        )
            .prop_map(|(sizes, edges, init)| Blueprint { sizes, edges, init })
    })
}

fn build(bp: &Blueprint) -> (SymbolicContext, Vec<VarId>, ftrepair_bdd::NodeId) {
    let mut cx = SymbolicContext::new();
    let vars: Vec<VarId> =
        bp.sizes.iter().enumerate().map(|(i, &s)| cx.add_var(format!("v{i}"), s)).collect();
    let mut trans = ftrepair_bdd::FALSE;
    for (from, to) in &bp.edges {
        let t = cx.transition_cube(from, to);
        trans = cx.mgr().or(trans, t);
    }
    (cx, vars, trans)
}

/// Brute-force reachability over the concrete edge list.
fn explicit_reach(bp: &Blueprint) -> HashSet<Vec<u64>> {
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    seen.insert(bp.init.clone());
    let mut frontier = vec![bp.init.clone()];
    while let Some(s) = frontier.pop() {
        for (from, to) in &bp.edges {
            if *from == s && seen.insert(to.clone()) {
                frontier.push(to.clone());
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn forward_reachability_matches_bruteforce(bp in arb_blueprint()) {
        let (mut cx, _, trans) = build(&bp);
        let init = cx.state_cube(&bp.init);
        let reach = cx.forward_reachable(init, trans);
        let symbolic: HashSet<Vec<u64>> =
            cx.enumerate_states(reach, 10_000).into_iter().collect();
        prop_assert_eq!(symbolic, explicit_reach(&bp));
    }

    #[test]
    fn image_matches_bruteforce(bp in arb_blueprint()) {
        let (mut cx, _, trans) = build(&bp);
        let init = cx.state_cube(&bp.init);
        let img = cx.image(init, trans);
        let symbolic: HashSet<Vec<u64>> =
            cx.enumerate_states(img, 10_000).into_iter().collect();
        let expected: HashSet<Vec<u64>> = bp
            .edges
            .iter()
            .filter(|(f, _)| *f == bp.init)
            .map(|(_, t)| t.clone())
            .collect();
        prop_assert_eq!(symbolic, expected);
    }

    #[test]
    fn preimage_matches_bruteforce(bp in arb_blueprint()) {
        let (mut cx, _, trans) = build(&bp);
        let target = cx.state_cube(&bp.init);
        let pre = cx.preimage(target, trans);
        let symbolic: HashSet<Vec<u64>> =
            cx.enumerate_states(pre, 10_000).into_iter().collect();
        let expected: HashSet<Vec<u64>> = bp
            .edges
            .iter()
            .filter(|(_, t)| *t == bp.init)
            .map(|(f, _)| f.clone())
            .collect();
        prop_assert_eq!(symbolic, expected);
    }

    #[test]
    fn deadlocks_match_bruteforce(bp in arb_blueprint()) {
        let (mut cx, _, trans) = build(&bp);
        let universe = cx.state_universe();
        let dl = cx.deadlocks(universe, trans);
        let symbolic: HashSet<Vec<u64>> =
            cx.enumerate_states(dl, 10_000).into_iter().collect();
        let sources: HashSet<&Vec<u64>> = bp.edges.iter().map(|(f, _)| f).collect();
        let all = cx.enumerate_states(universe, 10_000);
        let expected: HashSet<Vec<u64>> =
            all.into_iter().filter(|s| !sources.contains(s)).collect();
        prop_assert_eq!(symbolic, expected);
    }

    #[test]
    fn count_transitions_matches_edge_count(bp in arb_blueprint()) {
        let (mut cx, _, trans) = build(&bp);
        let mut unique: Vec<(Vec<u64>, Vec<u64>)> = bp.edges.clone();
        unique.sort();
        unique.dedup();
        prop_assert_eq!(cx.count_transitions(trans), unique.len() as f64);
    }

    #[test]
    fn partitioned_reachability_equals_monolithic(bp in arb_blueprint()) {
        // Split the edges into two arbitrary partitions.
        let (mut cx, _, _) = build(&bp);
        let mut t1 = ftrepair_bdd::FALSE;
        let mut t2 = ftrepair_bdd::FALSE;
        for (i, (from, to)) in bp.edges.iter().enumerate() {
            let t = cx.transition_cube(from, to);
            if i % 2 == 0 {
                t1 = cx.mgr().or(t1, t);
            } else {
                t2 = cx.mgr().or(t2, t);
            }
        }
        let mono = cx.mgr().or(t1, t2);
        let init = cx.state_cube(&bp.init);
        let a = cx.forward_reachable(init, mono);
        let b = cx.forward_reachable_partitioned(init, &[t1, t2]);
        prop_assert_eq!(a, b);
    }
}

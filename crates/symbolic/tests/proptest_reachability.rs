//! Property-based validation of the symbolic image/preimage/reachability
//! machinery against a brute-force explicit evaluator.
//!
//! Random transition systems come from the in-tree deterministic
//! [`SplitMix64`] PRNG with fixed per-test seeds, so every run checks the
//! same instances and failures reproduce exactly.

use ftrepair_bdd::SplitMix64;
use ftrepair_symbolic::{SymbolicContext, VarId};
use std::collections::HashSet;

const CASES: u64 = 96;

/// Blueprint: up to 3 variables with domains 2..=3 and a random edge list
/// given as concrete (from, to) value vectors.
#[derive(Clone, Debug)]
struct Blueprint {
    sizes: Vec<u64>,
    edges: Vec<(Vec<u64>, Vec<u64>)>,
    init: Vec<u64>,
}

fn gen_state(rng: &mut SplitMix64, sizes: &[u64]) -> Vec<u64> {
    sizes.iter().map(|&s| rng.gen_range(s)).collect()
}

fn gen_blueprint(rng: &mut SplitMix64) -> Blueprint {
    let nvars = 1 + rng.gen_range(3) as usize;
    let sizes: Vec<u64> = (0..nvars).map(|_| 2 + rng.gen_range(2)).collect();
    let nedges = rng.gen_range(12) as usize;
    let edges = (0..nedges).map(|_| (gen_state(rng, &sizes), gen_state(rng, &sizes))).collect();
    let init = gen_state(rng, &sizes);
    Blueprint { sizes, edges, init }
}

fn for_cases(test_tag: u64, mut case: impl FnMut(&Blueprint, u64)) {
    for i in 0..CASES {
        let mut rng = SplitMix64::seed_from_u64(test_tag.wrapping_mul(0x1000) + i);
        let bp = gen_blueprint(&mut rng);
        case(&bp, i);
    }
}

fn build(bp: &Blueprint) -> (SymbolicContext, Vec<VarId>, ftrepair_bdd::NodeId) {
    let mut cx = SymbolicContext::new();
    let vars: Vec<VarId> =
        bp.sizes.iter().enumerate().map(|(i, &s)| cx.add_var(format!("v{i}"), s)).collect();
    let mut trans = ftrepair_bdd::FALSE;
    for (from, to) in &bp.edges {
        let t = cx.transition_cube(from, to);
        trans = cx.mgr().or(trans, t);
    }
    (cx, vars, trans)
}

/// Brute-force reachability over the concrete edge list.
fn explicit_reach(bp: &Blueprint) -> HashSet<Vec<u64>> {
    let mut seen: HashSet<Vec<u64>> = HashSet::new();
    seen.insert(bp.init.clone());
    let mut frontier = vec![bp.init.clone()];
    while let Some(s) = frontier.pop() {
        for (from, to) in &bp.edges {
            if *from == s && seen.insert(to.clone()) {
                frontier.push(to.clone());
            }
        }
    }
    seen
}

#[test]
fn forward_reachability_matches_bruteforce() {
    for_cases(1, |bp, i| {
        let (mut cx, _, trans) = build(bp);
        let init = cx.state_cube(&bp.init);
        let reach = cx.forward_reachable(init, trans);
        let symbolic: HashSet<Vec<u64>> = cx.enumerate_states(reach, 10_000).into_iter().collect();
        assert_eq!(symbolic, explicit_reach(bp), "case {i}: {bp:?}");
    });
}

#[test]
fn image_matches_bruteforce() {
    for_cases(2, |bp, i| {
        let (mut cx, _, trans) = build(bp);
        let init = cx.state_cube(&bp.init);
        let img = cx.image(init, trans);
        let symbolic: HashSet<Vec<u64>> = cx.enumerate_states(img, 10_000).into_iter().collect();
        let expected: HashSet<Vec<u64>> =
            bp.edges.iter().filter(|(f, _)| *f == bp.init).map(|(_, t)| t.clone()).collect();
        assert_eq!(symbolic, expected, "case {i}: {bp:?}");
    });
}

#[test]
fn preimage_matches_bruteforce() {
    for_cases(3, |bp, i| {
        let (mut cx, _, trans) = build(bp);
        let target = cx.state_cube(&bp.init);
        let pre = cx.preimage(target, trans);
        let symbolic: HashSet<Vec<u64>> = cx.enumerate_states(pre, 10_000).into_iter().collect();
        let expected: HashSet<Vec<u64>> =
            bp.edges.iter().filter(|(_, t)| *t == bp.init).map(|(f, _)| f.clone()).collect();
        assert_eq!(symbolic, expected, "case {i}: {bp:?}");
    });
}

#[test]
fn deadlocks_match_bruteforce() {
    for_cases(4, |bp, i| {
        let (mut cx, _, trans) = build(bp);
        let universe = cx.state_universe();
        let dl = cx.deadlocks(universe, trans);
        let symbolic: HashSet<Vec<u64>> = cx.enumerate_states(dl, 10_000).into_iter().collect();
        let sources: HashSet<&Vec<u64>> = bp.edges.iter().map(|(f, _)| f).collect();
        let all = cx.enumerate_states(universe, 10_000);
        let expected: HashSet<Vec<u64>> =
            all.into_iter().filter(|s| !sources.contains(s)).collect();
        assert_eq!(symbolic, expected, "case {i}: {bp:?}");
    });
}

#[test]
fn count_transitions_matches_edge_count() {
    for_cases(5, |bp, i| {
        let (mut cx, _, trans) = build(bp);
        let mut unique: Vec<(Vec<u64>, Vec<u64>)> = bp.edges.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(cx.count_transitions(trans), unique.len() as f64, "case {i}: {bp:?}");
    });
}

#[test]
fn partitioned_reachability_equals_monolithic() {
    for_cases(6, |bp, i| {
        // Split the edges into two arbitrary partitions.
        let (mut cx, _, _) = build(bp);
        let mut t1 = ftrepair_bdd::FALSE;
        let mut t2 = ftrepair_bdd::FALSE;
        for (k, (from, to)) in bp.edges.iter().enumerate() {
            let t = cx.transition_cube(from, to);
            if k % 2 == 0 {
                t1 = cx.mgr().or(t1, t);
            } else {
                t2 = cx.mgr().or(t2, t);
            }
        }
        let mono = cx.mgr().or(t1, t2);
        let init = cx.state_cube(&bp.init);
        let a = cx.forward_reachable(init, mono);
        let b = cx.forward_reachable_partitioned(init, &[t1, t2]);
        assert_eq!(a, b, "case {i}: {bp:?}");
    });
}

//! Encoding finite-domain facts as BDDs: equality with constants, frame
//! conditions, domain constraints, and cubes for concrete states.

use crate::context::{SymbolicContext, VarId};
use ftrepair_bdd::{NodeId, FALSE, TRUE};

impl SymbolicContext {
    /// `v = val` over current-state bits.
    pub fn assign_eq(&mut self, v: VarId, val: u64) -> NodeId {
        self.value_eq_with(v, val, false)
    }

    /// `v' = val` over next-state bits — i.e. "the transition writes `val`
    /// into `v`" (say nothing about the rest).
    pub fn assign_const(&mut self, v: VarId, val: u64) -> NodeId {
        self.value_eq_with(v, val, true)
    }

    fn value_eq_with(&mut self, v: VarId, val: u64, next: bool) -> NodeId {
        let info = self.info(v).clone();
        assert!(val < info.size, "value {val} out of domain 0..{} for {}", info.size, info.name);
        let lits: Vec<(u32, bool)> = (0..info.bits)
            .map(|k| {
                let level = if next { self.next_level(v, k) } else { self.cur_level(v, k) };
                (level, (val >> k) & 1 == 1)
            })
            .collect();
        self.mgr().cube(&lits)
    }

    /// `v = v'`: the transition leaves `v` unchanged (frame condition).
    pub fn unchanged(&mut self, v: VarId) -> NodeId {
        let bits = self.info(v).bits;
        let mut acc = TRUE;
        for k in 0..bits {
            let cur = self.cur_level(v, k);
            let next = self.next_level(v, k);
            let (c, n) = {
                let m = self.mgr();
                (m.var(cur), m.var(next))
            };
            let eq = self.mgr().iff(c, n);
            acc = self.mgr().and(acc, eq);
        }
        acc
    }

    /// Conjunction of [`SymbolicContext::unchanged`] over `vars`.
    pub fn unchanged_all(&mut self, vars: &[VarId]) -> NodeId {
        let mut acc = TRUE;
        for &v in vars {
            let u = self.unchanged(v);
            acc = self.mgr().and(acc, u);
        }
        acc
    }

    /// `v = w` between two current-state variables (domains need not match;
    /// compares the overlapping value range).
    pub fn vars_equal(&mut self, v: VarId, w: VarId) -> NodeId {
        let (sv, sw) = (self.info(v).size, self.info(w).size);
        let common = sv.min(sw);
        let mut acc = FALSE;
        for val in 0..common {
            let ev = self.assign_eq(v, val);
            let ew = self.assign_eq(w, val);
            let both = self.mgr().and(ev, ew);
            acc = self.mgr().or(acc, both);
        }
        acc
    }

    /// `v = val ∧ w = val` over current bits (a common guard shape).
    pub fn both_eq(&mut self, v: VarId, w: VarId, val: u64) -> NodeId {
        let ev = self.assign_eq(v, val);
        let ew = self.assign_eq(w, val);
        self.mgr().and(ev, ew)
    }

    /// The current-state domain constraint `v < size(v)`; `TRUE` for exact
    /// power-of-two domains.
    pub fn domain_cur(&mut self, v: VarId) -> NodeId {
        let size = self.info(v).size;
        let bits = self.info(v).bits;
        if size == 1u64 << bits {
            return TRUE;
        }
        let mut acc = FALSE;
        for val in 0..size {
            let e = self.assign_eq(v, val);
            acc = self.mgr().or(acc, e);
        }
        acc
    }

    /// The next-state domain constraint `v' < size(v)`.
    pub fn domain_next(&mut self, v: VarId) -> NodeId {
        let size = self.info(v).size;
        let bits = self.info(v).bits;
        if size == 1u64 << bits {
            return TRUE;
        }
        let mut acc = FALSE;
        for val in 0..size {
            let e = self.assign_const(v, val);
            acc = self.mgr().or(acc, e);
        }
        acc
    }

    /// All well-formed states: conjunction of every variable's current-state
    /// domain constraint.
    pub fn state_universe(&mut self) -> NodeId {
        let vars = self.var_ids();
        let mut acc = TRUE;
        for v in vars {
            let d = self.domain_cur(v);
            acc = self.mgr().and(acc, d);
        }
        acc
    }

    /// All well-formed transitions: domain constraints on both copies.
    pub fn transition_universe(&mut self) -> NodeId {
        let cur = self.state_universe();
        let vars = self.var_ids();
        let mut acc = cur;
        for v in vars {
            let d = self.domain_next(v);
            acc = self.mgr().and(acc, d);
        }
        acc
    }

    /// The cube of one concrete state (`values[i]` is the value of the i-th
    /// declared variable) over current bits.
    pub fn state_cube(&mut self, values: &[u64]) -> NodeId {
        assert_eq!(values.len(), self.num_program_vars(), "state arity mismatch");
        let vars = self.var_ids();
        let mut acc = TRUE;
        for (&v, &val) in vars.iter().zip(values) {
            let e = self.assign_eq(v, val);
            acc = self.mgr().and(acc, e);
        }
        acc
    }

    /// The cube of one concrete state over next bits.
    pub fn state_cube_next(&mut self, values: &[u64]) -> NodeId {
        assert_eq!(values.len(), self.num_program_vars(), "state arity mismatch");
        let vars = self.var_ids();
        let mut acc = TRUE;
        for (&v, &val) in vars.iter().zip(values) {
            let e = self.assign_const(v, val);
            acc = self.mgr().and(acc, e);
        }
        acc
    }

    /// The cube of one concrete transition `from → to`.
    pub fn transition_cube(&mut self, from: &[u64], to: &[u64]) -> NodeId {
        let f = self.state_cube(from);
        let t = self.state_cube_next(to);
        self.mgr().and(f, t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_var_cx() -> (SymbolicContext, VarId, VarId) {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 3);
        let b = cx.add_var("b", 2);
        (cx, a, b)
    }

    #[test]
    fn assign_eq_counts() {
        let (mut cx, a, _) = two_var_cx();
        let e = cx.assign_eq(a, 2);
        // a=2 leaves b free: 2 well-formed states; raw bit count includes the
        // dead encoding of b... b is 1 bit so exactly 2 states.
        let universe = cx.state_universe();
        let well_formed = cx.mgr().and(e, universe);
        assert_eq!(cx.count_states(well_formed), 2.0);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn assign_eq_out_of_domain_panics() {
        let (mut cx, a, _) = two_var_cx();
        cx.assign_eq(a, 3);
    }

    #[test]
    fn unchanged_is_equality_of_copies() {
        let (mut cx, a, _) = two_var_cx();
        let u = cx.unchanged(a);
        for val in 0..3 {
            let cur = cx.assign_eq(a, val);
            let next = cx.assign_const(a, val);
            let same = cx.mgr().and(cur, next);
            assert!(cx.mgr().leq(same, u), "val={val} should satisfy unchanged");
            let other = cx.assign_const(a, (val + 1) % 3);
            let diff = cx.mgr().and(cur, other);
            assert!(cx.mgr().disjoint(diff, u), "changed value must violate unchanged");
        }
    }

    #[test]
    fn domain_constraint_excludes_dead_encodings() {
        let (mut cx, a, _) = two_var_cx();
        // a has 2 bits but only 3 values; encoding 3 (=0b11) is dead.
        let d = cx.domain_cur(a);
        let lits = [(cx.cur_level(a, 0), true), (cx.cur_level(a, 1), true)];
        let dead = cx.mgr().cube(&lits);
        assert!(cx.mgr().disjoint(dead, d));
        // Power-of-two domain: constraint is trivially TRUE.
        let (mut cx2, _, b) = two_var_cx();
        assert_eq!(cx2.domain_cur(b), TRUE);
    }

    #[test]
    fn state_universe_counts_product_of_domains() {
        let (mut cx, _, _) = two_var_cx();
        let u = cx.state_universe();
        assert_eq!(cx.count_states(u), 6.0); // 3 × 2
        let t = cx.transition_universe();
        assert_eq!(cx.count_transitions(t), 36.0); // 6 × 6
    }

    #[test]
    fn state_cube_is_one_state() {
        let (mut cx, _, _) = two_var_cx();
        let s = cx.state_cube(&[2, 1]);
        assert_eq!(cx.count_states(s), 1.0);
        let decoded = cx.enumerate_states(s, 10);
        assert_eq!(decoded, vec![vec![2, 1]]);
    }

    #[test]
    fn transition_cube_links_two_states() {
        let (mut cx, _, _) = two_var_cx();
        let t = cx.transition_cube(&[0, 0], &[2, 1]);
        assert_eq!(cx.count_transitions(t), 1.0);
        let pairs = cx.enumerate_transitions(t, 10);
        assert_eq!(pairs, vec![(vec![0, 0], vec![2, 1])]);
    }

    #[test]
    fn vars_equal_matches_pairwise() {
        let (mut cx, a, b) = two_var_cx();
        let eq = cx.vars_equal(a, b);
        let universe = cx.state_universe();
        let eq_wf = cx.mgr().and(eq, universe);
        // a ∈ {0,1,2}, b ∈ {0,1}: equal on (0,0), (1,1).
        assert_eq!(cx.count_states(eq_wf), 2.0);
    }

    #[test]
    fn both_eq_is_conjunction() {
        let (mut cx, a, b) = two_var_cx();
        let be = cx.both_eq(a, b, 1);
        let s = cx.state_cube(&[1, 1]);
        assert!(cx.mgr().leq(s, be));
        let s2 = cx.state_cube(&[1, 0]);
        assert!(cx.mgr().disjoint(s2, be));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn state_cube_wrong_arity_panics() {
        let (mut cx, _, _) = two_var_cx();
        cx.state_cube(&[0]);
    }
}

//! Counting and enumerating concrete states/transitions — the bridge from
//! symbolic fixpoints back to numbers in experiment tables and to concrete
//! witnesses in tests.

use crate::context::SymbolicContext;
use ftrepair_bdd::NodeId;

impl SymbolicContext {
    /// Number of states in a state predicate (a BDD over current bits).
    ///
    /// Counts minterms over the current-bit universe. Dead encodings of
    /// non-power-of-two domains are excluded by conjoining the state
    /// universe, so predicates need not be pre-constrained.
    pub fn count_states(&mut self, states: NodeId) -> f64 {
        let universe = self.state_universe();
        let constrained = self.mgr().and(states, universe);
        debug_assert!(
            self.mgr_ref().support(constrained).iter().all(|l| l % 2 == 0),
            "state predicate depends on next-state bits"
        );
        let total = self.total_bits();
        self.mgr_ref().sat_count(constrained) / 2f64.powi(total as i32)
    }

    /// Number of transitions in a transition predicate (over both copies).
    pub fn count_transitions(&mut self, trans: NodeId) -> f64 {
        let universe = self.transition_universe();
        let constrained = self.mgr().and(trans, universe);
        self.mgr_ref().sat_count(constrained)
    }

    /// Enumerate up to `limit` concrete states of a state predicate, each as
    /// a vector of variable values in declaration order. Deterministic order.
    /// Intended for tests and small examples.
    pub fn enumerate_states(&mut self, states: NodeId, limit: usize) -> Vec<Vec<u64>> {
        let universe = self.state_universe();
        let constrained = self.mgr().and(states, universe);
        let cur_levels: Vec<u32> = (0..self.total_bits()).map(|g| 2 * g).collect();
        let mut out = Vec::new();
        let paths: Vec<Vec<(u32, bool)>> = self.mgr_ref().cubes(constrained).collect();
        'outer: for path in paths {
            // Expand don't-care current bits of this path.
            let fixed: std::collections::HashMap<u32, bool> = path.into_iter().collect();
            let free: Vec<u32> =
                cur_levels.iter().copied().filter(|l| !fixed.contains_key(l)).collect();
            let combos = 1u64 << free.len().min(63);
            for combo in 0..combos {
                let mut assignment = fixed.clone();
                for (i, &l) in free.iter().enumerate() {
                    assignment.insert(l, (combo >> i) & 1 == 1);
                }
                out.push(self.decode_state(&assignment));
                if out.len() >= limit {
                    break 'outer;
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Enumerate up to `limit` concrete transitions as `(from, to)` value
    /// vectors. Deterministic order; for tests and small examples.
    pub fn enumerate_transitions(
        &mut self,
        trans: NodeId,
        limit: usize,
    ) -> Vec<(Vec<u64>, Vec<u64>)> {
        let universe = self.transition_universe();
        let constrained = self.mgr().and(trans, universe);
        let all_levels: Vec<u32> = (0..2 * self.total_bits()).collect();
        let mut out = Vec::new();
        let paths: Vec<Vec<(u32, bool)>> = self.mgr_ref().cubes(constrained).collect();
        'outer: for path in paths {
            let fixed: std::collections::HashMap<u32, bool> = path.into_iter().collect();
            let free: Vec<u32> =
                all_levels.iter().copied().filter(|l| !fixed.contains_key(l)).collect();
            let combos = 1u64 << free.len().min(63);
            for combo in 0..combos {
                let mut assignment = fixed.clone();
                for (i, &l) in free.iter().enumerate() {
                    assignment.insert(l, (combo >> i) & 1 == 1);
                }
                let from = self.decode_state(&assignment);
                let to = self.decode_state_next(&assignment);
                out.push((from, to));
                if out.len() >= limit {
                    break 'outer;
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn decode_state(&self, assignment: &std::collections::HashMap<u32, bool>) -> Vec<u64> {
        self.var_ids()
            .iter()
            .map(|&v| {
                let bits = self.info(v).bits;
                (0..bits).fold(0u64, |acc, k| {
                    let level = self.cur_level(v, k);
                    acc | (u64::from(*assignment.get(&level).unwrap_or(&false)) << k)
                })
            })
            .collect()
    }

    fn decode_state_next(&self, assignment: &std::collections::HashMap<u32, bool>) -> Vec<u64> {
        self.var_ids()
            .iter()
            .map(|&v| {
                let bits = self.info(v).bits;
                (0..bits).fold(0u64, |acc, k| {
                    let level = self.next_level(v, k);
                    acc | (u64::from(*assignment.get(&level).unwrap_or(&false)) << k)
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_bdd::{FALSE, TRUE};

    #[test]
    fn count_states_of_constants() {
        let mut cx = SymbolicContext::new();
        cx.add_var("a", 3);
        cx.add_var("b", 5);
        assert_eq!(cx.count_states(TRUE), 15.0);
        assert_eq!(cx.count_states(FALSE), 0.0);
    }

    #[test]
    fn count_transitions_of_true_is_square() {
        let mut cx = SymbolicContext::new();
        cx.add_var("a", 3);
        assert_eq!(cx.count_transitions(TRUE), 9.0);
    }

    #[test]
    fn enumerate_states_lists_all() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 3);
        let e0 = cx.assign_eq(a, 0);
        let e2 = cx.assign_eq(a, 2);
        let f = cx.mgr().or(e0, e2);
        assert_eq!(cx.enumerate_states(f, 100), vec![vec![0], vec![2]]);
    }

    #[test]
    fn enumerate_respects_limit() {
        let mut cx = SymbolicContext::new();
        cx.add_var("a", 4);
        cx.add_var("b", 4);
        let some = cx.enumerate_states(TRUE, 5);
        assert_eq!(some.len(), 5);
    }

    #[test]
    fn enumerate_transitions_decodes_pairs() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 2);
        let g = cx.assign_eq(a, 0);
        let u = cx.assign_const(a, 1);
        let t = cx.mgr().and(g, u);
        assert_eq!(cx.enumerate_transitions(t, 10), vec![(vec![0], vec![1])]);
    }

    #[test]
    fn counting_excludes_dead_encodings() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 3); // 2 bits, encoding 3 is dead
                                    // Raw TRUE over bits would be 4; count_states must say 3.
        assert_eq!(cx.count_states(TRUE), 3.0);
        // Explicit dead encoding must count as zero.
        let lits = [(cx.cur_level(a, 0), true), (cx.cur_level(a, 1), true)];
        let dead = cx.mgr().cube(&lits);
        assert_eq!(cx.count_states(dead), 0.0);
    }
}

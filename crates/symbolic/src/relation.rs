//! Image, preimage and reachability fixpoints — monolithic and partitioned.

use crate::context::SymbolicContext;
use ftrepair_bdd::NodeId;

impl SymbolicContext {
    /// One-step image: the states reachable from `states` by one `trans`
    /// step. `∃ cur. states ∧ trans`, renamed back to current bits.
    pub fn image(&mut self, states: NodeId, trans: NodeId) -> NodeId {
        let cur = self.all_cur_varset();
        let next_states = self.mgr().and_exists(states, trans, cur);
        let map = self.map_next_to_cur();
        self.mgr().rename(next_states, map)
    }

    /// One-step preimage: the states from which one `trans` step can reach
    /// `states`. Renames the target to next bits, then `∃ next. trans ∧ …`.
    pub fn preimage(&mut self, states: NodeId, trans: NodeId) -> NodeId {
        let map = self.map_cur_to_next();
        let primed = self.mgr().rename(states, map);
        let next = self.all_next_varset();
        self.mgr().and_exists(primed, trans, next)
    }

    /// Image under a union of partitions, computed partition-wise (keeps
    /// intermediate products small; the natural fit for per-process
    /// transition relations).
    pub fn image_partitioned(&mut self, states: NodeId, parts: &[NodeId]) -> NodeId {
        let mut acc = ftrepair_bdd::FALSE;
        for &t in parts {
            let step = self.image(states, t);
            acc = self.mgr().or(acc, step);
        }
        acc
    }

    /// Preimage under a union of partitions.
    pub fn preimage_partitioned(&mut self, states: NodeId, parts: &[NodeId]) -> NodeId {
        let mut acc = ftrepair_bdd::FALSE;
        for &t in parts {
            let step = self.preimage(states, t);
            acc = self.mgr().or(acc, step);
        }
        acc
    }

    /// Least fixpoint of forward reachability from `init` under `trans`.
    pub fn forward_reachable(&mut self, init: NodeId, trans: NodeId) -> NodeId {
        let mut reach = init;
        loop {
            let step = self.image(reach, trans);
            let next = self.mgr().or(reach, step);
            if next == reach {
                return reach;
            }
            reach = next;
        }
    }

    /// [`Self::forward_reachable`] with a reorder checkpoint per frontier
    /// iteration: long reachability runs are where the arena peaks, so the
    /// automatic trigger must get a chance to fire *between* image steps.
    /// `keep` is every NodeId the caller still holds across this call —
    /// the fixpoint's own state is rooted automatically. A no-op unless the
    /// manager's automatic trigger is armed.
    pub fn forward_reachable_keep(
        &mut self,
        init: NodeId,
        trans: NodeId,
        keep: &[NodeId],
    ) -> NodeId {
        let mut reach = init;
        loop {
            let mut roots = keep.to_vec();
            roots.extend([reach, trans]);
            self.maybe_reorder(&roots);
            let step = self.image(reach, trans);
            let next = self.mgr().or(reach, step);
            if next == reach {
                return reach;
            }
            reach = next;
        }
    }

    /// Forward reachability under partitioned relations.
    pub fn forward_reachable_partitioned(&mut self, init: NodeId, parts: &[NodeId]) -> NodeId {
        let mut reach = init;
        loop {
            let step = self.image_partitioned(reach, parts);
            let next = self.mgr().or(reach, step);
            if next == reach {
                return reach;
            }
            reach = next;
        }
    }

    /// Least fixpoint of backward reachability: all states that can reach
    /// `target` (including `target` itself).
    pub fn backward_reachable(&mut self, target: NodeId, trans: NodeId) -> NodeId {
        let mut reach = target;
        loop {
            let step = self.preimage(reach, trans);
            let next = self.mgr().or(reach, step);
            if next == reach {
                return reach;
            }
            reach = next;
        }
    }

    /// [`Self::backward_reachable`] with a reorder checkpoint per frontier
    /// iteration; see [`Self::forward_reachable_keep`].
    pub fn backward_reachable_keep(
        &mut self,
        target: NodeId,
        trans: NodeId,
        keep: &[NodeId],
    ) -> NodeId {
        let mut reach = target;
        loop {
            let mut roots = keep.to_vec();
            roots.extend([reach, trans]);
            self.maybe_reorder(&roots);
            let step = self.preimage(reach, trans);
            let next = self.mgr().or(reach, step);
            if next == reach {
                return reach;
            }
            reach = next;
        }
    }

    /// Restrict a transition predicate to steps that start in `from`.
    pub fn trans_from(&mut self, trans: NodeId, from: NodeId) -> NodeId {
        self.mgr().and(trans, from)
    }

    /// Restrict a transition predicate to steps that end in `to`.
    pub fn trans_to(&mut self, trans: NodeId, to: NodeId) -> NodeId {
        let map = self.map_cur_to_next();
        let primed = self.mgr().rename(to, map);
        self.mgr().and(trans, primed)
    }

    /// A state predicate as a *target* constraint over next bits.
    pub fn as_next(&mut self, states: NodeId) -> NodeId {
        let map = self.map_cur_to_next();
        self.mgr().rename(states, map)
    }

    /// States in `states` with **no** outgoing `trans` step (deadlocks
    /// relative to that relation).
    pub fn deadlocks(&mut self, states: NodeId, trans: NodeId) -> NodeId {
        let has_succ = self.preimage_of_anything(trans);
        self.mgr().diff(states, has_succ)
    }

    /// States with at least one outgoing transition in `trans`
    /// (`∃ next. trans`).
    pub fn preimage_of_anything(&mut self, trans: NodeId) -> NodeId {
        let next = self.all_next_varset();
        self.mgr().exists(trans, next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::SymbolicContext;
    use ftrepair_bdd::{FALSE, TRUE};

    /// 1-variable mod-4 counter: x' = x + 1 mod 4.
    fn counter() -> (SymbolicContext, crate::VarId, NodeId) {
        let mut cx = SymbolicContext::new();
        let x = cx.add_var("x", 4);
        let mut trans = FALSE;
        for v in 0..4 {
            let g = cx.assign_eq(x, v);
            let u = cx.assign_const(x, (v + 1) % 4);
            let t = cx.mgr().and(g, u);
            trans = cx.mgr().or(trans, t);
        }
        (cx, x, trans)
    }

    #[test]
    fn image_of_counter() {
        let (mut cx, x, trans) = counter();
        let s0 = cx.state_cube(&[0]);
        let s1 = cx.image(s0, trans);
        let expected = cx.state_cube(&[1]);
        assert_eq!(s1, expected);
        let _ = x;
    }

    #[test]
    fn preimage_of_counter() {
        let (mut cx, _, trans) = counter();
        let s1 = cx.state_cube(&[1]);
        let pre = cx.preimage(s1, trans);
        let expected = cx.state_cube(&[0]);
        assert_eq!(pre, expected);
    }

    #[test]
    fn preimage_is_adjoint_of_image() {
        // For any S, T: image(S) ∩ X ≠ ∅ ⇔ S ∩ preimage(X) ≠ ∅; spot-check.
        let (mut cx, _, trans) = counter();
        let s = cx.state_cube(&[2]);
        let x = cx.state_cube(&[3]);
        let img = cx.image(s, trans);
        let pre = cx.preimage(x, trans);
        let lhs = !cx.mgr().disjoint(img, x);
        let rhs = !cx.mgr().disjoint(s, pre);
        assert_eq!(lhs, rhs);
        assert!(lhs); // 2 → 3 is a counter step
    }

    #[test]
    fn forward_reachability_saturates() {
        let (mut cx, _, trans) = counter();
        let s0 = cx.state_cube(&[0]);
        let reach = cx.forward_reachable(s0, trans);
        assert_eq!(cx.count_states(reach), 4.0); // full cycle
    }

    #[test]
    fn backward_reachability_on_a_line() {
        // x' = x+1 while x < 3, no wrap: only states ≤ 2 can reach 3.
        let mut cx = SymbolicContext::new();
        let x = cx.add_var("x", 4);
        let mut trans = FALSE;
        for v in 0..3 {
            let g = cx.assign_eq(x, v);
            let u = cx.assign_const(x, v + 1);
            let t = cx.mgr().and(g, u);
            trans = cx.mgr().or(trans, t);
        }
        let s3 = cx.state_cube(&[3]);
        let back = cx.backward_reachable(s3, trans);
        assert_eq!(cx.count_states(back), 4.0); // {0,1,2,3}
        let s0 = cx.state_cube(&[0]);
        assert!(cx.mgr().leq(s0, back));
    }

    #[test]
    fn partitioned_image_equals_monolithic() {
        // Two independent toggles as two partitions.
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 2);
        let b = cx.add_var("b", 2);
        let mk_toggle = |cx: &mut SymbolicContext, v, other| {
            let mut t = FALSE;
            for val in 0..2u64 {
                let g = cx.assign_eq(v, val);
                let u = cx.assign_const(v, 1 - val);
                let frame = cx.unchanged(other);
                let step = cx.and3(g, u, frame);
                t = cx.mgr().or(t, step);
            }
            t
        };
        let ta = mk_toggle(&mut cx, a, b);
        let tb = mk_toggle(&mut cx, b, a);
        let mono = cx.mgr().or(ta, tb);
        let s = cx.state_cube(&[0, 0]);
        let img_mono = cx.image(s, mono);
        let img_part = cx.image_partitioned(s, &[ta, tb]);
        assert_eq!(img_mono, img_part);
        assert_eq!(cx.count_states(img_part), 2.0); // (1,0) and (0,1)
        let r_mono = cx.forward_reachable(s, mono);
        let r_part = cx.forward_reachable_partitioned(s, &[ta, tb]);
        assert_eq!(r_mono, r_part);
        assert_eq!(cx.count_states(r_part), 4.0);
    }

    #[test]
    fn deadlocks_found() {
        // x' = x+1 while x<3: state 3 is a deadlock.
        let mut cx = SymbolicContext::new();
        let x = cx.add_var("x", 4);
        let mut trans = FALSE;
        for v in 0..3 {
            let g = cx.assign_eq(x, v);
            let u = cx.assign_const(x, v + 1);
            let t = cx.mgr().and(g, u);
            trans = cx.mgr().or(trans, t);
        }
        let universe = cx.state_universe();
        let dl = cx.deadlocks(universe, trans);
        let expected = cx.state_cube(&[3]);
        assert_eq!(dl, expected);
    }

    #[test]
    fn trans_from_and_trans_to_slice_relation() {
        let (mut cx, _, trans) = counter();
        let s1 = cx.state_cube(&[1]);
        let from1 = cx.trans_from(trans, s1);
        assert_eq!(cx.count_transitions(from1), 1.0); // only 1→2
        let to1 = cx.trans_to(trans, s1);
        assert_eq!(cx.count_transitions(to1), 1.0); // only 0→1
        let pairs = cx.enumerate_transitions(to1, 4);
        assert_eq!(pairs, vec![(vec![0], vec![1])]);
    }

    #[test]
    fn empty_relation_has_empty_images() {
        let (mut cx, _, _) = counter();
        let s = cx.state_cube(&[0]);
        assert_eq!(cx.image(s, FALSE), FALSE);
        assert_eq!(cx.preimage(s, FALSE), FALSE);
        assert_eq!(cx.forward_reachable(s, FALSE), s);
        let _ = TRUE;
    }
}

//! The symbolic context: variable registry, bit allocation, variable sets
//! and rename maps.

use ftrepair_bdd::{Manager, VarMapId, VarSetId};

/// Identifier of a finite-domain program variable within a
/// [`SymbolicContext`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct VarId(pub u32);

/// Metadata for one finite-domain variable.
#[derive(Clone, Debug)]
pub struct VarInfo {
    /// Human-readable name (used in dumps, diagnostics, the input language).
    pub name: String,
    /// Domain is `0..size`.
    pub size: u64,
    /// Number of boolean bits (`⌈log₂ size⌉`, at least 1).
    pub bits: u32,
    /// Bit offset of this variable's first bit in the global bit order.
    pub offset: u32,
}

/// A BDD manager plus the finite-domain variable registry and the derived
/// bit layout.
///
/// Bit layout: program variable bits are concatenated in declaration order;
/// bit `k` (global index `g = offset + k`) owns BDD level `2g` for its
/// **current** copy and level `2g + 1` for its **next** copy.
pub struct SymbolicContext {
    m: Manager,
    vars: Vec<VarInfo>,
    total_bits: u32,
}

impl SymbolicContext {
    /// An empty context; add variables with [`SymbolicContext::add_var`].
    pub fn new() -> Self {
        SymbolicContext { m: Manager::new(0), vars: Vec::new(), total_bits: 0 }
    }

    /// Declare a finite-domain variable with domain `0..size`.
    /// Panics if `size < 2` (a constant is not a variable) or the name is
    /// already taken.
    pub fn add_var(&mut self, name: impl Into<String>, size: u64) -> VarId {
        let name = name.into();
        assert!(size >= 2, "domain of {name} must have at least 2 values");
        assert!(self.vars.iter().all(|v| v.name != name), "duplicate variable name {name}");
        let bits = 64 - (size - 1).leading_zeros();
        let info = VarInfo { name, size, bits, offset: self.total_bits };
        self.vars.push(info);
        self.total_bits += bits;
        self.m.add_vars(2 * bits);
        VarId((self.vars.len() - 1) as u32)
    }

    /// Direct access to the underlying BDD manager.
    #[inline]
    pub fn mgr(&mut self) -> &mut Manager {
        &mut self.m
    }

    /// Immutable access to the underlying BDD manager.
    #[inline]
    pub fn mgr_ref(&self) -> &Manager {
        &self.m
    }

    /// Variable metadata.
    #[inline]
    pub fn info(&self, v: VarId) -> &VarInfo {
        &self.vars[v.0 as usize]
    }

    /// All declared variables, in declaration order.
    pub fn var_ids(&self) -> Vec<VarId> {
        (0..self.vars.len() as u32).map(VarId).collect()
    }

    /// Number of declared program variables.
    pub fn num_program_vars(&self) -> usize {
        self.vars.len()
    }

    /// Total boolean bits per state copy.
    pub fn total_bits(&self) -> u32 {
        self.total_bits
    }

    /// Look up a variable by name.
    pub fn find_var(&self, name: &str) -> Option<VarId> {
        self.vars.iter().position(|v| v.name == name).map(|i| VarId(i as u32))
    }

    /// BDD level of the current-state copy of bit `k` of `v`.
    #[inline]
    pub fn cur_level(&self, v: VarId, k: u32) -> u32 {
        let info = &self.vars[v.0 as usize];
        debug_assert!(k < info.bits);
        2 * (info.offset + k)
    }

    /// BDD level of the next-state copy of bit `k` of `v`.
    #[inline]
    pub fn next_level(&self, v: VarId, k: u32) -> u32 {
        self.cur_level(v, k) + 1
    }

    /// All current-bit levels of the given program variables.
    pub fn cur_levels(&self, vars: &[VarId]) -> Vec<u32> {
        vars.iter()
            .flat_map(|&v| {
                let bits = self.vars[v.0 as usize].bits;
                (0..bits).map(move |k| (v, k))
            })
            .map(|(v, k)| self.cur_level(v, k))
            .collect()
    }

    /// All next-bit levels of the given program variables.
    pub fn next_levels(&self, vars: &[VarId]) -> Vec<u32> {
        self.cur_levels(vars).into_iter().map(|l| l + 1).collect()
    }

    /// Interned varset of all current bits (for image computation).
    pub fn all_cur_varset(&mut self) -> VarSetId {
        let levels: Vec<u32> = (0..self.total_bits).map(|g| 2 * g).collect();
        self.m.varset(&levels)
    }

    /// Interned varset of all next bits (for preimage computation).
    pub fn all_next_varset(&mut self) -> VarSetId {
        let levels: Vec<u32> = (0..self.total_bits).map(|g| 2 * g + 1).collect();
        self.m.varset(&levels)
    }

    /// Interned varset of the current bits of specific variables.
    pub fn cur_varset(&mut self, vars: &[VarId]) -> VarSetId {
        let levels = self.cur_levels(vars);
        self.m.varset(&levels)
    }

    /// Interned varset of the next bits of specific variables.
    pub fn next_varset(&mut self, vars: &[VarId]) -> VarSetId {
        let levels = self.next_levels(vars);
        self.m.varset(&levels)
    }

    /// Interned varset of both copies of the bits of specific variables —
    /// what the read-restriction *group* computation quantifies away.
    pub fn both_varset(&mut self, vars: &[VarId]) -> VarSetId {
        let mut levels = self.cur_levels(vars);
        levels.extend(self.next_levels(vars));
        self.m.varset(&levels)
    }

    /// Rename map `next → current` (order-preserving by construction).
    pub fn map_next_to_cur(&mut self) -> VarMapId {
        let pairs: Vec<(u32, u32)> = (0..self.total_bits).map(|g| (2 * g + 1, 2 * g)).collect();
        self.m.varmap(&pairs)
    }

    /// Rename map `current → next`.
    pub fn map_cur_to_next(&mut self) -> VarMapId {
        let pairs: Vec<(u32, u32)> = (0..self.total_bits).map(|g| (2 * g, 2 * g + 1)).collect();
        self.m.varmap(&pairs)
    }

    /// Trim the manager's memo caches when they exceed `max_entries`
    /// (see [`Manager::maybe_trim_caches`]).
    pub fn maybe_trim_caches(&mut self, max_entries: usize) -> bool {
        self.m.maybe_trim_caches(max_entries)
    }

    /// Enable dynamic variable reordering on the underlying manager.
    ///
    /// Each global bit's current/next pair is registered as a sifting group
    /// so the interleaved layout (cur bit at `2g`, next bit at `2g + 1`)
    /// survives every reorder — the rename maps produced by
    /// [`SymbolicContext::map_next_to_cur`] stay order-preserving. With
    /// `auto_threshold = Some(n)` the manager also arms the automatic
    /// trigger: the next [`SymbolicContext::maybe_reorder`] call after the
    /// live-node count crosses `n` runs a sift.
    pub fn configure_reorder(&mut self, auto_threshold: Option<usize>) {
        let groups: Vec<Vec<u32>> = (0..self.total_bits).map(|g| vec![2 * g, 2 * g + 1]).collect();
        self.m.set_reorder_groups(&groups);
        self.m.set_auto_reorder(auto_threshold);
    }

    /// Run the auto-reorder check: sift now if the live-node count has
    /// crossed the configured threshold. `roots` are kept alive in addition
    /// to the manager's protected set. Returns the outcome if a sift ran.
    pub fn maybe_reorder(
        &mut self,
        roots: &[ftrepair_bdd::NodeId],
    ) -> Option<ftrepair_bdd::ReorderOutcome> {
        self.m.maybe_reorder(roots)
    }

    /// Arm (0 disarms) the manager's live-node budget — the memory half of
    /// the governance checkpoint [`SymbolicContext::maybe_reorder`] runs.
    pub fn set_node_budget(&mut self, budget: usize) {
        self.m.set_node_budget(budget);
    }

    /// Has a governance checkpoint latched budget exhaustion? Repair loops
    /// poll this at their cancellation boundaries and abort cleanly.
    pub fn budget_exhausted(&self) -> bool {
        self.m.budget_exhausted()
    }

    /// Unconditionally sift the manager now, keeping `roots` (plus the
    /// protected set) alive.
    pub fn reorder_sift(&mut self, roots: &[ftrepair_bdd::NodeId]) -> ftrepair_bdd::ReorderOutcome {
        self.m.reorder_sift(roots)
    }

    /// The manager's current variable order (`order[level] = var index`).
    pub fn current_order(&self) -> Vec<u32> {
        self.m.current_order()
    }

    /// A fresh context with the same variable layout but an empty manager.
    ///
    /// Used by the parallel Step 2 of lazy repair: each worker thread forks
    /// the layout, imports the BDDs it needs (via
    /// [`ftrepair_bdd::SerializedBdd`]) and works in isolation.
    pub fn fork_layout(&self) -> SymbolicContext {
        let mut cx = SymbolicContext::new();
        for v in &self.vars {
            cx.add_var(v.name.clone(), v.size);
        }
        cx
    }

    /// Convenience: three-way conjunction.
    pub fn and3(
        &mut self,
        a: ftrepair_bdd::NodeId,
        b: ftrepair_bdd::NodeId,
        c: ftrepair_bdd::NodeId,
    ) -> ftrepair_bdd::NodeId {
        let ab = self.m.and(a, b);
        self.m.and(ab, c)
    }
}

impl Default for SymbolicContext {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for SymbolicContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SymbolicContext")
            .field("vars", &self.vars.iter().map(|v| (&v.name, v.size)).collect::<Vec<_>>())
            .field("total_bits", &self.total_bits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_allocation_is_interleaved() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 2); // 1 bit
        let b = cx.add_var("b", 4); // 2 bits
        let c = cx.add_var("c", 3); // 2 bits (ceil log2 3)
        assert_eq!(cx.info(a).bits, 1);
        assert_eq!(cx.info(b).bits, 2);
        assert_eq!(cx.info(c).bits, 2);
        assert_eq!(cx.total_bits(), 5);
        assert_eq!(cx.cur_level(a, 0), 0);
        assert_eq!(cx.next_level(a, 0), 1);
        assert_eq!(cx.cur_level(b, 0), 2);
        assert_eq!(cx.cur_level(b, 1), 4);
        assert_eq!(cx.next_level(b, 1), 5);
        assert_eq!(cx.cur_level(c, 0), 6);
        assert_eq!(cx.mgr_ref().num_vars(), 10);
    }

    #[test]
    fn bits_for_exact_powers_of_two() {
        let mut cx = SymbolicContext::new();
        let v2 = cx.add_var("v2", 2);
        let v8 = cx.add_var("v8", 8);
        let v9 = cx.add_var("v9", 9);
        assert_eq!(cx.info(v2).bits, 1);
        assert_eq!(cx.info(v8).bits, 3);
        assert_eq!(cx.info(v9).bits, 4);
    }

    #[test]
    #[should_panic(expected = "at least 2 values")]
    fn unit_domain_rejected() {
        let mut cx = SymbolicContext::new();
        cx.add_var("x", 1);
    }

    #[test]
    #[should_panic(expected = "duplicate variable name")]
    fn duplicate_name_rejected() {
        let mut cx = SymbolicContext::new();
        cx.add_var("x", 2);
        cx.add_var("x", 3);
    }

    #[test]
    fn find_var_by_name() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("alpha", 2);
        let b = cx.add_var("beta", 2);
        assert_eq!(cx.find_var("alpha"), Some(a));
        assert_eq!(cx.find_var("beta"), Some(b));
        assert_eq!(cx.find_var("gamma"), None);
    }

    #[test]
    fn varsets_cover_expected_levels() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 4); // bits at global 0,1 → levels 0,2 (cur), 1,3 (next)
        let b = cx.add_var("b", 2); // bit at global 2 → level 4 (cur), 5 (next)
        let cur = cx.all_cur_varset();
        assert_eq!(cx.mgr_ref().varset_levels(cur), &[0, 2, 4]);
        let next = cx.all_next_varset();
        assert_eq!(cx.mgr_ref().varset_levels(next), &[1, 3, 5]);
        let both_b = cx.both_varset(&[b]);
        assert_eq!(cx.mgr_ref().varset_levels(both_b), &[4, 5]);
        let cur_a = cx.cur_varset(&[a]);
        assert_eq!(cx.mgr_ref().varset_levels(cur_a), &[0, 2]);
    }

    #[test]
    fn var_ids_enumerates_in_order() {
        let mut cx = SymbolicContext::new();
        let a = cx.add_var("a", 2);
        let b = cx.add_var("b", 2);
        assert_eq!(cx.var_ids(), vec![a, b]);
        assert_eq!(cx.num_program_vars(), 2);
    }

    #[test]
    fn reorder_keeps_rename_maps_usable() {
        // Image computation must keep working after a sift: the cur/next
        // pair groups guarantee the next→cur map stays order-preserving.
        let mut cx = SymbolicContext::new();
        for i in 0..4 {
            cx.add_var(format!("v{i}"), 4);
        }
        cx.configure_reorder(None);
        // trans: every bit flips (v' = ¬v bitwise) — support on all bits.
        let mut trans = ftrepair_bdd::TRUE;
        for g in 0..cx.total_bits() {
            let cur = cx.mgr().var(2 * g);
            let next = cx.mgr().var(2 * g + 1);
            let bit = cx.mgr().xor(cur, next);
            trans = cx.mgr().and(trans, bit);
        }
        let s = {
            let lits: Vec<(u32, bool)> = (0..cx.total_bits()).map(|g| (2 * g, false)).collect();
            cx.mgr().cube(&lits)
        };
        let cur_vs = cx.all_cur_varset();
        let map = cx.map_next_to_cur();
        let img1 = {
            let next_img = cx.mgr().and_exists(s, trans, cur_vs);
            cx.mgr().rename(next_img, map)
        };
        let outcome = cx.reorder_sift(&[trans, s, img1]);
        assert!(outcome.nodes_after <= outcome.nodes_before);
        cx.mgr_ref().check_integrity();
        // Same image computed post-reorder must be the same node.
        let img2 = {
            let next_img = cx.mgr().and_exists(s, trans, cur_vs);
            cx.mgr().rename(next_img, map)
        };
        assert_eq!(img1, img2);
        // All bits flipped from 0: image is the all-ones state.
        let ones: Vec<(u32, bool)> = (0..cx.total_bits()).map(|g| (2 * g, true)).collect();
        let expected = cx.mgr().cube(&ones);
        assert_eq!(img2, expected);
    }
}

//! # ftrepair-symbolic — finite-domain symbolic state spaces
//!
//! The repair algorithms reason about distributed programs whose variables
//! have small finite domains (a decision in `{0, 1, ⊥}`, a byzantine flag in
//! `{false, true}`, a chain cell in `{0..d}`). This crate maps such programs
//! onto the boolean world of [`ftrepair_bdd`]:
//!
//! * each program variable of domain size `d` gets `⌈log₂ d⌉` boolean bits,
//! * every bit exists in a **current** and a **next** copy, interleaved in
//!   the BDD variable order (`x₀ x₀' x₁ x₁' …`) so that the `next → current`
//!   rename is order-preserving and transition relations stay small,
//! * a *state predicate* is a BDD over current bits; a *transition
//!   predicate* is a BDD over current and next bits,
//! * non-power-of-two domains are handled by conjoining **domain
//!   constraints** (`v < d`) into every universe.
//!
//! On top of the encoding it provides the operations every fixpoint in the
//! repair algorithms is made of: `image`, `preimage`, forward/backward
//! reachability (monolithic or partitioned over per-process relations), and
//! state counting/enumeration used by tests and the experiment harness.
//!
//! ```
//! use ftrepair_symbolic::SymbolicContext;
//!
//! // A 2-cell system, each cell in {0,1,2}.
//! let mut cx = SymbolicContext::new();
//! let a = cx.add_var("a", 3);
//! let b = cx.add_var("b", 3);
//!
//! // Transition: if a == b then a := a+1 mod 3 (b unchanged).
//! let mut trans = ftrepair_bdd::FALSE;
//! for v in 0..3 {
//!     let guard = cx.both_eq(a, b, v);
//!     let update = cx.assign_const(a, (v + 1) % 3);
//!     let frame = cx.unchanged(b);
//!     let t = cx.and3(guard, update, frame);
//!     trans = cx.mgr().or(trans, t);
//! }
//!
//! let init = cx.state_cube(&[0, 0]);
//! let reach = cx.forward_reachable(init, trans);
//! assert_eq!(cx.count_states(reach), 2.0); // (0,0) → (1,0), then stuck
//! ```

mod context;
mod count;
mod encode;
mod relation;

pub use context::{SymbolicContext, VarId, VarInfo};
pub use ftrepair_bdd::{Manager, NodeId, FALSE, TRUE};

//! Eviction under concurrency: seeded multi-thread put/get/shed traffic
//! over a tiny byte budget, asserting the in-memory index, the on-disk
//! entries, and the `store.bytes` gauge never disagree.

use ftrepair_bdd::SerializedBdd;
use ftrepair_store::{DiskStore, NewEntry, SpecFingerprint};
use ftrepair_telemetry::{Json, Telemetry};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ftrepair-evstress-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_entry(key_tag: &str) -> NewEntry {
    let bdd = |seed: u32| SerializedBdd {
        num_vars: 4,
        order: vec![0, 1, 2, 3],
        nodes: vec![(3, 0, 1), (seed % 3, 2, 1)],
        root: 3,
    };
    let mut response = Json::obj();
    response.set("ok", Json::Bool(true));
    NewEntry {
        key: format!("{key_tag:0>64}"),
        case: "sample".into(),
        mode: "lazy".into(),
        warm_start: false,
        fingerprint: SpecFingerprint {
            vars: "0011223344556677".into(),
            faults: "8899aabbccddeeff".into(),
            safety: "0123456789abcdef".into(),
            actions: vec![format!("{key_tag:0>16}")],
        },
        response,
        artifacts: vec![("trans".into(), bdd(0)), ("invariant".into(), bdd(1))],
    }
}

fn walk_bytes(path: &Path) -> u64 {
    if path.is_file() {
        return fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    }
    let Ok(items) = fs::read_dir(path) else { return 0 };
    items.flatten().map(|item| walk_bytes(&item.path())).sum()
}

/// One SplitMix64 step.
fn next_u64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[test]
fn concurrent_put_get_evict_keeps_books_balanced() {
    let root = temp_root("books");
    let tele = Telemetry::new();
    // Learn one entry's size, then budget for about three — every thread's
    // puts keep the store at the eviction edge for the whole run.
    let one = {
        let probe = DiskStore::open(&root, 0, &tele).unwrap();
        probe.put(&sample_entry("probe")).unwrap();
        let one = probe.bytes();
        drop(probe);
        let _ = fs::remove_dir_all(&root);
        one
    };
    let budget = one * 3 + one / 2;
    let store = Arc::new(DiskStore::open(&root, budget, &tele).unwrap());

    const THREADS: u64 = 4;
    const OPS: u64 = 60;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                let mut rng = 0x5EED ^ t.wrapping_mul(0x9E37_79B9);
                for i in 0..OPS {
                    match next_u64(&mut rng) % 4 {
                        // Mostly puts: fresh keys keep eviction pressure up.
                        0 | 1 => {
                            let _ = store.put(&sample_entry(&format!("t{t}i{i}")));
                        }
                        // Contended puts: all threads fight over few keys,
                        // exercising the stage/re-check/replace races.
                        2 => {
                            let _ = store
                                .put(&sample_entry(&format!("shared{}", next_u64(&mut rng) % 3)));
                        }
                        // Reads, sometimes of keys another thread evicted.
                        _ => {
                            let probe = format!("t{}i{}", next_u64(&mut rng) % THREADS, i);
                            let _ = store.get(&format!("{probe:0>64}"));
                        }
                    }
                }
            });
        }
    });

    // Quiesced: the three views of the store must agree exactly.
    let on_disk: Vec<String> = fs::read_dir(root.join("entries"))
        .unwrap()
        .flatten()
        .map(|d| d.file_name().to_string_lossy().into_owned())
        .collect();
    assert_eq!(store.len(), on_disk.len(), "index vs on-disk entry count");
    for key in &on_disk {
        assert!(store.peek(key).is_some(), "on-disk entry {key} missing from the index");
    }
    assert_eq!(store.bytes(), walk_bytes(&root.join("entries")), "accounted vs real bytes");
    assert!(store.bytes() <= budget, "budget holds after every race");
    let snap = tele.snapshot();
    assert_eq!(snap.gauges["store.bytes"], store.bytes(), "gauge vs accounted bytes");
    assert_eq!(snap.gauges["store.entries"], store.len() as u64, "gauge vs index size");
    assert!(snap.counter("store.evictions") > 0, "the budget actually bit");
    let (ok, bad) = store.verify();
    assert_eq!((ok, bad.len()), (store.len(), 0), "every surviving entry verifies");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn concurrent_shed_and_put_stay_consistent() {
    let root = temp_root("shed");
    let tele = Telemetry::new();
    let store = Arc::new(DiskStore::open(&root, 0, &tele).unwrap());
    std::thread::scope(|scope| {
        let putter = Arc::clone(&store);
        scope.spawn(move || {
            for i in 0..40 {
                let _ = putter.put(&sample_entry(&format!("s{i}")));
            }
        });
        let shedder = Arc::clone(&store);
        scope.spawn(move || {
            for _ in 0..40 {
                let _ = shedder.shed_coldest(1);
                std::thread::yield_now();
            }
        });
    });
    assert_eq!(store.bytes(), walk_bytes(&root.join("entries")));
    assert_eq!(tele.snapshot().gauges["store.bytes"], store.bytes());
    let (ok, bad) = store.verify();
    assert_eq!((ok, bad.len()), (store.len(), 0));
    let _ = fs::remove_dir_all(&root);
}

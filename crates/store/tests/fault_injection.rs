//! Fault-injection suite for the disk store: every crash-safety claim in
//! `disk.rs` driven through [`ErrInjFs`] instead of taken on faith.
//!
//! The centerpiece is the crash-point harness: a golden run counts how many
//! filesystem mutations an operation performs, then the operation is re-run
//! once per mutation index with a simulated crash at that point (clean and
//! torn variants), and the store root is reopened on the real filesystem to
//! check the recovery invariants — open succeeds, `tmp/` is swept, every
//! indexed entry verifies, pre-crash entries survive, and the byte
//! accounting matches the disk.

use ftrepair_bdd::SerializedBdd;
use ftrepair_store::{DiskStore, ErrInjFs, Fault, NewEntry, SpecFingerprint, VfsOp};
use ftrepair_telemetry::{Json, Telemetry};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir()
        .join(format!("ftrepair-faultinj-{tag}-{}-{nonce}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn sample_entry(key_tag: &str) -> NewEntry {
    let bdd = |seed: u32| SerializedBdd {
        num_vars: 4,
        order: vec![0, 1, 2, 3],
        nodes: vec![(3, 0, 1), (seed % 3, 2, 1)],
        root: 3,
    };
    let mut response = Json::obj();
    response.set("ok", Json::Bool(true));
    NewEntry {
        key: format!("{key_tag:0>64}"),
        case: "sample".into(),
        mode: "lazy".into(),
        warm_start: false,
        fingerprint: SpecFingerprint {
            vars: "0011223344556677".into(),
            faults: "8899aabbccddeeff".into(),
            safety: "0123456789abcdef".into(),
            actions: vec![format!("{key_tag:0>16}")],
        },
        response,
        artifacts: vec![("trans".into(), bdd(0)), ("invariant".into(), bdd(1))],
    }
}

/// Real disk usage of a tree, independent of the store's accounting.
fn walk_bytes(path: &Path) -> u64 {
    if path.is_file() {
        return fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    }
    let Ok(items) = fs::read_dir(path) else { return 0 };
    items.flatten().map(|item| walk_bytes(&item.path())).sum()
}

/// Reopen `root` on the real filesystem ("after the reboot") and assert
/// the recovery invariants. Returns the reopened store for further checks.
fn assert_recovered(root: &Path, budget: u64, must_have: &[&str], context: &str) -> DiskStore {
    let tele = Telemetry::new();
    let store =
        DiskStore::open(root, budget, &tele).unwrap_or_else(|e| panic!("{context}: reopen: {e}"));
    assert_eq!(
        fs::read_dir(root.join("tmp")).unwrap().count(),
        0,
        "{context}: stray tmp files survive the reopen sweep"
    );
    let (ok, bad) = store.verify();
    assert!(bad.is_empty(), "{context}: corrupt entries after recovery: {bad:?}");
    assert_eq!(ok, store.len(), "{context}: every indexed entry verifies");
    for key in must_have {
        let key = format!("{key:0>64}");
        assert!(store.get(&key).is_some(), "{context}: pre-crash entry {key} lost");
    }
    assert_eq!(
        store.bytes(),
        walk_bytes(&root.join("entries")),
        "{context}: byte accounting disagrees with the disk"
    );
    store
}

/// How many filesystem mutations `op` performs against a store seeded by
/// `setup`, measured on a throwaway root.
fn golden_mutations(
    tag: &str,
    budget: u64,
    setup: &dyn Fn(&DiskStore),
    op: &dyn Fn(&DiskStore),
) -> u64 {
    let root = temp_root(&format!("golden-{tag}"));
    let fi = Arc::new(ErrInjFs::new(0xFA17));
    let store = DiskStore::open_with_vfs(&root, budget, &Telemetry::off(), fi.clone()).unwrap();
    setup(&store);
    fi.clear();
    op(&store);
    let n = fi.mutations();
    let _ = fs::remove_dir_all(&root);
    assert!(n > 0, "the golden {tag} run must mutate the filesystem");
    n
}

/// The harness: crash at every mutation index of `op` (clean and torn),
/// then reopen and check invariants. `must_have` keys are written by
/// `setup` and must survive every crash point.
fn crash_every_mutation(
    tag: &str,
    budget: u64,
    must_have: &[&str],
    setup: &dyn Fn(&DiskStore),
    op: &dyn Fn(&DiskStore),
) {
    let n = golden_mutations(tag, budget, setup, op);
    for torn in [false, true] {
        for k in 0..n {
            let context = format!("{tag}: crash at mutation {k}/{n} (torn={torn})");
            let root = temp_root(&format!("crash-{tag}-{k}-{torn}"));
            let fi = Arc::new(ErrInjFs::new(0xFA17));
            let store =
                DiskStore::open_with_vfs(&root, budget, &Telemetry::off(), fi.clone()).unwrap();
            setup(&store);
            fi.clear();
            fi.crash_after_mutations(k, torn);
            // The op may fail or (when the crash lands on a best-effort
            // step) succeed; either way the store must recover on reopen.
            op(&store);
            assert!(fi.crashed(), "{context}: the armed crash never fired");
            drop(store);
            assert_recovered(&root, budget, must_have, &context);
            let _ = fs::remove_dir_all(&root);
        }
    }
}

#[test]
fn crash_points_of_put_recover_on_reopen() {
    crash_every_mutation(
        "put",
        0,
        &["base"],
        &|store| {
            store.put(&sample_entry("base")).unwrap();
        },
        &|store| {
            let _ = store.put(&sample_entry("victim"));
        },
    );
}

#[test]
fn crash_points_of_eviction_recover_on_reopen() {
    // Budget for about two entries, so the third put evicts the coldest.
    // The evicted key may legitimately be gone afterwards; the invariant
    // is consistency, not retention.
    let one = {
        let root = temp_root("evict-probe");
        let store = DiskStore::open(&root, 0, &Telemetry::off()).unwrap();
        store.put(&sample_entry("p")).unwrap();
        let one = store.bytes();
        let _ = fs::remove_dir_all(&root);
        one
    };
    crash_every_mutation(
        "evict",
        one * 2 + one / 2,
        &[],
        &|store| {
            store.put(&sample_entry("a")).unwrap();
            store.put(&sample_entry("b")).unwrap();
        },
        &|store| {
            let _ = store.put(&sample_entry("c"));
        },
    );
}

#[test]
fn crash_points_of_gc_recover_on_reopen() {
    crash_every_mutation(
        "gc",
        0,
        &["keep"],
        &|store| {
            store.put(&sample_entry("keep")).unwrap();
            store.put(&sample_entry("doomed")).unwrap();
            // Corrupt `doomed` so the next read quarantines it, giving gc
            // quarantine content to delete; add a stale tmp file too.
            let doomed = format!("{:0>64}", "doomed");
            let art = store.root().join("entries").join(&doomed).join("artifacts.bin");
            fs::write(&art, b"FTARjunk").unwrap();
            assert!(store.get(&doomed).is_none());
            fs::write(store.root().join("tmp").join("stale"), b"x").unwrap();
        },
        &|store| {
            let _ = store.gc();
        },
    );
}

#[test]
fn eio_on_artifact_write_fails_put_cleanly() {
    let root = temp_root("eio-write");
    let tele = Telemetry::new();
    let fi = Arc::new(ErrInjFs::new(1));
    let store = DiskStore::open_with_vfs(&root, 0, &tele, fi.clone()).unwrap();
    fi.fail_on_path(VfsOp::Write, "artifacts", Fault::Eio);
    let err = store.put(&sample_entry("a")).unwrap_err();
    assert_eq!(err.raw_os_error(), Some(5));
    assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0, "stage cleaned up");
    assert_eq!(store.len(), 0);
    assert_eq!(store.io_errors(), 1);
    assert_eq!(tele.snapshot().counter("store.io_errors"), 1);
    // The fault was one-shot; the retry lands.
    assert!(store.put(&sample_entry("a")).unwrap());
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn enospc_surfaces_raw_os_error_28() {
    let root = temp_root("enospc");
    let fi = Arc::new(ErrInjFs::new(2));
    let store = DiskStore::open_with_vfs(&root, 0, &Telemetry::off(), fi.clone()).unwrap();
    fi.fail_next(VfsOp::Write, Fault::Enospc);
    let err = store.put(&sample_entry("a")).unwrap_err();
    assert_eq!(err.raw_os_error(), Some(28), "the server keys emergency eviction off this");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn short_write_on_manifest_is_discarded() {
    let root = temp_root("short-manifest");
    let fi = Arc::new(ErrInjFs::new(3));
    let store = DiskStore::open_with_vfs(&root, 0, &Telemetry::off(), fi.clone()).unwrap();
    // Second write in a put is the manifest.
    fi.fail_nth(VfsOp::Write, 1, Fault::ShortWrite);
    assert!(store.put(&sample_entry("a")).is_err());
    assert_eq!(store.len(), 0);
    drop(store);
    assert_recovered(&root, 0, &[], "short manifest write");
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn torn_rename_is_durable_and_recovered_at_reopen() {
    let root = temp_root("torn-rename");
    let fi = Arc::new(ErrInjFs::new(4));
    let store = DiskStore::open_with_vfs(&root, 0, &Telemetry::off(), fi.clone()).unwrap();
    fi.fail_next(VfsOp::Rename, Fault::TornRename);
    let entry = sample_entry("a");
    assert!(store.put(&entry).is_err(), "the caller sees the failure");
    assert!(store.get(&entry.key).is_none(), "unreported entries are not served");
    drop(store);
    // But the rename landed: the fully-fsynced entry is rediscovered.
    let recovered = assert_recovered(&root, 0, &["a"], "torn rename");
    assert_eq!(recovered.len(), 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn transient_read_eio_is_a_miss_not_data_loss() {
    let root = temp_root("read-eio");
    let tele = Telemetry::new();
    let fi = Arc::new(ErrInjFs::new(5));
    let store = DiskStore::open_with_vfs(&root, 0, &tele, fi.clone()).unwrap();
    let entry = sample_entry("a");
    store.put(&entry).unwrap();
    fi.fail_next(VfsOp::Read, Fault::Eio);
    assert!(store.get(&entry.key).is_none(), "EIO reads as a miss");
    assert_eq!(store.len(), 1, "but the entry is NOT quarantined");
    assert!(store.get(&entry.key).is_some(), "and the next read hits");
    let snap = tele.snapshot();
    assert_eq!(snap.counter("store.corrupt"), 0, "flaky volume is not corruption");
    assert_eq!(snap.counter("store.io_errors"), 1);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn probe_reports_volume_failures() {
    let root = temp_root("probe-fail");
    let fi = Arc::new(ErrInjFs::new(6));
    let store = DiskStore::open_with_vfs(&root, 0, &Telemetry::off(), fi.clone()).unwrap();
    fi.fail_next(VfsOp::Write, Fault::Eio);
    assert!(store.probe().is_err());
    assert_eq!(store.io_errors(), 1);
    assert!(store.probe().is_ok(), "and recovery is visible");
    assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0);
    let _ = fs::remove_dir_all(&root);
}

#[test]
fn seeded_eio_storm_never_leaves_an_inconsistent_store() {
    let root = temp_root("storm");
    let fi = Arc::new(ErrInjFs::new(0x5EED));
    let store = DiskStore::open_with_vfs(&root, 0, &Telemetry::off(), fi.clone()).unwrap();
    fi.fail_randomly(200); // 20% of every op fails with EIO
    let mut landed: Vec<String> = Vec::new();
    for i in 0..40 {
        let entry = sample_entry(&format!("k{i}"));
        if let Ok(true) = store.put(&entry) {
            landed.push(format!("k{i}"));
        }
        let _ = store.get(&entry.key);
    }
    assert!(!landed.is_empty(), "some puts must survive a 20% fault rate");
    fi.clear();
    drop(store);
    // After the storm: everything that reported success is durable and the
    // books balance (the reopen sweeps any stage dirs orphaned by EIO on
    // cleanup paths).
    let keys: Vec<&str> = landed.iter().map(String::as_str).collect();
    assert_recovered(&root, 0, &keys, "EIO storm");
    let _ = fs::remove_dir_all(&root);
}

//! Crash-point sweeps for the job journal and the checkpoint store — the
//! same discipline `fault_injection.rs` applies to the disk store: a
//! golden run counts the filesystem mutations an operation performs, then
//! the operation is re-run once per mutation index with a simulated crash
//! at that point (clean and torn variants), and the files are reopened on
//! the real filesystem to check the recovery invariants.
//!
//! For the journal the invariant is *settled stays settled, pending stays
//! recoverable*: a record whose `done` line landed before the crash must
//! never resurface as pending, an in-flight record is either fully pending
//! or (torn tail) dropped, and the scan never fails outright. For the
//! checkpoint store it is *previous or new, never torn*: a slot read after
//! any crash point decodes to the old snapshot or the new one.

use ftrepair_bdd::SerializedBdd;
use ftrepair_store::{
    CheckpointStore, DiskStore, ErrInjFs, Fault, JobJournal, JournalRecord, NewEntry,
    SpecFingerprint, Vfs, VfsOp,
};
use ftrepair_telemetry::{Json, Telemetry};
use std::fs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

static NONCE: AtomicU64 = AtomicU64::new(0);

fn temp_root(tag: &str) -> PathBuf {
    let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("ftrepair-jckpt-{tag}-{}-{nonce}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn record(key_tag: &str) -> JournalRecord {
    JournalRecord {
        key: format!("{key_tag:0>64}"),
        case: key_tag.to_string(),
        mode: "lazy".to_string(),
        trace_id: "00000000deadbeef".to_string(),
        opts: "lazy:r1c1e1p0t1m32:auto".to_string(),
        spec: format!("program {key_tag};\n"),
    }
}

fn bdd(seed: u32) -> SerializedBdd {
    SerializedBdd {
        num_vars: 4,
        order: vec![0, 1, 2, 3],
        nodes: vec![(3, 0, 1), (seed % 3, 2, 1)],
        root: 3,
    }
}

fn arts(seed: u32) -> Vec<(String, SerializedBdd)> {
    vec![("invariant".to_string(), bdd(seed)), ("span".to_string(), bdd(seed + 1))]
}

/// Run `op` against a fresh injected filesystem once to count its
/// mutations, then once per crash point (clean and torn), handing each
/// crashed root to `check` for recovery assertions on the real filesystem.
fn crash_sweep(
    tag: &str,
    setup: &dyn Fn(&PathBuf, Arc<dyn Vfs>),
    op: &dyn Fn(&PathBuf, Arc<dyn Vfs>),
    check: &dyn Fn(&PathBuf, &str),
) {
    let golden = {
        let root = temp_root(&format!("golden-{tag}"));
        let fi = Arc::new(ErrInjFs::new(0xC4A5));
        setup(&root, fi.clone());
        fi.clear();
        op(&root, fi.clone());
        let n = fi.mutations();
        let _ = fs::remove_dir_all(&root);
        assert!(n > 0, "the golden {tag} run must mutate the filesystem");
        n
    };
    for torn in [false, true] {
        for k in 0..golden {
            let context = format!("{tag}: crash at mutation {k}/{golden} (torn={torn})");
            let root = temp_root(&format!("crash-{tag}-{k}-{torn}"));
            let fi = Arc::new(ErrInjFs::new(0xC4A5));
            setup(&root, fi.clone());
            fi.clear();
            fi.crash_after_mutations(k, torn);
            op(&root, fi.clone());
            assert!(fi.crashed(), "{context}: the armed crash never fired");
            check(&root, &context);
            let _ = fs::remove_dir_all(&root);
        }
    }
}

/// Crash at every point of an append pair (`start` then `done`): on
/// reopen, the previously settled record must stay settled, and the
/// in-flight one is either pending (its start landed whole) or absent
/// (torn tail dropped) — never a scan failure.
#[test]
fn crash_points_of_journal_append_recover_on_reopen() {
    let path = |root: &PathBuf| root.join("journal.jsonl");
    crash_sweep(
        "append",
        &|root, vfs| {
            let (journal, _) = JobJournal::open_with_vfs(&path(root), vfs).unwrap();
            journal.append_start(&record("settled")).unwrap();
            journal.append_done(&record("settled").key, "completed").unwrap();
        },
        &|root, vfs| {
            // Reopen through the injected fs (the boot compaction is part
            // of the sweep), then append an in-flight pair.
            if let Ok((journal, _)) = JobJournal::open_with_vfs(&path(root), vfs) {
                if journal.append_start(&record("victim")).is_ok() {
                    let _ = journal.append_done(&record("victim").key, "completed");
                }
            }
        },
        &|root, context| {
            let (_, scan) = JobJournal::open(&path(root))
                .unwrap_or_else(|e| panic!("{context}: reopen failed: {e}"));
            for rec in &scan.pending {
                assert_eq!(rec.key, record("victim").key, "{context}: settled key resurfaced");
                assert_eq!(rec.spec, record("victim").spec, "{context}: pending record mangled");
            }
            assert!(scan.pending.len() <= 1, "{context}: duplicate pending records");
        },
    );
}

/// Crash at every point of a slot overwrite: the reopened slot decodes to
/// the old snapshot (iteration 1) or the new one (iteration 2), never a
/// torn hybrid, and the reopen sweeps `tmp/`.
#[test]
fn crash_points_of_checkpoint_put_are_previous_or_new_never_torn() {
    let key = "c".repeat(64);
    crash_sweep(
        "ckpt-put",
        &|root, vfs| {
            let ckpts = CheckpointStore::open_with_vfs(root, vfs).unwrap();
            ckpts.put(&key, 1, &arts(1)).unwrap();
        },
        &|root, vfs| {
            if let Ok(ckpts) = CheckpointStore::open_with_vfs(root, vfs) {
                let _ = ckpts.put(&key, 2, &arts(2));
            }
        },
        &|root, context| {
            let ckpts = CheckpointStore::open(root)
                .unwrap_or_else(|e| panic!("{context}: reopen failed: {e}"));
            let slot = ckpts
                .get(&key)
                .unwrap_or_else(|| panic!("{context}: the pre-crash snapshot was lost"));
            assert!(
                slot.iteration == 1 || slot.iteration == 2,
                "{context}: torn slot at iteration {}",
                slot.iteration
            );
            let want = if slot.iteration == 1 { arts(1) } else { arts(2) };
            assert_eq!(slot.artifacts, want, "{context}: slot artifacts do not match iteration");
            assert_eq!(
                fs::read_dir(root.join("tmp")).unwrap().count(),
                0,
                "{context}: stray tmp files survive the reopen sweep"
            );
        },
    );
}

fn sample_entry(key_tag: &str) -> NewEntry {
    let mut response = Json::obj();
    response.set("ok", Json::Bool(true));
    NewEntry {
        key: format!("{key_tag:0>64}"),
        case: "sample".into(),
        mode: "lazy".into(),
        warm_start: false,
        fingerprint: SpecFingerprint {
            vars: "0011223344556677".into(),
            faults: "8899aabbccddeeff".into(),
            safety: "0123456789abcdef".into(),
            actions: vec![format!("{key_tag:0>16}")],
        },
        response,
        artifacts: vec![("trans".into(), bdd(0)), ("invariant".into(), bdd(1))],
    }
}

/// `store gc` on a sick volume: EIO and ENOSPC on the removal paths
/// surface as errors (the CLI exits 1), leave no partial state that a
/// reopen cannot absorb, and a retry on a healed volume finishes the job.
#[test]
fn gc_surfaces_eio_and_enospc_and_recovers_on_retry() {
    for fault in [Fault::Eio, Fault::Enospc] {
        let root = temp_root(&format!("gc-{fault:?}"));
        let fi = Arc::new(ErrInjFs::new(0x6C6C));
        let store = DiskStore::open_with_vfs(&root, 0, &Telemetry::off(), fi.clone()).unwrap();
        store.put(&sample_entry("keep")).unwrap();
        store.put(&sample_entry("doomed")).unwrap();
        // Corrupt `doomed` so the next read quarantines it, giving gc
        // quarantined content to delete; add a stale tmp file too.
        let doomed = format!("{:0>64}", "doomed");
        fs::write(root.join("entries").join(&doomed).join("artifacts.bin"), b"FTARjunk").unwrap();
        assert!(store.get(&doomed).is_none());
        fs::write(root.join("tmp").join("stale"), b"x").unwrap();

        fi.fail_always(VfsOp::RemoveDir, fault);
        fi.fail_always(VfsOp::RemoveFile, fault);
        assert!(store.gc().is_err(), "gc on a sick volume must report the failure ({fault:?})");
        assert!(store.get(&format!("{:0>64}", "keep")).is_some(), "healthy entries untouched");

        // Volume heals: the retry completes and the root is consistent.
        fi.clear();
        store.gc().unwrap_or_else(|e| panic!("healed gc failed: {e}"));
        assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0, "stale tmp swept");
        drop(store);
        let tele = Telemetry::new();
        let reopened = DiskStore::open(&root, 0, &tele).unwrap();
        let (ok, bad) = reopened.verify();
        assert!(bad.is_empty(), "corrupt entries after gc retry: {bad:?}");
        assert_eq!(ok, reopened.len());
        let _ = fs::remove_dir_all(&root);
    }
}

//! The on-disk tier: one directory per content key, crash-safe writes,
//! checksum-on-read, LRU byte budget, quarantine for corruption.
//!
//! Layout under the store root:
//!
//! ```text
//! root/
//!   entries/<key>/manifest.json    # version, checksum, fingerprint, response
//!   entries/<key>/artifacts.bin    # FTAR container of SerializedBdd blobs
//!   tmp/                           # in-flight writes (swept at open)
//!   quarantine/                    # entries that failed checksum/decode
//! ```
//!
//! Crash-safety discipline: an entry is staged in full under `tmp/`, both
//! files are fsynced, and the staged directory is atomically renamed into
//! `entries/`. A crash before the rename leaves only `tmp/` garbage (swept
//! at the next open); a crash after it leaves a complete entry. There is no
//! in-between state in `entries/`, and torn artifact bytes that somehow
//! survive are caught by the manifest's whole-file SHA-256 at read time —
//! the entry is then moved to `quarantine/` (for post-mortems and `store
//! gc`), counted in `store.corrupt`, and reported as a miss so the caller
//! repairs cleanly.
//!
//! Every filesystem touch goes through the [`Vfs`] seam, so these claims
//! are exercised under injected `EIO`/`ENOSPC`/short-write/torn-rename
//! faults and a crash-point harness (see `tests/fault_injection.rs`)
//! rather than taken on faith. Failure taxonomy on the read path: an I/O
//! error (flaky volume) counts `store.io_errors` and reads as a miss but
//! *keeps* the entry — transient trouble must not destroy data — while a
//! checksum/decode failure counts `store.corrupt` and quarantines.
//! Quarantine growth is bounded: quarantined bytes count toward the store
//! budget, and past a cap (`budget/4`, or 64 MiB for unbudgeted stores)
//! the oldest quarantined entries are dropped (`store.quarantine.dropped`).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use ftrepair_bdd::SerializedBdd;
use ftrepair_telemetry::{Json, Telemetry};

use crate::artifacts::{decode_artifacts, encode_artifacts};
use crate::fingerprint::SpecFingerprint;
use crate::sha::sha256_hex;
use crate::vfs::{StdFs, Vfs};

/// Manifest schema version.
const MANIFEST_FORMAT: u64 = 1;
const MANIFEST_FILE: &str = "manifest.json";
const ARTIFACTS_FILE: &str = "artifacts.bin";

/// Quarantine byte cap for stores with no byte budget.
const DEFAULT_QUARANTINE_CAP: u64 = 64 << 20;

/// Distinguishes concurrent staging directories for the same key.
static STAGE_NONCE: AtomicU64 = AtomicU64::new(0);

/// A completed repair to be persisted.
pub struct NewEntry {
    /// Content key (64 hex chars) — the directory name.
    pub key: String,
    /// Program name, for `store ls`.
    pub case: String,
    /// Repair mode ("lazy" / "cautious").
    pub mode: String,
    /// Whether this result itself came from a warm-started repair.
    pub warm_start: bool,
    /// Structural fingerprint for the near-key index.
    pub fingerprint: SpecFingerprint,
    /// The `/repair` response body to replay on a future hit.
    pub response: Json,
    /// Named result BDDs (transition relation, invariant, fault span).
    pub artifacts: Vec<(String, SerializedBdd)>,
}

/// A persisted repair read back from disk (checksum already verified).
pub struct StoredEntry {
    pub key: String,
    pub case: String,
    pub mode: String,
    pub warm_start: bool,
    pub created_unix: u64,
    pub fingerprint: SpecFingerprint,
    pub response: Json,
    pub artifacts: Vec<(String, SerializedBdd)>,
}

/// One row of `store ls`: index metadata without touching artifact bytes.
#[derive(Clone, Debug)]
pub struct EntryInfo {
    pub key: String,
    pub case: String,
    pub mode: String,
    pub warm_start: bool,
    pub created_unix: u64,
    pub bytes: u64,
}

struct IndexEntry {
    case: String,
    mode: String,
    warm_start: bool,
    created_unix: u64,
    bytes: u64,
    fingerprint: SpecFingerprint,
}

struct Inner {
    index: HashMap<String, IndexEntry>,
    /// Front = coldest. Rebuilt from `created_unix` at open (read
    /// recency is not persisted), maintained exactly thereafter.
    lru: Vec<String>,
    bytes: u64,
}

/// Why a full entry read failed.
enum ReadFailure {
    /// The volume misbehaved (EIO and friends) — the entry may be fine.
    Io,
    /// The bytes are wrong (missing file, bad checksum, undecodable).
    Corrupt,
}

/// The on-disk store. All methods take `&self`; an internal mutex orders
/// concurrent readers, the async write-through thread, and eviction.
pub struct DiskStore {
    root: PathBuf,
    /// Byte budget for `entries/` + `quarantine/`; 0 = unlimited.
    budget: u64,
    tele: Telemetry,
    vfs: Arc<dyn Vfs>,
    inner: Mutex<Inner>,
    /// I/O errors observed on reads and writes (feeds the server's store
    /// circuit breaker). Distinct from `store.corrupt`: this is the volume
    /// failing, not the bytes lying.
    io_errors: AtomicU64,
    /// Bytes currently under `quarantine/` (kept approximately; resynced
    /// from disk whenever the quarantine changes).
    quarantine_bytes: AtomicU64,
}

impl DiskStore {
    /// Open (creating if needed) a store rooted at `root`, on the real
    /// filesystem. Sweeps stale staging directories, scans every manifest
    /// into the in-memory index (quarantining unreadable ones), and seeds
    /// the LRU order from entry creation times.
    pub fn open(root: &Path, budget: u64, tele: &Telemetry) -> io::Result<DiskStore> {
        DiskStore::open_with_vfs(root, budget, tele, Arc::new(StdFs))
    }

    /// [`DiskStore::open`] on an arbitrary [`Vfs`] — the seam the
    /// fault-injection tests (and the server's chaos mode) use.
    pub fn open_with_vfs(
        root: &Path,
        budget: u64,
        tele: &Telemetry,
        vfs: Arc<dyn Vfs>,
    ) -> io::Result<DiskStore> {
        vfs.create_dir_all(&root.join("entries"))?;
        vfs.create_dir_all(&root.join("tmp"))?;
        vfs.create_dir_all(&root.join("quarantine"))?;
        let store = DiskStore {
            root: root.to_path_buf(),
            budget,
            tele: tele.clone(),
            vfs,
            inner: Mutex::new(Inner { index: HashMap::new(), lru: Vec::new(), bytes: 0 }),
            io_errors: AtomicU64::new(0),
            quarantine_bytes: AtomicU64::new(0),
        };
        // A crash mid-write leaves a partial directory under tmp/ and
        // nothing under entries/ — dropping tmp wholesale is exactly the
        // "torn write is discarded" guarantee.
        for path in store.vfs.list_dir(&store.root.join("tmp"))? {
            let _ = if store.vfs.is_dir(&path) {
                store.vfs.remove_dir_all(&path)
            } else {
                store.vfs.remove_file(&path)
            };
        }
        let mut scanned: Vec<(String, IndexEntry)> = Vec::new();
        for dir in store.vfs.list_dir(&store.root.join("entries"))? {
            let key = match dir.file_name().and_then(|n| n.to_str()) {
                Some(k) => k.to_string(),
                None => continue,
            };
            match store.read_index_entry(&dir) {
                Some(entry) => scanned.push((key, entry)),
                None => {
                    // Unreadable manifest: a torn write that somehow landed
                    // in entries/, or bit rot. Out of the serving path.
                    store.tele.add("store.corrupt", 1);
                    store.quarantine_dir(&dir);
                }
            }
        }
        scanned.sort_by_key(|(_, e)| e.created_unix);
        {
            let mut inner = store.lock();
            for (key, entry) in scanned {
                inner.bytes += entry.bytes;
                inner.lru.push(key.clone());
                inner.index.insert(key, entry);
            }
            store.publish_gauges(&inner);
        }
        store.enforce_quarantine_cap();
        Ok(store)
    }

    /// Lock the index, recovering from a poisoned mutex: the index is a
    /// cache of on-disk truth and every mutation keeps it coherent before
    /// releasing the lock, so a panicked holder leaves consistent state —
    /// propagating the poison would only turn one panic into a cascade.
    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The store root path.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.lock().index.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total bytes under `entries/`.
    pub fn bytes(&self) -> u64 {
        self.lock().bytes
    }

    /// I/O errors observed so far (monotone; the server's circuit breaker
    /// watches the delta around each store call).
    pub fn io_errors(&self) -> u64 {
        self.io_errors.load(Ordering::Relaxed)
    }

    fn note_io_error(&self) {
        self.io_errors.fetch_add(1, Ordering::Relaxed);
        self.tele.add("store.io_errors", 1);
    }

    /// Look a key up, verifying the artifact checksum and decoding the
    /// container. Counts `store.hits`/`store.misses`; corruption counts
    /// `store.corrupt`, quarantines the entry, and reads as a miss.
    pub fn get(&self, key: &str) -> Option<StoredEntry> {
        self.get_counted(key, true)
    }

    /// [`DiskStore::get`] without the hit/miss accounting — used for
    /// warm-start neighbor fetches, which are not cache lookups and must
    /// not inflate the hit rate. Corruption is still counted and
    /// quarantined.
    pub fn peek(&self, key: &str) -> Option<StoredEntry> {
        self.get_counted(key, false)
    }

    fn get_counted(&self, key: &str, count: bool) -> Option<StoredEntry> {
        let mut inner = self.lock();
        if !inner.index.contains_key(key) {
            if count {
                self.tele.add("store.misses", 1);
            }
            return None;
        }
        let dir = self.root.join("entries").join(key);
        match self.read_entry(&dir, key) {
            Ok(entry) => {
                if count {
                    self.tele.add("store.hits", 1);
                    touch(&mut inner.lru, key);
                }
                Some(entry)
            }
            Err(ReadFailure::Io) => {
                // The volume, not the bytes: read as a miss but keep the
                // entry — a flaky disk must not destroy data.
                self.note_io_error();
                if count {
                    self.tele.add("store.misses", 1);
                }
                None
            }
            Err(ReadFailure::Corrupt) => {
                self.tele.add("store.corrupt", 1);
                self.evict_locked(&mut inner, key);
                self.quarantine_dir(&dir);
                self.publish_gauges(&inner);
                if count {
                    self.tele.add("store.misses", 1);
                }
                None
            }
        }
    }

    /// Persist a completed repair. Stages under `tmp/`, fsyncs, and
    /// atomically renames into `entries/`; then evicts coldest entries
    /// while over the byte budget. Returns `false` when the key was
    /// already stored (not an error — concurrent writers race benignly).
    pub fn put(&self, entry: &NewEntry) -> io::Result<bool> {
        {
            let inner = self.lock();
            if inner.index.contains_key(&entry.key) {
                return Ok(false);
            }
        }
        let created_unix = now_unix();
        let artifact_bytes = encode_artifacts(&entry.artifacts);
        let manifest = render_manifest(entry, created_unix, &artifact_bytes);

        let nonce = STAGE_NONCE.fetch_add(1, Ordering::Relaxed);
        let stage =
            self.root.join("tmp").join(format!("{}.{}.{}", entry.key, std::process::id(), nonce));
        if let Err(e) = self.vfs.create_dir_all(&stage) {
            self.note_io_error();
            return Err(e);
        }
        let staged = (|| -> io::Result<()> {
            self.vfs.write_file(&stage.join(ARTIFACTS_FILE), &artifact_bytes)?;
            self.vfs.write_file(&stage.join(MANIFEST_FILE), manifest.to_string().as_bytes())?;
            self.vfs.fsync_dir(&stage)?;
            Ok(())
        })();
        if let Err(e) = staged {
            let _ = self.vfs.remove_dir_all(&stage);
            self.note_io_error();
            return Err(e);
        }

        let dest = self.root.join("entries").join(&entry.key);
        let mut inner = self.lock();
        // Re-check under the lock: a racing writer may have landed the key
        // while we staged. `entries/<key>` existing on disk without an
        // index entry means a quarantined/evicted leftover — clear it.
        if inner.index.contains_key(&entry.key) {
            drop(inner);
            let _ = self.vfs.remove_dir_all(&stage);
            return Ok(false);
        }
        if self.vfs.is_dir(&dest) {
            let _ = self.vfs.remove_dir_all(&dest);
        }
        if let Err(e) = self.vfs.rename(&stage, &dest) {
            drop(inner);
            let _ = self.vfs.remove_dir_all(&stage);
            self.note_io_error();
            return Err(e);
        }
        let _ = self.vfs.fsync_dir(&self.root.join("entries"));

        let bytes = self.dir_bytes(&dest);
        inner.bytes += bytes;
        inner.lru.push(entry.key.clone());
        inner.index.insert(
            entry.key.clone(),
            IndexEntry {
                case: entry.case.clone(),
                mode: entry.mode.clone(),
                warm_start: entry.warm_start,
                created_unix,
                bytes,
                fingerprint: entry.fingerprint.clone(),
            },
        );
        self.enforce_budget_locked(&mut inner);
        self.publish_gauges(&inner);
        Ok(true)
    }

    /// Find the nearest stored neighbor of `fp` within `max_distance`
    /// structural edits (see [`SpecFingerprint::distance`]). Ties prefer
    /// the most recently created entry. Returns `(key, distance)`.
    pub fn nearest(&self, fp: &SpecFingerprint, max_distance: usize) -> Option<(String, usize)> {
        let inner = self.lock();
        let mut best: Option<(&String, usize, u64)> = None;
        for (key, entry) in &inner.index {
            let Some(d) = fp.distance(&entry.fingerprint) else { continue };
            if d > max_distance {
                continue;
            }
            let better = match best {
                None => true,
                Some((_, bd, bc)) => d < bd || (d == bd && entry.created_unix > bc),
            };
            if better {
                best = Some((key, d, entry.created_unix));
            }
        }
        best.map(|(key, d, _)| (key.clone(), d))
    }

    /// Index metadata for every entry, coldest first.
    pub fn ls(&self) -> Vec<EntryInfo> {
        let inner = self.lock();
        inner
            .lru
            .iter()
            .filter_map(|key| {
                let e = inner.index.get(key)?;
                Some(EntryInfo {
                    key: key.clone(),
                    case: e.case.clone(),
                    mode: e.mode.clone(),
                    warm_start: e.warm_start,
                    created_unix: e.created_unix,
                    bytes: e.bytes,
                })
            })
            .collect()
    }

    /// Re-read and checksum every entry, quarantining failures. Returns
    /// `(entries_ok, keys_quarantined)`.
    pub fn verify(&self) -> (usize, Vec<String>) {
        let keys: Vec<String> = {
            let inner = self.lock();
            inner.lru.clone()
        };
        let mut ok = 0;
        let mut bad = Vec::new();
        for key in keys {
            if self.peek(&key).is_some() {
                ok += 1;
            } else {
                bad.push(key);
            }
        }
        (ok, bad)
    }

    /// Delete quarantined entries and stale staging files, then enforce
    /// the byte budget. Returns bytes freed.
    pub fn gc(&self) -> io::Result<u64> {
        // Best-effort sweep, honest books: every removal is attempted, but
        // only what actually left the disk counts as freed, and a sick
        // volume (EIO/ENOSPC on the removal paths) surfaces as an error
        // instead of a success that silently zeroed the quarantine
        // accounting while the bytes are still there.
        let mut freed = 0u64;
        let mut quarantine_freed = 0u64;
        let mut first_err: Option<io::Error> = None;
        for sub in ["quarantine", "tmp"] {
            for path in self.vfs.list_dir(&self.root.join(sub))? {
                let bytes = self.dir_bytes(&path);
                let removed = if self.vfs.is_dir(&path) {
                    self.vfs.remove_dir_all(&path)
                } else {
                    self.vfs.remove_file(&path)
                };
                match removed {
                    Ok(()) => {
                        freed += bytes;
                        if sub == "quarantine" {
                            quarantine_freed += bytes;
                        }
                    }
                    Err(e) => {
                        self.note_io_error();
                        first_err.get_or_insert(e);
                    }
                }
            }
        }
        let left = self
            .quarantine_bytes
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |b| {
                Some(b.saturating_sub(quarantine_freed))
            })
            .unwrap_or(0)
            .saturating_sub(quarantine_freed);
        self.tele.set_gauge("store.quarantine.bytes", left);
        if let Some(e) = first_err {
            return Err(e);
        }
        let mut inner = self.lock();
        let before = inner.bytes;
        self.enforce_budget_locked(&mut inner);
        freed += before - inner.bytes;
        self.publish_gauges(&inner);
        Ok(freed)
    }

    /// Emergency eviction (the server's ENOSPC reaction): drop up to `n`
    /// coldest entries regardless of budget. Returns bytes freed.
    pub fn shed_coldest(&self, n: usize) -> u64 {
        let mut inner = self.lock();
        let before = inner.bytes;
        for _ in 0..n {
            let Some(coldest) = inner.lru.first().cloned() else { break };
            self.evict_locked(&mut inner, &coldest);
            let _ = self.vfs.remove_dir_all(&self.root.join("entries").join(&coldest));
            self.tele.add("store.evictions", 1);
        }
        self.publish_gauges(&inner);
        before - inner.bytes
    }

    /// A cheap end-to-end probe of the underlying volume: write, read
    /// back, and delete a small file under `tmp/`. The server's circuit
    /// breaker calls this in the half-open state to decide recovery.
    pub fn probe(&self) -> io::Result<()> {
        let nonce = STAGE_NONCE.fetch_add(1, Ordering::Relaxed);
        let path = self.root.join("tmp").join(format!("probe.{}.{nonce}", std::process::id()));
        let result = (|| -> io::Result<()> {
            self.vfs.write_file(&path, b"probe")?;
            let back = self.vfs.read(&path)?;
            if back != b"probe" {
                return Err(io::Error::other("probe readback mismatch"));
            }
            self.vfs.remove_file(&path)?;
            Ok(())
        })();
        if result.is_err() {
            self.note_io_error();
            let _ = self.vfs.remove_file(&path);
        }
        result
    }

    /// Remove coldest entries until entries + quarantine fit the budget.
    fn enforce_budget_locked(&self, inner: &mut Inner) {
        if self.budget == 0 {
            return;
        }
        let quarantined = self.quarantine_bytes.load(Ordering::Relaxed);
        while inner.bytes + quarantined > self.budget {
            let Some(coldest) = inner.lru.first().cloned() else { break };
            self.evict_locked(inner, &coldest);
            let dir = self.root.join("entries").join(&coldest);
            let _ = self.vfs.remove_dir_all(&dir);
            self.tele.add("store.evictions", 1);
        }
    }

    /// Drop `key` from the index and LRU (filesystem handled by caller).
    fn evict_locked(&self, inner: &mut Inner, key: &str) {
        if let Some(entry) = inner.index.remove(key) {
            inner.bytes = inner.bytes.saturating_sub(entry.bytes);
        }
        inner.lru.retain(|k| k != key);
    }

    fn publish_gauges(&self, inner: &Inner) {
        self.tele.set_gauge("store.bytes", inner.bytes);
        self.tele.set_gauge("store.entries", inner.index.len() as u64);
    }

    /// Move a directory out of the serving path into `quarantine/`, then
    /// re-bound the quarantine.
    fn quarantine_dir(&self, dir: &Path) {
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("entry");
        let nonce = STAGE_NONCE.fetch_add(1, Ordering::Relaxed);
        let dest = self.root.join("quarantine").join(format!("{name}.{nonce}"));
        if self.vfs.rename(dir, &dest).is_err() {
            // Cross-device or permission trouble: deleting still gets the
            // poison out of the serving path, just without the post-mortem.
            let _ = self.vfs.remove_dir_all(dir);
        }
        self.enforce_quarantine_cap();
    }

    /// Quarantined bytes the store will keep around for post-mortems.
    fn quarantine_cap(&self) -> u64 {
        if self.budget > 0 {
            self.budget / 4
        } else {
            DEFAULT_QUARANTINE_CAP
        }
    }

    /// Resync `quarantine_bytes` from disk and delete oldest quarantined
    /// entries while over the cap, so repeated corruption cannot fill the
    /// volume between `store gc` runs.
    fn enforce_quarantine_cap(&self) {
        let Ok(items) = self.vfs.list_dir(&self.root.join("quarantine")) else { return };
        let mut aged: Vec<(u64, u64, PathBuf)> =
            items.into_iter().map(|p| (self.vfs.mtime_unix(&p), self.dir_bytes(&p), p)).collect();
        aged.sort();
        let cap = self.quarantine_cap();
        let mut total: u64 = aged.iter().map(|(_, bytes, _)| bytes).sum();
        let mut dropped = 0u64;
        for (_, bytes, path) in &aged {
            if total <= cap {
                break;
            }
            let removed = if self.vfs.is_dir(path) {
                self.vfs.remove_dir_all(path).is_ok()
            } else {
                self.vfs.remove_file(path).is_ok()
            };
            if removed {
                total = total.saturating_sub(*bytes);
                dropped += 1;
            }
        }
        if dropped > 0 {
            self.tele.add("store.quarantine.dropped", dropped);
        }
        self.quarantine_bytes.store(total, Ordering::Relaxed);
        self.tele.set_gauge("store.quarantine.bytes", total);
    }

    /// Total size of a file or directory tree (fs metadata only).
    fn dir_bytes(&self, path: &Path) -> u64 {
        if self.vfs.is_file(path) {
            return self.vfs.file_len(path).unwrap_or(0);
        }
        let Ok(items) = self.vfs.list_dir(path) else { return 0 };
        items.iter().map(|p| self.dir_bytes(p)).sum()
    }

    fn read_manifest(&self, dir: &Path) -> Result<Json, ReadFailure> {
        let bytes = self.vfs.read(&dir.join(MANIFEST_FILE)).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                ReadFailure::Corrupt
            } else {
                ReadFailure::Io
            }
        })?;
        let text = String::from_utf8(bytes).map_err(|_| ReadFailure::Corrupt)?;
        let manifest = Json::parse(&text).map_err(|_| ReadFailure::Corrupt)?;
        if manifest.get("format").and_then(Json::as_u64) != Some(MANIFEST_FORMAT) {
            return Err(ReadFailure::Corrupt);
        }
        Ok(manifest)
    }

    /// Index-scan read: manifest only, no artifact checksum (deferred to
    /// the first `get`). `None` means the entry is unreadable and must be
    /// quarantined.
    fn read_index_entry(&self, dir: &Path) -> Option<IndexEntry> {
        let manifest = self.read_manifest(dir).ok()?;
        Some(IndexEntry {
            case: manifest.get("case")?.as_str()?.to_string(),
            mode: manifest.get("mode")?.as_str()?.to_string(),
            warm_start: manifest.get("warm_start")?.as_bool()?,
            created_unix: manifest.get("created_unix")?.as_u64()?,
            bytes: self.dir_bytes(dir),
            fingerprint: SpecFingerprint::from_json(manifest.get("fingerprint")?)?,
        })
    }

    /// Full read: manifest, artifact checksum, container decode.
    fn read_entry(&self, dir: &Path, key: &str) -> Result<StoredEntry, ReadFailure> {
        let corrupt = || ReadFailure::Corrupt;
        let manifest = self.read_manifest(dir)?;
        if manifest.get("key").and_then(Json::as_str) != Some(key) {
            return Err(corrupt());
        }
        let artifact_bytes = self.vfs.read(&dir.join(ARTIFACTS_FILE)).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                ReadFailure::Corrupt
            } else {
                ReadFailure::Io
            }
        })?;
        if Some(artifact_bytes.len() as u64)
            != manifest.get("artifacts_bytes").and_then(Json::as_u64)
        {
            return Err(corrupt());
        }
        if manifest.get("artifacts_sha256").and_then(Json::as_str)
            != Some(sha256_hex(&artifact_bytes).as_str())
        {
            return Err(corrupt());
        }
        let artifacts = decode_artifacts(&artifact_bytes).map_err(|_| corrupt())?;
        let field = |name: &str| manifest.get(name).ok_or_else(corrupt);
        Ok(StoredEntry {
            key: key.to_string(),
            case: field("case")?.as_str().ok_or_else(corrupt)?.to_string(),
            mode: field("mode")?.as_str().ok_or_else(corrupt)?.to_string(),
            warm_start: field("warm_start")?.as_bool().ok_or_else(corrupt)?,
            created_unix: field("created_unix")?.as_u64().ok_or_else(corrupt)?,
            fingerprint: SpecFingerprint::from_json(field("fingerprint")?).ok_or_else(corrupt)?,
            response: field("response")?.clone(),
            artifacts,
        })
    }
}

/// Move `key` to the hot end of the LRU order.
fn touch(lru: &mut Vec<String>, key: &str) {
    if let Some(pos) = lru.iter().position(|k| k == key) {
        let k = lru.remove(pos);
        lru.push(k);
    }
}

fn now_unix() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0)
}

fn render_manifest(entry: &NewEntry, created_unix: u64, artifact_bytes: &[u8]) -> Json {
    let mut m = Json::obj();
    m.set("format", Json::Num(MANIFEST_FORMAT as f64));
    m.set("key", Json::Str(entry.key.clone()));
    m.set("case", Json::Str(entry.case.clone()));
    m.set("mode", Json::Str(entry.mode.clone()));
    m.set("warm_start", Json::Bool(entry.warm_start));
    m.set("created_unix", Json::Num(created_unix as f64));
    m.set("artifacts_bytes", Json::Num(artifact_bytes.len() as f64));
    m.set("artifacts_sha256", Json::Str(sha256_hex(artifact_bytes)));
    m.set("fingerprint", entry.fingerprint.to_json());
    m.set("response", entry.response.clone());
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::{ART_INVARIANT, ART_SPAN, ART_TRANS};
    use std::fs;

    /// A unique temp dir per test (no tempfile crate in the workspace).
    fn temp_root(tag: &str) -> PathBuf {
        let nonce = STAGE_NONCE.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir()
            .join(format!("ftrepair-store-test-{tag}-{}-{nonce}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_bdd(seed: u32) -> SerializedBdd {
        SerializedBdd {
            num_vars: 4,
            order: vec![0, 1, 2, 3],
            nodes: vec![(3, 0, 1), (seed % 3, 2, 1)],
            root: 3,
        }
    }

    fn sample_fp(tag: &str) -> SpecFingerprint {
        SpecFingerprint {
            vars: "0011223344556677".into(),
            faults: "8899aabbccddeeff".into(),
            safety: "0123456789abcdef".into(),
            actions: vec![format!("{tag:0>16}")],
        }
    }

    fn sample_entry(key_tag: &str) -> NewEntry {
        let mut response = Json::obj();
        response.set("ok", Json::Bool(true));
        response.set("case", Json::Str("sample".into()));
        NewEntry {
            key: format!("{key_tag:0>64}"),
            case: "sample".into(),
            mode: "lazy".into(),
            warm_start: false,
            fingerprint: sample_fp(key_tag),
            response,
            artifacts: vec![
                (ART_TRANS.into(), sample_bdd(0)),
                (ART_INVARIANT.into(), sample_bdd(1)),
                (ART_SPAN.into(), sample_bdd(2)),
            ],
        }
    }

    #[test]
    fn put_get_roundtrip_and_metrics() {
        let root = temp_root("roundtrip");
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        let entry = sample_entry("a");
        assert!(store.get(&entry.key).is_none(), "empty store misses");
        assert!(store.put(&entry).unwrap());
        assert!(!store.put(&entry).unwrap(), "second put is a no-op");
        let got = store.get(&entry.key).expect("hit");
        assert_eq!(got.response, entry.response);
        assert_eq!(got.artifacts, entry.artifacts);
        assert_eq!(got.case, "sample");
        assert_eq!(got.fingerprint, entry.fingerprint);
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.hits"), 1);
        assert_eq!(snap.counter("store.misses"), 1);
        assert_eq!(snap.counter("store.corrupt"), 0);
        assert_eq!(snap.gauges["store.entries"], 1);
        assert!(snap.gauges["store.bytes"] > 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_preserves_entries() {
        let root = temp_root("reopen");
        let entry = sample_entry("b");
        {
            let tele = Telemetry::off();
            let store = DiskStore::open(&root, 0, &tele).unwrap();
            store.put(&entry).unwrap();
        }
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        assert_eq!(store.len(), 1);
        let got = store.get(&entry.key).expect("survives restart");
        assert_eq!(got.response, entry.response);
        assert_eq!(tele.snapshot().counter("store.hits"), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn peek_does_not_count_hits() {
        let root = temp_root("peek");
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        let entry = sample_entry("c");
        store.put(&entry).unwrap();
        assert!(store.peek(&entry.key).is_some());
        assert!(store.peek("no-such-key").is_none());
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.hits"), 0);
        assert_eq!(snap.counter("store.misses"), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_artifacts_are_quarantined() {
        let root = temp_root("corrupt-artifacts");
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        let entry = sample_entry("d");
        store.put(&entry).unwrap();
        // Flip one byte in the artifact container.
        let art_path = root.join("entries").join(&entry.key).join(ARTIFACTS_FILE);
        let mut bytes = fs::read(&art_path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&art_path, &bytes).unwrap();

        assert!(store.get(&entry.key).is_none(), "corrupt entry reads as a miss");
        let snap = tele.snapshot();
        assert_eq!(snap.counter("store.corrupt"), 1);
        assert_eq!(snap.counter("store.hits"), 0);
        assert_eq!(store.len(), 0, "dropped from the index");
        assert!(!root.join("entries").join(&entry.key).exists());
        let quarantined = fs::read_dir(root.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 1, "moved to quarantine for post-mortems");
        // And the key is re-insertable after quarantine.
        assert!(store.put(&entry).unwrap());
        assert!(store.get(&entry.key).is_some());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_manifest_is_quarantined_at_open() {
        let root = temp_root("corrupt-manifest");
        let entry = sample_entry("e");
        {
            let tele = Telemetry::off();
            let store = DiskStore::open(&root, 0, &tele).unwrap();
            store.put(&entry).unwrap();
        }
        let man_path = root.join("entries").join(&entry.key).join(MANIFEST_FILE);
        let text = fs::read_to_string(&man_path).unwrap();
        fs::write(&man_path, &text[..text.len() / 2]).unwrap();

        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        assert_eq!(store.len(), 0);
        assert_eq!(tele.snapshot().counter("store.corrupt"), 1);
        assert!(store.get(&entry.key).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn stale_tmp_dirs_are_swept_at_open() {
        let root = temp_root("tmp-sweep");
        {
            let tele = Telemetry::off();
            let _ = DiskStore::open(&root, 0, &tele).unwrap();
        }
        // Simulate a crash mid-stage: a partial directory and a stray file.
        fs::create_dir_all(root.join("tmp").join("deadbeef.1.2")).unwrap();
        fs::write(root.join("tmp").join("deadbeef.1.2").join(ARTIFACTS_FILE), b"part").unwrap();
        fs::write(root.join("tmp").join("stray"), b"x").unwrap();
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0);
        assert_eq!(store.len(), 0);
        assert_eq!(tele.snapshot().counter("store.corrupt"), 0, "tmp garbage is not corruption");
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn budget_evicts_coldest_and_hot_key_survives() {
        let root = temp_root("budget");
        let tele = Telemetry::new();
        // Learn one entry's size, then budget for about two.
        let probe = DiskStore::open(&root, 0, &tele).unwrap();
        probe.put(&sample_entry("p")).unwrap();
        let one = probe.bytes();
        drop(probe);
        let _ = fs::remove_dir_all(&root);

        let store = DiskStore::open(&root, one * 2 + one / 2, &tele).unwrap();
        let (a, b, c) = (sample_entry("a"), sample_entry("b"), sample_entry("c"));
        store.put(&a).unwrap();
        store.put(&b).unwrap();
        // Touch `a` so `b` is now the coldest.
        assert!(store.get(&a.key).is_some());
        store.put(&c).unwrap();
        assert!(store.bytes() <= one * 2 + one / 2);
        assert!(store.peek(&a.key).is_some(), "hot key survives");
        assert!(store.peek(&b.key).is_none(), "coldest evicted");
        assert!(store.peek(&c.key).is_some(), "newest survives");
        assert_eq!(tele.snapshot().counter("store.evictions"), 1);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn shed_coldest_frees_bytes_immediately() {
        let root = temp_root("shed");
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        let (a, b) = (sample_entry("a"), sample_entry("b"));
        store.put(&a).unwrap();
        store.put(&b).unwrap();
        let freed = store.shed_coldest(1);
        assert!(freed > 0);
        assert!(store.peek(&a.key).is_none(), "coldest shed first");
        assert!(store.peek(&b.key).is_some());
        assert_eq!(tele.snapshot().counter("store.evictions"), 1);
        let remaining = store.bytes();
        assert_eq!(store.shed_coldest(5), remaining, "sheds the rest, then stops");
        assert_eq!(store.bytes(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn quarantine_is_bounded_by_cap() {
        let root = temp_root("quarantine-cap");
        let tele = Telemetry::new();
        // Budget of one entry-ish: the quarantine cap is budget/4, so a
        // single quarantined entry always exceeds it and gets dropped.
        let probe = DiskStore::open(&root, 0, &tele).unwrap();
        probe.put(&sample_entry("p")).unwrap();
        let one = probe.bytes();
        drop(probe);
        let _ = fs::remove_dir_all(&root);

        let store = DiskStore::open(&root, one + one / 2, &tele).unwrap();
        let entry = sample_entry("q");
        store.put(&entry).unwrap();
        let art = root.join("entries").join(&entry.key).join(ARTIFACTS_FILE);
        fs::write(&art, b"FTARjunk").unwrap();
        assert!(store.get(&entry.key).is_none(), "corrupt -> quarantined");
        assert_eq!(
            fs::read_dir(root.join("quarantine")).unwrap().count(),
            0,
            "over the cap, the quarantined entry is dropped immediately"
        );
        assert_eq!(tele.snapshot().counter("store.quarantine.dropped"), 1);
        assert_eq!(tele.snapshot().gauges["store.quarantine.bytes"], 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn probe_roundtrips_and_leaves_no_residue() {
        let root = temp_root("probe");
        let tele = Telemetry::off();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        store.probe().unwrap();
        assert_eq!(fs::read_dir(root.join("tmp")).unwrap().count(), 0);
        assert_eq!(store.io_errors(), 0);
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn nearest_prefers_smallest_distance() {
        let root = temp_root("nearest");
        let tele = Telemetry::off();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        let mut near = sample_entry("near");
        near.fingerprint.actions = vec!["aaaa".into(), "bbbb".into()];
        let mut far = sample_entry("far1");
        far.fingerprint.actions = vec!["cccc".into(), "dddd".into()];
        store.put(&near).unwrap();
        store.put(&far).unwrap();

        let probe =
            SpecFingerprint { actions: vec!["aaaa".into(), "eeee".into()], ..sample_fp("probe") };
        let (key, d) = store.nearest(&probe, 8).expect("finds a neighbor");
        assert_eq!(key, near.key);
        assert_eq!(d, 2);
        assert!(store.nearest(&probe, 1).is_none(), "max_distance is respected");

        // Different variable layout: no neighbor at any distance.
        let alien = SpecFingerprint { vars: "ffffffffffffffff".into(), ..probe };
        assert!(store.nearest(&alien, 100).is_none());
        let _ = fs::remove_dir_all(&root);
    }

    #[test]
    fn ls_verify_gc() {
        let root = temp_root("admin");
        let tele = Telemetry::new();
        let store = DiskStore::open(&root, 0, &tele).unwrap();
        let (a, b) = (sample_entry("a"), sample_entry("b"));
        store.put(&a).unwrap();
        store.put(&b).unwrap();
        let rows = store.ls();
        assert_eq!(rows.len(), 2);
        assert!(rows.iter().all(|r| r.case == "sample" && r.bytes > 0));

        let (ok, bad) = store.verify();
        assert_eq!((ok, bad.len()), (2, 0));

        // Corrupt one entry, verify flags and quarantines it, gc clears it.
        let art = root.join("entries").join(&b.key).join(ARTIFACTS_FILE);
        fs::write(&art, b"FTARjunk").unwrap();
        let (ok, bad) = store.verify();
        assert_eq!((ok, bad), (1, vec![b.key.clone()]));
        assert!(fs::read_dir(root.join("quarantine")).unwrap().count() > 0);
        let freed = store.gc().unwrap();
        assert!(freed > 0);
        assert_eq!(fs::read_dir(root.join("quarantine")).unwrap().count(), 0);
        assert_eq!(store.len(), 1);
        let _ = fs::remove_dir_all(&root);
    }
}

//! Persistent tiered result store.
//!
//! The server's in-memory result cache dies with the process; this crate is
//! the durable tier beneath it. Completed repairs are written through as
//! one directory per content key — the `/repair` response JSON plus the
//! three result BDDs (repaired transition relation, invariant, fault span)
//! as order-carrying [`ftrepair_bdd::SerializedBdd`] blobs — so a restarted
//! server serves the same spec from disk instead of re-paying the repair.
//!
//! Three modules:
//!
//! * [`sha`] — the in-tree SHA-256 shared by content keys, artifact
//!   checksums, and fingerprints (moved here from the server so both tiers
//!   address by the same hash);
//! * [`fingerprint`] — per-section structural hashes of a spec plus a
//!   distance metric, the basis of the near-key index that lets a slightly
//!   edited spec locate its nearest cached neighbor for warm-start repair;
//! * [`artifacts`] / [`disk`] — the binary artifact container and the
//!   crash-safe [`DiskStore`] (temp-file + fsync + atomic rename,
//!   checksum-on-read, quarantine, LRU byte budget);
//! * [`vfs`] — the filesystem seam the store runs on: [`StdFs`] in
//!   production, [`ErrInjFs`] under test, injecting deterministic
//!   `EIO`/`ENOSPC`/short-write/torn-rename faults and simulated crashes
//!   so every crash-safety claim above is exercised, not assumed.

pub mod artifacts;
pub mod checkpoint;
pub mod disk;
pub mod fingerprint;
pub mod journal;
pub mod sha;
pub mod vfs;

pub use artifacts::{
    decode_artifacts, encode_artifacts, find_artifact, ArtifactError, ART_INVARIANT, ART_MS,
    ART_SPAN, ART_TRANS,
};
pub use checkpoint::{CheckpointSlot, CheckpointStore};
pub use disk::{DiskStore, EntryInfo, NewEntry, StoredEntry};
pub use fingerprint::SpecFingerprint;
pub use journal::{JobJournal, JournalRecord, RecoveryScan};
pub use sha::{content_key, sha256, sha256_hex};
pub use vfs::{ErrInjFs, Fault, StdFs, Vfs, VfsOp};

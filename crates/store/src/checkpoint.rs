//! Per-key checkpoint slots: the mid-repair state a job can resume from.
//!
//! Each slot is one file, `<root>/<key>.ckpt`, holding a small header
//! (magic, version, the fixpoint iteration the snapshot was taken at) and
//! an FTAR artifact container with the invariant, fault-span, and `ms`
//! BDDs serialized in the portable FBDD form. Writes follow the same
//! crash-safety discipline as [`DiskStore`](crate::DiskStore): stage under
//! `tmp/`, `write_file` (which fsyncs), atomic rename into place, fsync
//! the slot directory. A crash at any point leaves either the previous
//! slot or the new one — never a torn file at the final name.
//!
//! Reads are fail-open: a slot that is missing, truncated, or fails to
//! decode is simply *no checkpoint* (the job re-runs cold) and the bad
//! file is deleted. Checkpoints are an optimization, never a correctness
//! dependency — the resumed result is re-verified with a cold-rerun
//! fallback exactly like warm starts.

use crate::artifacts::{decode_artifacts, encode_artifacts};
use crate::vfs::{StdFs, Vfs};
use ftrepair_bdd::SerializedBdd;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Slot file magic: "FTCP" (fault-tolerance checkpoint).
const FTCP_MAGIC: [u8; 4] = *b"FTCP";
/// Slot format version.
const FTCP_VERSION: u32 = 1;
/// Distinguishes stage files from different processes/threads.
static STAGE_NONCE: AtomicU64 = AtomicU64::new(0);

/// One decoded checkpoint.
#[derive(Clone, Debug, PartialEq)]
pub struct CheckpointSlot {
    /// The fixpoint iteration the snapshot was taken at (diagnostic).
    pub iteration: u64,
    /// Named FBDD blobs — `invariant`, `span`, `ms`.
    pub artifacts: Vec<(String, SerializedBdd)>,
}

/// The slot directory. All methods take `&self`.
#[derive(Debug)]
pub struct CheckpointStore {
    root: PathBuf,
    vfs: Arc<dyn Vfs>,
}

impl CheckpointStore {
    /// Open (or create) a slot directory on the real filesystem.
    pub fn open(root: &Path) -> io::Result<CheckpointStore> {
        CheckpointStore::open_with_vfs(root, Arc::new(StdFs))
    }

    /// Open with an explicit [`Vfs`] — the fault-injection seam. Sweeps
    /// stage files a previous crash left under `tmp/`.
    pub fn open_with_vfs(root: &Path, vfs: Arc<dyn Vfs>) -> io::Result<CheckpointStore> {
        vfs.create_dir_all(&root.join("tmp"))?;
        for stray in vfs.list_dir(&root.join("tmp"))? {
            if vfs.is_dir(&stray) {
                vfs.remove_dir_all(&stray)?;
            } else {
                vfs.remove_file(&stray)?;
            }
        }
        Ok(CheckpointStore { root: root.to_path_buf(), vfs })
    }

    fn slot_path(&self, key: &str) -> PathBuf {
        self.root.join(format!("{key}.ckpt"))
    }

    /// Write (or replace) the slot for `key`. Crash-safe: the previous
    /// slot stays readable until the rename lands.
    pub fn put(
        &self,
        key: &str,
        iteration: u64,
        artifacts: &[(String, SerializedBdd)],
    ) -> io::Result<()> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FTCP_MAGIC);
        bytes.extend_from_slice(&FTCP_VERSION.to_le_bytes());
        bytes.extend_from_slice(&iteration.to_le_bytes());
        bytes.extend_from_slice(&encode_artifacts(artifacts));

        let nonce = STAGE_NONCE.fetch_add(1, Ordering::Relaxed);
        let stage = self.root.join("tmp").join(format!("{key}.{}.{nonce}", std::process::id()));
        self.vfs.write_file(&stage, &bytes)?;
        let result = self
            .vfs
            .rename(&stage, &self.slot_path(key))
            .and_then(|()| self.vfs.fsync_dir(&self.root));
        if result.is_err() {
            let _ = self.vfs.remove_file(&stage);
        }
        result
    }

    /// Read the slot for `key`. `None` means no usable checkpoint — never
    /// an error the caller must handle; an undecodable slot is deleted so
    /// it cannot shadow a fresh one.
    pub fn get(&self, key: &str) -> Option<CheckpointSlot> {
        let path = self.slot_path(key);
        let bytes = self.vfs.read(&path).ok()?;
        match decode_slot(&bytes) {
            Some(slot) => Some(slot),
            None => {
                let _ = self.vfs.remove_file(&path);
                None
            }
        }
    }

    /// Delete the slot for `key` (a verified completion makes it stale).
    /// Missing slots are fine.
    pub fn clear(&self, key: &str) -> io::Result<()> {
        match self.vfs.remove_file(&self.slot_path(key)) {
            Ok(()) => self.vfs.fsync_dir(&self.root),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(e),
        }
    }

    /// Number of slots currently on disk.
    pub fn len(&self) -> usize {
        self.vfs
            .list_dir(&self.root)
            .map(|items| {
                items
                    .iter()
                    .filter(|p| p.extension().and_then(|e| e.to_str()) == Some("ckpt"))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Is the slot directory empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The slot directory's location.
    pub fn root(&self) -> &Path {
        &self.root
    }
}

fn decode_slot(bytes: &[u8]) -> Option<CheckpointSlot> {
    if bytes.len() < 16 || bytes[..4] != FTCP_MAGIC {
        return None;
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().ok()?);
    if version != FTCP_VERSION {
        return None;
    }
    let iteration = u64::from_le_bytes(bytes[8..16].try_into().ok()?);
    let artifacts = decode_artifacts(&bytes[16..]).ok()?;
    Some(CheckpointSlot { iteration, artifacts })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64 as TestNonce;

    static NONCE: TestNonce = TestNonce::new(0);

    fn temp_root(tag: &str) -> PathBuf {
        let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("ftrepair-ckpt-{tag}-{}-{nonce}", std::process::id()))
    }

    fn bdd(seed: u32) -> SerializedBdd {
        SerializedBdd {
            num_vars: 4,
            order: vec![0, 1, 2, 3],
            nodes: vec![(3, 0, 1), (seed % 3, 2, 1)],
            root: 3,
        }
    }

    fn key(tag: &str) -> String {
        format!("{tag:0>64}")
    }

    #[test]
    fn put_get_clear_roundtrip() {
        let root = temp_root("roundtrip");
        let store = CheckpointStore::open(&root).unwrap();
        assert!(store.get(&key("a")).is_none());
        let arts = vec![("invariant".to_string(), bdd(0)), ("span".to_string(), bdd(1))];
        store.put(&key("a"), 7, &arts).unwrap();
        let slot = store.get(&key("a")).expect("slot readable");
        assert_eq!(slot.iteration, 7);
        assert_eq!(slot.artifacts, arts);
        assert_eq!(store.len(), 1);
        store.clear(&key("a")).unwrap();
        assert!(store.get(&key("a")).is_none());
        assert!(store.is_empty());
        store.clear(&key("a")).unwrap(); // idempotent
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn replacement_keeps_latest() {
        let root = temp_root("replace");
        let store = CheckpointStore::open(&root).unwrap();
        store.put(&key("a"), 1, &[("invariant".to_string(), bdd(0))]).unwrap();
        store.put(&key("a"), 2, &[("invariant".to_string(), bdd(2))]).unwrap();
        let slot = store.get(&key("a")).unwrap();
        assert_eq!(slot.iteration, 2);
        assert_eq!(slot.artifacts[0].1, bdd(2));
        assert_eq!(store.len(), 1);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn corrupt_slot_reads_as_none_and_is_deleted() {
        let root = temp_root("corrupt");
        let store = CheckpointStore::open(&root).unwrap();
        store.put(&key("a"), 3, &[("invariant".to_string(), bdd(0))]).unwrap();
        let path = root.join(format!("{}.ckpt", key("a")));
        std::fs::write(&path, b"FTCPgarbage").unwrap();
        assert!(store.get(&key("a")).is_none());
        assert!(!path.exists(), "undecodable slot deleted");
        assert!(store.get(&key("a")).is_none());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn truncated_slot_at_every_offset_reads_as_none() {
        let root = temp_root("truncate");
        let store = CheckpointStore::open(&root).unwrap();
        store.put(&key("a"), 3, &[("invariant".to_string(), bdd(0))]).unwrap();
        let path = root.join(format!("{}.ckpt", key("a")));
        let full = std::fs::read(&path).unwrap();
        for cut in 0..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            assert!(store.get(&key("a")).is_none(), "cut={cut}");
            assert!(!path.exists(), "cut={cut}: deleted");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn stray_stage_files_are_swept_at_open() {
        let root = temp_root("sweep");
        let store = CheckpointStore::open(&root).unwrap();
        store.put(&key("a"), 1, &[("invariant".to_string(), bdd(0))]).unwrap();
        std::fs::write(root.join("tmp").join("stray"), b"leftover").unwrap();
        drop(store);
        let store = CheckpointStore::open(&root).unwrap();
        assert_eq!(std::fs::read_dir(root.join("tmp")).unwrap().count(), 0);
        assert!(store.get(&key("a")).is_some(), "real slots survive the sweep");
        let _ = std::fs::remove_dir_all(&root);
    }
}

//! Durable job journal: a write-ahead log of repair jobs, so a `kill -9`
//! mid-repair loses no accepted work.
//!
//! The journal is a JSONL file written through the [`Vfs`] seam. Before a
//! job executes, the server appends a `start` record carrying everything
//! needed to re-run it from nothing but the journal — the canonical spec
//! text, the options fingerprint, the content key, and the trace ID. When
//! the job reaches a terminal outcome a `done` record is appended. Appends
//! are fsynced (`Vfs::append_file`), so a record either fully precedes the
//! crash or is a torn tail line that open() tolerates and drops.
//!
//! On open, the file is scanned: `start` records without a matching `done`
//! are the *pending* set the server replays on boot, deduplicated by
//! content key (the journal is content-addressed like everything else —
//! two starts for the same key are one unit of work). The scan also
//! compacts: the file is rewritten (stage + atomic rename + dir fsync)
//! with only the pending starts, which bounds journal growth to the
//! in-flight set no matter how long the daemon lives.

use crate::vfs::{StdFs, Vfs};
use ftrepair_telemetry::Json;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

/// One journaled job: everything a recovery scan needs to re-execute it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalRecord {
    /// Content address of spec + options (the dedup key).
    pub key: String,
    /// Program name, for logs and introspection.
    pub case: String,
    /// `"lazy"` or `"cautious"`.
    pub mode: String,
    /// The originating request's trace ID (16-hex wire form).
    pub trace_id: String,
    /// The options fingerprint (`options_fingerprint` spelling); recovery
    /// parses the option set back out of it.
    pub opts: String,
    /// Canonical spec text — sufficient to re-prepare the job.
    pub spec: String,
}

impl JournalRecord {
    fn to_json(&self) -> Json {
        let mut j = Json::obj();
        j.set("t", "start".into());
        j.set("key", self.key.as_str().into());
        j.set("case", self.case.as_str().into());
        j.set("mode", self.mode.as_str().into());
        j.set("trace_id", self.trace_id.as_str().into());
        j.set("opts", self.opts.as_str().into());
        j.set("spec", self.spec.as_str().into());
        j
    }

    fn from_json(j: &Json) -> Option<JournalRecord> {
        let field = |name: &str| j.get(name).and_then(Json::as_str).map(str::to_string);
        Some(JournalRecord {
            key: field("key")?,
            case: field("case")?,
            mode: field("mode")?,
            trace_id: field("trace_id")?,
            opts: field("opts")?,
            spec: field("spec")?,
        })
    }
}

/// What the boot-time scan found.
#[derive(Debug, Default)]
pub struct RecoveryScan {
    /// Start records with no matching done record, deduplicated by key in
    /// first-seen order — the jobs to replay.
    pub pending: Vec<JournalRecord>,
    /// Records that finished cleanly before the crash/restart.
    pub completed: u64,
    /// Torn or unparseable lines dropped by the scan (a crash mid-append
    /// leaves at most one).
    pub dropped_lines: u64,
}

/// The write-ahead log. All methods take `&self`; share behind an `Arc`.
#[derive(Debug)]
pub struct JobJournal {
    path: PathBuf,
    vfs: Arc<dyn Vfs>,
    /// Serializes appends so two workers' lines cannot interleave.
    write: Mutex<()>,
    appends: AtomicU64,
}

impl JobJournal {
    /// Open (or create) the journal at `path` on the real filesystem.
    pub fn open(path: &Path) -> io::Result<(JobJournal, RecoveryScan)> {
        JobJournal::open_with_vfs(path, Arc::new(StdFs))
    }

    /// Open with an explicit [`Vfs`] — the fault-injection seam.
    ///
    /// Scans for pending work, then compacts the file down to exactly the
    /// pending start records via stage-tmp + atomic rename + parent-dir
    /// fsync, sweeping any stage file a previous crash left behind.
    pub fn open_with_vfs(path: &Path, vfs: Arc<dyn Vfs>) -> io::Result<(JobJournal, RecoveryScan)> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                vfs.create_dir_all(parent)?;
            }
        }
        // Sweep a stage file orphaned by a crash mid-compaction. The main
        // file is the only source of truth until the rename lands.
        let stage = stage_path(path);
        if vfs.is_file(&stage) {
            vfs.remove_file(&stage)?;
        }

        let mut scan = RecoveryScan::default();
        if vfs.is_file(path) {
            let bytes = vfs.read(path)?;
            let text = String::from_utf8_lossy(&bytes);
            let mut done: Vec<String> = Vec::new();
            let mut starts: Vec<JournalRecord> = Vec::new();
            for line in text.split('\n') {
                if line.trim().is_empty() {
                    continue;
                }
                let parsed = match Json::parse(line) {
                    Ok(j) => j,
                    Err(_) => {
                        scan.dropped_lines += 1;
                        continue;
                    }
                };
                match parsed.get("t").and_then(Json::as_str) {
                    Some("start") => match JournalRecord::from_json(&parsed) {
                        Some(rec) => starts.push(rec),
                        None => scan.dropped_lines += 1,
                    },
                    Some("done") => match parsed.get("key").and_then(Json::as_str) {
                        Some(key) => done.push(key.to_string()),
                        None => scan.dropped_lines += 1,
                    },
                    _ => scan.dropped_lines += 1,
                }
            }
            for rec in starts {
                if done.contains(&rec.key) {
                    scan.completed += 1;
                } else if !scan.pending.iter().any(|p| p.key == rec.key) {
                    scan.pending.push(rec);
                }
            }
        }

        // Compact: the new journal is exactly the pending starts.
        let mut compacted = String::new();
        for rec in &scan.pending {
            compacted.push_str(&rec.to_json().to_string());
            compacted.push('\n');
        }
        vfs.write_file(&stage, compacted.as_bytes())?;
        vfs.rename(&stage, path)?;
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                vfs.fsync_dir(parent)?;
            }
        }

        let journal = JobJournal {
            path: path.to_path_buf(),
            vfs,
            write: Mutex::new(()),
            appends: AtomicU64::new(0),
        };
        Ok((journal, scan))
    }

    fn lock_write(&self) -> std::sync::MutexGuard<'_, ()> {
        self.write.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn append_line(&self, line: &Json) -> io::Result<()> {
        let mut bytes = line.to_string().into_bytes();
        bytes.push(b'\n');
        let _guard = self.lock_write();
        self.vfs.append_file(&self.path, &bytes)?;
        self.appends.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Journal a job *before* it executes. Fsynced: once this returns, a
    /// crash at any later point leaves the job recoverable.
    pub fn append_start(&self, rec: &JournalRecord) -> io::Result<()> {
        self.append_line(&rec.to_json())
    }

    /// Journal a terminal outcome for `key` (`"done"`, `"unrepairable"`,
    /// `"invalid"`, `"timeout"`, `"exhausted"`, `"panicked"`, …). After
    /// this, a restart will not replay the key.
    pub fn append_done(&self, key: &str, outcome: &str) -> io::Result<()> {
        let mut j = Json::obj();
        j.set("t", "done".into());
        j.set("key", key.into());
        j.set("outcome", outcome.into());
        self.append_line(&j)
    }

    /// Lines appended since open (diagnostic).
    pub fn appends(&self) -> u64 {
        self.appends.load(Ordering::Relaxed)
    }

    /// The journal file's location.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

fn stage_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(".compact.tmp");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    static NONCE: AtomicU64 = AtomicU64::new(0);

    fn temp_journal(tag: &str) -> PathBuf {
        let nonce = NONCE.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir()
            .join(format!("ftrepair-journal-{tag}-{}-{nonce}", std::process::id()))
            .join("jobs.journal")
    }

    fn rec(key: &str) -> JournalRecord {
        JournalRecord {
            key: format!("{key:0>64}"),
            case: "sample".into(),
            mode: "lazy".into(),
            trace_id: "00000000deadbeef".into(),
            opts: "lazy:r1c1e1p0t1m32:auto".into(),
            spec: "program sample;\nvar x : 0..1;\ninvariant true;".into(),
        }
    }

    #[test]
    fn start_without_done_is_pending_after_reopen() {
        let path = temp_journal("pending");
        let (journal, scan) = JobJournal::open(&path).unwrap();
        assert!(scan.pending.is_empty());
        journal.append_start(&rec("a")).unwrap();
        journal.append_start(&rec("b")).unwrap();
        journal.append_done(&rec("a").key, "done").unwrap();
        drop(journal);

        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.completed, 1);
        assert_eq!(scan.pending.len(), 1, "{scan:?}");
        assert_eq!(scan.pending[0], rec("b"), "the full record survives the round trip");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn duplicate_starts_for_one_key_replay_once() {
        let path = temp_journal("dedup");
        let (journal, _) = JobJournal::open(&path).unwrap();
        journal.append_start(&rec("a")).unwrap();
        journal.append_start(&rec("a")).unwrap();
        drop(journal);
        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.pending.len(), 1, "content-addressed dedup");
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_line_is_dropped_not_fatal() {
        let path = temp_journal("torn");
        let (journal, _) = JobJournal::open(&path).unwrap();
        journal.append_start(&rec("a")).unwrap();
        drop(journal);
        // Simulate a crash mid-append: half a record lands with no newline.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.extend_from_slice(br#"{"t":"start","key":"bbbb"#);
        std::fs::write(&path, &bytes).unwrap();

        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.dropped_lines, 1, "{scan:?}");
        assert_eq!(scan.pending.len(), 1);
        assert_eq!(scan.pending[0].key, rec("a").key);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn open_compacts_completed_records_away() {
        let path = temp_journal("compact");
        let (journal, _) = JobJournal::open(&path).unwrap();
        for i in 0..8 {
            let r = rec(&format!("k{i}"));
            journal.append_start(&r).unwrap();
            journal.append_done(&r.key, "done").unwrap();
        }
        journal.append_start(&rec("live")).unwrap();
        drop(journal);
        let before = std::fs::metadata(&path).unwrap().len();

        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.pending.len(), 1);
        let after = std::fs::metadata(&path).unwrap().len();
        assert!(after < before, "compaction must shrink the file ({before} -> {after})");
        // A third open sees the same single pending record.
        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.pending.len(), 1);
        assert_eq!(scan.pending[0].key, rec("live").key);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn done_without_start_is_ignored() {
        let path = temp_journal("orphan-done");
        let (journal, _) = JobJournal::open(&path).unwrap();
        journal.append_done(&rec("ghost").key, "done").unwrap();
        drop(journal);
        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert!(scan.pending.is_empty());
        assert_eq!(scan.dropped_lines, 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn spec_text_with_newlines_and_quotes_round_trips() {
        let path = temp_journal("escape");
        let mut r = rec("esc");
        r.spec = "program \"x\";\n\tvar y : 0..3; // comment\n".into();
        let (journal, _) = JobJournal::open(&path).unwrap();
        journal.append_start(&r).unwrap();
        drop(journal);
        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.pending[0].spec, r.spec);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn stale_compaction_stage_is_swept() {
        let path = temp_journal("stale-stage");
        let (journal, _) = JobJournal::open(&path).unwrap();
        journal.append_start(&rec("a")).unwrap();
        drop(journal);
        std::fs::write(stage_path(&path), b"garbage from a crashed compaction").unwrap();
        let (_journal, scan) = JobJournal::open(&path).unwrap();
        assert_eq!(scan.pending.len(), 1);
        assert!(!stage_path(&path).exists());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}

//! Structural spec fingerprints for the near-key index.
//!
//! A content key is all-or-nothing: one flipped character yields an
//! unrelated SHA-256 and the cache contributes nothing. Warm-start needs a
//! weaker notion — "this spec is *almost* that cached one" — so each stored
//! entry also carries a [`SpecFingerprint`] that hashes the structural
//! sections of the AST separately:
//!
//! - `vars`: one hash over every variable declaration, in order. Two specs
//!   with different variable layouts compile to different BDD variable
//!   universes, so cached artifacts are only importable when this matches
//!   exactly.
//! - `faults`: one hash over every fault section. The fault-span artifact
//!   is a fixpoint *of the faults*, so a changed fault invalidates it as a
//!   seed in spirit even though seeding stays sound; we require equality.
//! - `safety`: one hash over invariants/badstates/badtrans/leadsto.
//! - `actions`: a multiset of per-action hashes (plus one pseudo-entry per
//!   process for its read/write sets), so edit distance between two specs'
//!   process sections is the symmetric difference of two multisets.
//!
//! [`SpecFingerprint::distance`] is `None` unless vars and faults match;
//! otherwise it counts differing action entries. Distance 0 with a safety
//! change is still a usable neighbor: seeds only over-approximate the
//! Step 1 reachability frontier, and the repair itself reruns in full.

use ftrepair_lang::ast;
use ftrepair_telemetry::Json;

use crate::sha::sha256_hex;

/// Per-section structural hashes of one spec (see module docs).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecFingerprint {
    /// Hash of all variable declarations (16 hex chars).
    pub vars: String,
    /// Hash of all fault sections (16 hex chars).
    pub faults: String,
    /// Hash of invariants + badstates + badtrans + leadsto (16 hex chars).
    pub safety: String,
    /// Sorted multiset of per-action / per-process-rw hashes (16 hex chars each).
    pub actions: Vec<String>,
}

/// 16-hex-char prefix of the SHA-256 of a debug rendering. The `Debug`
/// derivation of the AST is stable within this repo and distinguishes every
/// structurally distinct value, which is all a fingerprint needs.
fn h(material: &str) -> String {
    let mut hex = sha256_hex(material.as_bytes());
    hex.truncate(16);
    hex
}

impl SpecFingerprint {
    /// Fingerprint a parsed spec.
    pub fn of(prog: &ast::Program) -> SpecFingerprint {
        let vars = h(&format!("vars {:?}", prog.vars));
        let faults = h(&format!("faults {:?}", prog.faults));
        let safety = h(&format!(
            "safety {:?} {:?} {:?} {:?}",
            prog.invariants, prog.bad_states, prog.bad_trans, prog.leads_to
        ));
        let mut actions = Vec::new();
        for proc in &prog.processes {
            // The read/write sets gate which repaired transitions are
            // realizable, so an rw edit must register as distance too.
            actions.push(h(&format!("rw {} {:?} {:?}", proc.name, proc.read, proc.write)));
            for action in &proc.actions {
                actions.push(h(&format!("act {} {:?}", proc.name, action)));
            }
        }
        actions.sort();
        SpecFingerprint { vars, faults, safety, actions }
    }

    /// Structural edit distance to `other`: the size of the symmetric
    /// difference of the action multisets, or `None` when the variable
    /// layout or fault sections differ (cached BDDs are then not importable
    /// as seeds).
    pub fn distance(&self, other: &SpecFingerprint) -> Option<usize> {
        if self.vars != other.vars || self.faults != other.faults {
            return None;
        }
        // Both sides are sorted; a two-pointer sweep counts entries unique
        // to either multiset.
        let (a, b) = (&self.actions, &other.actions);
        let (mut i, mut j, mut diff) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
                std::cmp::Ordering::Less => {
                    diff += 1;
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    diff += 1;
                    j += 1;
                }
            }
        }
        diff += (a.len() - i) + (b.len() - j);
        Some(diff)
    }

    /// Render as a JSON object for the manifest.
    pub fn to_json(&self) -> Json {
        let mut obj = Json::obj();
        obj.set("vars", Json::Str(self.vars.clone()));
        obj.set("faults", Json::Str(self.faults.clone()));
        obj.set("safety", Json::Str(self.safety.clone()));
        obj.set("actions", Json::Arr(self.actions.iter().cloned().map(Json::Str).collect()));
        obj
    }

    /// Parse back from a manifest object; `None` on any shape mismatch
    /// (treated as corruption by the caller).
    pub fn from_json(value: &Json) -> Option<SpecFingerprint> {
        let vars = value.get("vars")?.as_str()?.to_string();
        let faults = value.get("faults")?.as_str()?.to_string();
        let safety = value.get("safety")?.as_str()?.to_string();
        let mut actions = Vec::new();
        for item in value.get("actions")?.as_arr()? {
            actions.push(item.as_str()?.to_string());
        }
        Some(SpecFingerprint { vars, faults, safety, actions })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_lang::parse;

    const BASE: &str = "program fp_base;\n\
        var x : 0..2;\n\
        var y : 0..1;\n\
        process p\n\
        read x, y;\n\
        write x;\n\
        begin\n\
        (x = 0) -> x := 1;\n\
        (x = 1) -> x := 2;\n\
        end\n\
        fault hit\n\
        begin\n\
        true -> x := {0, 1, 2};\n\
        end\n\
        invariant (x = 0) | (x = 1);\n";

    fn fp(src: &str) -> SpecFingerprint {
        SpecFingerprint::of(&parse(src).expect("test spec parses"))
    }

    #[test]
    fn identical_specs_have_distance_zero() {
        let a = fp(BASE);
        let b = fp(BASE);
        assert_eq!(a, b);
        assert_eq!(a.distance(&b), Some(0));
    }

    #[test]
    fn one_action_edit_is_distance_two() {
        // Changing one action removes its hash and adds a new one:
        // symmetric difference 2.
        let edited = BASE.replace("(x = 1) -> x := 2;", "(x = 1) -> x := 0;");
        let a = fp(BASE);
        let b = fp(&edited);
        assert_eq!(a.distance(&b), Some(2));
        assert_eq!(a.vars, b.vars);
        assert_eq!(a.faults, b.faults);
    }

    #[test]
    fn added_action_is_distance_one() {
        let extended = BASE.replace("end\nfault", "(x = 2) -> x := 0;\nend\nfault");
        assert_eq!(fp(BASE).distance(&fp(&extended)), Some(1));
    }

    #[test]
    fn rw_set_edit_registers_as_distance() {
        let edited = BASE.replace("read x, y;", "read x;");
        let d = fp(BASE).distance(&fp(&edited));
        assert_eq!(d, Some(2));
    }

    #[test]
    fn var_change_disqualifies() {
        let edited = BASE.replace("var x : 0..2;", "var x : 0..3;");
        assert_eq!(fp(BASE).distance(&fp(&edited)), None);
    }

    #[test]
    fn fault_change_disqualifies() {
        let edited = BASE.replace("true -> x := {0, 1, 2};", "true -> x := {0, 2};");
        assert_eq!(fp(BASE).distance(&fp(&edited)), None);
    }

    #[test]
    fn safety_change_keeps_distance_zero() {
        let edited = BASE.replace("invariant (x = 0) | (x = 1);", "invariant (x = 0);");
        let (a, b) = (fp(BASE), fp(&edited));
        assert_ne!(a.safety, b.safety);
        assert_eq!(a.distance(&b), Some(0));
    }

    #[test]
    fn json_round_trip() {
        let a = fp(BASE);
        let json = a.to_json();
        let back = SpecFingerprint::from_json(&json).expect("round-trips");
        assert_eq!(a, back);
        assert_eq!(SpecFingerprint::from_json(&Json::Str("nope".into())), None);
    }
}

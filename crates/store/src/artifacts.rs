//! The `artifacts.bin` container: named [`SerializedBdd`] blobs in one file.
//!
//! Layout (all little-endian): `"FTAR"` magic, format version, artifact
//! count, then per artifact a length-prefixed UTF-8 name and a
//! length-prefixed `FBDD` blob ([`SerializedBdd::to_bytes`]). The container
//! is covered by the manifest's whole-file SHA-256, so decoding here only
//! guards against version skew and truncation; a corrupted file is caught
//! by the checksum before this code runs. Decoded BDDs are *still*
//! structurally validated by `Manager::try_import` at use — three
//! independent layers between the disk and the node arena.

use ftrepair_bdd::SerializedBdd;

/// Container magic: "FTAR" (fault-tolerance artifacts).
const FTAR_MAGIC: [u8; 4] = *b"FTAR";
/// Container format version.
const FTAR_VERSION: u32 = 1;

/// Artifact name for the repaired transition relation.
pub const ART_TRANS: &str = "trans";
/// Artifact name for the repaired invariant.
pub const ART_INVARIANT: &str = "invariant";
/// Artifact name for the fault span.
pub const ART_SPAN: &str = "span";
/// Artifact name for the `ms` unmaskable-state set — checkpoint slots
/// carry it alongside the invariant and span so a resumed run can skip
/// straight past Phase 1.
pub const ART_MS: &str = "ms";

/// Why an `artifacts.bin` failed to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArtifactError {
    /// The buffer ended early or a declared length overruns it.
    Malformed(String),
    /// An embedded BDD blob failed to decode.
    Bdd(String),
}

impl std::fmt::Display for ArtifactError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArtifactError::Malformed(why) => write!(f, "malformed artifact container: {why}"),
            ArtifactError::Bdd(why) => write!(f, "bad BDD blob in container: {why}"),
        }
    }
}

impl std::error::Error for ArtifactError {}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, ArtifactError> {
    let end = *pos + 4;
    let chunk = bytes
        .get(*pos..end)
        .ok_or_else(|| ArtifactError::Malformed("truncated length field".into()))?;
    *pos = end;
    Ok(u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]))
}

fn read_slice<'a>(bytes: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], ArtifactError> {
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= bytes.len())
        .ok_or_else(|| ArtifactError::Malformed("declared length overruns file".into()))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

/// Encode named artifacts into one container.
pub fn encode_artifacts(artifacts: &[(String, SerializedBdd)]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&FTAR_MAGIC);
    out.extend_from_slice(&FTAR_VERSION.to_le_bytes());
    out.extend_from_slice(&(artifacts.len() as u32).to_le_bytes());
    for (name, bdd) in artifacts {
        let blob = bdd.to_bytes();
        out.extend_from_slice(&(name.len() as u32).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
        out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
        out.extend_from_slice(&blob);
    }
    out
}

/// Decode a container back into named artifacts.
pub fn decode_artifacts(bytes: &[u8]) -> Result<Vec<(String, SerializedBdd)>, ArtifactError> {
    let mut pos = 0usize;
    let magic = read_slice(bytes, &mut pos, 4)?;
    if magic != FTAR_MAGIC {
        return Err(ArtifactError::Malformed("bad magic".into()));
    }
    let version = read_u32(bytes, &mut pos)?;
    if version != FTAR_VERSION {
        return Err(ArtifactError::Malformed(format!("unsupported version {version}")));
    }
    let count = read_u32(bytes, &mut pos)? as usize;
    // 8 bytes of length prefixes per artifact at minimum: bounds hostile
    // counts before the loop allocates anything.
    if count > bytes.len().saturating_sub(pos) / 8 {
        return Err(ArtifactError::Malformed("artifact count overruns file".into()));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(bytes, &mut pos)? as usize;
        let name_bytes = read_slice(bytes, &mut pos, name_len)?;
        let name = std::str::from_utf8(name_bytes)
            .map_err(|_| ArtifactError::Malformed("non-UTF-8 artifact name".into()))?
            .to_string();
        let blob_len = read_u32(bytes, &mut pos)? as usize;
        let blob = read_slice(bytes, &mut pos, blob_len)?;
        let bdd = SerializedBdd::from_bytes(blob).map_err(|e| ArtifactError::Bdd(e.to_string()))?;
        out.push((name, bdd));
    }
    if pos != bytes.len() {
        return Err(ArtifactError::Malformed(format!("{} trailing bytes", bytes.len() - pos)));
    }
    Ok(out)
}

/// Look an artifact up by name.
pub fn find_artifact<'a>(
    artifacts: &'a [(String, SerializedBdd)],
    name: &str,
) -> Option<&'a SerializedBdd> {
    artifacts.iter().find(|(n, _)| n == name).map(|(_, b)| b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bdd(seed: u32) -> SerializedBdd {
        SerializedBdd {
            num_vars: 3,
            order: vec![0, 1, 2],
            nodes: vec![(2, 0, 1), (seed % 2, 2, 1)],
            root: 3,
        }
    }

    #[test]
    fn container_roundtrip() {
        let arts = vec![
            (ART_TRANS.to_string(), sample_bdd(0)),
            (ART_INVARIANT.to_string(), sample_bdd(1)),
            (ART_SPAN.to_string(), sample_bdd(2)),
        ];
        let bytes = encode_artifacts(&arts);
        let back = decode_artifacts(&bytes).expect("decodes");
        assert_eq!(arts, back);
        assert_eq!(find_artifact(&back, ART_SPAN), Some(&sample_bdd(2)));
        assert_eq!(find_artifact(&back, "nope"), None);
    }

    #[test]
    fn empty_container_roundtrip() {
        let bytes = encode_artifacts(&[]);
        assert_eq!(decode_artifacts(&bytes).expect("decodes"), vec![]);
    }

    #[test]
    fn truncation_at_every_offset_is_rejected() {
        let arts = vec![(ART_TRANS.to_string(), sample_bdd(0))];
        let bytes = encode_artifacts(&arts);
        for cut in 0..bytes.len() {
            assert!(decode_artifacts(&bytes[..cut]).is_err(), "cut={cut}");
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_artifacts(&[(ART_TRANS.to_string(), sample_bdd(0))]);
        bytes.push(7);
        assert!(decode_artifacts(&bytes).is_err());
    }

    #[test]
    fn hostile_count_is_rejected_without_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"FTAR");
        bytes.extend_from_slice(&1u32.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_artifacts(&bytes).is_err());
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = encode_artifacts(&[]);
        bytes[0] = b'Z';
        assert!(decode_artifacts(&bytes).is_err());
        let mut bytes = encode_artifacts(&[]);
        bytes[4] = 9;
        assert!(decode_artifacts(&bytes).is_err());
    }
}

//! Virtual filesystem seam for the on-disk store.
//!
//! [`DiskStore`](crate::DiskStore) performs every filesystem operation
//! through the [`Vfs`] trait, so its crash-safety discipline is testable
//! instead of aspirational. [`StdFs`] is the production implementation (a
//! thin veneer over `std::fs`); [`ErrInjFs`] wraps it with a deterministic,
//! seeded fault plan that can inject `EIO`, `ENOSPC`, short writes, torn
//! renames, and whole-process "crashes" (every op after a chosen mutation
//! count fails), targeted by operation kind, path substring, and countdown.
//!
//! The crash model: `crash_after_mutations(k)` lets the first `k` mutating
//! operations (writes, renames, directory creates/removes, fsyncs) complete
//! in full, then fails that op and every later one with a sticky "simulated
//! crash" error. The *torn* variant additionally gives the crashing op a
//! partial effect — a write lands half its bytes, a rename completes but
//! reports failure — modelling power loss mid-syscall and the window
//! between a rename and its directory fsync. A test then reopens the store
//! root with a fresh [`StdFs`] and asserts the recovery invariants.

use std::io;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// The filesystem operations [`DiskStore`](crate::DiskStore) performs.
/// Object-safe; the store holds an `Arc<dyn Vfs>`.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    fn remove_dir_all(&self, path: &Path) -> io::Result<()>;
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Create `path`, write `bytes` in full, and fsync the file.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Append `bytes` to `path` (creating it if absent) and fsync the file.
    /// The journal's one primitive: a crash mid-append leaves a torn tail,
    /// never a torn prefix.
    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;
    /// Fsync a directory so a completed rename/create survives power loss.
    fn fsync_dir(&self, path: &Path) -> io::Result<()>;
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>>;
    fn file_len(&self, path: &Path) -> io::Result<u64>;
    /// Last-modification time as unix seconds (0 when unavailable).
    fn mtime_unix(&self, path: &Path) -> u64;
    fn is_dir(&self, path: &Path) -> bool;
    fn is_file(&self, path: &Path) -> bool;
}

/// The production filesystem: `std::fs` with fsync where the store's
/// crash-safety contract requires it.
#[derive(Debug)]
pub struct StdFs;

impl Vfs for StdFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::create_dir_all(path)
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_dir_all(path)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        std::fs::File::open(path)?.sync_all()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for item in std::fs::read_dir(path)? {
            out.push(item?.path());
        }
        Ok(out)
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        std::fs::metadata(path).map(|m| m.len())
    }

    fn mtime_unix(&self, path: &Path) -> u64 {
        std::fs::metadata(path)
            .and_then(|m| m.modified())
            .ok()
            .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
            .map(|d| d.as_secs())
            .unwrap_or(0)
    }

    fn is_dir(&self, path: &Path) -> bool {
        path.is_dir()
    }

    fn is_file(&self, path: &Path) -> bool {
        path.is_file()
    }
}

/// Which operation an injected fault targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VfsOp {
    CreateDir,
    RemoveDir,
    RemoveFile,
    Rename,
    Write,
    Append,
    FsyncDir,
    Read,
    ListDir,
    Stat,
}

impl VfsOp {
    /// Does this op mutate the filesystem? (These are the ops the crash
    /// countdown counts.)
    fn is_mutation(self) -> bool {
        matches!(
            self,
            VfsOp::CreateDir
                | VfsOp::RemoveDir
                | VfsOp::RemoveFile
                | VfsOp::Rename
                | VfsOp::Write
                | VfsOp::Append
                | VfsOp::FsyncDir
        )
    }
}

/// The failure an injection produces.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Input/output error (`raw_os_error` 5) with no effect on disk.
    Eio,
    /// No space left on device (`raw_os_error` 28) with no effect on disk.
    Enospc,
    /// A write that lands only half its bytes, then reports `WriteZero`.
    ShortWrite,
    /// A rename that *completes on disk* but reports `EIO` — the window
    /// between the rename syscall and the directory fsync.
    TornRename,
}

impl Fault {
    fn to_error(self) -> io::Error {
        match self {
            Fault::Eio | Fault::TornRename => io::Error::from_raw_os_error(5),
            Fault::Enospc => io::Error::from_raw_os_error(28),
            Fault::ShortWrite => io::Error::new(io::ErrorKind::WriteZero, "injected short write"),
        }
    }
}

/// One armed fault: fires on the `skip+1`-th operation matching `op` and
/// `path_contains`, then disarms (unless `sticky`).
#[derive(Debug)]
struct Injection {
    op: VfsOp,
    path_contains: Option<String>,
    skip: u64,
    kind: Fault,
    sticky: bool,
}

#[derive(Debug, Default)]
struct Plan {
    injections: Vec<Injection>,
    /// Probability (per mille) that any matching op fails with `Eio`.
    random_eio_per_mille: u64,
    rng: u64,
}

/// Deterministic fault-injecting filesystem wrapping [`StdFs`]. All knobs
/// take `&self`, so a test can re-arm faults mid-run through the same
/// `Arc` the store holds.
#[derive(Debug)]
pub struct ErrInjFs {
    inner: StdFs,
    plan: Mutex<Plan>,
    /// Mutating ops completed so far (the crash countdown's clock).
    mutations: AtomicU64,
    /// Total ops attempted (mutating or not).
    ops: AtomicU64,
    /// Crash at this mutation index (`u64::MAX` = disarmed).
    crash_at: AtomicU64,
    /// Give the crashing op a partial effect instead of none.
    crash_torn: AtomicBool,
    /// Set once the crash fires; every later op fails.
    crashed: AtomicBool,
}

impl ErrInjFs {
    pub fn new(seed: u64) -> ErrInjFs {
        ErrInjFs {
            inner: StdFs,
            plan: Mutex::new(Plan { rng: seed ^ 0x9E37_79B9_7F4A_7C15, ..Plan::default() }),
            mutations: AtomicU64::new(0),
            ops: AtomicU64::new(0),
            crash_at: AtomicU64::new(u64::MAX),
            crash_torn: AtomicBool::new(false),
            crashed: AtomicBool::new(false),
        }
    }

    fn lock_plan(&self) -> std::sync::MutexGuard<'_, Plan> {
        self.plan.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Arm a one-shot fault on the next op of `kind` targeting `op`.
    pub fn fail_next(&self, op: VfsOp, kind: Fault) {
        self.fail_nth(op, 0, kind);
    }

    /// Arm a one-shot fault on the `skip+1`-th matching op.
    pub fn fail_nth(&self, op: VfsOp, skip: u64, kind: Fault) {
        self.lock_plan().injections.push(Injection {
            op,
            path_contains: None,
            skip,
            kind,
            sticky: false,
        });
    }

    /// Arm a one-shot fault on the next `op` whose path contains `substr`.
    pub fn fail_on_path(&self, op: VfsOp, substr: &str, kind: Fault) {
        self.lock_plan().injections.push(Injection {
            op,
            path_contains: Some(substr.to_string()),
            skip: 0,
            kind,
            sticky: false,
        });
    }

    /// Arm a sticky fault: every matching op fails until [`ErrInjFs::clear`].
    pub fn fail_always(&self, op: VfsOp, kind: Fault) {
        self.lock_plan().injections.push(Injection {
            op,
            path_contains: None,
            skip: 0,
            kind,
            sticky: true,
        });
    }

    /// Every op fails with `Eio` with probability `per_mille`/1000, drawn
    /// from the seeded generator (deterministic across runs).
    pub fn fail_randomly(&self, per_mille: u64) {
        self.lock_plan().random_eio_per_mille = per_mille;
    }

    /// Let `k` mutating ops complete, then fail that op and every op after
    /// it with a sticky "simulated crash" error. With `torn`, the crashing
    /// op itself has a partial effect (half a write, a completed-but-
    /// unreported rename) before failing.
    pub fn crash_after_mutations(&self, k: u64, torn: bool) {
        self.crash_torn.store(torn, Ordering::SeqCst);
        self.crash_at.store(k, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
    }

    /// Disarm everything (injections, random faults, crash countdown) and
    /// reset the op counters.
    pub fn clear(&self) {
        let mut plan = self.lock_plan();
        plan.injections.clear();
        plan.random_eio_per_mille = 0;
        drop(plan);
        self.crash_at.store(u64::MAX, Ordering::SeqCst);
        self.crashed.store(false, Ordering::SeqCst);
        self.mutations.store(0, Ordering::SeqCst);
        self.ops.store(0, Ordering::SeqCst);
    }

    /// Mutating ops completed so far — run a "golden" pass first to learn
    /// how many mutation steps an operation takes, then crash at each.
    pub fn mutations(&self) -> u64 {
        self.mutations.load(Ordering::SeqCst)
    }

    /// Total ops attempted so far.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    /// Did the armed crash fire?
    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    fn crash_error() -> io::Error {
        io::Error::other("simulated crash")
    }

    /// The per-op gate. `Ok(None)` = proceed normally; `Ok(Some(f))` =
    /// apply fault `f` (the caller decides its partial effect);
    /// `Err(Crash)` is signalled through the dedicated variant below.
    fn gate(&self, op: VfsOp, path: &Path) -> Gate {
        self.ops.fetch_add(1, Ordering::SeqCst);
        if self.crashed.load(Ordering::SeqCst) {
            return Gate::Crash { torn: false };
        }
        if op.is_mutation() {
            let m = self.mutations.fetch_add(1, Ordering::SeqCst);
            if m >= self.crash_at.load(Ordering::SeqCst) {
                self.crashed.store(true, Ordering::SeqCst);
                return Gate::Crash { torn: self.crash_torn.load(Ordering::SeqCst) };
            }
        }
        let mut plan = self.lock_plan();
        let path_str = path.to_string_lossy();
        for i in 0..plan.injections.len() {
            let inj = &plan.injections[i];
            if inj.op != op {
                continue;
            }
            if let Some(sub) = &inj.path_contains {
                if !path_str.contains(sub.as_str()) {
                    continue;
                }
            }
            if plan.injections[i].skip > 0 {
                plan.injections[i].skip -= 1;
                continue;
            }
            let kind = inj.kind;
            if !inj.sticky {
                plan.injections.remove(i);
            }
            return Gate::Fault(kind);
        }
        if plan.random_eio_per_mille > 0 {
            // SplitMix64: deterministic under the seed.
            plan.rng = plan.rng.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = plan.rng;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            if z % 1000 < plan.random_eio_per_mille {
                return Gate::Fault(Fault::Eio);
            }
        }
        Gate::Pass
    }
}

enum Gate {
    Pass,
    Fault(Fault),
    Crash { torn: bool },
}

impl Vfs for ErrInjFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.gate(VfsOp::CreateDir, path) {
            Gate::Pass => self.inner.create_dir_all(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn remove_dir_all(&self, path: &Path) -> io::Result<()> {
        match self.gate(VfsOp::RemoveDir, path) {
            Gate::Pass => self.inner.remove_dir_all(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        match self.gate(VfsOp::RemoveFile, path) {
            Gate::Pass => self.inner.remove_file(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate(VfsOp::Rename, from) {
            Gate::Pass => self.inner.rename(from, to),
            Gate::Fault(Fault::TornRename) => {
                // The rename lands on disk; the caller sees EIO — exactly
                // the crash window between rename and directory fsync.
                let _ = self.inner.rename(from, to);
                Err(Fault::TornRename.to_error())
            }
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { torn } => {
                if torn {
                    let _ = self.inner.rename(from, to);
                }
                Err(Self::crash_error())
            }
        }
    }

    fn write_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(VfsOp::Write, path) {
            Gate::Pass => self.inner.write_file(path, bytes),
            Gate::Fault(Fault::ShortWrite) => {
                // Half the bytes land, unfsynced; the caller sees failure.
                let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
                Err(Fault::ShortWrite.to_error())
            }
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { torn } => {
                if torn {
                    let _ = std::fs::write(path, &bytes[..bytes.len() / 2]);
                }
                Err(Self::crash_error())
            }
        }
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        match self.gate(VfsOp::Append, path) {
            Gate::Pass => self.inner.append_file(path, bytes),
            Gate::Fault(Fault::ShortWrite) => {
                // Half the appended bytes land as a torn tail, unfsynced.
                let _ = self.inner.append_file(path, &bytes[..bytes.len() / 2]);
                Err(Fault::ShortWrite.to_error())
            }
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { torn } => {
                if torn {
                    let _ = self.inner.append_file(path, &bytes[..bytes.len() / 2]);
                }
                Err(Self::crash_error())
            }
        }
    }

    fn fsync_dir(&self, path: &Path) -> io::Result<()> {
        match self.gate(VfsOp::FsyncDir, path) {
            Gate::Pass => self.inner.fsync_dir(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        match self.gate(VfsOp::Read, path) {
            Gate::Pass => self.inner.read(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn list_dir(&self, path: &Path) -> io::Result<Vec<PathBuf>> {
        match self.gate(VfsOp::ListDir, path) {
            Gate::Pass => self.inner.list_dir(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn file_len(&self, path: &Path) -> io::Result<u64> {
        match self.gate(VfsOp::Stat, path) {
            Gate::Pass => self.inner.file_len(path),
            Gate::Fault(f) => Err(f.to_error()),
            Gate::Crash { .. } => Err(Self::crash_error()),
        }
    }

    fn mtime_unix(&self, path: &Path) -> u64 {
        self.inner.mtime_unix(path)
    }

    fn is_dir(&self, path: &Path) -> bool {
        self.inner.is_dir(path)
    }

    fn is_file(&self, path: &Path) -> bool {
        self.inner.is_file(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("ftrepair-vfs-test-{tag}-{}", std::process::id()))
    }

    #[test]
    fn one_shot_fault_fires_once() {
        let fs = ErrInjFs::new(1);
        let path = temp_file("oneshot");
        fs.fail_next(VfsOp::Write, Fault::Eio);
        let err = fs.write_file(&path, b"hello").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(5));
        assert!(!path.exists(), "EIO leaves no bytes behind");
        fs.write_file(&path, b"hello").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"hello");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn enospc_has_raw_os_error_28() {
        let fs = ErrInjFs::new(2);
        fs.fail_next(VfsOp::Write, Fault::Enospc);
        let err = fs.write_file(&temp_file("enospc"), b"x").unwrap_err();
        assert_eq!(err.raw_os_error(), Some(28));
    }

    #[test]
    fn short_write_lands_half_the_bytes() {
        let fs = ErrInjFs::new(3);
        let path = temp_file("short");
        fs.fail_next(VfsOp::Write, Fault::ShortWrite);
        let err = fs.write_file(&path, b"12345678").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(fs.read(&path).unwrap(), b"1234", "exactly half landed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_rename_completes_but_reports_failure() {
        let fs = ErrInjFs::new(4);
        let from = temp_file("torn-from");
        let to = temp_file("torn-to");
        fs.write_file(&from, b"payload").unwrap();
        fs.fail_next(VfsOp::Rename, Fault::TornRename);
        assert!(fs.rename(&from, &to).is_err());
        assert!(!from.exists() && to.exists(), "the rename landed anyway");
        let _ = std::fs::remove_file(&to);
    }

    #[test]
    fn crash_is_sticky_and_counts_mutations() {
        let fs = ErrInjFs::new(5);
        let path = temp_file("crash");
        fs.write_file(&path, b"a").unwrap();
        assert_eq!(fs.mutations(), 1);
        fs.crash_after_mutations(1, false);
        assert!(fs.write_file(&path, b"b").is_err(), "crash fires at mutation 1");
        assert!(fs.crashed());
        assert!(fs.read(&path).is_err(), "everything fails after the crash");
        assert_eq!(std::fs::read(&path).unwrap(), b"a", "pre-crash bytes intact");
        fs.clear();
        assert_eq!(fs.read(&path).unwrap(), b"a");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn append_accumulates_and_torn_append_lands_half_the_tail() {
        let fs = ErrInjFs::new(8);
        let path = temp_file("append");
        let _ = std::fs::remove_file(&path);
        fs.append_file(&path, b"aaaa").unwrap();
        fs.append_file(&path, b"bbbb").unwrap();
        assert_eq!(fs.read(&path).unwrap(), b"aaaabbbb");
        fs.fail_next(VfsOp::Append, Fault::ShortWrite);
        assert!(fs.append_file(&path, b"cccc").is_err());
        assert_eq!(fs.read(&path).unwrap(), b"aaaabbbbcc", "half the tail landed");
        // A crash mid-append is torn the same way, and appends count as
        // mutations for the crash countdown.
        fs.clear();
        fs.crash_after_mutations(0, true);
        assert!(fs.append_file(&path, b"dddd").is_err());
        assert!(fs.crashed());
        assert_eq!(std::fs::read(&path).unwrap(), b"aaaabbbbccdd");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn countdown_skips_n_matching_ops() {
        let fs = ErrInjFs::new(6);
        let path = temp_file("countdown");
        fs.fail_nth(VfsOp::Write, 2, Fault::Eio);
        fs.write_file(&path, b"1").unwrap();
        fs.write_file(&path, b"2").unwrap();
        assert!(fs.write_file(&path, b"3").is_err(), "third write fails");
        fs.write_file(&path, b"4").unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn path_targeted_fault_ignores_other_paths() {
        let fs = ErrInjFs::new(7);
        let a = temp_file("path-a");
        let b = temp_file("path-b-manifest");
        fs.fail_on_path(VfsOp::Write, "manifest", Fault::Eio);
        fs.write_file(&a, b"ok").unwrap();
        assert!(fs.write_file(&b, b"no").is_err());
        let _ = std::fs::remove_file(&a);
    }

    #[test]
    fn seeded_random_faults_are_deterministic() {
        let trace = |seed: u64| -> Vec<bool> {
            let fs = ErrInjFs::new(seed);
            fs.fail_randomly(300);
            let path = temp_file(&format!("rand-{seed}"));
            let out: Vec<bool> = (0..32).map(|_| fs.write_file(&path, b"x").is_ok()).collect();
            let _ = std::fs::remove_file(&path);
            out
        };
        assert_eq!(trace(42), trace(42), "same seed, same fault schedule");
        assert!(trace(42).iter().any(|ok| !ok), "some ops do fail");
        assert!(trace(42).iter().any(|ok| *ok), "some ops succeed");
    }
}

//! Pretty-printing the AST back to concrete syntax.
//!
//! `parse(unparse(ast)) == ast` — the round trip is exact (tested, including
//! property-based round trips over random ASTs), which makes the printer
//! safe to use for saving generated or transformed programs.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn unparse(p: &Program) -> String {
    let mut out = String::new();
    writeln!(out, "program {};", p.name).unwrap();
    writeln!(out).unwrap();
    for v in &p.vars {
        if v.lo == 0 && v.hi == 1 {
            writeln!(out, "var {} : boolean;", v.name).unwrap();
        } else {
            writeln!(out, "var {} : {}..{};", v.name, v.lo, v.hi).unwrap();
        }
    }
    for proc_ in &p.processes {
        writeln!(out).unwrap();
        writeln!(out, "process {}", proc_.name).unwrap();
        writeln!(out, "  read {};", proc_.read.join(", ")).unwrap();
        writeln!(out, "  write {};", proc_.write.join(", ")).unwrap();
        writeln!(out, "begin").unwrap();
        for a in &proc_.actions {
            writeln!(out, "  {}", unparse_action(a)).unwrap();
        }
        writeln!(out, "end").unwrap();
    }
    for f in &p.faults {
        writeln!(out).unwrap();
        writeln!(out, "fault {}", f.name).unwrap();
        writeln!(out, "begin").unwrap();
        for a in &f.actions {
            writeln!(out, "  {}", unparse_action(a)).unwrap();
        }
        writeln!(out, "end").unwrap();
    }
    for e in &p.invariants {
        writeln!(out, "invariant {};", unparse_expr(e)).unwrap();
    }
    for e in &p.bad_states {
        writeln!(out, "badstates {};", unparse_expr(e)).unwrap();
    }
    for e in &p.bad_trans {
        writeln!(out, "badtrans {};", unparse_expr(e)).unwrap();
    }
    for (l, t) in &p.leads_to {
        writeln!(out, "leadsto {} => {};", unparse_expr(l), unparse_expr(t)).unwrap();
    }
    out
}

fn unparse_action(a: &Action) -> String {
    let assigns: Vec<String> = a
        .assigns
        .iter()
        .map(|asg| {
            if asg.choices.len() == 1 {
                format!("{} := {}", asg.target, unparse_expr(&asg.choices[0]))
            } else {
                let cs: Vec<String> = asg.choices.iter().map(unparse_expr).collect();
                format!("{} := {{{}}}", asg.target, cs.join(", "))
            }
        })
        .collect();
    format!("{} -> {};", unparse_expr(&a.guard), assigns.join(", "))
}

/// Render an expression, fully parenthesized (parenthesization is the
/// easiest way to make the round trip exact regardless of precedence).
pub fn unparse_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Bool(true) => "true".into(),
        Expr::Bool(false) => "false".into(),
        Expr::Var(n) => n.clone(),
        Expr::Primed(n) => format!("{n}'"),
        Expr::Not(x) => format!("!({})", unparse_expr(x)),
        Expr::And(l, r) => format!("({} & {})", unparse_expr(l), unparse_expr(r)),
        Expr::Or(l, r) => format!("({} | {})", unparse_expr(l), unparse_expr(r)),
        Expr::Cmp(op, l, r) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Neq => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", unparse_expr(l), sym, unparse_expr(r))
        }
        Expr::Add(l, r) => format!("({} + {})", unparse_expr(l), unparse_expr(r)),
        Expr::Sub(l, r) => format!("({} - {})", unparse_expr(l), unparse_expr(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use proptest::prelude::*;

    const TOY: &str = r#"
    program toggle;
    var x : 0..2;
    var y : boolean;
    process p
      read x, y;
      write x;
    begin
      (x = 0) & (y = 1) -> x := 1;
      (x = 1) -> x := {0, 2};
    end
    fault hit begin (x = 1) -> x := 2; end
    invariant (x = 0) | (x = 1);
    badstates (x = 2) & (y = 0);
    badtrans (x = 1) & (x' = 0);
    "#;

    #[test]
    fn roundtrip_toy_program() {
        let ast = parse(TOY).unwrap();
        let printed = unparse(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(ast, reparsed);
    }

    #[test]
    fn boolean_domain_prints_as_boolean() {
        let ast = parse("program t; var b : boolean;").unwrap();
        assert!(unparse(&ast).contains("var b : boolean;"));
    }

    // Random-AST round trip.

    fn arb_name() -> impl Strategy<Value = String> {
        "[a-z][a-z0-9]{0,4}".prop_map(|s| s)
    }

    /// Value-typed expressions (what may appear under `+`, `-` and
    /// comparisons) — mirrors the language's typing, which is also what
    /// the grammar can express.
    fn arb_value() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0u64..10).prop_map(Expr::Int),
            arb_name().prop_map(Expr::Var),
            arb_name().prop_map(Expr::Primed),
        ];
        leaf.prop_recursive(3, 12, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::Add(Box::new(a), Box::new(b))),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Expr::Sub(Box::new(a), Box::new(b))),
            ]
        })
    }

    /// Boolean-typed expressions.
    fn arb_expr() -> impl Strategy<Value = Expr> {
        let cmp = (
            prop_oneof![
                Just(CmpOp::Eq),
                Just(CmpOp::Neq),
                Just(CmpOp::Lt),
                Just(CmpOp::Le),
                Just(CmpOp::Gt),
                Just(CmpOp::Ge)
            ],
            arb_value(),
            arb_value(),
        )
            .prop_map(|(op, a, b)| Expr::Cmp(op, Box::new(a), Box::new(b)));
        let leaf = prop_oneof![any::<bool>().prop_map(Expr::Bool), cmp];
        leaf.prop_recursive(3, 16, 2, |inner| {
            prop_oneof![
                inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
                (inner.clone(), inner.clone())
                    .prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
                (inner.clone(), inner)
                    .prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            ]
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn expr_roundtrip(e in arb_expr()) {
            // Wrap in a minimal program: badtrans accepts primed vars.
            let src = format!("program t; badtrans {};", unparse_expr(&e));
            let ast = parse(&src).unwrap_or_else(|err| panic!("{err}\n{src}"));
            prop_assert_eq!(&ast.bad_trans[0], &e);
        }

        #[test]
        fn action_roundtrip(
            guard in arb_expr(),
            target in arb_name(),
            choices in proptest::collection::vec(arb_value(), 1..3),
        ) {
            let a = Action { guard, assigns: vec![Assign { target, choices }] };
            let src = format!("program t; fault f begin {} end", unparse_action(&a));
            let ast = parse(&src).unwrap_or_else(|err| {
                panic!("{err}\n{}", unparse_action(&a))
            });
            prop_assert_eq!(&ast.faults[0].actions[0], &a);
        }
    }
}

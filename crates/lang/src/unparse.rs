//! Pretty-printing the AST back to concrete syntax.
//!
//! `parse(unparse(ast)) == ast` — the round trip is exact (tested, including
//! property-based round trips over random ASTs), which makes the printer
//! safe to use for saving generated or transformed programs.

use crate::ast::*;
use std::fmt::Write;

/// Render a whole program.
pub fn unparse(p: &Program) -> String {
    let mut out = String::new();
    writeln!(out, "program {};", p.name).unwrap();
    writeln!(out).unwrap();
    for v in &p.vars {
        if v.lo == 0 && v.hi == 1 {
            writeln!(out, "var {} : boolean;", v.name).unwrap();
        } else {
            writeln!(out, "var {} : {}..{};", v.name, v.lo, v.hi).unwrap();
        }
    }
    for proc_ in &p.processes {
        writeln!(out).unwrap();
        writeln!(out, "process {}", proc_.name).unwrap();
        writeln!(out, "  read {};", proc_.read.join(", ")).unwrap();
        writeln!(out, "  write {};", proc_.write.join(", ")).unwrap();
        writeln!(out, "begin").unwrap();
        for a in &proc_.actions {
            writeln!(out, "  {}", unparse_action(a)).unwrap();
        }
        writeln!(out, "end").unwrap();
    }
    for f in &p.faults {
        writeln!(out).unwrap();
        writeln!(out, "fault {}", f.name).unwrap();
        writeln!(out, "begin").unwrap();
        for a in &f.actions {
            writeln!(out, "  {}", unparse_action(a)).unwrap();
        }
        writeln!(out, "end").unwrap();
    }
    for e in &p.invariants {
        writeln!(out, "invariant {};", unparse_expr(e)).unwrap();
    }
    for e in &p.bad_states {
        writeln!(out, "badstates {};", unparse_expr(e)).unwrap();
    }
    for e in &p.bad_trans {
        writeln!(out, "badtrans {};", unparse_expr(e)).unwrap();
    }
    for (l, t) in &p.leads_to {
        writeln!(out, "leadsto {} => {};", unparse_expr(l), unparse_expr(t)).unwrap();
    }
    out
}

fn unparse_action(a: &Action) -> String {
    let assigns: Vec<String> = a
        .assigns
        .iter()
        .map(|asg| {
            if asg.choices.len() == 1 {
                format!("{} := {}", asg.target, unparse_expr(&asg.choices[0]))
            } else {
                let cs: Vec<String> = asg.choices.iter().map(unparse_expr).collect();
                format!("{} := {{{}}}", asg.target, cs.join(", "))
            }
        })
        .collect();
    format!("{} -> {};", unparse_expr(&a.guard), assigns.join(", "))
}

/// Render an expression, fully parenthesized (parenthesization is the
/// easiest way to make the round trip exact regardless of precedence).
pub fn unparse_expr(e: &Expr) -> String {
    match e {
        Expr::Int(v) => v.to_string(),
        Expr::Bool(true) => "true".into(),
        Expr::Bool(false) => "false".into(),
        Expr::Var(n) => n.clone(),
        Expr::Primed(n) => format!("{n}'"),
        Expr::Not(x) => format!("!({})", unparse_expr(x)),
        Expr::And(l, r) => format!("({} & {})", unparse_expr(l), unparse_expr(r)),
        Expr::Or(l, r) => format!("({} | {})", unparse_expr(l), unparse_expr(r)),
        Expr::Cmp(op, l, r) => {
            let sym = match op {
                CmpOp::Eq => "=",
                CmpOp::Neq => "!=",
                CmpOp::Lt => "<",
                CmpOp::Le => "<=",
                CmpOp::Gt => ">",
                CmpOp::Ge => ">=",
            };
            format!("({} {} {})", unparse_expr(l), sym, unparse_expr(r))
        }
        Expr::Add(l, r) => format!("({} + {})", unparse_expr(l), unparse_expr(r)),
        Expr::Sub(l, r) => format!("({} - {})", unparse_expr(l), unparse_expr(r)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;
    use ftrepair_bdd::SplitMix64;

    const TOY: &str = r#"
    program toggle;
    var x : 0..2;
    var y : boolean;
    process p
      read x, y;
      write x;
    begin
      (x = 0) & (y = 1) -> x := 1;
      (x = 1) -> x := {0, 2};
    end
    fault hit begin (x = 1) -> x := 2; end
    invariant (x = 0) | (x = 1);
    badstates (x = 2) & (y = 0);
    badtrans (x = 1) & (x' = 0);
    "#;

    #[test]
    fn roundtrip_toy_program() {
        let ast = parse(TOY).unwrap();
        let printed = unparse(&ast);
        let reparsed = parse(&printed).unwrap_or_else(|e| panic!("{e}\n{printed}"));
        assert_eq!(ast, reparsed);
    }

    #[test]
    fn boolean_domain_prints_as_boolean() {
        let ast = parse("program t; var b : boolean;").unwrap();
        assert!(unparse(&ast).contains("var b : boolean;"));
    }

    // Random-AST round trip, driven by the in-tree deterministic PRNG so
    // every run checks the same 128 cases per property.

    const CASES: u64 = 128;

    /// Keywords and literal spellings a generated identifier must avoid —
    /// `parse(unparse(Var("var")))` would lex as a keyword, not a name.
    const RESERVED: &[&str] = &[
        "program",
        "var",
        "boolean",
        "process",
        "read",
        "write",
        "begin",
        "end",
        "fault",
        "invariant",
        "badstates",
        "badtrans",
        "leadsto",
        "true",
        "false",
    ];

    fn gen_name(rng: &mut SplitMix64) -> String {
        loop {
            let len = 1 + rng.gen_index(5);
            let mut s = String::new();
            for i in 0..len {
                let c = if i == 0 {
                    b'a' + rng.gen_range(26) as u8
                } else {
                    let alphabet = b"abcdefghijklmnopqrstuvwxyz0123456789";
                    alphabet[rng.gen_index(alphabet.len())]
                };
                s.push(c as char);
            }
            if !RESERVED.contains(&s.as_str()) {
                return s;
            }
        }
    }

    /// Value-typed expressions (what may appear under `+`, `-` and
    /// comparisons) — mirrors the language's typing, which is also what
    /// the grammar can express.
    fn gen_value(rng: &mut SplitMix64, depth: u32) -> Expr {
        if depth == 0 || rng.gen_range(3) == 0 {
            return match rng.gen_range(3) {
                0 => Expr::Int(rng.gen_range(10)),
                1 => Expr::Var(gen_name(rng)),
                _ => Expr::Primed(gen_name(rng)),
            };
        }
        let a = Box::new(gen_value(rng, depth - 1));
        let b = Box::new(gen_value(rng, depth - 1));
        if rng.coin() {
            Expr::Add(a, b)
        } else {
            Expr::Sub(a, b)
        }
    }

    /// Boolean-typed expressions.
    fn gen_expr(rng: &mut SplitMix64, depth: u32) -> Expr {
        if depth == 0 || rng.gen_range(3) == 0 {
            if rng.coin() {
                return Expr::Bool(rng.coin());
            }
            let op = match rng.gen_range(6) {
                0 => CmpOp::Eq,
                1 => CmpOp::Neq,
                2 => CmpOp::Lt,
                3 => CmpOp::Le,
                4 => CmpOp::Gt,
                _ => CmpOp::Ge,
            };
            let a = Box::new(gen_value(rng, 2));
            let b = Box::new(gen_value(rng, 2));
            return Expr::Cmp(op, a, b);
        }
        match rng.gen_range(3) {
            0 => Expr::Not(Box::new(gen_expr(rng, depth - 1))),
            1 => Expr::And(Box::new(gen_expr(rng, depth - 1)), Box::new(gen_expr(rng, depth - 1))),
            _ => Expr::Or(Box::new(gen_expr(rng, depth - 1)), Box::new(gen_expr(rng, depth - 1))),
        }
    }

    #[test]
    fn expr_roundtrip() {
        for i in 0..CASES {
            let mut rng = SplitMix64::seed_from_u64(0x1000 + i);
            let e = gen_expr(&mut rng, 3);
            // Wrap in a minimal program: badtrans accepts primed vars.
            let src = format!("program t; badtrans {};", unparse_expr(&e));
            let ast = parse(&src).unwrap_or_else(|err| panic!("{err}\n{src}"));
            assert_eq!(&ast.bad_trans[0], &e, "case {i}: {src}");
        }
    }

    #[test]
    fn action_roundtrip() {
        for i in 0..CASES {
            let mut rng = SplitMix64::seed_from_u64(0x2000 + i);
            let guard = gen_expr(&mut rng, 3);
            let target = gen_name(&mut rng);
            let choices = (0..1 + rng.gen_index(2)).map(|_| gen_value(&mut rng, 2)).collect();
            let a = Action { guard, assigns: vec![Assign { target, choices }] };
            let src = format!("program t; fault f begin {} end", unparse_action(&a));
            let ast = parse(&src).unwrap_or_else(|err| panic!("{err}\n{}", unparse_action(&a)));
            assert_eq!(&ast.faults[0].actions[0], &a, "case {i}: {src}");
        }
    }
}

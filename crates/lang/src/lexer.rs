//! Tokenizer for the guarded-command language.

/// A token with its source position (byte offset of its first character).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// Kind and payload.
    pub kind: TokenKind,
    /// Byte offset into the source (for error messages).
    pub pos: usize,
}

/// Token kinds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier (may contain `.` for structured names like `d.g`).
    Ident(String),
    /// Integer literal.
    Int(u64),
    /// Keywords.
    KwProgram,
    KwVar,
    KwBoolean,
    KwProcess,
    KwRead,
    KwWrite,
    KwBegin,
    KwEnd,
    KwFault,
    KwInvariant,
    KwBadStates,
    KwBadTrans,
    KwLeadsTo,
    KwTrue,
    KwFalse,
    /// `->`
    Arrow,
    /// `=>` (in `leadsto L => T;`)
    FatArrow,
    /// `:=`
    Assign,
    /// `..`
    DotDot,
    /// `'` (prime, for next-state variables)
    Prime,
    /// Punctuation and operators.
    Semi,
    Colon,
    Comma,
    LParen,
    RParen,
    LBrace,
    RBrace,
    Or,
    And,
    Not,
    Eq,
    Neq,
    Lt,
    Le,
    Gt,
    Ge,
    Plus,
    Minus,
}

/// Lexing error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Byte offset.
    pub pos: usize,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

/// Tokenize `src`. Line comments start with `//`.
pub fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '0'..='9' => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text = &src[start..i];
                let value = text.parse::<u64>().map_err(|_| LexError {
                    message: format!("integer literal {text} out of range"),
                    pos: start,
                })?;
                out.push(Token { kind: TokenKind::Int(value), pos: start });
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b'.')
                {
                    // A `..` inside an identifier terminates it (range op).
                    if bytes[i] == b'.' && bytes.get(i + 1) == Some(&b'.') {
                        break;
                    }
                    i += 1;
                }
                let text = &src[start..i];
                let kind = match text {
                    "program" => TokenKind::KwProgram,
                    "var" => TokenKind::KwVar,
                    "boolean" => TokenKind::KwBoolean,
                    "process" => TokenKind::KwProcess,
                    "read" => TokenKind::KwRead,
                    "write" => TokenKind::KwWrite,
                    "begin" => TokenKind::KwBegin,
                    "end" => TokenKind::KwEnd,
                    "fault" => TokenKind::KwFault,
                    "invariant" => TokenKind::KwInvariant,
                    "badstates" => TokenKind::KwBadStates,
                    "badtrans" => TokenKind::KwBadTrans,
                    "leadsto" => TokenKind::KwLeadsTo,
                    "true" => TokenKind::KwTrue,
                    "false" => TokenKind::KwFalse,
                    _ => TokenKind::Ident(text.to_string()),
                };
                out.push(Token { kind, pos: start });
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token { kind: TokenKind::Arrow, pos: i });
                i += 2;
            }
            ':' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Assign, pos: i });
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Token { kind: TokenKind::FatArrow, pos: i });
                i += 2;
            }
            '.' if bytes.get(i + 1) == Some(&b'.') => {
                out.push(Token { kind: TokenKind::DotDot, pos: i });
                i += 2;
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Neq, pos: i });
                i += 2;
            }
            '<' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Le, pos: i });
                i += 2;
            }
            '>' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token { kind: TokenKind::Ge, pos: i });
                i += 2;
            }
            _ => {
                let kind = match c {
                    ';' => TokenKind::Semi,
                    ':' => TokenKind::Colon,
                    ',' => TokenKind::Comma,
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '|' => TokenKind::Or,
                    '&' => TokenKind::And,
                    '!' => TokenKind::Not,
                    '=' => TokenKind::Eq,
                    '<' => TokenKind::Lt,
                    '>' => TokenKind::Gt,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '\'' => TokenKind::Prime,
                    other => {
                        return Err(LexError {
                            message: format!("unexpected character {other:?}"),
                            pos: i,
                        })
                    }
                };
                out.push(Token { kind, pos: i });
                i += 1;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use TokenKind::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("program p; var x"),
            vec![KwProgram, Ident("p".into()), Semi, KwVar, Ident("x".into())]
        );
    }

    #[test]
    fn dotted_identifiers() {
        assert_eq!(kinds("d.g b.0"), vec![Ident("d.g".into()), Ident("b.0".into())]);
    }

    #[test]
    fn range_vs_dotted_name() {
        assert_eq!(kinds("0..2"), vec![Int(0), DotDot, Int(2)]);
        // Identifier followed by range: `x ..` must split correctly.
        assert_eq!(kinds("x..2"), vec![Ident("x".into()), DotDot, Int(2)]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            kinds("-> := != <= >= < > = + - | & ! '"),
            vec![Arrow, Assign, Neq, Le, Ge, Lt, Gt, Eq, Plus, Minus, Or, And, Not, Prime]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(kinds("x // the rest\n y"), vec![Ident("x".into()), Ident("y".into())]);
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 4);
    }

    #[test]
    fn unknown_character_errors() {
        let e = lex("a $ b").unwrap_err();
        assert_eq!(e.pos, 2);
        assert!(e.message.contains("unexpected"));
    }

    #[test]
    fn braces_and_numbers() {
        assert_eq!(kinds("{0, 12}"), vec![LBrace, Int(0), Comma, Int(12), RBrace]);
    }
}

//! Abstract syntax of the guarded-command language.

/// A whole source file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// `program NAME;`
    pub name: String,
    /// Variable declarations, in order.
    pub vars: Vec<VarDecl>,
    /// Process declarations, in order.
    pub processes: Vec<ProcessDecl>,
    /// Fault sections (each is a list of actions; names are documentation).
    pub faults: Vec<FaultDecl>,
    /// `invariant EXPR;` (conjoined if repeated).
    pub invariants: Vec<Expr>,
    /// `badstates EXPR;` (disjoined if repeated).
    pub bad_states: Vec<Expr>,
    /// `badtrans EXPR;` — may mention primed variables.
    pub bad_trans: Vec<Expr>,
    /// `leadsto L => T;` liveness properties (Definition 8).
    pub leads_to: Vec<(Expr, Expr)>,
}

/// `var NAME : 0..N;` or `var NAME : boolean;`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Variable name (dots allowed: `d.g`).
    pub name: String,
    /// Inclusive lower bound (must currently be 0).
    pub lo: u64,
    /// Inclusive upper bound.
    pub hi: u64,
}

/// A process with read/write sets and guarded actions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcessDecl {
    /// Process name.
    pub name: String,
    /// Readable variable names.
    pub read: Vec<String>,
    /// Writable variable names.
    pub write: Vec<String>,
    /// Guarded actions.
    pub actions: Vec<Action>,
}

/// A named fault section.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultDecl {
    /// Name (documentation only).
    pub name: String,
    /// Guarded actions; faults are exempt from read/write restrictions.
    pub actions: Vec<Action>,
}

/// `GUARD -> v := e, w := {e1, e2};`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Action {
    /// Enabling condition over current-state variables.
    pub guard: Expr,
    /// Parallel assignments.
    pub assigns: Vec<Assign>,
}

/// One assignment within an action.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assign {
    /// Target variable name.
    pub target: String,
    /// Candidate values (singleton for deterministic assignment).
    pub choices: Vec<Expr>,
}

/// Expressions. Boolean and arithmetic levels share one type; the compiler
/// type-checks (a comparison yields boolean, `+` needs values, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(u64),
    /// `true` / `false`.
    Bool(bool),
    /// Current-state variable.
    Var(String),
    /// Next-state variable (`x'`), only legal in `badtrans`.
    Primed(String),
    /// `!e`.
    Not(Box<Expr>),
    /// `a & b`.
    And(Box<Expr>, Box<Expr>),
    /// `a | b`.
    Or(Box<Expr>, Box<Expr>),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `a + b` (unbounded; results are checked against the target domain
    /// at assignment time).
    Add(Box<Expr>, Box<Expr>),
    /// `a - b` (saturating at 0).
    Sub(Box<Expr>, Box<Expr>),
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exprs_are_comparable() {
        let a = Expr::And(Box::new(Expr::Var("x".into())), Box::new(Expr::Bool(true)));
        let b = Expr::And(Box::new(Expr::Var("x".into())), Box::new(Expr::Bool(true)));
        assert_eq!(a, b);
    }
}

//! Recursive-descent parser for the guarded-command language.

use crate::ast::*;
use crate::lexer::{lex, LexError, Token, TokenKind};

/// Syntax error with byte position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Description.
    pub message: String,
    /// Byte offset into the source (`usize::MAX` = end of input).
    pub pos: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.pos == usize::MAX {
            write!(f, "{} at end of input", self.message)
        } else {
            write!(f, "{} at byte {}", self.message, self.pos)
        }
    }
}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { message: e.message, pos: e.pos }
    }
}

/// Parse a full source file.
pub fn parse(src: &str) -> Result<Program, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0, depth: 0 };
    p.program()
}

/// Maximum nesting depth of the expression grammar. The parser is
/// recursive-descent, so nesting consumes call stack: without a bound, a
/// few kilobytes of `(`s or `!`s in an untrusted spec overflow the stack
/// and abort the process — a crash where hostile input must get an error.
/// 256 levels is far beyond any guard or invariant written by a human.
const MAX_EXPR_DEPTH: usize = 256;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Current expression nesting depth (see [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn here(&self) -> usize {
        self.tokens.get(self.pos).map_or(usize::MAX, |t| t.pos)
    }

    fn bump(&mut self) -> Option<TokenKind> {
        let t = self.tokens.get(self.pos).map(|t| t.kind.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, kind: &TokenKind, what: &str) -> Result<(), ParseError> {
        if self.peek() == Some(kind) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {what}")))
        }
    }

    fn err(&self, message: String) -> ParseError {
        ParseError { message, pos: self.here() }
    }

    fn ident(&mut self, what: &str) -> Result<String, ParseError> {
        match self.peek() {
            Some(TokenKind::Ident(name)) => {
                let name = name.clone();
                self.pos += 1;
                Ok(name)
            }
            _ => Err(self.err(format!("expected {what}"))),
        }
    }

    fn program(&mut self) -> Result<Program, ParseError> {
        self.expect(&TokenKind::KwProgram, "`program`")?;
        let name = self.ident("program name")?;
        self.expect(&TokenKind::Semi, "`;` after program name")?;
        let mut prog = Program {
            name,
            vars: Vec::new(),
            processes: Vec::new(),
            faults: Vec::new(),
            invariants: Vec::new(),
            bad_states: Vec::new(),
            bad_trans: Vec::new(),
            leads_to: Vec::new(),
        };
        while let Some(kind) = self.peek() {
            match kind {
                TokenKind::KwVar => prog.vars.push(self.var_decl()?),
                TokenKind::KwProcess => prog.processes.push(self.process_decl()?),
                TokenKind::KwFault => prog.faults.push(self.fault_decl()?),
                TokenKind::KwInvariant => {
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect(&TokenKind::Semi, "`;` after invariant")?;
                    prog.invariants.push(e);
                }
                TokenKind::KwBadStates => {
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect(&TokenKind::Semi, "`;` after badstates")?;
                    prog.bad_states.push(e);
                }
                TokenKind::KwBadTrans => {
                    self.pos += 1;
                    let e = self.expr()?;
                    self.expect(&TokenKind::Semi, "`;` after badtrans")?;
                    prog.bad_trans.push(e);
                }
                TokenKind::KwLeadsTo => {
                    self.pos += 1;
                    let l = self.expr()?;
                    self.expect(&TokenKind::FatArrow, "`=>` in leadsto")?;
                    let t = self.expr()?;
                    self.expect(&TokenKind::Semi, "`;` after leadsto")?;
                    prog.leads_to.push((l, t));
                }
                _ => return Err(self.err("expected a declaration".into())),
            }
        }
        Ok(prog)
    }

    fn var_decl(&mut self) -> Result<VarDecl, ParseError> {
        self.expect(&TokenKind::KwVar, "`var`")?;
        let name = self.ident("variable name")?;
        self.expect(&TokenKind::Colon, "`:` in variable declaration")?;
        let (lo, hi) = match self.peek() {
            Some(TokenKind::KwBoolean) => {
                self.pos += 1;
                (0, 1)
            }
            Some(TokenKind::Int(lo)) => {
                let lo = *lo;
                self.pos += 1;
                self.expect(&TokenKind::DotDot, "`..` in range")?;
                match self.bump() {
                    Some(TokenKind::Int(hi)) => (lo, hi),
                    _ => return Err(self.err("expected range upper bound".into())),
                }
            }
            _ => return Err(self.err("expected `boolean` or a range".into())),
        };
        self.expect(&TokenKind::Semi, "`;` after variable declaration")?;
        Ok(VarDecl { name, lo, hi })
    }

    fn ident_list(&mut self) -> Result<Vec<String>, ParseError> {
        let mut out = vec![self.ident("variable name")?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            out.push(self.ident("variable name")?);
        }
        Ok(out)
    }

    fn process_decl(&mut self) -> Result<ProcessDecl, ParseError> {
        self.expect(&TokenKind::KwProcess, "`process`")?;
        let name = self.ident("process name")?;
        self.expect(&TokenKind::KwRead, "`read`")?;
        let read = self.ident_list()?;
        self.expect(&TokenKind::Semi, "`;` after read list")?;
        self.expect(&TokenKind::KwWrite, "`write`")?;
        let write = self.ident_list()?;
        self.expect(&TokenKind::Semi, "`;` after write list")?;
        let actions = self.action_block()?;
        Ok(ProcessDecl { name, read, write, actions })
    }

    fn fault_decl(&mut self) -> Result<FaultDecl, ParseError> {
        self.expect(&TokenKind::KwFault, "`fault`")?;
        let name = match self.peek() {
            Some(TokenKind::Ident(_)) => self.ident("fault name")?,
            _ => String::from("fault"),
        };
        let actions = self.action_block()?;
        Ok(FaultDecl { name, actions })
    }

    fn action_block(&mut self) -> Result<Vec<Action>, ParseError> {
        self.expect(&TokenKind::KwBegin, "`begin`")?;
        let mut actions = Vec::new();
        while self.peek() != Some(&TokenKind::KwEnd) {
            actions.push(self.action()?);
        }
        self.pos += 1; // consume `end`
        Ok(actions)
    }

    fn action(&mut self) -> Result<Action, ParseError> {
        let guard = self.expr()?;
        self.expect(&TokenKind::Arrow, "`->` after guard")?;
        let mut assigns = vec![self.assign()?];
        while self.peek() == Some(&TokenKind::Comma) {
            self.pos += 1;
            assigns.push(self.assign()?);
        }
        self.expect(&TokenKind::Semi, "`;` after action")?;
        Ok(Action { guard, assigns })
    }

    fn assign(&mut self) -> Result<Assign, ParseError> {
        let target = self.ident("assignment target")?;
        self.expect(&TokenKind::Assign, "`:=`")?;
        let choices = if self.peek() == Some(&TokenKind::LBrace) {
            self.pos += 1;
            let mut cs = vec![self.expr()?];
            while self.peek() == Some(&TokenKind::Comma) {
                self.pos += 1;
                cs.push(self.expr()?);
            }
            self.expect(&TokenKind::RBrace, "`}` after choice list")?;
            cs
        } else {
            vec![self.expr()?]
        };
        Ok(Assign { target, choices })
    }

    // Expression precedence: | < & < ! < cmp < +,- < atom.
    /// Bump the nesting depth, refusing to descend past [`MAX_EXPR_DEPTH`].
    fn descend(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            return Err(self.err(format!(
                "expression nesting exceeds {MAX_EXPR_DEPTH} levels; simplify the expression"
            )));
        }
        Ok(())
    }

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.descend()?;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == Some(&TokenKind::Or) {
            self.pos += 1;
            let rhs = self.and_expr()?;
            lhs = Expr::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.not_expr()?;
        while self.peek() == Some(&TokenKind::And) {
            self.pos += 1;
            let rhs = self.not_expr()?;
            lhs = Expr::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn not_expr(&mut self) -> Result<Expr, ParseError> {
        if self.peek() == Some(&TokenKind::Not) {
            self.pos += 1;
            // `!` recurses without passing through `expr`, so it needs its
            // own depth bump: a run of bare `!`s nests just as deep as a
            // run of `(`s.
            self.descend()?;
            let inner = self.not_expr();
            self.depth -= 1;
            Ok(Expr::Not(Box::new(inner?)))
        } else {
            self.cmp_expr()
        }
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let lhs = self.sum_expr()?;
        let op = match self.peek() {
            Some(TokenKind::Eq) => CmpOp::Eq,
            Some(TokenKind::Neq) => CmpOp::Neq,
            Some(TokenKind::Lt) => CmpOp::Lt,
            Some(TokenKind::Le) => CmpOp::Le,
            Some(TokenKind::Gt) => CmpOp::Gt,
            Some(TokenKind::Ge) => CmpOp::Ge,
            _ => return Ok(lhs),
        };
        self.pos += 1;
        let rhs = self.sum_expr()?;
        Ok(Expr::Cmp(op, Box::new(lhs), Box::new(rhs)))
    }

    fn sum_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.atom()?;
        loop {
            match self.peek() {
                Some(TokenKind::Plus) => {
                    self.pos += 1;
                    let rhs = self.atom()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(TokenKind::Minus) => {
                    self.pos += 1;
                    let rhs = self.atom()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn atom(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(TokenKind::Int(v)) => Ok(Expr::Int(v)),
            Some(TokenKind::KwTrue) => Ok(Expr::Bool(true)),
            Some(TokenKind::KwFalse) => Ok(Expr::Bool(false)),
            Some(TokenKind::Ident(name)) => {
                if self.peek() == Some(&TokenKind::Prime) {
                    self.pos += 1;
                    Ok(Expr::Primed(name))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            Some(TokenKind::LParen) => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            _ => {
                self.pos -= 1;
                Err(self.err("expected an expression".into()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TOY: &str = r#"
    program toggle;
    var x : 0..2;
    var y : boolean;
    process p
      read x, y;
      write x;
    begin
      (x = 0) & (y = 1) -> x := 1;
      (x = 1) -> x := {0, 2};
    end
    fault hit
    begin
      (x = 1) -> x := 2;
    end
    invariant (x = 0) | (x = 1);
    badstates (x = 2) & (y = 0);
    badtrans (x = 1) & (x' = 0);
    "#;

    #[test]
    fn parses_full_program() {
        let p = parse(TOY).unwrap();
        assert_eq!(p.name, "toggle");
        assert_eq!(p.vars.len(), 2);
        assert_eq!(p.vars[0], VarDecl { name: "x".into(), lo: 0, hi: 2 });
        assert_eq!(p.vars[1], VarDecl { name: "y".into(), lo: 0, hi: 1 });
        assert_eq!(p.processes.len(), 1);
        assert_eq!(p.processes[0].read, vec!["x", "y"]);
        assert_eq!(p.processes[0].write, vec!["x"]);
        assert_eq!(p.processes[0].actions.len(), 2);
        assert_eq!(p.faults.len(), 1);
        assert_eq!(p.invariants.len(), 1);
        assert_eq!(p.bad_states.len(), 1);
        assert_eq!(p.bad_trans.len(), 1);
    }

    #[test]
    fn choice_assignments() {
        let p = parse(TOY).unwrap();
        let a = &p.processes[0].actions[1];
        assert_eq!(a.assigns[0].choices.len(), 2);
    }

    #[test]
    fn primed_variables_parse() {
        let p = parse(TOY).unwrap();
        let primed_eq = matches!(
            &p.bad_trans[0],
            Expr::And(_, rhs) if matches!(
                rhs.as_ref(),
                Expr::Cmp(CmpOp::Eq, l, _) if **l == Expr::Primed("x".into())
            )
        );
        assert!(primed_eq, "unexpected {:?}", p.bad_trans[0]);
    }

    #[test]
    fn operator_precedence() {
        let p = parse("program t; invariant a = 1 | b = 2 & c = 3;").unwrap();
        // | binds loosest: Or(a=1, And(b=2, c=3)).
        let or_of_and =
            matches!(&p.invariants[0], Expr::Or(_, rhs) if matches!(rhs.as_ref(), Expr::And(_, _)));
        assert!(or_of_and, "unexpected {:?}", p.invariants[0]);
    }

    #[test]
    fn arithmetic_parses() {
        let p = parse("program t; invariant x + 1 = y - 2;").unwrap();
        assert!(matches!(&p.invariants[0], Expr::Cmp(CmpOp::Eq, _, _)));
    }

    #[test]
    fn missing_semicolon_is_reported() {
        let e = parse("program t").unwrap_err();
        assert!(e.message.contains("`;`"));
        assert_eq!(e.pos, usize::MAX);
    }

    #[test]
    fn garbage_reports_position() {
        let e = parse("program t; var x : boolean; process").unwrap_err();
        assert!(e.message.contains("process name"));
    }

    #[test]
    fn anonymous_fault_section() {
        let p = parse("program t; fault begin true -> x := 1; end").unwrap();
        assert_eq!(p.faults[0].name, "fault");
    }

    #[test]
    fn multiple_assignments_in_action() {
        let p = parse("program t; fault begin true -> x := 1, y := 0; end").unwrap();
        assert_eq!(p.faults[0].actions[0].assigns.len(), 2);
    }

    /// Network-facing robustness: arbitrary malformed input must come back
    /// as `Err(ParseError)`, never panic a server worker.
    #[test]
    fn adversarial_inputs_error_instead_of_panicking() {
        let cases = [
            "",
            ";",
            "program",
            "program ;",
            "program t; var x :",
            "program t; var x : 5",
            "program t; var x : 0..",
            "program t; var x : 99999999999999999999999999;",
            "program t; process p read",
            "program t; process p read x; write x; begin",
            "program t; process p read x; write x; begin (x = 0) ->",
            "program t; process p read x; write x; begin x := 1; end",
            "program t; fault begin true -> x := {1, ; end",
            "program t; invariant (((((",
            "program t; invariant x = ;",
            "program t; badtrans x' ' ';",
            "program t; leadsto x = 1;",
            "program t; invariant x + + 1 = 2;",
            "end end end",
        ];
        for src in cases {
            assert!(parse(src).is_err(), "accepted malformed input {src:?}");
        }
    }

    /// Nesting past [`MAX_EXPR_DEPTH`] must come back as a parse error,
    /// not a stack overflow: the daemon feeds untrusted specs straight
    /// into this parser, and `SIGSEGV` is not a recoverable 400.
    #[test]
    fn deep_nesting_errors_instead_of_overflowing_the_stack() {
        let bombs = [
            // 100k parens would blow an 8 MiB stack many times over.
            format!("program t; invariant {}true{};", "(".repeat(100_000), ")".repeat(100_000)),
            // `!` recurses on a different path than `(`.
            format!("program t; invariant {}true;", "!".repeat(100_000)),
            // Unclosed nesting still descends all the way down.
            format!("program t; invariant {}", "(".repeat(100_000)),
        ];
        for src in &bombs {
            let err = parse(src).expect_err("depth bomb must be rejected");
            assert!(err.message.contains("nesting exceeds"), "unexpected error: {}", err.message);
        }
    }

    /// The limit must not reject plausibly-deep human input.
    #[test]
    fn reasonable_nesting_still_parses() {
        let depth = 64;
        let src = format!("program t; invariant {}x = 1{};", "(".repeat(depth), ")".repeat(depth));
        parse(&src).expect("64 levels of parens is legitimate input");
    }
}

//! Compilation of the guarded-command AST onto
//! [`ftrepair_program::ProgramBuilder`].
//!
//! The central device is the **value-indexed BDD family**: an arithmetic
//! expression compiles to a list of `(value, condition)` pairs where
//! `condition` is the BDD of the states in which the expression evaluates
//! to `value`. Comparisons fold two families into one boolean BDD;
//! assignments fold a family into a relational constraint
//! `⋁ (condition ∧ target' = value)`.

use crate::ast::*;
use ftrepair_bdd::{NodeId, FALSE, TRUE};
use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};
use ftrepair_symbolic::{SymbolicContext, VarId};
use std::collections::HashMap;

/// Semantic error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompileError {
    /// Description (includes the offending name where applicable).
    pub message: String,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for CompileError {}

fn err<T>(message: impl Into<String>) -> Result<T, CompileError> {
    Err(CompileError { message: message.into() })
}

/// A compiled expression: boolean, or a value-indexed family.
enum Compiled {
    Bool(NodeId),
    Values(Vec<(u64, NodeId)>),
}

/// Largest variable domain the compiler accepts. Value families are
/// enumerated per occurrence, so an absurd range in a spec (which may have
/// arrived over the network) must be rejected up front rather than spin
/// the compiler for hours or overflow `hi + 1`.
pub const MAX_DOMAIN: u64 = 1 << 16;

/// Compile a parsed [`Program`] into a [`DistributedProgram`].
pub fn compile(ast: &Program) -> Result<DistributedProgram, CompileError> {
    let mut b = ProgramBuilder::new(ast.name.clone());

    // Declare variables.
    let mut vars: HashMap<String, VarId> = HashMap::new();
    for decl in &ast.vars {
        if decl.lo != 0 {
            return err(format!("variable {}: ranges must start at 0", decl.name));
        }
        if decl.hi < 1 {
            return err(format!("variable {}: domain needs at least two values", decl.name));
        }
        if decl.hi >= MAX_DOMAIN {
            return err(format!(
                "variable {}: domain 0..{} exceeds the supported maximum 0..{}",
                decl.name,
                decl.hi,
                MAX_DOMAIN - 1
            ));
        }
        if vars.contains_key(&decl.name) {
            return err(format!("duplicate variable {}", decl.name));
        }
        let v = b.var(decl.name.clone(), decl.hi + 1);
        vars.insert(decl.name.clone(), v);
    }
    let lookup = |name: &str| -> Result<VarId, CompileError> {
        vars.get(name).copied().ok_or(CompileError { message: format!("unknown variable {name}") })
    };

    // Processes.
    for proc_ in &ast.processes {
        let read: Vec<VarId> = proc_.read.iter().map(|n| lookup(n)).collect::<Result<_, _>>()?;
        let write: Vec<VarId> = proc_.write.iter().map(|n| lookup(n)).collect::<Result<_, _>>()?;
        for w in &proc_.write {
            if !proc_.read.contains(w) {
                return err(format!(
                    "process {}: writes {} without reading it (W ⊆ R required)",
                    proc_.name, w
                ));
            }
        }
        b.process(proc_.name.clone(), &read, &write);
        for action in &proc_.actions {
            let (guard, updates) = compile_action(b.cx(), &vars, action, Some(&proc_.write))?;
            b.action(guard, &updates);
        }
    }

    // Faults.
    for fault in &ast.faults {
        for action in &fault.actions {
            let (guard, updates) = compile_action(b.cx(), &vars, action, None)?;
            b.fault_action(guard, &updates);
        }
    }

    // Specification.
    let mut inv = TRUE;
    for e in &ast.invariants {
        let c = compile_bool(b.cx(), &vars, e, false)?;
        inv = b.cx().mgr().and(inv, c);
    }
    b.invariant(inv);
    for e in &ast.bad_states {
        let c = compile_bool(b.cx(), &vars, e, false)?;
        b.bad_states(c);
    }
    for e in &ast.bad_trans {
        let c = compile_bool(b.cx(), &vars, e, true)?;
        b.bad_trans(c);
    }
    for (l, t) in &ast.leads_to {
        let cl = compile_bool(b.cx(), &vars, l, false)?;
        let ct = compile_bool(b.cx(), &vars, t, false)?;
        b.leads_to(cl, ct);
    }

    Ok(b.build())
}

/// Compile one action to `(guard, updates)` for the builder. `write_set`
/// is `Some` for process actions (checked) and `None` for faults.
fn compile_action(
    cx: &mut SymbolicContext,
    vars: &HashMap<String, VarId>,
    action: &Action,
    write_set: Option<&[String]>,
) -> Result<(NodeId, Vec<(VarId, Update)>), CompileError> {
    let guard = compile_bool(cx, vars, &action.guard, false)?;
    let mut updates = Vec::new();
    let mut seen_targets: Vec<&str> = Vec::new();
    for assign in &action.assigns {
        if seen_targets.contains(&assign.target.as_str()) {
            return err(format!("variable {} assigned twice in one action", assign.target));
        }
        seen_targets.push(&assign.target);
        if let Some(ws) = write_set {
            if !ws.contains(&assign.target) {
                return err(format!(
                    "action writes {} outside the process write set",
                    assign.target
                ));
            }
        }
        let target = *vars
            .get(&assign.target)
            .ok_or(CompileError { message: format!("unknown variable {}", assign.target) })?;
        let size = cx.info(target).size;
        let mut rel = FALSE;
        for choice in &assign.choices {
            let family = compile_values(cx, vars, choice, false)?;
            for (value, cond) in family {
                // A value is only produced where the guard holds; guarded-
                // away overflow (e.g. `x < 3 -> x := x + 1`) is legal.
                let reachable = cx.mgr().and(cond, guard);
                if reachable == FALSE {
                    continue;
                }
                if value >= size {
                    return err(format!(
                        "assignment to {} can produce {} outside its domain 0..{}",
                        assign.target, value, size
                    ));
                }
                let tgt = cx.assign_const(target, value);
                let arm = cx.mgr().and(cond, tgt);
                rel = cx.mgr().or(rel, arm);
            }
        }
        updates.push((target, Update::Rel(rel)));
    }
    Ok((guard, updates))
}

/// Compile an expression that must be boolean.
fn compile_bool(
    cx: &mut SymbolicContext,
    vars: &HashMap<String, VarId>,
    e: &Expr,
    allow_primed: bool,
) -> Result<NodeId, CompileError> {
    match compile_expr(cx, vars, e, allow_primed)? {
        Compiled::Bool(b) => Ok(b),
        Compiled::Values(_) => err("expected a boolean expression (compare values with =, <, …)"),
    }
}

/// Compile an expression that must be a value family.
fn compile_values(
    cx: &mut SymbolicContext,
    vars: &HashMap<String, VarId>,
    e: &Expr,
    allow_primed: bool,
) -> Result<Vec<(u64, NodeId)>, CompileError> {
    match compile_expr(cx, vars, e, allow_primed)? {
        Compiled::Values(v) => Ok(v),
        Compiled::Bool(_) => err("expected a value expression, found a boolean"),
    }
}

fn compile_expr(
    cx: &mut SymbolicContext,
    vars: &HashMap<String, VarId>,
    e: &Expr,
    allow_primed: bool,
) -> Result<Compiled, CompileError> {
    Ok(match e {
        Expr::Int(v) => Compiled::Values(vec![(*v, TRUE)]),
        Expr::Bool(true) => Compiled::Bool(TRUE),
        Expr::Bool(false) => Compiled::Bool(FALSE),
        Expr::Var(name) => {
            let v = *vars
                .get(name)
                .ok_or(CompileError { message: format!("unknown variable {name}") })?;
            let size = cx.info(v).size;
            let family = (0..size).map(|val| (val, cx.assign_eq(v, val))).collect::<Vec<_>>();
            Compiled::Values(family)
        }
        Expr::Primed(name) => {
            if !allow_primed {
                return err(format!(
                    "primed variable {name}' is only allowed in badtrans expressions"
                ));
            }
            let v = *vars
                .get(name)
                .ok_or(CompileError { message: format!("unknown variable {name}") })?;
            let size = cx.info(v).size;
            let family = (0..size).map(|val| (val, cx.assign_const(v, val))).collect::<Vec<_>>();
            Compiled::Values(family)
        }
        Expr::Not(inner) => {
            let b = compile_bool(cx, vars, inner, allow_primed)?;
            Compiled::Bool(cx.mgr().not(b))
        }
        Expr::And(l, r) => {
            let a = compile_bool(cx, vars, l, allow_primed)?;
            let b = compile_bool(cx, vars, r, allow_primed)?;
            Compiled::Bool(cx.mgr().and(a, b))
        }
        Expr::Or(l, r) => {
            let a = compile_bool(cx, vars, l, allow_primed)?;
            let b = compile_bool(cx, vars, r, allow_primed)?;
            Compiled::Bool(cx.mgr().or(a, b))
        }
        Expr::Cmp(op, l, r) => {
            let a = compile_values(cx, vars, l, allow_primed)?;
            let b = compile_values(cx, vars, r, allow_primed)?;
            let mut acc = FALSE;
            for &(va, ca) in &a {
                for &(vb, cb) in &b {
                    let holds = match op {
                        CmpOp::Eq => va == vb,
                        CmpOp::Neq => va != vb,
                        CmpOp::Lt => va < vb,
                        CmpOp::Le => va <= vb,
                        CmpOp::Gt => va > vb,
                        CmpOp::Ge => va >= vb,
                    };
                    if holds {
                        let both = cx.mgr().and(ca, cb);
                        acc = cx.mgr().or(acc, both);
                    }
                }
            }
            Compiled::Bool(acc)
        }
        Expr::Add(l, r) => {
            let a = compile_values(cx, vars, l, allow_primed)?;
            let b = compile_values(cx, vars, r, allow_primed)?;
            // Saturating: domains are capped well below u64::MAX, so a sum
            // that saturates can never equal a domain value anyway — and a
            // hostile spec must not be able to panic the compiler.
            Compiled::Values(combine(cx, a, b, |a, b| a.saturating_add(b)))
        }
        Expr::Sub(l, r) => {
            let a = compile_values(cx, vars, l, allow_primed)?;
            let b = compile_values(cx, vars, r, allow_primed)?;
            Compiled::Values(combine(cx, a, b, |a, b| a.saturating_sub(b)))
        }
    })
}

/// Pointwise combination of two value families.
fn combine(
    cx: &mut SymbolicContext,
    a: Vec<(u64, NodeId)>,
    b: Vec<(u64, NodeId)>,
    f: impl Fn(u64, u64) -> u64,
) -> Vec<(u64, NodeId)> {
    let mut map: HashMap<u64, NodeId> = HashMap::new();
    for &(va, ca) in &a {
        for &(vb, cb) in &b {
            let cond = cx.mgr().and(ca, cb);
            if cond == FALSE {
                continue;
            }
            let v = f(va, vb);
            let entry = map.entry(v).or_insert(FALSE);
            *entry = cx.mgr().or(*entry, cond);
        }
    }
    let mut out: Vec<(u64, NodeId)> = map.into_iter().collect();
    out.sort_unstable_by_key(|p| p.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    const TOY: &str = r#"
    program toggle;
    var x : 0..2;
    var y : boolean;
    process p
      read x, y;
      write x;
    begin
      (x = 0) & (y = 1) -> x := 1;
      (x = 1) -> x := {0, 2};
    end
    fault hit
    begin
      (x = 1) -> x := 2;
    end
    invariant (x = 0) | (x = 1);
    badstates (x = 2) & (y = 0);
    badtrans (x = 1) & (x' = 0);
    "#;

    fn toy() -> DistributedProgram {
        compile(&parse(TOY).unwrap()).unwrap()
    }

    #[test]
    fn compiles_toy_program() {
        let mut p = toy();
        assert_eq!(p.processes.len(), 1);
        assert_eq!(p.cx.num_program_vars(), 2);
        // Invariant: x ∈ {0,1}, y free = 4 states.
        assert_eq!(p.cx.count_states(p.invariant), 4.0);
        // Bad states: x=2 ∧ y=0 = 1 state.
        assert_eq!(p.cx.count_states(p.safety.bad_states), 1.0);
    }

    #[test]
    fn guarded_action_semantics() {
        let mut p = toy();
        let t = p.processes[0].trans;
        // (x=0, y=1) → (1, 1) enabled.
        let yes = p.cx.transition_cube(&[0, 1], &[1, 1]);
        assert!(p.cx.mgr().leq(yes, t));
        // (x=0, y=0): guard false.
        let no = p.cx.transition_cube(&[0, 0], &[1, 0]);
        assert!(p.cx.mgr().disjoint(no, t));
        // Choice: x=1 goes to 0 or 2.
        let c0 = p.cx.transition_cube(&[1, 1], &[0, 1]);
        let c2 = p.cx.transition_cube(&[1, 1], &[2, 1]);
        assert!(p.cx.mgr().leq(c0, t));
        assert!(p.cx.mgr().leq(c2, t));
    }

    #[test]
    fn faults_compile_separately() {
        let mut p = toy();
        assert_eq!(p.cx.count_transitions(p.faults), 2.0); // (1,y)→(2,y) for y∈{0,1}
    }

    #[test]
    fn bad_trans_uses_primed_vars() {
        let mut p = toy();
        let bt = p.safety.bad_trans;
        let hit = p.cx.transition_cube(&[1, 0], &[0, 0]);
        assert!(p.cx.mgr().leq(hit, bt));
        let miss = p.cx.transition_cube(&[1, 0], &[2, 0]);
        assert!(p.cx.mgr().disjoint(miss, bt));
    }

    #[test]
    fn copy_assignment_from_expression() {
        let src = r#"
        program copy;
        var a : 0..2;
        var b : 0..2;
        process p read a, b; write b;
        begin (b != a) -> b := a; end
        invariant true;
        "#;
        let mut p = compile(&parse(src).unwrap()).unwrap();
        let t = p.processes[0].trans;
        let good = p.cx.transition_cube(&[2, 0], &[2, 2]);
        assert!(p.cx.mgr().leq(good, t));
        let bad = p.cx.transition_cube(&[2, 0], &[2, 1]);
        assert!(p.cx.mgr().disjoint(bad, t));
    }

    #[test]
    fn arithmetic_in_assignments() {
        let src = r#"
        program inc;
        var x : 0..3;
        process p read x; write x;
        begin (x < 3) -> x := x + 1; end
        invariant true;
        "#;
        let mut p = compile(&parse(src).unwrap()).unwrap();
        let t = p.processes[0].trans;
        let up = p.cx.transition_cube(&[2], &[3]);
        assert!(p.cx.mgr().leq(up, t));
        let wrap = p.cx.transition_cube(&[3], &[0]);
        assert!(p.cx.mgr().disjoint(wrap, t));
    }

    #[test]
    fn out_of_domain_assignment_rejected() {
        let src = r#"
        program bad;
        var x : 0..1;
        process p read x; write x;
        begin true -> x := x + 1; end
        invariant true;
        "#;
        let e = compile(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("outside its domain"), "{e}");
    }

    #[test]
    fn guarded_out_of_domain_is_fine() {
        // The overflow value is only produced where the guard is false, so
        // the compiler accepts it.
        let src = r#"
        program ok;
        var x : 0..2;
        var y : 0..2;
        process p read x, y; write x;
        begin (y < 2) -> x := y + 1; end
        invariant true;
        "#;
        let p = compile(&parse(src).unwrap());
        assert!(p.is_ok());
    }

    #[test]
    fn unknown_variable_rejected() {
        let src = "program bad; invariant z = 0;";
        let e = compile(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("unknown variable z"));
    }

    #[test]
    fn primed_outside_badtrans_rejected() {
        let src = "program bad; var x : boolean; invariant x' = 0;";
        let e = compile(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("only allowed in badtrans"));
    }

    #[test]
    fn write_outside_read_rejected() {
        let src = r#"
        program bad;
        var x : boolean;
        var y : boolean;
        process p read x; write y;
        begin true -> y := 0; end
        invariant true;
        "#;
        let e = compile(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("W ⊆ R"));
    }

    #[test]
    fn double_assignment_rejected() {
        let src = r#"
        program bad;
        var x : boolean;
        process p read x; write x;
        begin true -> x := 0, x := 1; end
        invariant true;
        "#;
        let e = compile(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("assigned twice"));
    }

    #[test]
    fn nonzero_range_start_rejected() {
        let src = "program bad; var x : 1..3;";
        let e = compile(&parse(src).unwrap()).unwrap_err();
        assert!(e.message.contains("start at 0"));
    }

    #[test]
    fn absurd_domains_rejected_not_overflowed() {
        // `hi + 1` on u64::MAX used to overflow; now the cap rejects it
        // (and everything else big enough to stall the compiler) cleanly.
        for src in [
            "program bad; var x : 0..18446744073709551615;",
            &format!("program bad; var x : 0..{};", MAX_DOMAIN),
        ] {
            let e = compile(&parse(src).unwrap()).unwrap_err();
            assert!(e.message.contains("exceeds the supported maximum"), "{}", e.message);
        }
        // The largest allowed domain still compiles.
        let src = format!("program ok; var x : 0..{}; invariant true;", MAX_DOMAIN - 1);
        assert!(compile(&parse(&src).unwrap()).is_ok());
    }

    #[test]
    fn huge_literal_sums_saturate_instead_of_panicking() {
        let src = "program t; var x : 0..2; \
                   invariant x + 18446744073709551615 = 18446744073709551615;";
        // x + u64::MAX saturates to u64::MAX, so the comparison holds
        // everywhere; the point is that compilation must not overflow.
        let p = compile(&parse(src).unwrap()).unwrap();
        assert_eq!(p.name, "t");
    }

    #[test]
    fn leadsto_compiles_and_checks() {
        let src = r#"
        program live;
        var x : 0..2;
        process p read x; write x;
        begin
          (x = 0) -> x := 1;
          (x = 1) -> x := 2;
          (x = 2) -> x := 0;
        end
        invariant true;
        leadsto (x = 0) => (x = 2);
        leadsto (x = 0) => false;
        "#;
        let mut p = compile(&parse(src).unwrap()).unwrap();
        assert_eq!(p.liveness.leads_to.len(), 2);
        let t = p.processes[0].trans;
        let region = p.cx.state_universe();
        let lv = p.liveness.clone();
        let results = ftrepair_program::verify::check_liveness(&mut p.cx, region, t, &lv);
        assert_eq!(results, vec![true, false]);
    }

    #[test]
    fn compiled_program_repairs_end_to_end() {
        // The toy program is repairable: faults push x to 2, recovery gets
        // it back; the language pipeline must produce a program the core
        // algorithms accept.
        let src = r#"
        program toy;
        var x : 0..2;
        process p read x; write x;
        begin
          (x = 0) -> x := 1;
          (x = 1) -> x := 0;
        end
        fault hit begin (x = 1) -> x := 2; end
        invariant (x = 0) | (x = 1);
        "#;
        let mut p = compile(&parse(src).unwrap()).unwrap();
        let out =
            ftrepair_core::lazy_repair(&mut p, &ftrepair_core::RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = ftrepair_core::verify::verify_outcome(&mut p, &out);
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
    }
}

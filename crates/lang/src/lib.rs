//! # ftrepair-lang — a guarded-command input language
//!
//! Tools in this family (FTSyn, SYCRAFT) accept distributed programs as
//! text. This crate provides a small language in that tradition and a
//! compiler onto [`ftrepair_program::ProgramBuilder`], so case studies can
//! be written as files instead of Rust:
//!
//! ```text
//! program toggle;
//!
//! var x : 0..2;
//! var y : boolean;
//!
//! process p
//!   read x, y;
//!   write x;
//! begin
//!   (x = 0) & (y = 1) -> x := 1;
//!   (x = 1)           -> x := {0, 2};   // nondeterministic choice
//! end
//!
//! fault hit
//! begin
//!   (x = 1) -> x := 2;
//! end
//!
//! invariant (x = 0) | (x = 1);
//! badstates (x = 2) & (y = 0);
//! badtrans  (x = 1) & (x' = 0);         // primed = next-state value
//! ```
//!
//! Expressions support `| & !`, comparisons (`= != < <= > >=`), `+`/`-`
//! on finite-domain values, parentheses, `true`/`false`, and primed
//! variables (`x'`) inside `badtrans` sections. Assignment right-hand
//! sides are arbitrary expressions (evaluated in the pre-state) or
//! `{e1, …, ek}` nondeterministic choices.
//!
//! Everything is compiled symbolically: an expression becomes a
//! *value-indexed family of BDDs* (`value ↦ condition`), so guards and
//! relational assignments cost a handful of BDD operations each.

pub mod ast;
pub mod compile;
pub mod lexer;
pub mod parser;
pub mod unparse;

pub use compile::{compile, CompileError};
pub use parser::{parse, ParseError};
pub use unparse::unparse;

/// Parse and compile a source text into a ready-to-repair program.
///
/// ```
/// let src = r#"
/// program tiny;
/// var x : boolean;
/// process p read x; write x; begin (x = 0) -> x := 1; end
/// invariant true;
/// "#;
/// let prog = ftrepair_lang::load(src).unwrap();
/// assert_eq!(prog.processes.len(), 1);
/// ```
pub fn load(src: &str) -> Result<ftrepair_program::DistributedProgram, LoadError> {
    let ast = parse(src).map_err(LoadError::Parse)?;
    compile(&ast).map_err(LoadError::Compile)
}

/// Error from [`load`]: either parsing or compilation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// Syntax error.
    Parse(ParseError),
    /// Semantic error (unknown variable, out-of-domain value, …).
    Compile(CompileError),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Parse(e) => write!(f, "parse error: {e}"),
            LoadError::Compile(e) => write!(f, "compile error: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

//! A minimal JSON value type with a compact writer and a strict-enough
//! recursive-descent parser.
//!
//! Both directions live here so the run-report schema has a single source
//! of truth: the CLI writes JSONL through [`Json`]'s `Display` impl, and
//! the integration tests plus `crates/bench` read it back through
//! [`Json::parse`]. Object keys keep insertion order, which makes the
//! emitted reports stable and diffable.

use std::fmt;

#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, to be filled with [`Json::set`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Insert or replace a key in an object, returning `self` so calls
    /// chain. Calling this on a non-object is a programming error; it
    /// trips a `debug_assert` in debug builds and is a silent no-op in
    /// release builds — a daemon serving traffic must not die over a
    /// malformed metrics document.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Obj(entries) = self else {
            debug_assert!(false, "Json::set({key:?}) on non-object {self:?}");
            return self;
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => entries.push((key.to_string(), value)),
        }
        self
    }

    /// Look a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(entries) => Some(entries),
            _ => None,
        }
    }

    /// Parse a complete JSON document (rejects trailing garbage).
    pub fn parse(input: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Num(v)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::Num(v as f64)
    }
}

impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::Num(v as f64)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Num(v as f64)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => f.write_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if !v.is_finite() {
                    // JSON has no NaN/Inf; null is the least-bad rendering.
                    f.write_str("null")
                } else if v.fract() == 0.0 && v.abs() < 9.0e15 {
                    write!(f, "{}", *v as i64)
                } else {
                    write!(f, "{v}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    item.fmt(f)?;
                }
                f.write_str("]")
            }
            Json::Obj(entries) => {
                f.write_str("{")?;
                for (i, (k, v)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    v.fmt(f)?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte '{}' at {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input came from &str, so
                    // boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).unwrap();
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(entries));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested_document() {
        let mut doc = Json::obj();
        doc.set("name", "token ring".into());
        doc.set("n", 3u64.into());
        doc.set("ok", true.into());
        doc.set("ratio", 0.25.into());
        doc.set("none", Json::Null);
        doc.set(
            "rows",
            Json::Arr(vec![Json::Num(1.0), Json::Str("a\"b\\c\nd".into()), Json::Bool(false)]),
        );
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(Json::Num(3.0).to_string(), "3");
        assert_eq!(Json::Num(-2.0).to_string(), "-2");
        assert_eq!(Json::Num(0.5).to_string(), "0.5");
        assert_eq!(Json::Num(f64::NAN).to_string(), "null");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"a\" : [ 1 , 2.5e1 , \"x\\u0041\\n\" ] } ").unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_f64(), Some(25.0));
        assert_eq!(arr[2].as_str(), Some("xA\n"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
        assert!(Json::parse("nul").is_err());
    }

    #[test]
    fn set_replaces_existing_keys() {
        let mut o = Json::obj();
        o.set("k", 1u64.into());
        o.set("k", 2u64.into());
        assert_eq!(o.as_obj().unwrap().len(), 1);
        assert_eq!(o.get("k").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn set_chains() {
        let mut o = Json::obj();
        o.set("a", 1u64.into()).set("b", 2u64.into());
        assert_eq!(o.as_obj().unwrap().len(), 2);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn set_on_non_object_is_a_release_noop() {
        let mut v = Json::Num(1.0);
        v.set("k", 2u64.into());
        assert_eq!(v, Json::Num(1.0));
    }
}

//! RAII span guards, optionally forming a hierarchical trace tree.
//!
//! `tele.span("step1")` times a region of code and, on drop, accumulates
//! the elapsed wall time under `span.step1` plus a `span.step1.count`
//! counter. With tracing on it also prints nested enter/exit lines to
//! stderr, indented per thread so parallel Step 2 workers stay readable.
//!
//! When the telemetry handle was built with span recording on
//! ([`crate::Telemetry::with_spans`]), every span additionally logs a
//! [`SpanRecord`] carrying a span ID, its parent's ID, a small thread ID,
//! start/duration in nanoseconds since the handle's epoch, and any
//! structured key/value fields attached via [`Span::field`]. Parent
//! linkage is thread-local: a span opened while another span is live on
//! the same thread becomes its child. Spans opened on a thread with no
//! live span (e.g. parallel Step 2 workers) attach to the oldest live
//! *root* span instead, so worker activity still lands inside the job's
//! trace tree. The record log is bounded; overflow increments a
//! `telemetry.spans_dropped` counter instead of growing without limit.

use crate::{Json, Telemetry};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

thread_local! {
    static TRACE_DEPTH: Cell<usize> = const { Cell::new(0) };
    /// ID of the innermost live span on this thread (0 = none).
    static CURRENT_SPAN: Cell<u64> = const { Cell::new(0) };
    /// Small per-thread ID for trace output (0 until first use).
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);

fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let v = t.get();
        if v != 0 {
            return v;
        }
        let v = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        t.set(v);
        v
    })
}

/// One finished span, as logged into the span log.
#[derive(Clone, Debug)]
pub struct SpanRecord {
    /// This span's ID (always nonzero).
    pub id: u64,
    /// Parent span ID, 0 for a root.
    pub parent: u64,
    pub name: String,
    /// Small per-thread ID (stable within a process run).
    pub tid: u64,
    /// Start offset from the telemetry handle's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Structured fields attached with [`Span::field`], in insertion order.
    pub fields: Vec<(String, Json)>,
}

/// Default cap on retained span records per telemetry handle.
pub(crate) const SPAN_LOG_CAP: usize = 65_536;

/// Bounded log of finished spans plus the ID allocator, owned by an
/// enabled-with-spans [`Telemetry`].
pub(crate) struct SpanLog {
    epoch: Instant,
    next_id: AtomicU64,
    /// ID of the oldest live root span; orphan spans on other threads
    /// attach here so they land inside the job's trace tree.
    fallback_parent: AtomicU64,
    records: Mutex<Vec<SpanRecord>>,
    cap: usize,
}

impl SpanLog {
    pub(crate) fn new() -> SpanLog {
        SpanLog {
            epoch: Instant::now(),
            next_id: AtomicU64::new(1),
            fallback_parent: AtomicU64::new(0),
            records: Mutex::new(Vec::new()),
            cap: SPAN_LOG_CAP,
        }
    }

    pub(crate) fn take(&self) -> Vec<SpanRecord> {
        std::mem::take(&mut *self.records.lock().unwrap())
    }
}

struct SpanData {
    name: String,
    start: Instant,
    /// This span's ID in the span log; 0 when the log is off.
    id: u64,
    /// Parent span ID as resolved at open time.
    parent: u64,
    /// CURRENT_SPAN value to restore on drop (this thread's previous
    /// innermost span — equals `parent` unless the fallback root was used).
    prev_current: u64,
    /// Did this span install itself as the fallback root?
    owns_fallback: bool,
    fields: Vec<(String, Json)>,
}

/// Guard returned by [`Telemetry::span`]; records on drop. Inert (a single
/// `None`) when the telemetry handle is disabled.
pub struct Span<'a> {
    tele: &'a Telemetry,
    data: Option<SpanData>,
}

impl<'a> Span<'a> {
    pub(crate) fn open(tele: &'a Telemetry, name: &str) -> Span<'a> {
        if !tele.enabled() {
            return Span { tele, data: None };
        }
        if tele.tracing() {
            let depth = TRACE_DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            });
            eprintln!("trace: {:indent$}> {name}", "", indent = 2 * depth);
        }
        let mut data = SpanData {
            name: name.to_string(),
            start: Instant::now(),
            id: 0,
            parent: 0,
            prev_current: 0,
            owns_fallback: false,
            fields: Vec::new(),
        };
        if let Some(log) = tele.span_log() {
            data.id = log.next_id.fetch_add(1, Ordering::Relaxed);
            data.prev_current = CURRENT_SPAN.with(|c| c.get());
            data.parent = data.prev_current;
            if data.parent == 0 {
                // No live span on this thread: either claim the root slot
                // or attach to whoever holds it.
                match log.fallback_parent.compare_exchange(
                    0,
                    data.id,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    Ok(_) => data.owns_fallback = true,
                    Err(root) => data.parent = root,
                }
            }
            CURRENT_SPAN.with(|c| c.set(data.id));
        }
        Span { tele, data: Some(data) }
    }

    /// The span's name, if active.
    pub fn name(&self) -> Option<&str> {
        self.data.as_ref().map(|d| d.name.as_str())
    }

    /// Attach a structured key/value field to this span's record (a no-op
    /// unless span recording is on).
    pub fn field(&mut self, key: &str, value: Json) {
        if let Some(data) = &mut self.data {
            if data.id != 0 {
                data.fields.push((key.to_string(), value));
            }
        }
    }

    /// This span's ID in the span log (None when not recording).
    pub fn id(&self) -> Option<u64> {
        match &self.data {
            Some(d) if d.id != 0 => Some(d.id),
            _ => None,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        let elapsed = data.start.elapsed();
        self.tele.add_time(&format!("span.{}", data.name), elapsed);
        self.tele.add(&format!("span.{}.count", data.name), 1);
        if data.id != 0 {
            if let Some(log) = self.tele.span_log() {
                CURRENT_SPAN.with(|c| c.set(data.prev_current));
                if data.owns_fallback {
                    let _ = log.fallback_parent.compare_exchange(
                        data.id,
                        0,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                }
                let record = SpanRecord {
                    id: data.id,
                    parent: data.parent,
                    name: data.name.clone(),
                    tid: thread_id(),
                    start_ns: duration_ns(data.start.duration_since(log.epoch)),
                    dur_ns: duration_ns(elapsed),
                    fields: data.fields,
                };
                let mut records = log.records.lock().unwrap();
                if records.len() < log.cap {
                    records.push(record);
                } else {
                    drop(records);
                    self.tele.add("telemetry.spans_dropped", 1);
                }
            }
        }
        if self.tele.tracing() {
            let depth = TRACE_DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            eprintln!("trace: {:indent$}< {} {:.3?}", "", data.name, elapsed, indent = 2 * depth);
        }
    }
}

fn duration_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use crate::{Json, Telemetry};

    #[test]
    fn nested_spans_record_independently() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("span.outer.count"), 1);
        assert_eq!(snap.counter("span.inner.count"), 1);
        assert!(snap.times["span.outer"] >= snap.times["span.inner"]);
    }

    #[test]
    fn disabled_span_has_no_name() {
        let t = Telemetry::off();
        let s = t.span("x");
        assert_eq!(s.name(), None);
    }

    #[test]
    fn span_records_link_parents_and_fields() {
        let t = Telemetry::with_spans(false);
        {
            let mut root = t.span("job");
            root.field("case", Json::from("toggle"));
            {
                let _s1 = t.span("step1");
                let _fx = t.span("fixpoint");
            }
            let _s2 = t.span("step2");
        }
        let records = t.take_spans();
        assert_eq!(records.len(), 4);
        let by_name =
            |n: &str| records.iter().find(|r| r.name == n).unwrap_or_else(|| panic!("{n}"));
        let job = by_name("job");
        assert_eq!(job.parent, 0);
        assert_eq!(job.fields[0].0, "case");
        assert_eq!(by_name("step1").parent, job.id);
        assert_eq!(by_name("step2").parent, job.id);
        assert_eq!(by_name("fixpoint").parent, by_name("step1").id);
        // Children finish before (or as) the root does.
        for r in &records {
            assert!(r.start_ns + r.dur_ns <= job.start_ns + job.dur_ns + 1_000);
        }
    }

    #[test]
    fn orphan_spans_attach_to_the_live_root() {
        let t = Telemetry::with_spans(false);
        {
            let _root = t.span("job");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let t = t.clone();
                    s.spawn(move || {
                        let _w = t.span("worker");
                    });
                }
            });
        }
        let records = t.take_spans();
        let root = records.iter().find(|r| r.name == "job").unwrap();
        let workers: Vec<_> = records.iter().filter(|r| r.name == "worker").collect();
        assert_eq!(workers.len(), 2);
        for w in workers {
            assert_eq!(w.parent, root.id, "worker spans parent to the root");
            assert_ne!(w.tid, root.tid);
        }
    }

    #[test]
    fn take_spans_drains_the_log() {
        let t = Telemetry::with_spans(false);
        {
            let _s = t.span("a");
        }
        assert_eq!(t.take_spans().len(), 1);
        assert!(t.take_spans().is_empty());
    }

    #[test]
    fn plain_handles_record_no_spans() {
        let t = Telemetry::new();
        {
            let _s = t.span("a");
        }
        assert!(t.take_spans().is_empty());
    }
}

//! RAII span guards.
//!
//! `tele.span("step1")` times a region of code and, on drop, accumulates
//! the elapsed wall time under `span.step1` plus a `span.step1.count`
//! counter. With tracing on it also prints nested enter/exit lines to
//! stderr, indented per thread so parallel Step 2 workers stay readable.

use crate::Telemetry;
use std::cell::Cell;
use std::time::Instant;

thread_local! {
    static TRACE_DEPTH: Cell<usize> = const { Cell::new(0) };
}

struct SpanData {
    name: String,
    start: Instant,
}

/// Guard returned by [`Telemetry::span`]; records on drop. Inert (a single
/// `None`) when the telemetry handle is disabled.
pub struct Span<'a> {
    tele: &'a Telemetry,
    data: Option<SpanData>,
}

impl<'a> Span<'a> {
    pub(crate) fn open(tele: &'a Telemetry, name: &str) -> Span<'a> {
        if !tele.enabled() {
            return Span { tele, data: None };
        }
        if tele.tracing() {
            let depth = TRACE_DEPTH.with(|d| {
                let v = d.get();
                d.set(v + 1);
                v
            });
            eprintln!("trace: {:indent$}> {name}", "", indent = 2 * depth);
        }
        Span { tele, data: Some(SpanData { name: name.to_string(), start: Instant::now() }) }
    }

    /// The span's name, if active.
    pub fn name(&self) -> Option<&str> {
        self.data.as_ref().map(|d| d.name.as_str())
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(data) = self.data.take() else { return };
        let elapsed = data.start.elapsed();
        self.tele.add_time(&format!("span.{}", data.name), elapsed);
        self.tele.add(&format!("span.{}.count", data.name), 1);
        if self.tele.tracing() {
            let depth = TRACE_DEPTH.with(|d| {
                let v = d.get().saturating_sub(1);
                d.set(v);
                v
            });
            eprintln!("trace: {:indent$}< {} {:.3?}", "", data.name, elapsed, indent = 2 * depth);
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::Telemetry;

    #[test]
    fn nested_spans_record_independently() {
        let t = Telemetry::new();
        {
            let _outer = t.span("outer");
            let _inner = t.span("inner");
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("span.outer.count"), 1);
        assert_eq!(snap.counter("span.inner.count"), 1);
        assert!(snap.times["span.outer"] >= snap.times["span.inner"]);
    }

    #[test]
    fn disabled_span_has_no_name() {
        let t = Telemetry::off();
        let s = t.span("x");
        assert_eq!(s.name(), None);
    }
}

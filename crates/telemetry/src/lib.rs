//! Observability layer for the repair pipeline.
//!
//! Three pieces, deliberately free of external dependencies so the crate can
//! sit below everything except `std`:
//!
//! * [`registry`] — a counter/gauge/histogram/timing registry whose hot
//!   paths (counter increments and histogram observations through
//!   pre-registered [`Counter`]/[`Histogram`] handles) are single relaxed
//!   atomic adds, safe to share across Step 2 worker threads;
//! * [`span`] — RAII span guards that accumulate per-phase wall time into
//!   the registry, with `--trace` print a nested call trace to stderr,
//!   and (when built via [`Telemetry::with_spans`]) log hierarchical
//!   [`SpanRecord`]s with parent IDs and structured fields;
//! * [`trace`] — 64-bit trace IDs and Chrome `trace_event` JSON export of
//!   a span log, viewable in Perfetto;
//! * [`prometheus`] — text exposition of a [`MetricsSnapshot`] in the
//!   Prometheus `# TYPE`/`_bucket`/`_sum`/`_count` format, plus a lint
//!   used by tests and CI to validate any exposition;
//! * [`json`] / [`report`] — a tiny JSON value type (writer *and* parser)
//!   and the versioned JSONL run-report schema shared by the CLI
//!   (`--metrics-out`) and `crates/bench`.
//!
//! The [`Telemetry`] handle ties them together. A disabled handle
//! ([`Telemetry::off`]) is a `None` inside — every instrumentation call is
//! a branch on that option and nothing else, which is what keeps the
//! overhead of compiled-in telemetry below noise when no sink is requested.

pub mod histogram;
pub mod json;
pub mod prometheus;
pub mod registry;
pub mod report;
pub mod span;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot};
pub use json::Json;
pub use registry::{Counter, MetricsRegistry, MetricsSnapshot};
pub use report::{RunReport, SCHEMA_VERSION};
pub use span::{Span, SpanRecord};

use span::SpanLog;
use std::sync::Arc;
use std::time::Duration;

struct Inner {
    registry: MetricsRegistry,
    trace: bool,
    spans: Option<SpanLog>,
}

/// Cheaply clonable handle to a metrics registry plus trace switch.
///
/// Clones share the same registry, so handing a clone to each parallel
/// Step 2 worker makes all workers feed one set of counters. The default
/// handle is disabled and turns every call into a no-op.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl Telemetry {
    /// A disabled handle: every instrumentation call is a no-op.
    pub fn off() -> Self {
        Telemetry { inner: None }
    }

    /// An enabled handle collecting metrics, without stderr tracing.
    pub fn new() -> Self {
        Self::with_trace(false)
    }

    /// An enabled handle; `trace` additionally prints nested span
    /// enter/exit lines to stderr.
    pub fn with_trace(trace: bool) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner { registry: MetricsRegistry::new(), trace, spans: None })),
        }
    }

    /// An enabled handle that also logs hierarchical [`SpanRecord`]s with
    /// span/parent IDs and structured fields, for Chrome-trace export via
    /// [`trace::chrome_trace`]. `trace` controls stderr tracing as in
    /// [`Telemetry::with_trace`].
    pub fn with_spans(trace: bool) -> Self {
        Telemetry {
            inner: Some(Arc::new(Inner {
                registry: MetricsRegistry::new(),
                trace,
                spans: Some(SpanLog::new()),
            })),
        }
    }

    /// Is metric collection on at all?
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Is stderr tracing on?
    pub fn tracing(&self) -> bool {
        self.inner.as_ref().map(|i| i.trace).unwrap_or(false)
    }

    /// Pre-register a counter and get a lock-free handle to it.
    ///
    /// On a disabled `Telemetry` the counter still works but is not
    /// registered anywhere, so incrementing it is harmless and invisible.
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            Some(i) => i.registry.counter(name),
            None => Counter::detached(),
        }
    }

    /// Pre-register a histogram and get a lock-free handle to it.
    ///
    /// On a disabled `Telemetry` the histogram still works but is not
    /// registered anywhere, so observing into it is harmless and invisible.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            Some(i) => i.registry.histogram(name),
            None => Histogram::detached(),
        }
    }

    /// Add `n` to the named counter (slow path: looks the counter up).
    pub fn add(&self, name: &str, n: u64) {
        if let Some(i) = &self.inner {
            i.registry.add(name, n);
        }
    }

    /// Set a gauge to an absolute value.
    pub fn set_gauge(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.registry.set_gauge(name, v);
        }
    }

    /// Raise a gauge to `v` if `v` is larger than its current value.
    pub fn max_gauge(&self, name: &str, v: u64) {
        if let Some(i) = &self.inner {
            i.registry.max_gauge(name, v);
        }
    }

    /// Accumulate wall time under `name`.
    pub fn add_time(&self, name: &str, d: Duration) {
        if let Some(i) = &self.inner {
            i.registry.add_time(name, d);
        }
    }

    /// Append one sample (a row of named values) to a time series, e.g.
    /// per-outer-iteration BDD sizes.
    pub fn push_sample(&self, series: &str, fields: &[(&str, f64)]) {
        if let Some(i) = &self.inner {
            i.registry.push_sample(series, fields);
        }
    }

    /// Open a span; its wall time is recorded on drop. With tracing on,
    /// prints `> name` / `< name took` lines with per-thread indentation.
    pub fn span(&self, name: &str) -> Span<'_> {
        Span::open(self, name)
    }

    /// Snapshot the registry (empty when disabled).
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            Some(i) => i.registry.snapshot(),
            None => MetricsSnapshot::default(),
        }
    }

    /// Merge a snapshot (e.g. from a detached worker registry) into this
    /// handle's registry.
    pub fn absorb_snapshot(&self, snap: &MetricsSnapshot) {
        if let Some(i) = &self.inner {
            i.registry.absorb(snap);
        }
    }

    /// Is hierarchical span recording on?
    pub fn spans_enabled(&self) -> bool {
        self.span_log().is_some()
    }

    /// Drain all recorded spans (empty unless built with
    /// [`Telemetry::with_spans`]).
    pub fn take_spans(&self) -> Vec<SpanRecord> {
        match self.span_log() {
            Some(log) => log.take(),
            None => Vec::new(),
        }
    }

    pub(crate) fn span_log(&self) -> Option<&SpanLog> {
        self.inner.as_ref().and_then(|i| i.spans.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::off();
        assert!(!t.enabled());
        assert!(!t.tracing());
        t.add("x", 5);
        t.set_gauge("g", 7);
        t.counter("c").add(3);
        {
            let _s = t.span("phase");
        }
        assert_eq!(t.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn clones_share_one_registry() {
        let t = Telemetry::new();
        let t2 = t.clone();
        t.add("a", 1);
        t2.add("a", 2);
        assert_eq!(t.snapshot().counter("a"), 3);
    }

    #[test]
    fn spans_accumulate_time_and_count() {
        let t = Telemetry::new();
        for _ in 0..3 {
            let _s = t.span("work");
        }
        let snap = t.snapshot();
        assert_eq!(snap.counter("span.work.count"), 3);
        assert!(snap.times.contains_key("span.work"));
    }

    #[test]
    fn counters_are_shared_across_threads() {
        let t = Telemetry::new();
        let c = t.counter("hits");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let t = t.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                    t.max_gauge("peak", 42);
                });
            }
        });
        let snap = t.snapshot();
        assert_eq!(snap.counter("hits"), 4000);
        assert_eq!(snap.gauges["peak"], 42);
    }
}

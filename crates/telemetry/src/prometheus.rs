//! Prometheus text exposition (format version 0.0.4) of a
//! [`MetricsSnapshot`], plus a small lint over any exposition text.
//!
//! Mapping, all under the `ftr_` prefix with dots sanitized to
//! underscores:
//!
//! * counters → `ftr_<name>_total` (`# TYPE counter`); the per-status-code
//!   family `server.http.status.<code>` collapses into one
//!   `ftr_server_http_status_total{code="<code>"}` family;
//! * gauges → `ftr_<name>` (`# TYPE gauge`);
//! * accumulated span/phase times → `ftr_<name>_seconds_total`
//!   (`# TYPE counter`), converted from [`Duration`] to seconds;
//! * histograms → the standard `_bucket{le=…}`/`_sum`/`_count` triplet
//!   (`# TYPE histogram`). Histogram values are nanoseconds by workspace
//!   convention, so bucket bounds and sums convert to seconds here; the
//!   metric names themselves already end in `.seconds`.
//!
//! [`lint`] is the validity check CI runs against a live scrape: every
//! sample family is preceded by its `# TYPE`, histogram bucket counts are
//! cumulative and monotone in `le`, the `+Inf` bucket exists and equals
//! `_count`, and a `_sum` is present.

use crate::registry::MetricsSnapshot;

const NS_PER_SEC: f64 = 1.0e9;

/// Sanitize a dotted metric name into a Prometheus metric name chunk.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escape a label value per the exposition format: backslash, quote, and
/// newline get backslash escapes.
fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Format a float the way Prometheus clients do: integral values without a
/// fraction, everything else in shortest round-trip form.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// Render a snapshot in the Prometheus text exposition format.
pub fn render(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();

    // Counters. The server.http.status.<code> families fold into one
    // labeled family so status codes don't explode the metric namespace.
    let mut status_codes: Vec<(String, u64)> = Vec::new();
    let mut plain: Vec<(&String, &u64)> = Vec::new();
    for (name, value) in &snap.counters {
        match name.strip_prefix("server.http.status.") {
            Some(code) if !code.is_empty() && code.chars().all(|c| c.is_ascii_digit()) => {
                status_codes.push((code.to_string(), *value));
            }
            _ => plain.push((name, value)),
        }
    }
    for (name, value) in plain {
        let fam = format!("ftr_{}_total", sanitize(name));
        out.push_str(&format!("# TYPE {fam} counter\n{fam} {value}\n"));
    }
    if !status_codes.is_empty() {
        out.push_str("# TYPE ftr_server_http_status_total counter\n");
        for (code, value) in status_codes {
            out.push_str(&format!(
                "ftr_server_http_status_total{{code=\"{}\"}} {value}\n",
                escape_label_value(&code)
            ));
        }
    }

    for (name, value) in &snap.gauges {
        let fam = format!("ftr_{}", sanitize(name));
        out.push_str(&format!("# TYPE {fam} gauge\n{fam} {value}\n"));
    }

    for (name, d) in &snap.times {
        let fam = format!("ftr_{}_seconds_total", sanitize(name));
        out.push_str(&format!("# TYPE {fam} counter\n{fam} {}\n", fmt_value(d.as_secs_f64())));
    }

    for (name, h) in &snap.histograms {
        let fam = format!("ftr_{}", sanitize(name));
        out.push_str(&format!("# TYPE {fam} histogram\n"));
        let mut cumulative = 0u64;
        for &(upper, n) in &h.buckets {
            cumulative += n;
            out.push_str(&format!(
                "{fam}_bucket{{le=\"{}\"}} {cumulative}\n",
                fmt_value(upper as f64 / NS_PER_SEC)
            ));
        }
        out.push_str(&format!("{fam}_bucket{{le=\"+Inf\"}} {}\n", h.count));
        out.push_str(&format!("{fam}_sum {}\n", fmt_value(h.sum as f64 / NS_PER_SEC)));
        out.push_str(&format!("{fam}_count {}\n", h.count));
    }

    out
}

/// Split a sample line into (metric name, `le` label if any, value).
fn parse_sample(line: &str) -> Result<(String, Option<String>, f64), String> {
    let (name_part, value_part) = match line.find('{') {
        Some(open) => {
            let close = line.rfind('}').ok_or_else(|| format!("unclosed label braces: {line}"))?;
            (&line[..open], line[close + 1..].trim())
        }
        None => {
            let mut it = line.splitn(2, ' ');
            (it.next().unwrap_or(""), it.next().unwrap_or("").trim())
        }
    };
    let le = line.find('{').and_then(|open| {
        let close = line.rfind('}')?;
        let labels = &line[open + 1..close];
        labels.split(',').find_map(|kv| {
            let (k, v) = kv.split_once('=')?;
            if k.trim() == "le" {
                Some(v.trim().trim_matches('"').to_string())
            } else {
                None
            }
        })
    });
    let value: f64 = value_part
        .split_whitespace()
        .next()
        .unwrap_or("")
        .parse()
        .map_err(|_| format!("unparseable sample value: {line}"))?;
    Ok((name_part.trim().to_string(), le, value))
}

/// Validate exposition text. Returns a list of violations; an empty list
/// means the text passes. Checks: every sample's family is declared with a
/// preceding `# TYPE`; histogram `_bucket` counts are cumulative
/// (monotone non-decreasing) with monotone `le` bounds; every histogram
/// has a `+Inf` bucket equal to its `_count` and has a `_sum`.
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut types: std::collections::BTreeMap<String, String> = Default::default();
    // Per histogram family: ordered (le, cumulative count) plus sum/count.
    #[derive(Default)]
    struct HistSamples {
        buckets: Vec<(String, f64)>,
        sum: Option<f64>,
        count: Option<f64>,
    }
    let mut hists: std::collections::BTreeMap<String, HistSamples> = Default::default();

    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(ty)) = (it.next(), it.next()) else {
                errors.push(format!("malformed TYPE line: {line}"));
                continue;
            };
            types.insert(name.to_string(), ty.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name, le, value) = match parse_sample(line) {
            Ok(v) => v,
            Err(e) => {
                errors.push(e);
                continue;
            }
        };
        // Resolve the family: histogram samples use the base name's TYPE.
        let family = ["_bucket", "_sum", "_count"]
            .iter()
            .find_map(|suffix| {
                let base = name.strip_suffix(suffix)?;
                (types.get(base).map(String::as_str) == Some("histogram")).then(|| base.to_string())
            })
            .unwrap_or_else(|| name.clone());
        match types.get(&family) {
            None => errors.push(format!("sample without preceding # TYPE: {name}")),
            Some(ty) if ty == "histogram" => {
                let h = hists.entry(family.clone()).or_default();
                if name.ends_with("_bucket") {
                    match le {
                        Some(le) => h.buckets.push((le, value)),
                        None => errors.push(format!("{name} sample missing le label")),
                    }
                } else if name.ends_with("_sum") {
                    h.sum = Some(value);
                } else if name.ends_with("_count") {
                    h.count = Some(value);
                } else {
                    errors.push(format!("histogram family {family} has stray sample {name}"));
                }
            }
            Some(_) => {}
        }
    }

    for (family, h) in &hists {
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_count = f64::NEG_INFINITY;
        let mut inf: Option<f64> = None;
        for (le, count) in &h.buckets {
            let bound = if le == "+Inf" { f64::INFINITY } else { le.parse().unwrap_or(f64::NAN) };
            if bound.is_nan() {
                errors.push(format!("{family}: unparseable le bound {le:?}"));
                continue;
            }
            if bound < prev_le {
                errors.push(format!("{family}: le bounds not monotone at {le}"));
            }
            if *count < prev_count {
                errors.push(format!("{family}: bucket counts not cumulative at le={le}"));
            }
            prev_le = bound;
            prev_count = *count;
            if bound.is_infinite() {
                inf = Some(*count);
            }
        }
        match (inf, h.count) {
            (None, _) => errors.push(format!("{family}: no +Inf bucket")),
            (_, None) => errors.push(format!("{family}: no _count sample")),
            (Some(i), Some(c)) if i != c => {
                errors.push(format!("{family}: +Inf bucket {i} != _count {c}"))
            }
            _ => {}
        }
        if h.sum.is_none() {
            errors.push(format!("{family}: no _sum sample"));
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;
    use std::time::Duration;

    fn sample_snapshot() -> MetricsSnapshot {
        let r = MetricsRegistry::new();
        r.add("bdd.ops.apply", 42);
        r.add("server.http.status.200", 7);
        r.add("server.http.status.429", 1);
        r.set_gauge("bdd.nodes.peak", 1234);
        r.add_time("span.step1", Duration::from_millis(1500));
        let h = r.histogram("server.request.seconds");
        for v in [5_000_000u64, 25_000_000, 25_000_000, 900_000_000] {
            h.observe(v);
        }
        r.snapshot()
    }

    #[test]
    fn render_produces_lintable_exposition() {
        let text = render(&sample_snapshot());
        let errs = lint(&text);
        assert!(errs.is_empty(), "{errs:?}\n{text}");
        assert!(
            text.contains("# TYPE ftr_bdd_ops_apply_total counter\nftr_bdd_ops_apply_total 42\n")
        );
        assert!(text.contains("ftr_server_http_status_total{code=\"200\"} 7\n"));
        assert!(text.contains("ftr_server_http_status_total{code=\"429\"} 1\n"));
        assert!(text.contains("# TYPE ftr_bdd_nodes_peak gauge\nftr_bdd_nodes_peak 1234\n"));
        assert!(text.contains("ftr_span_step1_seconds_total 1.5\n"));
        assert!(text.contains("# TYPE ftr_server_request_seconds histogram\n"));
        assert!(text.contains("ftr_server_request_seconds_bucket{le=\"+Inf\"} 4\n"));
        assert!(text.contains("ftr_server_request_seconds_count 4\n"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_seconds() {
        let text = render(&sample_snapshot());
        // The two 25ms observations share a bucket; its cumulative count
        // includes the earlier 5ms one.
        let bucket_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("ftr_server_request_seconds_bucket")).collect();
        assert!(bucket_lines.len() >= 3, "{text}");
        let counts: Vec<f64> =
            bucket_lines.iter().map(|l| l.rsplit(' ').next().unwrap().parse().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "{counts:?}");
        assert_eq!(*counts.last().unwrap(), 4.0);
        // Bounds are in seconds: every le for these millisecond-scale
        // observations sits below 1.0 except +Inf.
        for l in &bucket_lines[..bucket_lines.len() - 1] {
            let le: f64 =
                l.split("le=\"").nth(1).unwrap().split('"').next().unwrap().parse().unwrap();
            assert!(le < 1.0, "{l}");
        }
    }

    #[test]
    fn sanitize_and_escape() {
        assert_eq!(sanitize("bdd.ops.apply"), "bdd_ops_apply");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("a-b c"), "a_b_c");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn lint_catches_violations() {
        assert_eq!(lint(""), Vec::<String>::new());
        let no_type = "ftr_x_total 3\n";
        assert!(lint(no_type).iter().any(|e| e.contains("without preceding # TYPE")), "{no_type}");

        let non_cumulative = "# TYPE ftr_h histogram\n\
                              ftr_h_bucket{le=\"0.1\"} 5\n\
                              ftr_h_bucket{le=\"0.2\"} 3\n\
                              ftr_h_bucket{le=\"+Inf\"} 5\n\
                              ftr_h_sum 1\nftr_h_count 5\n";
        assert!(lint(non_cumulative).iter().any(|e| e.contains("not cumulative")));

        let no_inf = "# TYPE ftr_h histogram\n\
                      ftr_h_bucket{le=\"0.1\"} 5\n\
                      ftr_h_sum 1\nftr_h_count 5\n";
        assert!(lint(no_inf).iter().any(|e| e.contains("no +Inf")));

        let inf_mismatch = "# TYPE ftr_h histogram\n\
                            ftr_h_bucket{le=\"+Inf\"} 4\n\
                            ftr_h_sum 1\nftr_h_count 5\n";
        assert!(lint(inf_mismatch).iter().any(|e| e.contains("!= _count")));

        let no_sum = "# TYPE ftr_h histogram\n\
                      ftr_h_bucket{le=\"+Inf\"} 5\nftr_h_count 5\n";
        assert!(lint(no_sum).iter().any(|e| e.contains("no _sum")));
    }
}

//! The versioned JSONL run-report schema.
//!
//! One repair run = one JSON object = one line. The CLI's `--metrics-out`
//! appends these lines; `crates/bench` emits the same schema from the table
//! harness so downstream tooling parses exactly one format. See the README
//! "Observability" section for the field table.

use crate::histogram::HistogramSnapshot;
use crate::json::Json;
use crate::registry::MetricsSnapshot;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// Bump whenever the meaning or shape of an existing field changes;
/// consumers must check this before interpreting a line.
///
/// v2: added the top-level `histograms` object (per-name
/// `{count, sum, p50, p90, p99, p999, buckets}` with nanosecond values and
/// cumulative `[le, count]` bucket pairs).
pub const SCHEMA_VERSION: u64 = 2;

/// Builder for one run-report line.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport(pub Json);

impl RunReport {
    /// Start a report for `case` (instance name) run in `mode`
    /// (`"lazy"` or `"cautious"`).
    pub fn new(case: &str, mode: &str) -> RunReport {
        let mut j = Json::obj();
        j.set("schema_version", SCHEMA_VERSION.into());
        j.set("case", case.into());
        j.set("mode", mode.into());
        RunReport(j)
    }

    /// Set or replace an arbitrary top-level field.
    pub fn set(&mut self, key: &str, value: Json) -> &mut RunReport {
        self.0.set(key, value);
        self
    }

    /// Record per-phase timings in seconds under `phases_s`, plus a
    /// `total` entry that is the exact sum of the parts — consumers (and
    /// the integration tests) rely on the parts summing to the total.
    pub fn set_phases(&mut self, phases: &[(&str, Duration)]) -> &mut RunReport {
        let mut obj = Json::obj();
        let mut total = 0.0;
        for (name, d) in phases {
            let secs = d.as_secs_f64();
            total += secs;
            obj.set(name, secs.into());
        }
        obj.set("total", total.into());
        self.0.set("phases_s", obj);
        self
    }

    /// Fold a metrics snapshot in: counters, gauges, accumulated span
    /// times (`spans_s`, in seconds), histograms, and sample series (e.g.
    /// the per-outer-iteration BDD size rows under `iterations`).
    pub fn set_snapshot(&mut self, snap: &MetricsSnapshot) -> &mut RunReport {
        set_snapshot_fields(&mut self.0, snap);
        self
    }

    /// The report as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.0.to_string()
    }

    /// Append the report (plus newline) to `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(f, "{}", self.to_json_line())
    }
}

/// Write a [`MetricsSnapshot`]'s fields into a JSON object: `counters`,
/// `gauges`, `spans_s` (seconds), `histograms` (nanoseconds, with derived
/// percentiles and cumulative `[le, count]` bucket pairs), and each sample
/// series under its own name. Shared by [`RunReport::set_snapshot`] and
/// the server's `/metrics` endpoint so both emit the same shape.
pub fn set_snapshot_fields(obj: &mut Json, snap: &MetricsSnapshot) {
    let mut counters = Json::obj();
    for (k, v) in &snap.counters {
        counters.set(k, (*v).into());
    }
    obj.set("counters", counters);

    let mut gauges = Json::obj();
    for (k, v) in &snap.gauges {
        gauges.set(k, (*v).into());
    }
    obj.set("gauges", gauges);

    let mut spans = Json::obj();
    for (k, d) in &snap.times {
        spans.set(k, d.as_secs_f64().into());
    }
    obj.set("spans_s", spans);

    let mut hists = Json::obj();
    for (name, h) in &snap.histograms {
        hists.set(name, histogram_to_json(h));
    }
    obj.set("histograms", hists);

    for (name, rows) in &snap.series {
        let arr = rows
            .iter()
            .map(|row| {
                let mut o = Json::obj();
                for (k, v) in row {
                    o.set(k, (*v).into());
                }
                o
            })
            .collect();
        obj.set(name, Json::Arr(arr));
    }
}

/// One histogram as report JSON: exact count/sum, headline percentiles,
/// and the sparse buckets as cumulative `[le, count]` pairs. Values stay
/// in the histogram's native unit (nanoseconds for durations); consumers
/// convert at the edge, exactly like the Prometheus renderer does.
pub fn histogram_to_json(h: &HistogramSnapshot) -> Json {
    let mut o = Json::obj();
    o.set("count", h.count.into());
    o.set("sum", (h.sum as f64).into());
    o.set("p50", h.percentile(50.0).into());
    o.set("p90", h.percentile(90.0).into());
    o.set("p99", h.percentile(99.0).into());
    o.set("p999", h.percentile(99.9).into());
    let mut cumulative = 0u64;
    let buckets = h
        .buckets
        .iter()
        .map(|&(upper, n)| {
            cumulative += n;
            Json::Arr(vec![upper.into(), cumulative.into()])
        })
        .collect();
    o.set("buckets", Json::Arr(buckets));
    o
}

/// Parse a histogram back out of its report JSON (inverse of
/// [`histogram_to_json`] up to f64 sum precision). Returns `None` when the
/// shape is not a histogram object.
pub fn histogram_from_json(j: &Json) -> Option<HistogramSnapshot> {
    let count = j.get("count")?.as_u64()?;
    let sum = j.get("sum")?.as_f64()? as u64;
    let mut buckets = Vec::new();
    let mut prev = 0u64;
    for pair in j.get("buckets")?.as_arr()? {
        let pair = pair.as_arr()?;
        let upper = pair.first()?.as_u64()?;
        let cumulative = pair.get(1)?.as_u64()?;
        buckets.push((upper, cumulative.checked_sub(prev)?));
        prev = cumulative;
    }
    Some(HistogramSnapshot { buckets, count, sum })
}

/// Rebuild a [`MetricsSnapshot`] from one report line's JSON — counters,
/// gauges, `spans_s`, and `histograms` (series are not recovered). Used by
/// `ftrepair metrics-dump` to merge JSONL reports into one snapshot for
/// Prometheus rendering.
pub fn snapshot_from_json(j: &Json) -> MetricsSnapshot {
    let mut snap = MetricsSnapshot::default();
    if let Some(entries) = j.get("counters").and_then(Json::as_obj) {
        for (k, v) in entries {
            if let Some(n) = v.as_u64() {
                snap.counters.insert(k.clone(), n);
            }
        }
    }
    if let Some(entries) = j.get("gauges").and_then(Json::as_obj) {
        for (k, v) in entries {
            if let Some(n) = v.as_u64() {
                snap.gauges.insert(k.clone(), n);
            }
        }
    }
    if let Some(entries) = j.get("spans_s").and_then(Json::as_obj) {
        for (k, v) in entries {
            if let Some(secs) = v.as_f64() {
                if secs >= 0.0 && secs.is_finite() {
                    snap.times.insert(k.clone(), Duration::from_secs_f64(secs));
                }
            }
        }
    }
    if let Some(entries) = j.get("histograms").and_then(Json::as_obj) {
        for (k, v) in entries {
            if let Some(h) = histogram_from_json(v) {
                snap.histograms.insert(k.clone(), h);
            }
        }
    }
    snap
}

/// Parse every line of a JSONL report file, with line numbers in errors.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn phases_sum_to_total_exactly() {
        let mut r = RunReport::new("toy", "lazy");
        r.set_phases(&[
            ("step1", Duration::from_micros(1500)),
            ("step2", Duration::from_micros(500)),
        ]);
        let j = Json::parse(&r.to_json_line()).unwrap();
        let phases = j.get("phases_s").unwrap();
        let s1 = phases.get("step1").unwrap().as_f64().unwrap();
        let s2 = phases.get("step2").unwrap().as_f64().unwrap();
        let total = phases.get("total").unwrap().as_f64().unwrap();
        assert_eq!(s1 + s2, total);
    }

    #[test]
    fn snapshot_round_trips_through_jsonl() {
        let t = Telemetry::new();
        t.add("groups_kept", 7);
        t.max_gauge("bdd.peak_live_nodes", 123);
        t.push_sample("iterations", &[("iter", 1.0), ("span_nodes", 40.0)]);
        {
            let _s = t.span("step1");
        }
        let mut r = RunReport::new("ring", "lazy");
        r.set_snapshot(&t.snapshot());
        let j = Json::parse(&r.to_json_line()).unwrap();
        assert_eq!(j.get("schema_version").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(j.get("counters").unwrap().get("groups_kept").unwrap().as_u64(), Some(7));
        assert_eq!(
            j.get("gauges").unwrap().get("bdd.peak_live_nodes").unwrap().as_u64(),
            Some(123)
        );
        let iters = j.get("iterations").unwrap().as_arr().unwrap();
        assert_eq!(iters[0].get("span_nodes").unwrap().as_f64(), Some(40.0));
        assert!(j.get("spans_s").unwrap().get("span.step1").is_some());
    }

    #[test]
    fn histograms_round_trip_through_report_json() {
        let t = Telemetry::new();
        let h = t.histogram("repair.step1.seconds");
        for v in [1_000u64, 2_000, 2_000, 4_000_000, 90_000_000_000] {
            h.observe(v);
        }
        let mut r = RunReport::new("ring", "lazy");
        r.set_snapshot(&t.snapshot());
        let j = Json::parse(&r.to_json_line()).unwrap();
        assert_eq!(j.get("schema_version").unwrap().as_u64(), Some(2));

        let hj = j.get("histograms").unwrap().get("repair.step1.seconds").unwrap();
        assert_eq!(hj.get("count").unwrap().as_u64(), Some(5));
        assert!(hj.get("p50").unwrap().as_u64().is_some());
        // Cumulative bucket pairs end at the total count.
        let buckets = hj.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.last().unwrap().as_arr().unwrap()[1].as_u64(), Some(5));

        let snap = snapshot_from_json(&j);
        assert_eq!(
            snap.histograms["repair.step1.seconds"],
            t.snapshot().histograms["repair.step1.seconds"]
        );
        assert_eq!(snap.counters, t.snapshot().counters);
    }

    #[test]
    fn parse_jsonl_skips_blank_lines_and_flags_bad_ones() {
        let ok = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}

//! The versioned JSONL run-report schema.
//!
//! One repair run = one JSON object = one line. The CLI's `--metrics-out`
//! appends these lines; `crates/bench` emits the same schema from the table
//! harness so downstream tooling parses exactly one format. See the README
//! "Observability" section for the field table.

use crate::json::Json;
use crate::registry::MetricsSnapshot;
use std::fs::OpenOptions;
use std::io::{self, Write};
use std::path::Path;
use std::time::Duration;

/// Bump whenever the meaning or shape of an existing field changes;
/// consumers must check this before interpreting a line.
pub const SCHEMA_VERSION: u64 = 1;

/// Builder for one run-report line.
#[derive(Clone, Debug, PartialEq)]
pub struct RunReport(pub Json);

impl RunReport {
    /// Start a report for `case` (instance name) run in `mode`
    /// (`"lazy"` or `"cautious"`).
    pub fn new(case: &str, mode: &str) -> RunReport {
        let mut j = Json::obj();
        j.set("schema_version", SCHEMA_VERSION.into());
        j.set("case", case.into());
        j.set("mode", mode.into());
        RunReport(j)
    }

    /// Set or replace an arbitrary top-level field.
    pub fn set(&mut self, key: &str, value: Json) -> &mut RunReport {
        self.0.set(key, value);
        self
    }

    /// Record per-phase timings in seconds under `phases_s`, plus a
    /// `total` entry that is the exact sum of the parts — consumers (and
    /// the integration tests) rely on the parts summing to the total.
    pub fn set_phases(&mut self, phases: &[(&str, Duration)]) -> &mut RunReport {
        let mut obj = Json::obj();
        let mut total = 0.0;
        for (name, d) in phases {
            let secs = d.as_secs_f64();
            total += secs;
            obj.set(name, secs.into());
        }
        obj.set("total", total.into());
        self.0.set("phases_s", obj);
        self
    }

    /// Fold a metrics snapshot in: counters, gauges, accumulated span
    /// times (`spans_s`, in seconds), and sample series (e.g. the
    /// per-outer-iteration BDD size rows under `iterations`).
    pub fn set_snapshot(&mut self, snap: &MetricsSnapshot) -> &mut RunReport {
        let mut counters = Json::obj();
        for (k, v) in &snap.counters {
            counters.set(k, (*v).into());
        }
        self.0.set("counters", counters);

        let mut gauges = Json::obj();
        for (k, v) in &snap.gauges {
            gauges.set(k, (*v).into());
        }
        self.0.set("gauges", gauges);

        let mut spans = Json::obj();
        for (k, d) in &snap.times {
            spans.set(k, d.as_secs_f64().into());
        }
        self.0.set("spans_s", spans);

        for (name, rows) in &snap.series {
            let arr = rows
                .iter()
                .map(|row| {
                    let mut o = Json::obj();
                    for (k, v) in row {
                        o.set(k, (*v).into());
                    }
                    o
                })
                .collect();
            self.0.set(name, Json::Arr(arr));
        }
        self
    }

    /// The report as one JSONL line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        self.0.to_string()
    }

    /// Append the report (plus newline) to `path`, creating the file if
    /// needed.
    pub fn append_to(&self, path: &Path) -> io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        writeln!(f, "{}", self.to_json_line())
    }
}

/// Parse every line of a JSONL report file, with line numbers in errors.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, line)| !line.trim().is_empty())
        .map(|(i, line)| Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn phases_sum_to_total_exactly() {
        let mut r = RunReport::new("toy", "lazy");
        r.set_phases(&[
            ("step1", Duration::from_micros(1500)),
            ("step2", Duration::from_micros(500)),
        ]);
        let j = Json::parse(&r.to_json_line()).unwrap();
        let phases = j.get("phases_s").unwrap();
        let s1 = phases.get("step1").unwrap().as_f64().unwrap();
        let s2 = phases.get("step2").unwrap().as_f64().unwrap();
        let total = phases.get("total").unwrap().as_f64().unwrap();
        assert_eq!(s1 + s2, total);
    }

    #[test]
    fn snapshot_round_trips_through_jsonl() {
        let t = Telemetry::new();
        t.add("groups_kept", 7);
        t.max_gauge("bdd.peak_live_nodes", 123);
        t.push_sample("iterations", &[("iter", 1.0), ("span_nodes", 40.0)]);
        {
            let _s = t.span("step1");
        }
        let mut r = RunReport::new("ring", "lazy");
        r.set_snapshot(&t.snapshot());
        let j = Json::parse(&r.to_json_line()).unwrap();
        assert_eq!(j.get("schema_version").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert_eq!(j.get("counters").unwrap().get("groups_kept").unwrap().as_u64(), Some(7));
        assert_eq!(
            j.get("gauges").unwrap().get("bdd.peak_live_nodes").unwrap().as_u64(),
            Some(123)
        );
        let iters = j.get("iterations").unwrap().as_arr().unwrap();
        assert_eq!(iters[0].get("span_nodes").unwrap().as_f64(), Some(40.0));
        assert!(j.get("spans_s").unwrap().get("span.step1").is_some());
    }

    #[test]
    fn parse_jsonl_skips_blank_lines_and_flags_bad_ones() {
        let ok = parse_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap();
        assert_eq!(ok.len(), 2);
        let err = parse_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}

//! Trace IDs and Chrome `trace_event` export.
//!
//! A trace ID is a nonzero 64-bit value identifying one job end to end:
//! minted by the client (loadgen sends `X-Trace-Id`), or by the server for
//! requests without one, echoed in the response, and keyed into the
//! server's `/jobs/<trace-id>` introspection ring. IDs render as 16
//! lowercase hex digits — the in-tree JSON number is an `f64`, which only
//! holds 53 bits exactly, so IDs always travel as strings.
//!
//! [`chrome_trace`] serializes a span log as Chrome `trace_event` JSON
//! (the `{"traceEvents": [...]}` envelope with `"X"` complete events),
//! which opens directly in Perfetto (ui.perfetto.dev) or
//! `chrome://tracing`. Span nesting is carried twice: implicitly by
//! timestamp containment per track, and explicitly as `span_id`/`parent`
//! args so tools (and our tests) can reconstruct the exact tree.

use crate::span::SpanRecord;
use crate::Json;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// splitmix64 finalizer — a cheap, well-mixed bijection on `u64`.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mint a fresh, nonzero trace ID: wall-clock nanoseconds xor a process
/// counter, run through a mixer so consecutive mints don't share prefixes.
pub fn mint_trace_id() -> u64 {
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5eed_5eed_5eed_5eed);
    let n = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = mix(nanos ^ n.rotate_left(17) ^ 0x9e37_79b9_7f4a_7c15);
    if id == 0 {
        1
    } else {
        id
    }
}

/// Render a trace ID as 16 lowercase hex digits (the wire format).
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse a trace ID from its wire format: hex digits, optionally
/// `0x`-prefixed, case-insensitive. Rejects empty, zero, overlong, and
/// non-hex input.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    let s = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")).unwrap_or(s);
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    match u64::from_str_radix(s, 16) {
        Ok(0) | Err(_) => None,
        Ok(id) => Some(id),
    }
}

/// Serialize finished spans as Chrome `trace_event` JSON.
///
/// Each span becomes an `"X"` (complete) event with microsecond `ts`/`dur`
/// on its recording thread's track; `args` carries `span_id`, `parent`,
/// and the span's structured fields. Metadata events name the process
/// after `name` and the trace ID.
pub fn chrome_trace(records: &[SpanRecord], trace_id: u64, name: &str) -> Json {
    let mut events = Vec::new();

    let mut meta = Json::obj();
    meta.set("name", Json::from("process_name"));
    meta.set("ph", Json::from("M"));
    meta.set("pid", Json::from(1u64));
    meta.set("tid", Json::from(0u64));
    let mut margs = Json::obj();
    margs.set("name", Json::from(format!("{name} trace {}", format_trace_id(trace_id))));
    meta.set("args", margs);
    events.push(meta);

    let mut tids: Vec<u64> = records.iter().map(|r| r.tid).collect();
    tids.sort_unstable();
    tids.dedup();
    for tid in tids {
        let mut tm = Json::obj();
        tm.set("name", Json::from("thread_name"));
        tm.set("ph", Json::from("M"));
        tm.set("pid", Json::from(1u64));
        tm.set("tid", Json::from(tid));
        let mut targs = Json::obj();
        targs.set("name", Json::from(format!("worker-{tid}")));
        tm.set("args", targs);
        events.push(tm);
    }

    for r in records {
        let mut ev = Json::obj();
        ev.set("name", Json::from(r.name.as_str()));
        ev.set("ph", Json::from("X"));
        ev.set("pid", Json::from(1u64));
        ev.set("tid", Json::from(r.tid));
        ev.set("ts", Json::from(r.start_ns as f64 / 1_000.0));
        ev.set("dur", Json::from(r.dur_ns as f64 / 1_000.0));
        let mut args = Json::obj();
        args.set("span_id", Json::from(r.id));
        args.set("parent", Json::from(r.parent));
        for (k, v) in &r.fields {
            args.set(k, v.clone());
        }
        ev.set("args", args);
        events.push(ev);
    }

    let mut root = Json::obj();
    root.set("traceEvents", Json::Arr(events));
    root.set("displayTimeUnit", Json::from("ms"));
    root
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    #[test]
    fn trace_ids_mint_nonzero_and_distinct() {
        let a = mint_trace_id();
        let b = mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }

    #[test]
    fn trace_id_wire_format_round_trips() {
        for id in [1u64, 0xdead_beef, u64::MAX, mint_trace_id()] {
            let s = format_trace_id(id);
            assert_eq!(s.len(), 16);
            assert_eq!(parse_trace_id(&s), Some(id));
            assert_eq!(parse_trace_id(&format!("0x{s}")), Some(id));
            assert_eq!(parse_trace_id(&s.to_uppercase()), Some(id));
        }
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("0"), None);
        assert_eq!(parse_trace_id("0000000000000000"), None);
        assert_eq!(parse_trace_id("xyz"), None);
        assert_eq!(parse_trace_id("11112222333344445"), None, "17 digits");
    }

    #[test]
    fn chrome_trace_shape_is_valid() {
        let t = Telemetry::with_spans(false);
        {
            let mut root = t.span("job");
            root.field("case", Json::from("demo"));
            let _child = t.span("step1");
        }
        let records = t.take_spans();
        let id = mint_trace_id();
        let json = chrome_trace(&records, id, "demo");
        // Round-trip through the serializer/parser.
        let parsed = Json::parse(&json.to_string()).unwrap();
        let events = match parsed.get("traceEvents").unwrap() {
            Json::Arr(v) => v,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        let xs: Vec<_> =
            events.iter().filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X")).collect();
        assert_eq!(xs.len(), 2);
        let job = xs.iter().find(|e| e.get("name").unwrap().as_str() == Some("job")).unwrap();
        let step = xs.iter().find(|e| e.get("name").unwrap().as_str() == Some("step1")).unwrap();
        let job_id = job.get("args").unwrap().get("span_id").unwrap().as_u64().unwrap();
        assert_eq!(step.get("args").unwrap().get("parent").unwrap().as_u64(), Some(job_id));
        assert_eq!(job.get("args").unwrap().get("case").unwrap().as_str(), Some("demo"));
        // The process name metadata carries the trace id.
        let meta = events
            .iter()
            .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("process_name"))
            .unwrap();
        let pname = meta.get("args").unwrap().get("name").unwrap().as_str().unwrap();
        assert!(pname.contains(&format_trace_id(id)), "{pname}");
    }
}

//! The metrics registry: named counters, gauges, histograms, accumulated
//! timings, and per-iteration sample series.
//!
//! Counters and histograms are `Arc`-shared handles; once registered,
//! recording through one never takes a lock, so handles can be hoisted out
//! of hot loops and shared with worker threads. Everything else (gauges,
//! timings, series, and the name→handle maps themselves) sits behind plain
//! mutexes — those paths run a handful of times per repair, not per BDD
//! operation.

use crate::histogram::{Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Lock-free handle to a registered (or detached) counter.
#[derive(Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter attached to no registry; counts go nowhere visible.
    pub fn detached() -> Self {
        Counter::default()
    }

    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One sample row of a series: named values in insertion order.
pub type Sample = Vec<(String, f64)>;

#[derive(Default)]
pub struct MetricsRegistry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: Mutex<BTreeMap<String, u64>>,
    times: Mutex<BTreeMap<String, Duration>>,
    series: Mutex<BTreeMap<String, Vec<Sample>>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Get-or-create the named counter and return a lock-free handle.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().unwrap();
        let cell = map.entry(name.to_string()).or_default();
        Counter(Arc::clone(cell))
    }

    /// Convenience: add `n` to the named counter (takes the registry lock).
    pub fn add(&self, name: &str, n: u64) {
        self.counter(name).add(n);
    }

    /// Get-or-create the named histogram and return a lock-free handle.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut map = self.histograms.lock().unwrap();
        map.entry(name.to_string()).or_default().clone()
    }

    pub fn set_gauge(&self, name: &str, v: u64) {
        self.gauges.lock().unwrap().insert(name.to_string(), v);
    }

    /// Raise the gauge to `v` if larger (peak tracking).
    pub fn max_gauge(&self, name: &str, v: u64) {
        let mut map = self.gauges.lock().unwrap();
        let slot = map.entry(name.to_string()).or_insert(0);
        if v > *slot {
            *slot = v;
        }
    }

    pub fn add_time(&self, name: &str, d: Duration) {
        let mut map = self.times.lock().unwrap();
        *map.entry(name.to_string()).or_default() += d;
    }

    pub fn push_sample(&self, series: &str, fields: &[(&str, f64)]) {
        let row: Sample = fields.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        self.series.lock().unwrap().entry(series.to_string()).or_default().push(row);
    }

    /// A consistent-enough copy of everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .lock()
            .unwrap()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .unwrap()
            .iter()
            .map(|(k, h)| (k.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges: self.gauges.lock().unwrap().clone(),
            times: self.times.lock().unwrap().clone(),
            series: self.series.lock().unwrap().clone(),
            histograms,
        }
    }

    /// Merge a snapshot into the live registry: counters, timings, and
    /// histogram buckets add, gauges take the maximum, series rows append.
    pub fn absorb(&self, snap: &MetricsSnapshot) {
        for (k, v) in &snap.counters {
            self.add(k, *v);
        }
        for (k, v) in &snap.gauges {
            self.max_gauge(k, *v);
        }
        for (k, d) in &snap.times {
            self.add_time(k, *d);
        }
        let mut series = self.series.lock().unwrap();
        for (k, rows) in &snap.series {
            series.entry(k.clone()).or_default().extend(rows.iter().cloned());
        }
        drop(series);
        for (k, h) in &snap.histograms {
            self.histogram(k).absorb(h);
        }
    }
}

/// Point-in-time copy of a registry, mergeable with other snapshots.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub times: BTreeMap<String, Duration>,
    pub series: BTreeMap<String, Vec<Sample>>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// The named counter's value, 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, 0 if absent.
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// Merge `other` into `self` with the same semantics as
    /// [`MetricsRegistry::absorb`]: counters/times add, gauges max,
    /// series append.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_default() += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_default();
            if v > slot {
                *slot = *v;
            }
        }
        for (k, d) in &other.times {
            *self.times.entry(k.clone()).or_default() += *d;
        }
        for (k, rows) in &other.series {
            self.series.entry(k.clone()).or_default().extend(rows.iter().cloned());
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(h);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_are_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(r.snapshot().counter("x"), 3);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn gauges_set_and_max() {
        let r = MetricsRegistry::new();
        r.set_gauge("g", 10);
        r.max_gauge("g", 5);
        assert_eq!(r.snapshot().gauge("g"), 10);
        r.max_gauge("g", 50);
        assert_eq!(r.snapshot().gauge("g"), 50);
    }

    #[test]
    fn times_accumulate() {
        let r = MetricsRegistry::new();
        r.add_time("t", Duration::from_millis(2));
        r.add_time("t", Duration::from_millis(3));
        assert_eq!(r.snapshot().times["t"], Duration::from_millis(5));
    }

    #[test]
    fn series_keep_row_order() {
        let r = MetricsRegistry::new();
        r.push_sample("iter", &[("n", 1.0), ("m", 2.0)]);
        r.push_sample("iter", &[("n", 3.0)]);
        let snap = r.snapshot();
        assert_eq!(snap.series["iter"].len(), 2);
        assert_eq!(snap.series["iter"][0][1], ("m".to_string(), 2.0));
        assert_eq!(snap.series["iter"][1][0], ("n".to_string(), 3.0));
    }

    #[test]
    fn snapshot_merge_semantics() {
        let mut a = MetricsSnapshot::default();
        a.counters.insert("c".into(), 2);
        a.gauges.insert("g".into(), 10);
        a.times.insert("t".into(), Duration::from_secs(1));
        a.series.insert("s".into(), vec![vec![("v".into(), 1.0)]]);

        let mut b = MetricsSnapshot::default();
        b.counters.insert("c".into(), 3);
        b.counters.insert("d".into(), 1);
        b.gauges.insert("g".into(), 4);
        b.times.insert("t".into(), Duration::from_secs(2));
        b.series.insert("s".into(), vec![vec![("v".into(), 2.0)]]);

        a.merge(&b);
        assert_eq!(a.counter("c"), 5);
        assert_eq!(a.counter("d"), 1);
        assert_eq!(a.gauge("g"), 10, "gauges merge by max");
        assert_eq!(a.times["t"], Duration::from_secs(3));
        assert_eq!(a.series["s"].len(), 2);
    }

    #[test]
    fn histogram_handles_are_shared_and_absorbable() {
        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        h.observe(100);
        r.histogram("lat").observe(200);
        let snap = r.snapshot();
        assert_eq!(snap.histograms["lat"].count, 2);
        assert_eq!(snap.histograms["lat"].sum, 300);

        let other = MetricsRegistry::new();
        other.histogram("lat").observe(50);
        r.absorb(&other.snapshot());
        assert_eq!(r.snapshot().histograms["lat"].count, 3);
        assert_eq!(r.snapshot().histograms["lat"].sum, 350);

        let mut a = snap.clone();
        a.merge(&other.snapshot());
        assert_eq!(a.histograms["lat"], r.snapshot().histograms["lat"]);
    }

    #[test]
    fn registry_absorb_matches_snapshot_merge() {
        let r = MetricsRegistry::new();
        r.add("c", 1);
        let mut snap = MetricsSnapshot::default();
        snap.counters.insert("c".into(), 4);
        snap.gauges.insert("g".into(), 9);
        r.absorb(&snap);
        let got = r.snapshot();
        assert_eq!(got.counter("c"), 5);
        assert_eq!(got.gauge("g"), 9);
    }
}

//! A lock-free log-bucketed latency histogram.
//!
//! HDR-style log-linear bucketing: every power-of-two range is split into
//! [`SUBBUCKETS`] linear sub-buckets, so the relative width of any bucket is
//! at most `1/SUBBUCKETS` (6.25%) of its value — percentiles read back from
//! the buckets are always within one bucket of the exact sorted-sample
//! percentile, at a fixed 7.6 KiB of memory per histogram no matter how
//! many samples arrive. Recording is a single relaxed `fetch_add` on a
//! pre-sized atomic array (plus one for the exact sum), so handles can be
//! shared freely across worker threads; there is no lock anywhere on the
//! record path and none on the snapshot path either.
//!
//! Values are plain `u64`s; by convention every histogram in this workspace
//! records **nanoseconds** (see [`Histogram::observe_duration`]), and the
//! JSON/Prometheus renderers convert to seconds at the edge.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// log2 of the linear sub-bucket count per power-of-two range.
const SUB_BITS: u32 = 4;
/// Linear sub-buckets per power-of-two range (16 → ≤6.25% bucket width).
const SUBBUCKETS: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` domain: the identity range
/// `0..16` plus one group of 16 sub-buckets per exponent in
/// `SUB_BITS..=63` (60 groups).
const NUM_BUCKETS: usize = (SUBBUCKETS + (64 - SUB_BITS as u64) * SUBBUCKETS) as usize;

/// Bucket index for a value. Values below [`SUBBUCKETS`] map to themselves;
/// above, the top [`SUB_BITS`]+1 significant bits select the bucket.
fn bucket_index(v: u64) -> usize {
    if v < SUBBUCKETS {
        return v as usize;
    }
    let exp = 63 - v.leading_zeros(); // >= SUB_BITS
    let sub = (v >> (exp - SUB_BITS)) & (SUBBUCKETS - 1);
    ((exp - SUB_BITS) as u64 * SUBBUCKETS + SUBBUCKETS + sub) as usize
}

/// Largest value falling into bucket `i` (the `le` boundary the bucket is
/// reported under).
fn bucket_upper(i: usize) -> u64 {
    let i = i as u64;
    if i < SUBBUCKETS {
        return i;
    }
    let group = i / SUBBUCKETS; // >= 1
    let sub = i % SUBBUCKETS;
    let width_bits = (group - 1) as u32;
    ((SUBBUCKETS + sub) << width_bits) + ((1u64 << width_bits) - 1)
}

struct Core {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// Cheaply clonable, lock-free handle to a histogram. Clones share the same
/// buckets (like [`crate::Counter`]); the default handle is detached and
/// records into thin air.
#[derive(Clone)]
pub struct Histogram(Arc<Core>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        let buckets = (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(Core { buckets, sum: AtomicU64::new(0) }))
    }

    /// A histogram attached to no registry; observations go nowhere visible.
    pub fn detached() -> Histogram {
        Histogram::new()
    }

    /// Record one value (lock-free; two relaxed atomic adds).
    pub fn observe(&self, v: u64) {
        self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds — the workspace-wide convention for
    /// time-valued histograms.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merge a snapshot into this live histogram (the registry absorb
    /// path). Snapshot bounds come from the same bucketing function, so
    /// each maps straight back onto its bucket; the sum stays exact.
    pub fn absorb(&self, snap: &HistogramSnapshot) {
        for &(upper, n) in &snap.buckets {
            self.0.buckets[bucket_index(upper)].fetch_add(n, Ordering::Relaxed);
        }
        self.0.sum.fetch_add(snap.sum, Ordering::Relaxed);
    }

    /// A point-in-time copy, mergeable with other snapshots. Count and sum
    /// are exact once writers quiesce; under concurrent writes the snapshot
    /// is consistent-enough (each bucket read once, relaxed).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n > 0 {
                count += n;
                buckets.push((bucket_upper(i), n));
            }
        }
        HistogramSnapshot { buckets, count, sum: self.0.sum.load(Ordering::Relaxed) }
    }
}

/// Sparse snapshot of a histogram: only the non-empty buckets, as
/// `(upper_bound, count)` pairs in ascending bound order, plus the exact
/// total count and sum.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// `(inclusive upper bound, per-bucket count)`, ascending, no zeros.
    pub buckets: Vec<(u64, u64)>,
    /// Total observations.
    pub count: u64,
    /// Exact sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The value at percentile `p` (0–100): the upper bound of the bucket
    /// holding the rank-`p` sample, using the same nearest-rank convention
    /// as a sorted-vector percentile (`round(p/100 * (n-1))`). Zero when
    /// empty.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * (self.count - 1) as f64).round() as u64;
        let mut seen = 0u64;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen > rank {
                return upper;
            }
        }
        self.buckets.last().map(|&(upper, _)| upper).unwrap_or(0)
    }

    /// [`HistogramSnapshot::percentile`] as a `Duration`, under the
    /// values-are-nanoseconds convention.
    pub fn percentile_duration(&self, p: f64) -> Duration {
        Duration::from_nanos(self.percentile(p))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merge another snapshot in: per-bound counts add, count/sum add.
    /// Bounds from the shared bucketing function always align; foreign
    /// bounds (e.g. parsed from an older report) are kept as-is.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.buckets.len());
        let (mut a, mut b) = (self.buckets.iter().peekable(), other.buckets.iter().peekable());
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ub, na)), Some(&&(vb, nb))) => {
                    if ub == vb {
                        merged.push((ub, na + nb));
                        a.next();
                        b.next();
                    } else if ub < vb {
                        merged.push((ub, na));
                        a.next();
                    } else {
                        merged.push((vb, nb));
                        b.next();
                    }
                }
                (Some(_), None) => {
                    merged.extend(a.by_ref().copied());
                    break;
                }
                (None, Some(_)) => {
                    merged.extend(b.by_ref().copied());
                    break;
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.count += other.count;
        self.sum += other.sum;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_bounds_are_contiguous_and_cover_u64() {
        // Every bucket's upper bound maps back to that bucket, and bucket
        // i+1 starts exactly one past bucket i's end.
        for i in 0..NUM_BUCKETS {
            let hi = bucket_upper(i);
            assert_eq!(bucket_index(hi), i, "upper bound of bucket {i}");
            if hi < u64::MAX {
                assert_eq!(
                    bucket_index(hi + 1),
                    i + 1,
                    "bucket {i} must end where {} begins",
                    i + 1
                );
            }
        }
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(NUM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [17u64, 100, 999, 123_456, u32::MAX as u64, 1 << 50] {
            let i = bucket_index(v);
            let hi = bucket_upper(i);
            assert!(hi >= v);
            // Bucket width ≤ v / SUBBUCKETS (6.25% relative error).
            assert!(hi - v <= v / SUBBUCKETS + 1, "v={v} hi={hi}");
        }
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.sum, (0..16).sum::<u64>());
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.percentile(100.0), 15);
    }

    #[test]
    fn percentiles_of_uniform_ramp() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.sum, 500_500);
        // p50 of 1..=1000 is ~500; bucketed answer must be within one
        // bucket (≤ 6.25%) of it.
        let p50 = s.percentile(50.0);
        assert!((470..=540).contains(&p50), "{p50}");
        let p99 = s.percentile(99.0);
        assert!((980..=1055).contains(&p99), "{p99}");
    }

    #[test]
    fn merge_adds_counts_and_sums() {
        let (a, b) = (Histogram::new(), Histogram::new());
        for v in [3u64, 100, 100, 5000] {
            a.observe(v);
        }
        for v in [3u64, 7, 1 << 40] {
            b.observe(v);
        }
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 3 + 100 + 100 + 5000 + 3 + 7 + (1u64 << 40));
        let direct = {
            let h = Histogram::new();
            for v in [3u64, 100, 100, 5000, 3, 7, 1 << 40] {
                h.observe(v);
            }
            h.snapshot()
        };
        assert_eq!(s, direct);
    }

    #[test]
    fn clones_share_buckets() {
        let h = Histogram::new();
        let h2 = h.clone();
        h.observe(10);
        h2.observe(20);
        assert_eq!(h.snapshot().count, 2);
    }
}

//! Property and concurrency tests for the lock-free log-bucketed histogram:
//! bucketed percentiles must track exact sorted-vector percentiles to within
//! one bucket (≤ 6.25% relative error), and 16 concurrent writers must lose
//! no observations.

use ftrepair_telemetry::Histogram;

/// SplitMix64 — the workspace is dependency-free, so seeded randomness for
/// property tests is inlined rather than pulled from a crate.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Nearest-rank percentile over an already-sorted slice, matching the
/// convention documented on `HistogramSnapshot::percentile`.
fn exact_percentile(sorted: &[u64], p: f64) -> u64 {
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

#[test]
fn bucketed_percentiles_stay_within_one_bucket_of_exact() {
    for seed in 0..24u64 {
        let mut rng = 0xF7_1DE5 ^ (seed.wrapping_mul(0x5851_F42D_4C95_7F2D));
        let n = 500 + (splitmix(&mut rng) % 4500) as usize;
        let hist = Histogram::new();
        let mut values = Vec::with_capacity(n);
        for _ in 0..n {
            // Spread values across many orders of magnitude (1ns .. ~1000s in
            // the values-are-nanoseconds convention) so every bucket regime —
            // exact low buckets and log-linear high ones — gets exercised.
            let shift = (splitmix(&mut rng) % 40) as u32;
            let v = (splitmix(&mut rng) >> (24 + (shift % 24))).max(1);
            hist.observe(v);
            values.push(v);
        }
        values.sort_unstable();

        let snap = hist.snapshot();
        assert_eq!(snap.count as usize, n, "seed {seed}: lost observations");
        let exact_sum: u64 = values.iter().sum();
        assert_eq!(snap.sum, exact_sum, "seed {seed}: sum must be exact");
        let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
        assert_eq!(bucket_total, snap.count, "seed {seed}: bucket counts must add up");

        for &p in &[0.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            let exact = exact_percentile(&values, p);
            let bucketed = snap.percentile(p);
            // The reported value is the upper bound of the bucket holding the
            // rank-p sample: never below the exact value, and above it by at
            // most one bucket width (≤ value/16 + 1 in the log-linear regime).
            assert!(bucketed >= exact, "seed {seed} p{p}: bucketed {bucketed} < exact {exact}");
            assert!(
                bucketed <= exact + exact / 16 + 1,
                "seed {seed} p{p}: bucketed {bucketed} overshoots exact {exact}"
            );
        }
    }
}

#[test]
fn sixteen_concurrent_writers_lose_nothing() {
    const THREADS: u64 = 16;
    const PER_THREAD: u64 = 20_000;

    let hist = Histogram::new();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let hist = hist.clone();
            scope.spawn(move || {
                let mut rng = t.wrapping_mul(0x9E37_79B9) + 1;
                for _ in 0..PER_THREAD {
                    hist.observe(splitmix(&mut rng) % 1_000_000_000);
                }
            });
        }
    });

    // Replay the exact same deterministic streams single-threaded to get the
    // ground-truth sum; count and sum must match exactly once writers quiesce.
    let mut expected_sum = 0u64;
    for t in 0..THREADS {
        let mut rng = t.wrapping_mul(0x9E37_79B9) + 1;
        for _ in 0..PER_THREAD {
            expected_sum += splitmix(&mut rng) % 1_000_000_000;
        }
    }

    let snap = hist.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD, "dropped observations under contention");
    assert_eq!(snap.sum, expected_sum, "sum drifted under contention");
    let bucket_total: u64 = snap.buckets.iter().map(|&(_, c)| c).sum();
    assert_eq!(bucket_total, snap.count);
}

//! Explicit read-restriction groups: the enumerative twin of
//! `ftrepair_program::realizability::group`.

use crate::extract::ExplicitProgram;
use crate::state::StateSpace;
use std::collections::HashSet;

/// `group_j(s0, s1)` by enumeration: all transitions that agree with
/// `(s0, s1)` on process `j`'s readable variables and keep each unreadable
/// variable constant (at every possible value).
///
/// Requires the transition itself to leave the unreadable variables
/// unchanged (true after write filtering, since `W ⊆ R`); panics otherwise
/// because the group of such a transition is not defined.
pub fn group_of_transition(
    space: &StateSpace,
    unreadable: &[usize],
    s0: u32,
    s1: u32,
) -> Vec<(u32, u32)> {
    let v0 = space.decode(s0);
    let v1 = space.decode(s1);
    for &u in unreadable {
        assert_eq!(v0[u], v1[u], "transition changes unreadable variable {u}; group undefined");
    }
    let from_variants = space.vary(&v0, unreadable);
    let mut out = Vec::with_capacity(from_variants.len());
    for fv in from_variants {
        // Apply the same unreadable values to the target.
        let mut tv = v1.clone();
        for &u in unreadable {
            tv[u] = fv[u];
        }
        out.push((space.encode(&fv), space.encode(&tv)));
    }
    out.sort_unstable();
    out
}

/// Group closure of a whole edge set for process `j` of `prog`.
pub fn group_of_set(prog: &ExplicitProgram, j: usize, edges: &[(u32, u32)]) -> Vec<(u32, u32)> {
    let unreadable = prog.unreadable(j);
    let mut out: HashSet<(u32, u32)> = HashSet::new();
    for &(a, b) in edges {
        out.extend(group_of_transition(&prog.space, &unreadable, a, b));
    }
    let mut v: Vec<(u32, u32)> = out.into_iter().collect();
    v.sort_unstable();
    v
}

/// Is `edges` group-closed for process `j`?
pub fn is_group_closed(prog: &ExplicitProgram, j: usize, edges: &[(u32, u32)]) -> bool {
    let set: HashSet<(u32, u32)> = edges.iter().copied().collect();
    group_of_set(prog, j, edges).iter().all(|e| set.contains(e))
}

/// The explicit twin of Step 2 (Algorithm 2): given the Step 1 relation and
/// its fault-span, compute each process's realizable `δ_j` — write-legal
/// transitions (plus everything starting outside the span) whose whole
/// read-restriction group is available. Returns per-process edge lists.
pub fn step2_explicit(
    prog: &ExplicitProgram,
    trans: &[(u32, u32)],
    span: &HashSet<u32>,
) -> Vec<Vec<(u32, u32)>> {
    // Line 1: transitions from outside the span are free.
    let mut delta: HashSet<(u32, u32)> = trans.iter().copied().collect();
    for a in prog.space.states() {
        if !span.contains(&a) {
            for b in prog.space.states() {
                delta.insert((a, b));
            }
        }
    }

    (0..prog.proc_names.len())
        .map(|j| {
            let unwritable = prog.unwritable(j);
            // Write filter.
            let cand: HashSet<(u32, u32)> = delta
                .iter()
                .copied()
                .filter(|&(a, b)| {
                    let (va, vb) = (prog.space.decode(a), prog.space.decode(b));
                    unwritable.iter().all(|&p| va[p] == vb[p])
                })
                .collect();
            // Keep exactly the complete classes.
            let unreadable = prog.unreadable(j);
            let mut kept: Vec<(u32, u32)> = cand
                .iter()
                .copied()
                .filter(|&(a, b)| {
                    group_of_transition(&prog.space, &unreadable, a, b)
                        .iter()
                        .all(|e| cand.contains(e))
                })
                .collect();
            kept.sort_unstable();
            kept
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_program::{ProgramBuilder, Update, TRUE};

    /// The Figure 3–5 setting: v0, v1, v2 boolean; p_j reads {v0,v1} writes
    /// {v1}; p_k reads {v0,v2} writes {v2}.
    fn fig_program() -> ExplicitProgram {
        let mut b = ProgramBuilder::new("fig");
        let v0 = b.var("v0", 2);
        let v1 = b.var("v1", 2);
        let v2 = b.var("v2", 2);
        b.process("pj", &[v0, v1], &[v1]);
        let g = b.cx().both_eq(v0, v1, 0);
        b.action(g, &[(v1, Update::Const(1))]);
        b.process("pk", &[v0, v2], &[v2]);
        b.invariant(TRUE);
        let mut p = b.build();
        ExplicitProgram::from_symbolic(&mut p)
    }

    #[test]
    fn figure4_group_has_both_members() {
        let e = fig_program();
        // (000) → (010): indices via the state space.
        let s000 = e.space.encode(&[0, 0, 0]);
        let s010 = e.space.encode(&[0, 1, 0]);
        let s001 = e.space.encode(&[0, 0, 1]);
        let s011 = e.space.encode(&[0, 1, 1]);
        let g = group_of_transition(&e.space, &e.unreadable(0), s000, s010);
        let mut expected = vec![(s000, s010), (s001, s011)];
        expected.sort_unstable();
        assert_eq!(g, expected);
    }

    #[test]
    fn builder_actions_are_group_closed() {
        // The builder guard reads v0 and v1 only; its transition set is
        // exactly one group, so closure must hold.
        let e = fig_program();
        assert!(is_group_closed(&e, 0, &e.proc_trans[0]));
    }

    #[test]
    fn single_member_of_group_is_not_closed() {
        let e = fig_program();
        let s000 = e.space.encode(&[0, 0, 0]);
        let s010 = e.space.encode(&[0, 1, 0]);
        assert!(!is_group_closed(&e, 0, &[(s000, s010)]));
    }

    #[test]
    #[should_panic(expected = "group undefined")]
    fn group_of_unreadable_changing_transition_panics() {
        let e = fig_program();
        let s000 = e.space.encode(&[0, 0, 0]);
        let s001 = e.space.encode(&[0, 0, 1]); // changes v2 — unreadable by pj
        group_of_transition(&e.space, &e.unreadable(0), s000, s001);
    }

    #[test]
    fn group_matches_symbolic_group() {
        // Cross-check against the symbolic group on the same program.
        let mut b = ProgramBuilder::new("fig");
        let v0 = b.var("v0", 2);
        let v1 = b.var("v1", 2);
        let _v2 = b.var("v2", 2);
        b.process("pj", &[v0, v1], &[v1]);
        b.invariant(TRUE);
        let mut p = b.build();
        let t = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let unread = p.unreadable(0);
        let sym_g = ftrepair_program::realizability::group(&mut p.cx, &unread, t);
        let sym_pairs = p.cx.enumerate_transitions(sym_g, 100);

        let e = {
            let mut b2 = ProgramBuilder::new("fig2");
            let w0 = b2.var("v0", 2);
            let w1 = b2.var("v1", 2);
            let w2 = b2.var("v2", 2);
            b2.process("pj", &[w0, w1], &[w1]);
            b2.invariant(TRUE);
            let _ = w2;
            let mut p2 = b2.build();
            ExplicitProgram::from_symbolic(&mut p2)
        };
        let s000 = e.space.encode(&[0, 0, 0]);
        let s010 = e.space.encode(&[0, 1, 0]);
        let exp_g = group_of_transition(&e.space, &e.unreadable(0), s000, s010);
        let exp_pairs: Vec<(Vec<u64>, Vec<u64>)> =
            exp_g.iter().map(|&(a, b)| (e.space.decode(a), e.space.decode(b))).collect();
        let mut sym_sorted = sym_pairs;
        sym_sorted.sort_unstable();
        let mut exp_sorted = exp_pairs;
        exp_sorted.sort_unstable();
        assert_eq!(sym_sorted, exp_sorted);
    }
}

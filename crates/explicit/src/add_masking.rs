//! Reference (explicit-state) implementation of the Add-Masking algorithm
//! of Kulkarni & Arora — the paper's Step 1, *without* realizability
//! constraints.
//!
//! The symbolic implementation in `ftrepair-core` mirrors this one
//! fixpoint-for-fixpoint; integration tests require their outputs to be
//! identical on every enumerable instance.

use crate::extract::ExplicitProgram;
use crate::graph;
use std::collections::HashSet;

/// Options for [`add_masking`].
#[derive(Clone, Copy, Debug)]
pub struct AddMaskingOptions {
    /// The paper's heuristic: restrict the fault-span search to states
    /// reachable by the fault-intolerant program in the presence of faults
    /// (Section V-A). Without it, every non-`ms` state is a candidate.
    pub restrict_to_reachable: bool,
}

impl Default for AddMaskingOptions {
    fn default() -> Self {
        AddMaskingOptions { restrict_to_reachable: true }
    }
}

/// Output of explicit Add-Masking.
#[derive(Clone, Debug)]
pub struct ExplicitRepair {
    /// States from which faults alone can violate safety.
    pub ms: HashSet<u32>,
    /// Bad transitions (`Sf_bt` copy, for [`ExplicitRepair::mt_contains`]).
    pub bad_trans: HashSet<(u32, u32)>,
    /// The repaired invariant `S₁` (empty iff `failed`).
    pub invariant: HashSet<u32>,
    /// The fault-span `T₁`.
    pub span: HashSet<u32>,
    /// The repaired (unconstrained) transition relation `δ''`.
    pub trans: Vec<(u32, u32)>,
    /// True iff no masking-tolerant program exists under these inputs.
    pub failed: bool,
}

impl ExplicitRepair {
    /// Membership in `mt` — the transitions the fault-tolerant program must
    /// never execute: bad transitions and transitions into `ms`.
    pub fn mt_contains(&self, s0: u32, s1: u32) -> bool {
        self.bad_trans.contains(&(s0, s1)) || self.ms.contains(&s1)
    }
}

/// Explicit Add-Masking. See the module docs; the numbered phases follow
/// Section V-A of the paper.
pub fn add_masking(prog: &ExplicitProgram, opts: AddMaskingOptions) -> ExplicitRepair {
    let delta_p = prog.program_trans();
    let faults = &prog.faults;

    // Originally-terminal states: under Definition 18 they stutter, so they
    // are legal termination points and exempt from deadlock pruning.
    let all_states: HashSet<u32> = prog.space.states().collect();
    let stutters = graph::deadlocks(&all_states, &delta_p);

    // Phase 1: ms — least fixpoint of "a fault step violates safety or
    // reaches ms".
    let mut ms: HashSet<u32> = prog.bad_states.clone();
    loop {
        let mut changed = false;
        for &(s, t) in faults {
            if !ms.contains(&s) && (ms.contains(&t) || prog.bad_trans.contains(&(s, t))) {
                ms.insert(s);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mt = |s0: u32, s1: u32| prog.bad_trans.contains(&(s0, s1)) || ms.contains(&s1);

    // Phase 2: initial invariant guess S₁ = S − ms, deadlocks pruned w.r.t.
    // the original transitions minus mt.
    let mut s1: HashSet<u32> = prog.invariant.difference(&ms).copied().collect();
    let safe_delta: Vec<(u32, u32)> = delta_p.iter().copied().filter(|&(a, b)| !mt(a, b)).collect();
    s1 = graph::prune_deadlocks_except(&s1, &safe_delta, &stutters);

    // Phase 3: initial fault-span guess T₁.
    let mut t1: HashSet<u32> = if opts.restrict_to_reachable {
        let mut combined = delta_p.clone();
        combined.extend(faults.iter().copied());
        graph::forward_reachable(&s1, &combined).difference(&ms).copied().collect()
    } else {
        prog.space.states().filter(|s| !ms.contains(s)).collect()
    };

    // Recovery candidates must be single-writer: a transition that changes
    // variables outside every process's write set is unconditionally
    // deleted by Step 2's write filter (mirrors the symbolic engine).
    let one_writer = |a: u32, b: u32| -> bool {
        let (va, vb) = (prog.space.decode(a), prog.space.decode(b));
        let changed: Vec<usize> = (0..va.len()).filter(|&i| va[i] != vb[i]).collect();
        changed.is_empty() || prog.writes.iter().any(|w| changed.iter().all(|c| w.contains(c)))
    };

    // Phase 4: the joint fixpoint on (S₁, T₁).
    let mut p1: Vec<(u32, u32)>;
    loop {
        let old_s1 = s1.clone();
        let old_t1 = t1.clone();

        p1 = allowed_transitions(&delta_p, &s1, &t1, &mt, &one_writer);

        // (a) keep only span states that can recover to S₁ via p1.
        let can_reach = graph::backward_reachable(&s1, &p1);
        t1 = t1.intersection(&can_reach).copied().collect();

        // (b) fault closure: a fault must never exit the span.
        loop {
            let leaving: Vec<u32> = faults
                .iter()
                .filter(|&&(s, t)| t1.contains(&s) && !t1.contains(&t))
                .map(|&(s, _)| s)
                .collect();
            if leaving.is_empty() {
                break;
            }
            for s in leaving {
                t1.remove(&s);
            }
        }

        // (c) invariant inside span; (d) no deadlocks inside invariant.
        s1 = s1.intersection(&t1).copied().collect();
        s1 = graph::prune_deadlocks_except(&s1, &safe_delta, &stutters);

        if s1.is_empty() {
            return ExplicitRepair {
                ms,
                bad_trans: prog.bad_trans.clone(),
                invariant: HashSet::new(),
                span: HashSet::new(),
                trans: Vec::new(),
                failed: true,
            };
        }
        if s1 == old_s1 && t1 == old_t1 {
            break;
        }
    }

    // Phase 5: break recovery cycles with the same three-phase peeling as
    // the symbolic engine (`ftrepair_core::ranking::break_cycles`):
    //  1. peel the original safe subgraph that reaches S₁ in reverse
    //     topological rounds (keeps all original acyclic recovery paths),
    //  2. at each round admit every p1 edge from the new layer into the
    //     already-peeled set (safe shortcuts),
    //  3. BFS over p1 for states only synthesized recovery can save.
    let orig_in_span: Vec<(u32, u32)> =
        safe_delta.iter().copied().filter(|&(a, b)| t1.contains(&a) && t1.contains(&b)).collect();
    let region = graph::backward_reachable(&s1, &orig_in_span);
    let p1_succ = graph::successors(&p1);
    let orig_succ = graph::successors(&orig_in_span);

    let mut final_trans: Vec<(u32, u32)> =
        p1.iter().copied().filter(|&(a, _)| s1.contains(&a)).collect();
    let mut assigned: HashSet<u32> = s1.clone();
    // Phases 1+2: peel the original subgraph.
    loop {
        let remaining: HashSet<u32> =
            region.iter().copied().filter(|s| !assigned.contains(s) && t1.contains(s)).collect();
        if remaining.is_empty() {
            break;
        }
        let layer: Vec<u32> = remaining
            .iter()
            .copied()
            .filter(|s| {
                orig_succ.get(s).is_none_or(|succs| succs.iter().all(|v| !remaining.contains(v)))
            })
            .collect();
        if layer.is_empty() {
            break; // original cycle: leave to phase 3
        }
        for &a in &layer {
            if let Some(succs) = p1_succ.get(&a) {
                for &b in succs {
                    if assigned.contains(&b) {
                        final_trans.push((a, b));
                    }
                }
            }
        }
        assigned.extend(layer);
    }
    // Phase 3: BFS over p1.
    loop {
        let layer: Vec<u32> = t1
            .iter()
            .copied()
            .filter(|s| {
                !assigned.contains(s)
                    && p1_succ
                        .get(s)
                        .is_some_and(|succs| succs.iter().any(|v| assigned.contains(v)))
            })
            .collect();
        if layer.is_empty() {
            break;
        }
        for &a in &layer {
            if let Some(succs) = p1_succ.get(&a) {
                for &b in succs {
                    if assigned.contains(&b) {
                        final_trans.push((a, b));
                    }
                }
            }
        }
        assigned.extend(layer);
    }
    final_trans.sort_unstable();
    final_trans.dedup();

    ExplicitRepair {
        ms,
        bad_trans: prog.bad_trans.clone(),
        invariant: s1,
        span: t1,
        trans: final_trans,
        failed: false,
    }
}

/// The "all possible available transitions" relation of Section V-A:
/// original transitions inside the invariant (closure preserved) plus any
/// recovery transition from the span outside the invariant back into the
/// span — both minus `mt`.
fn allowed_transitions(
    delta_p: &[(u32, u32)],
    s1: &HashSet<u32>,
    t1: &HashSet<u32>,
    mt: &impl Fn(u32, u32) -> bool,
    one_writer: &impl Fn(u32, u32) -> bool,
) -> Vec<(u32, u32)> {
    let mut p1: Vec<(u32, u32)> = delta_p
        .iter()
        .copied()
        .filter(|&(a, b)| s1.contains(&a) && s1.contains(&b) && !mt(a, b))
        .collect();
    for &a in t1.iter() {
        if s1.contains(&a) {
            continue;
        }
        for &b in t1.iter() {
            if !mt(a, b) && one_writer(a, b) {
                p1.push((a, b));
            }
        }
    }
    p1.sort_unstable();
    p1.dedup();
    p1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_masking_explicit;
    use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};

    /// x ∈ {0,1,2}: program toggles 0↔1 (invariant {0,1}); fault jumps to 2;
    /// no recovery in the original program. Add-Masking must invent 2→{0,1}.
    fn needs_recovery() -> DistributedProgram {
        let mut b = ProgramBuilder::new("needs-recovery");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    #[test]
    fn recovery_is_synthesized() {
        let mut p = needs_recovery();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let r = add_masking(&e, AddMaskingOptions::default());
        assert!(!r.failed);
        assert_eq!(r.invariant, [0u32, 1].into_iter().collect());
        assert_eq!(r.span, [0u32, 1, 2].into_iter().collect());
        // A recovery transition out of state 2 exists and is rank-decreasing.
        assert!(r.trans.iter().any(|&(a, b)| a == 2 && (b == 0 || b == 1)));
        // And the result verifies as masking tolerant.
        let report = verify_masking_explicit(&e, &r.trans, &r.invariant);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn ms_grows_backward_through_fault_chains() {
        // Faults: 1→2, 2→3; state 3 is bad. Then ms = {3, 2, 1}.
        let mut b = ProgramBuilder::new("chainfault");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(0))]); // wait: 0→0 self-loop... not allowed to self-frame
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let f1 = b.cx().assign_eq(x, 1);
        b.fault_action(f1, &[(x, Update::Const(2))]);
        let f2 = b.cx().assign_eq(x, 2);
        b.fault_action(f2, &[(x, Update::Const(3))]);
        let bad = b.cx().assign_eq(x, 3);
        b.bad_states(bad);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let r = add_masking(&e, AddMaskingOptions::default());
        assert_eq!(r.ms, [1u32, 2, 3].into_iter().collect());
        assert!(!r.failed);
        assert_eq!(r.invariant, [0u32].into_iter().collect());
    }

    #[test]
    fn fault_on_invariant_makes_repair_fail() {
        // Fault 0→1 where 1 is bad and 0 is the only invariant state: ms
        // swallows the invariant, repair must fail.
        let mut b = ProgramBuilder::new("hopeless");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g = b.cx().assign_eq(x, 0);
        b.action(g, &[(x, Update::Const(0))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 0);
        b.fault_action(fg, &[(x, Update::Const(1))]);
        let bad = b.cx().assign_eq(x, 1);
        b.bad_states(bad);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let r = add_masking(&e, AddMaskingOptions::default());
        assert!(r.failed);
        assert!(r.invariant.is_empty());
    }

    #[test]
    fn already_tolerant_program_is_untouched_in_essence() {
        // Program with its own recovery: invariant and span keep everything,
        // and inside the invariant only original transitions remain.
        let mut b = ProgramBuilder::new("tolerant");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let r = add_masking(&e, AddMaskingOptions::default());
        assert!(!r.failed);
        assert_eq!(r.invariant, [0u32, 1].into_iter().collect());
        // Inside the invariant: exactly the original toggles.
        let inside: Vec<(u32, u32)> =
            r.trans.iter().copied().filter(|&(a, _)| r.invariant.contains(&a)).collect();
        assert_eq!(inside, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn heuristic_restricts_span_to_reachable() {
        // State 3 exists but is unreachable; with the heuristic it must not
        // appear in the span, without it it may.
        let mut b = ProgramBuilder::new("unreachable");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let g3 = b.cx().assign_eq(x, 3);
        b.action(g3, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let with = add_masking(&e, AddMaskingOptions { restrict_to_reachable: true });
        assert!(!with.span.contains(&3));
        let without = add_masking(&e, AddMaskingOptions { restrict_to_reachable: false });
        assert!(without.span.contains(&3));
        // Both verify.
        let r1 = verify_masking_explicit(&e, &with.trans, &with.invariant);
        assert!(r1.ok(), "{r1:?}");
        let r2 = verify_masking_explicit(&e, &without.trans, &without.invariant);
        assert!(r2.ok(), "{r2:?}");
    }

    #[test]
    fn bad_transitions_are_never_used() {
        // Recovery 2→0 declared bad; Add-Masking must route around (2→1).
        let mut b = ProgramBuilder::new("routed");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let bt = b.cx().transition_cube(&[2], &[0]);
        b.bad_trans(bt);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let r = add_masking(&e, AddMaskingOptions::default());
        assert!(!r.failed);
        assert!(!r.trans.contains(&(2, 0)), "bad transition used");
        assert!(r.trans.contains(&(2, 1)), "alternate recovery missing");
    }
}

//! Fault-injection simulation: random-walk execution of a (repaired)
//! program under an adversarial-ish scheduler and random fault injection.
//!
//! The symbolic verifier proves masking tolerance once and for all; the
//! simulator complements it the systems way — by *running* the program:
//! pick a random legitimate start state, interleave random enabled
//! transitions with a bounded number of injected faults, and check on every
//! step that safety holds and that, once faults stop, the run is back
//! inside the invariant within a bounded number of steps. Disagreements
//! between prover and simulator would expose bugs in either; tests inject
//! thousands of runs on the repaired case studies.

use crate::extract::ExplicitProgram;
use ftrepair_bdd::SplitMix64;
use std::collections::HashSet;

/// Configuration for one batch of runs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Maximum faults injected per run.
    pub max_faults: usize,
    /// Probability of injecting an available fault at each step.
    pub fault_probability: f64,
    /// Steps allowed after the last fault before recovery must be complete.
    pub recovery_budget: usize,
    /// Number of runs.
    pub runs: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig { max_faults: 3, fault_probability: 0.2, recovery_budget: 10_000, runs: 200 }
    }
}

/// Why a run failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimFailure {
    /// A bad state was visited; the trace of state indices is attached.
    BadState(Vec<u32>),
    /// A bad transition was executed.
    BadTransition(Vec<u32>),
    /// After faults stopped, the run did not re-enter the invariant within
    /// the budget.
    NoRecovery(Vec<u32>),
}

/// Result of a batch.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Runs executed.
    pub runs: usize,
    /// Total steps taken across runs.
    pub steps: u64,
    /// Total faults injected.
    pub faults_injected: u64,
    /// First failure, if any.
    pub failure: Option<SimFailure>,
}

impl SimReport {
    /// Did every run satisfy safety and recovery?
    pub fn ok(&self) -> bool {
        self.failure.is_none()
    }
}

/// Run the simulator on `trans` (a repaired transition relation, as edges)
/// against `prog`'s faults and specification, starting from states of
/// `invariant`.
pub fn simulate(
    prog: &ExplicitProgram,
    trans: &[(u32, u32)],
    invariant: &HashSet<u32>,
    config: &SimConfig,
    rng: &mut SplitMix64,
) -> SimReport {
    let succ = crate::graph::successors(trans);
    let fault_succ = crate::graph::successors(&prog.faults);
    let starts: Vec<u32> = {
        let mut v: Vec<u32> = invariant.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let mut report = SimReport { runs: 0, steps: 0, faults_injected: 0, failure: None };
    if starts.is_empty() {
        return report;
    }

    'runs: for _ in 0..config.runs {
        report.runs += 1;
        let mut state = *rng.choose(&starts).unwrap();
        let mut trace = vec![state];
        let mut faults_left = config.max_faults;
        let mut since_last_fault = 0usize;

        loop {
            if prog.bad_states.contains(&state) {
                report.failure = Some(SimFailure::BadState(trace));
                break 'runs;
            }
            // Recovery check: once faults are exhausted (or we chose to stop
            // injecting), the run must re-enter the invariant in budget.
            if invariant.contains(&state) && faults_left == 0 {
                continue 'runs; // recovered: this run passes
            }
            if since_last_fault > config.recovery_budget {
                report.failure = Some(SimFailure::NoRecovery(trace));
                break 'runs;
            }

            // Choose: inject a fault (if available and allowed) or take a
            // program transition.
            let fault_options = fault_succ.get(&state);
            let inject = faults_left > 0
                && fault_options.is_some_and(|v| !v.is_empty())
                && rng.random_bool(config.fault_probability);
            let next = if inject {
                faults_left -= 1;
                since_last_fault = 0;
                report.faults_injected += 1;
                *rng.choose(fault_options.unwrap()).unwrap()
            } else if let Some(options) = succ.get(&state) {
                since_last_fault += 1;
                *rng.choose(options).unwrap()
            } else if invariant.contains(&state) {
                // Terminal legitimate state (stutters): if no faults remain
                // to shake it loose, the run is done.
                if faults_left == 0 {
                    continue 'runs;
                }
                since_last_fault += 1;
                state = *trace.last().unwrap();
                // Force a fault next time by looping; to avoid infinite
                // stutter without faults firing, inject now.
                faults_left -= 1;
                report.faults_injected += 1;
                match fault_succ.get(&state).and_then(|v| rng.choose(v)) {
                    Some(&s) => s,
                    None => continue 'runs, // nothing can happen here at all
                }
            } else {
                // Deadlock outside the invariant: recovery is impossible.
                report.failure = Some(SimFailure::NoRecovery(trace));
                break 'runs;
            };

            if prog.bad_trans.contains(&(state, next)) {
                trace.push(next);
                report.failure = Some(SimFailure::BadTransition(trace));
                break 'runs;
            }
            state = next;
            trace.push(state);
            report.steps += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_program::{ProgramBuilder, Update};

    fn tolerant() -> ExplicitProgram {
        let mut b = ProgramBuilder::new("toy");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        ExplicitProgram::from_symbolic(&mut p)
    }

    #[test]
    fn tolerant_program_survives_injection() {
        let e = tolerant();
        let trans = e.program_trans();
        let inv = e.invariant.clone();
        let mut rng = SplitMix64::seed_from_u64(7);
        let report = simulate(&e, &trans, &inv, &SimConfig::default(), &mut rng);
        assert!(report.ok(), "{:?}", report.failure);
        assert_eq!(report.runs, 200);
        assert!(report.faults_injected > 0, "injection must actually happen");
    }

    #[test]
    fn crippled_program_is_caught() {
        // Remove the recovery 2→0: the simulator must observe NoRecovery.
        let e = tolerant();
        let trans: Vec<(u32, u32)> =
            e.program_trans().into_iter().filter(|&(a, _)| a != 2).collect();
        let inv = e.invariant.clone();
        let mut rng = SplitMix64::seed_from_u64(7);
        let config = SimConfig { runs: 500, ..Default::default() };
        let report = simulate(&e, &trans, &inv, &config, &mut rng);
        assert!(matches!(report.failure, Some(SimFailure::NoRecovery(_))), "{report:?}");
    }

    #[test]
    fn unsafe_program_is_caught() {
        // Declare state 2 bad but keep faults driving into it.
        let mut b = ProgramBuilder::new("unsafe");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let bad = b.cx().assign_eq(x, 2);
        b.bad_states(bad);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let trans = e.program_trans();
        let inv = e.invariant.clone();
        let mut rng = SplitMix64::seed_from_u64(42);
        let config = SimConfig { runs: 500, fault_probability: 0.9, ..Default::default() };
        let report = simulate(&e, &trans, &inv, &config, &mut rng);
        assert!(matches!(report.failure, Some(SimFailure::BadState(_))), "{report:?}");
    }
}

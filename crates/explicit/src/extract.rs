//! Extraction of an explicit representation from a symbolic
//! [`DistributedProgram`] — by brute-force evaluation of every BDD on every
//! state (pair). Only for instances small enough to enumerate.

use crate::state::StateSpace;
use ftrepair_bdd::NodeId;
use ftrepair_program::DistributedProgram;
use std::collections::HashSet;

/// A fully-enumerated distributed program.
#[derive(Clone, Debug)]
pub struct ExplicitProgram {
    /// State indexing.
    pub space: StateSpace,
    /// Process names, in process order.
    pub proc_names: Vec<String>,
    /// Per process: positions (into the valuation) of readable variables.
    pub reads: Vec<Vec<usize>>,
    /// Per process: positions of writable variables.
    pub writes: Vec<Vec<usize>>,
    /// Per process: transition edges, sorted.
    pub proc_trans: Vec<Vec<(u32, u32)>>,
    /// Fault edges, sorted.
    pub faults: Vec<(u32, u32)>,
    /// Invariant membership.
    pub invariant: HashSet<u32>,
    /// Bad-state membership.
    pub bad_states: HashSet<u32>,
    /// Bad transitions.
    pub bad_trans: HashSet<(u32, u32)>,
}

impl ExplicitProgram {
    /// Enumerate `prog` exhaustively. Panics (via [`StateSpace::new`]) if
    /// the state space is too large to enumerate.
    pub fn from_symbolic(prog: &mut DistributedProgram) -> ExplicitProgram {
        let radices: Vec<u64> = prog.cx.var_ids().iter().map(|&v| prog.cx.info(v).size).collect();
        let space = StateSpace::new(radices);
        let proc_names = prog.processes.iter().map(|p| p.name.clone()).collect();
        let reads =
            prog.processes.iter().map(|p| p.read.iter().map(|v| v.0 as usize).collect()).collect();
        let writes =
            prog.processes.iter().map(|p| p.write.iter().map(|v| v.0 as usize).collect()).collect();
        let parts = prog.partitions();
        let proc_trans = parts.iter().map(|&t| bdd_to_edges(prog, &space, t)).collect::<Vec<_>>();
        let faults = bdd_to_edges(prog, &space, prog.faults);
        let invariant = bdd_to_states(prog, &space, prog.invariant);
        let bad_states = bdd_to_states(prog, &space, prog.safety.bad_states);
        let bad_trans = bdd_to_edges(prog, &space, prog.safety.bad_trans).into_iter().collect();
        ExplicitProgram {
            space,
            proc_names,
            reads,
            writes,
            proc_trans,
            faults,
            invariant,
            bad_states,
            bad_trans,
        }
    }

    /// Union of all process transitions (`δ_P` without stuttering).
    pub fn program_trans(&self) -> Vec<(u32, u32)> {
        let mut all: Vec<(u32, u32)> = self.proc_trans.iter().flatten().copied().collect();
        all.sort_unstable();
        all.dedup();
        all
    }

    /// Record the explicit graph's shape (state/edge counts) as telemetry
    /// gauges, so run reports can relate symbolic BDD sizes to the concrete
    /// graph they encode.
    pub fn record_telemetry(&self, tele: &ftrepair_telemetry::Telemetry) {
        if !tele.enabled() {
            return;
        }
        tele.set_gauge("explicit.states", self.space.num_states());
        tele.set_gauge("explicit.program_edges", self.program_trans().len() as u64);
        tele.set_gauge("explicit.fault_edges", self.faults.len() as u64);
        tele.set_gauge("explicit.invariant_states", self.invariant.len() as u64);
        tele.set_gauge("explicit.bad_states", self.bad_states.len() as u64);
    }

    /// Positions of variables process `j` cannot read.
    pub fn unreadable(&self, j: usize) -> Vec<usize> {
        (0..self.space.radices().len()).filter(|p| !self.reads[j].contains(p)).collect()
    }

    /// Positions of variables process `j` cannot write.
    pub fn unwritable(&self, j: usize) -> Vec<usize> {
        (0..self.space.radices().len()).filter(|p| !self.writes[j].contains(p)).collect()
    }
}

/// Evaluate a state predicate on every state.
pub fn bdd_to_states(
    prog: &mut DistributedProgram,
    space: &StateSpace,
    states: NodeId,
) -> HashSet<u32> {
    let nlevels = prog.cx.mgr_ref().num_vars() as usize;
    let mut out = HashSet::new();
    for idx in space.states().collect::<Vec<_>>() {
        let values = space.decode(idx);
        let mut assignment = vec![false; nlevels];
        fill_current(prog, &values, &mut assignment);
        if prog.cx.mgr_ref().eval(states, &assignment) {
            out.insert(idx);
        }
    }
    out
}

/// Evaluate a transition predicate on every state pair.
pub fn bdd_to_edges(
    prog: &mut DistributedProgram,
    space: &StateSpace,
    trans: NodeId,
) -> Vec<(u32, u32)> {
    let nlevels = prog.cx.mgr_ref().num_vars() as usize;
    let mut out = Vec::new();
    if trans == ftrepair_bdd::FALSE {
        return out;
    }
    let all: Vec<u32> = space.states().collect();
    for &from in &all {
        let fv = space.decode(from);
        // Cofactor on the source state once; candidates then only test next
        // bits, keeping this O(n²) loop tolerable.
        let mut assignment = vec![false; nlevels];
        fill_current(prog, &fv, &mut assignment);
        let lits: Vec<(u32, bool)> =
            current_levels(prog).into_iter().map(|l| (l, assignment[l as usize])).collect();
        let row = prog.cx.mgr().restrict(trans, &lits);
        if row == ftrepair_bdd::FALSE {
            continue;
        }
        for &to in &all {
            let tv = space.decode(to);
            let mut a2 = assignment.clone();
            fill_next(prog, &tv, &mut a2);
            if prog.cx.mgr_ref().eval(row, &a2) {
                out.push((from, to));
            }
        }
    }
    out.sort_unstable();
    out
}

fn current_levels(prog: &DistributedProgram) -> Vec<u32> {
    (0..prog.cx.total_bits()).map(|g| 2 * g).collect()
}

fn fill_current(prog: &DistributedProgram, values: &[u64], assignment: &mut [bool]) {
    for (i, v) in prog.cx.var_ids().into_iter().enumerate() {
        let bits = prog.cx.info(v).bits;
        for k in 0..bits {
            assignment[prog.cx.cur_level(v, k) as usize] = (values[i] >> k) & 1 == 1;
        }
    }
}

fn fill_next(prog: &DistributedProgram, values: &[u64], assignment: &mut [bool]) {
    for (i, v) in prog.cx.var_ids().into_iter().enumerate() {
        let bits = prog.cx.info(v).bits;
        for k in 0..bits {
            assignment[prog.cx.next_level(v, k) as usize] = (values[i] >> k) & 1 == 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_program::{ProgramBuilder, Update, TRUE};

    fn sample() -> DistributedProgram {
        let mut b = ProgramBuilder::new("sample");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("px", &[x, y], &[x]);
        for v in 0..2 {
            let g = b.cx().assign_eq(x, v);
            b.action(g, &[(x, Update::Const(v + 1))]);
        }
        b.process("py", &[y], &[y]);
        let g = b.cx().assign_eq(y, 0);
        b.action(g, &[(y, Update::Const(1))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let fg = b.cx().assign_eq(y, 1);
        b.fault_action(fg, &[(y, Update::Const(0))]);
        b.build()
    }

    #[test]
    fn extraction_counts_match_symbolic() {
        let mut p = sample();
        let e = ExplicitProgram::from_symbolic(&mut p);
        assert_eq!(e.space.num_states(), 6);
        let t = p.program_trans();
        assert_eq!(e.program_trans().len() as f64, p.cx.count_transitions(t));
        assert_eq!(e.faults.len() as f64, p.cx.count_transitions(p.faults));
        assert_eq!(e.invariant.len() as f64, p.cx.count_states(p.invariant));
    }

    #[test]
    fn edges_match_symbolic_enumeration() {
        let mut p = sample();
        let e = ExplicitProgram::from_symbolic(&mut p);
        let t = p.processes[0].trans;
        let sym: Vec<(Vec<u64>, Vec<u64>)> = p.cx.enumerate_transitions(t, 1000);
        let exp: Vec<(Vec<u64>, Vec<u64>)> =
            e.proc_trans[0].iter().map(|&(a, b)| (e.space.decode(a), e.space.decode(b))).collect();
        let mut sym_sorted = sym;
        sym_sorted.sort_unstable();
        let mut exp_sorted = exp;
        exp_sorted.sort_unstable();
        assert_eq!(sym_sorted, exp_sorted);
    }

    #[test]
    fn read_write_positions_extracted() {
        let mut p = sample();
        let e = ExplicitProgram::from_symbolic(&mut p);
        assert_eq!(e.reads[0], vec![0, 1]);
        assert_eq!(e.writes[0], vec![0]);
        assert_eq!(e.reads[1], vec![1]);
        assert_eq!(e.unreadable(1), vec![0]);
        assert_eq!(e.unwritable(0), vec![1]);
    }

    #[test]
    fn empty_predicates_extract_empty() {
        let mut b = ProgramBuilder::new("empty");
        let _x = b.var("x", 2);
        b.invariant(TRUE);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);
        assert!(e.faults.is_empty());
        assert!(e.bad_states.is_empty());
        assert!(e.bad_trans.is_empty());
        assert_eq!(e.invariant.len(), 2);
    }
}

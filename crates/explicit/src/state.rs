//! Mixed-radix state indexing: a bijection between variable valuations and
//! dense state indices `0..num_states`.

/// The explicit state space of a program: radices (domain sizes) in variable
/// declaration order, and codecs between valuations and indices.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateSpace {
    radices: Vec<u64>,
    num_states: u64,
}

impl StateSpace {
    /// Build from the domain sizes of the declared variables.
    /// Panics if the product overflows or exceeds `u32::MAX` states (the
    /// explicit engine is an oracle for *small* instances by design).
    pub fn new(radices: Vec<u64>) -> Self {
        let mut n: u64 = 1;
        for &r in &radices {
            assert!(r >= 1, "radix must be positive");
            n = n.checked_mul(r).expect("state space overflows u64");
        }
        assert!(n <= u32::MAX as u64, "state space too large for the explicit engine ({n})");
        StateSpace { radices, num_states: n }
    }

    /// Total number of states.
    #[inline]
    pub fn num_states(&self) -> u64 {
        self.num_states
    }

    /// Domain sizes in declaration order.
    #[inline]
    pub fn radices(&self) -> &[u64] {
        &self.radices
    }

    /// Encode a valuation (values in declaration order) to a state index.
    pub fn encode(&self, values: &[u64]) -> u32 {
        assert_eq!(values.len(), self.radices.len(), "arity mismatch");
        let mut idx: u64 = 0;
        // Little-endian mixed radix: first variable varies fastest.
        for (i, (&v, &r)) in values.iter().zip(&self.radices).enumerate().rev() {
            assert!(v < r, "value {v} out of domain {r} at position {i}");
            idx = idx * r + v;
        }
        idx as u32
    }

    /// Decode a state index back to a valuation.
    pub fn decode(&self, mut idx: u32) -> Vec<u64> {
        let mut out = Vec::with_capacity(self.radices.len());
        let mut rem = idx as u64;
        for &r in &self.radices {
            out.push(rem % r);
            rem /= r;
        }
        idx = 0; // silence unused-assignment lint paths
        let _ = idx;
        out
    }

    /// Iterate all states as indices.
    pub fn states(&self) -> impl Iterator<Item = u32> + '_ {
        0..self.num_states as u32
    }

    /// All indices that agree with `values` except possibly at the variable
    /// positions in `free` (used by explicit group computation).
    pub fn vary(&self, values: &[u64], free: &[usize]) -> Vec<Vec<u64>> {
        let mut out = vec![values.to_vec()];
        for &pos in free {
            let r = self.radices[pos];
            let mut next = Vec::with_capacity(out.len() * r as usize);
            for base in &out {
                for v in 0..r {
                    let mut s = base.clone();
                    s[pos] = v;
                    next.push(s);
                }
            }
            out = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_roundtrip() {
        let sp = StateSpace::new(vec![3, 2, 4]);
        assert_eq!(sp.num_states(), 24);
        for idx in sp.states().collect::<Vec<_>>() {
            let values = sp.decode(idx);
            assert_eq!(sp.encode(&values), idx);
            for (v, r) in values.iter().zip(sp.radices()) {
                assert!(v < r);
            }
        }
    }

    #[test]
    fn first_variable_varies_fastest() {
        let sp = StateSpace::new(vec![2, 3]);
        assert_eq!(sp.decode(0), vec![0, 0]);
        assert_eq!(sp.decode(1), vec![1, 0]);
        assert_eq!(sp.decode(2), vec![0, 1]);
        assert_eq!(sp.decode(5), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of domain")]
    fn encode_rejects_out_of_domain() {
        let sp = StateSpace::new(vec![2]);
        sp.encode(&[2]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn encode_rejects_wrong_arity() {
        let sp = StateSpace::new(vec![2, 2]);
        sp.encode(&[0]);
    }

    #[test]
    fn vary_enumerates_combinations() {
        let sp = StateSpace::new(vec![2, 3, 2]);
        let variants = sp.vary(&[1, 2, 0], &[0, 2]);
        assert_eq!(variants.len(), 4);
        // Middle variable pinned at 2 in every variant.
        assert!(variants.iter().all(|v| v[1] == 2));
        // All four (v0, v2) combinations present.
        let mut pairs: Vec<(u64, u64)> = variants.iter().map(|v| (v[0], v[2])).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 0), (0, 1), (1, 0), (1, 1)]);
    }

    #[test]
    fn vary_with_no_free_is_identity() {
        let sp = StateSpace::new(vec![2, 2]);
        assert_eq!(sp.vary(&[1, 0], &[]), vec![vec![1, 0]]);
    }
}

//! Explicit masking-tolerance verification — the oracle twin of
//! `ftrepair_program::verify::verify_masking`.

use crate::extract::ExplicitProgram;
use crate::graph;
use std::collections::HashSet;

/// Same checks as the symbolic `MaskingReport`, computed by enumeration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ExplicitMaskingReport {
    /// `S' ≠ ∅`.
    pub invariant_nonempty: bool,
    /// `S' ⊆ S`.
    pub invariant_shrunk: bool,
    /// `δ'|S' ⊆ δ|S'`.
    pub no_new_behavior: bool,
    /// `S'` closed in `δ'`.
    pub invariant_closed: bool,
    /// New deadlocks inside `S'` only where the original program deadlocked.
    pub no_new_deadlocks_inside: bool,
    /// No reachable bad state / executable bad transition under `δ' ∪ f`.
    pub safe_under_faults: bool,
    /// Every fault-span state recovers on every computation.
    pub recovery_guaranteed: bool,
}

impl ExplicitMaskingReport {
    /// Definition 15 checks (new terminal states inside the invariant are
    /// accepted — they stutter; see the symbolic twin for discussion).
    pub fn ok(&self) -> bool {
        self.invariant_nonempty
            && self.invariant_shrunk
            && self.no_new_behavior
            && self.invariant_closed
            && self.safe_under_faults
            && self.recovery_guaranteed
    }

    /// [`Self::ok`] plus the no-new-deadlocks-inside condition.
    pub fn ok_strict(&self) -> bool {
        self.ok() && self.no_new_deadlocks_inside
    }
}

/// Verify a candidate `(δ', S')` against the original explicit program.
pub fn verify_masking_explicit(
    prog: &ExplicitProgram,
    new_trans: &[(u32, u32)],
    new_inv: &HashSet<u32>,
) -> ExplicitMaskingReport {
    let orig_trans = prog.program_trans();
    let orig_set: HashSet<(u32, u32)> = orig_trans.iter().copied().collect();

    let invariant_nonempty = !new_inv.is_empty();
    let invariant_shrunk = new_inv.is_subset(&prog.invariant);

    // Stutter self-loops at originally-terminal states are part of δ_P per
    // Definition 18; allow them inside the invariant.
    let all_states: HashSet<u32> = prog.space.states().collect();
    let orig_stutters = graph::deadlocks(&all_states, &orig_trans);
    let new_inside = graph::project(new_trans, new_inv);
    let no_new_behavior = new_inside
        .iter()
        .all(|&(a, b)| orig_set.contains(&(a, b)) || (a == b && orig_stutters.contains(&a)));

    let invariant_closed =
        new_trans.iter().all(|(a, b)| !new_inv.contains(a) || new_inv.contains(b));

    let new_dead = graph::deadlocks(new_inv, new_trans);
    let orig_dead = graph::deadlocks(new_inv, &orig_trans);
    let no_new_deadlocks_inside = new_dead.is_subset(&orig_dead);

    // Fault-span.
    let mut combined: Vec<(u32, u32)> = new_trans.to_vec();
    combined.extend(prog.faults.iter().copied());
    let span = graph::forward_reachable(new_inv, &combined);

    let bad_state_hit = span.iter().any(|s| prog.bad_states.contains(s));
    let bad_trans_hit =
        combined.iter().any(|&(a, b)| span.contains(&a) && prog.bad_trans.contains(&(a, b)));
    let safe_under_faults = !bad_state_hit && !bad_trans_hit;

    let outside: HashSet<u32> = span.difference(new_inv).copied().collect();
    let dead_outside = graph::deadlocks(&outside, new_trans);
    let cycle = graph::cycle_core(&outside, new_trans);
    let recovery_guaranteed = dead_outside.is_empty() && cycle.is_empty();

    ExplicitMaskingReport {
        invariant_nonempty,
        invariant_shrunk,
        no_new_behavior,
        invariant_closed,
        no_new_deadlocks_inside,
        safe_under_faults,
        recovery_guaranteed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_program::{ProgramBuilder, Update};

    fn toy() -> ExplicitProgram {
        let mut b = ProgramBuilder::new("toy");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        ExplicitProgram::from_symbolic(&mut p)
    }

    #[test]
    fn tolerant_program_verifies() {
        let e = toy();
        let t = e.program_trans();
        let inv = e.invariant.clone();
        let r = verify_masking_explicit(&e, &t, &inv);
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn dropping_recovery_fails_recovery_check() {
        let e = toy();
        let t: Vec<(u32, u32)> = e.program_trans().into_iter().filter(|&(a, _)| a != 2).collect();
        let inv = e.invariant.clone();
        let r = verify_masking_explicit(&e, &t, &inv);
        assert!(!r.recovery_guaranteed);
    }

    #[test]
    fn self_loop_outside_invariant_fails_recovery() {
        let e = toy();
        let mut t = e.program_trans();
        t.push((2, 2));
        let inv = e.invariant.clone();
        let r = verify_masking_explicit(&e, &t, &inv);
        assert!(!r.recovery_guaranteed);
    }

    #[test]
    fn added_behavior_inside_invariant_detected() {
        let e = toy();
        let mut t = e.program_trans();
        t.push((0, 0));
        let inv = e.invariant.clone();
        let r = verify_masking_explicit(&e, &t, &inv);
        assert!(!r.no_new_behavior);
    }

    #[test]
    fn agreement_with_symbolic_verifier() {
        // The same candidate must get the same verdict from both verifiers.
        let mut b = ProgramBuilder::new("toy");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let g2 = b.cx().assign_eq(x, 2);
        b.action(g2, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let e = ExplicitProgram::from_symbolic(&mut p);

        let t_sym = p.program_trans();
        let (inv_sym, faults) = (p.invariant, p.faults);
        let safety = p.safety;
        let sym = ftrepair_program::verify::verify_masking(
            &mut p.cx, t_sym, inv_sym, t_sym, inv_sym, faults, &safety,
        );
        let t_exp = e.program_trans();
        let inv_exp = e.invariant.clone();
        let exp = verify_masking_explicit(&e, &t_exp, &inv_exp);
        assert_eq!(sym.ok(), exp.ok());
        assert!(sym.ok());
    }
}

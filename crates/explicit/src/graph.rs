//! Worklist graph algorithms over explicit edge lists.

use std::collections::{HashMap, HashSet, VecDeque};

/// Forward adjacency map of an edge list.
pub fn successors(edges: &[(u32, u32)]) -> HashMap<u32, Vec<u32>> {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in edges {
        map.entry(a).or_default().push(b);
    }
    map
}

/// Backward adjacency map of an edge list.
pub fn predecessors(edges: &[(u32, u32)]) -> HashMap<u32, Vec<u32>> {
    let mut map: HashMap<u32, Vec<u32>> = HashMap::new();
    for &(a, b) in edges {
        map.entry(b).or_default().push(a);
    }
    map
}

/// States reachable from `init` (inclusive) via `edges`.
pub fn forward_reachable(init: &HashSet<u32>, edges: &[(u32, u32)]) -> HashSet<u32> {
    let succ = successors(edges);
    let mut seen: HashSet<u32> = init.clone();
    let mut queue: VecDeque<u32> = init.iter().copied().collect();
    while let Some(s) = queue.pop_front() {
        if let Some(next) = succ.get(&s) {
            for &t in next {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }
    seen
}

/// States that can reach `target` (inclusive) via `edges`.
pub fn backward_reachable(target: &HashSet<u32>, edges: &[(u32, u32)]) -> HashSet<u32> {
    let pred = predecessors(edges);
    let mut seen: HashSet<u32> = target.clone();
    let mut queue: VecDeque<u32> = target.iter().copied().collect();
    while let Some(s) = queue.pop_front() {
        if let Some(prev) = pred.get(&s) {
            for &t in prev {
                if seen.insert(t) {
                    queue.push_back(t);
                }
            }
        }
    }
    seen
}

/// States of `states` with no outgoing edge in `edges`.
pub fn deadlocks(states: &HashSet<u32>, edges: &[(u32, u32)]) -> HashSet<u32> {
    let with_succ: HashSet<u32> = edges.iter().map(|&(a, _)| a).collect();
    states.iter().copied().filter(|s| !with_succ.contains(s)).collect()
}

/// Edges that start and end inside `states` (projection, Definition 6).
pub fn project(edges: &[(u32, u32)], states: &HashSet<u32>) -> Vec<(u32, u32)> {
    edges.iter().copied().filter(|(a, b)| states.contains(a) && states.contains(b)).collect()
}

/// Largest subset of `states` in which every state has an outgoing edge
/// (within the subset) — the explicit twin of
/// `ftrepair_program::semantics::prune_deadlocks`.
pub fn prune_deadlocks(states: &HashSet<u32>, edges: &[(u32, u32)]) -> HashSet<u32> {
    let mut s = states.clone();
    loop {
        let inside = project(edges, &s);
        let dead = deadlocks(&s, &inside);
        if dead.is_empty() {
            return s;
        }
        for d in dead {
            s.remove(&d);
        }
    }
}

/// Like [`prune_deadlocks`], but members of `exempt` survive even without a
/// successor (originally-terminal states under stuttering semantics).
pub fn prune_deadlocks_except(
    states: &HashSet<u32>,
    edges: &[(u32, u32)],
    exempt: &HashSet<u32>,
) -> HashSet<u32> {
    let mut s = states.clone();
    loop {
        let inside = project(edges, &s);
        let dead: Vec<u32> =
            deadlocks(&s, &inside).into_iter().filter(|d| !exempt.contains(d)).collect();
        if dead.is_empty() {
            return s;
        }
        for d in dead {
            s.remove(&d);
        }
    }
}

/// BFS ranks toward `target`: `rank[s] = 0` for targets, otherwise the
/// length of the shortest `edges`-path from `s` into `target`. Unreachable
/// states are absent.
pub fn ranks_to(target: &HashSet<u32>, edges: &[(u32, u32)]) -> HashMap<u32, u32> {
    let pred = predecessors(edges);
    let mut rank: HashMap<u32, u32> = target.iter().map(|&s| (s, 0)).collect();
    let mut queue: VecDeque<u32> = target.iter().copied().collect();
    while let Some(s) = queue.pop_front() {
        let r = rank[&s];
        if let Some(prev) = pred.get(&s) {
            for &p in prev {
                if let std::collections::hash_map::Entry::Vacant(e) = rank.entry(p) {
                    e.insert(r + 1);
                    queue.push_back(p);
                }
            }
        }
    }
    rank
}

/// The largest subset of `states` all of whose members have a successor
/// (via `edges`) back inside the subset — nonempty iff `edges` restricted to
/// `states` admits an infinite path. Used to detect non-recovering cycles.
pub fn cycle_core(states: &HashSet<u32>, edges: &[(u32, u32)]) -> HashSet<u32> {
    let mut s = states.clone();
    loop {
        let inside = project(edges, &s);
        let with_succ: HashSet<u32> = inside.iter().map(|&(a, _)| a).collect();
        let next: HashSet<u32> = s.intersection(&with_succ).copied().collect();
        if next == s {
            return s;
        }
        s = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(v: &[u32]) -> HashSet<u32> {
        v.iter().copied().collect()
    }

    #[test]
    fn forward_reachability_on_a_line() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        assert_eq!(forward_reachable(&set(&[0]), &edges), set(&[0, 1, 2, 3]));
        assert_eq!(forward_reachable(&set(&[2]), &edges), set(&[2, 3]));
    }

    #[test]
    fn backward_reachability_on_a_line() {
        let edges = vec![(0, 1), (1, 2), (2, 3)];
        assert_eq!(backward_reachable(&set(&[3]), &edges), set(&[0, 1, 2, 3]));
        assert_eq!(backward_reachable(&set(&[1]), &edges), set(&[0, 1]));
    }

    #[test]
    fn deadlocks_and_projection() {
        let edges = vec![(0, 1), (1, 2)];
        let all = set(&[0, 1, 2]);
        assert_eq!(deadlocks(&all, &edges), set(&[2]));
        let sub = set(&[0, 1]);
        assert_eq!(project(&edges, &sub), vec![(0, 1)]);
    }

    #[test]
    fn prune_deadlocks_unwinds() {
        let edges = vec![(0, 1), (1, 2)];
        assert!(prune_deadlocks(&set(&[0, 1, 2]), &edges).is_empty());
        let edges_cycle = vec![(0, 1), (1, 0), (1, 2)];
        assert_eq!(prune_deadlocks(&set(&[0, 1, 2]), &edges_cycle), set(&[0, 1]));
    }

    #[test]
    fn ranks_measure_shortest_distance() {
        let edges = vec![(0, 1), (1, 2), (0, 2), (3, 3)];
        let r = ranks_to(&set(&[2]), &edges);
        assert_eq!(r[&2], 0);
        assert_eq!(r[&1], 1);
        assert_eq!(r[&0], 1); // shortcut 0→2
        assert!(!r.contains_key(&3));
    }

    #[test]
    fn cycle_core_finds_loops() {
        let edges = vec![(0, 1), (1, 0), (2, 3)];
        assert_eq!(cycle_core(&set(&[0, 1, 2, 3]), &edges), set(&[0, 1]));
        let dag = vec![(0, 1), (1, 2)];
        assert!(cycle_core(&set(&[0, 1, 2]), &dag).is_empty());
        let self_loop = vec![(5, 5)];
        assert_eq!(cycle_core(&set(&[5]), &self_loop), set(&[5]));
    }
}

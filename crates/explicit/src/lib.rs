//! # ftrepair-explicit — the explicit-state oracle
//!
//! Everything the symbolic engine does with BDDs, this crate does the
//! pedestrian way: states are enumerated integers (mixed-radix encodings of
//! variable valuations), transition relations are sorted edge lists, and
//! every fixpoint is a worklist loop.
//!
//! Its purpose is **cross-validation**. The repair algorithms are subtle —
//! an off-by-one in a fixpoint or a mis-directed rename produces plausible
//! but wrong programs. On instances small enough to enumerate (a few
//! thousand states) the explicit and symbolic engines must agree *exactly*:
//! on reachability, on `ms`/`mt`, on the repaired invariant and fault-span,
//! and on the final transition relations. Integration tests in
//! `ftrepair-core` and at the workspace root hold them to that.
//!
//! The crate also contains a reference implementation of Add-Masking
//! (Kulkarni & Arora) in [`add_masking`], with the same
//! reachable-restriction heuristic switch the paper's Step 1 uses.

pub mod add_masking;
pub mod extract;
pub mod graph;
pub mod group;
pub mod simulate;
pub mod state;
pub mod verify;

pub use add_masking::{add_masking, AddMaskingOptions, ExplicitRepair};
pub use extract::ExplicitProgram;
pub use simulate::{simulate, SimConfig, SimReport};
pub use state::StateSpace;

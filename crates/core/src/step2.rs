//! Step 2 (Algorithm 2): construct a realizable distributed program from
//! the unconstrained output of Step 1 — by removing transitions whose
//! read-restriction group is incomplete, and freely adding transitions that
//! start outside the fault-span (their source states are never reached, so
//! they are harmless and make many groups completable).

use crate::cancel::{RepairAborted, Token};
use crate::options::RepairOptions;
use crate::stats::RepairStats;
use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_program::{realizability, DistributedProgram, Process};
use ftrepair_symbolic::SymbolicContext;
use ftrepair_telemetry::Telemetry;

/// Output of Algorithm 2.
#[derive(Clone, Debug)]
pub struct Step2Result {
    /// Per-process realizable transition predicates `δ_j`.
    pub processes: Vec<Process>,
    /// Their union `δ_P'`.
    pub trans: NodeId,
    /// Counters (groups kept/dropped, expansions, picks).
    pub stats: RepairStats,
}

/// Run Algorithm 2 on the Step 1 output `trans` with fault-span `span`.
/// The deadline (if any) comes from [`RepairOptions::deadline`].
pub fn step2(
    prog: &mut DistributedProgram,
    trans: NodeId,
    span: NodeId,
    opts: &RepairOptions,
) -> Result<Step2Result, RepairAborted> {
    step2_traced(prog, trans, span, opts, &Telemetry::off())
}

/// [`step2`] with telemetry: group pick/keep/drop/expand decisions are
/// counted into `tele` alongside the [`RepairStats`] fields (same events,
/// same numbers — run reports and returned stats must agree).
pub fn step2_traced(
    prog: &mut DistributedProgram,
    trans: NodeId,
    span: NodeId,
    opts: &RepairOptions,
    tele: &Telemetry,
) -> Result<Step2Result, RepairAborted> {
    step2_cancellable(prog, trans, span, opts, tele, &Token::from_options(opts))
}

/// [`step2_traced`] against an externally owned [`Token`] — how Algorithm
/// 1 shares one deadline across both steps.
pub fn step2_cancellable(
    prog: &mut DistributedProgram,
    trans: NodeId,
    span: NodeId,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
) -> Result<Step2Result, RepairAborted> {
    token.check()?;
    let mut stats = RepairStats::default();
    let nprocs = prog.processes.len();
    // Line 1: δ := δ_P'' ∪ { (s0, s1) | s0 ∉ T } — all transitions starting
    // outside the fault-span are fair game.
    let delta = with_outside_span(&mut prog.cx, trans, span);

    let mut processes = Vec::with_capacity(nprocs);
    let mut union = FALSE;
    for j in 0..nprocs {
        // Roots for reorder checkpoints inside the partition loop: the
        // spanning inputs (the caller keeps using `span` afterwards), the
        // shared candidate relation, and everything accumulated so far.
        let mut keep = vec![trans, span, delta, union];
        keep.extend(processes.iter().map(|p: &Process| p.trans));
        let delta_j = process_partition(prog, j, delta, opts, &keep, &mut stats, tele, token)?;
        let p = &prog.processes[j];
        processes.push(Process {
            name: p.name.clone(),
            read: p.read.clone(),
            write: p.write.clone(),
            trans: delta_j,
        });
        union = prog.cx.mgr().or(union, delta_j);
    }
    Ok(Step2Result { processes, trans: union, stats })
}

/// Line 1 of Algorithm 2 as a predicate transform.
pub(crate) fn with_outside_span(cx: &mut SymbolicContext, trans: NodeId, span: NodeId) -> NodeId {
    let outside = {
        let universe = cx.state_universe();
        cx.mgr().diff(universe, span)
    };
    let t_universe = cx.transition_universe();
    let free = cx.mgr().and(outside, t_universe);
    cx.mgr().or(trans, free)
}

/// Lines 4–23: compute `δ_j` for one process of `prog`.
#[allow(clippy::too_many_arguments)]
pub(crate) fn process_partition(
    prog: &mut DistributedProgram,
    j: usize,
    delta: NodeId,
    opts: &RepairOptions,
    keep: &[NodeId],
    stats: &mut RepairStats,
    tele: &Telemetry,
    token: &Token,
) -> Result<NodeId, RepairAborted> {
    let read = prog.processes[j].read.clone();
    let write = prog.processes[j].write.clone();
    partition_for(&mut prog.cx, &read, &write, delta, opts, keep, stats, tele, token)
}

/// Standalone form of the per-process loop: everything it needs is the
/// context and the process's read/write sets, so the parallel Step 2 can
/// run it on a forked context in a worker thread. Checks `token` before
/// each group-operation batch: once per closed-form pass, once per pick in
/// the iterative loop. `keep` lists the caller's live BDD roots — the
/// reorder checkpoints here (same boundaries as the token checks) pass
/// them through so a mid-partition sift cannot collect them.
#[allow(clippy::too_many_arguments)]
pub(crate) fn partition_for(
    cx: &mut SymbolicContext,
    read: &[ftrepair_symbolic::VarId],
    write: &[ftrepair_symbolic::VarId],
    delta: NodeId,
    opts: &RepairOptions,
    keep: &[NodeId],
    stats: &mut RepairStats,
    tele: &Telemetry,
    token: &Token,
) -> Result<NodeId, RepairAborted> {
    let with_keep = |extra: &[NodeId]| {
        let mut roots = keep.to_vec();
        roots.extend_from_slice(extra);
        roots
    };
    cx.maybe_reorder(&with_keep(&[delta]));
    // Lock-free counter handles, registered once per process — the inner
    // pick loop only touches atomics. Each increment sits next to its
    // `RepairStats` twin so the two tallies cannot drift apart.
    let c_picks = tele.counter("step2.picks");
    let c_kept = tele.counter("step2.groups_kept");
    let c_dropped = tele.counter("step2.groups_dropped");
    let c_expansions = tele.counter("step2.expansions");

    let unwritable: Vec<_> = cx.var_ids().into_iter().filter(|v| !write.contains(v)).collect();
    let unreadable: Vec<_> = cx.var_ids().into_iter().filter(|v| !read.contains(v)).collect();
    let expandable: Vec<_> = read.iter().copied().filter(|v| !write.contains(v)).collect();

    // Line 5: Δ_j — write-restriction filter.
    let frame = realizability::write_ok(cx, &unwritable);
    let mut cand = cx.mgr().and(delta, frame);
    let t_universe = cx.transition_universe();
    cand = cx.mgr().and(cand, t_universe);

    if cand == FALSE {
        return Ok(FALSE);
    }
    if opts.step2_closed_form {
        stats.cancel_checks += 1;
        token.check_governed(cx)?;
        // Groups are disjoint equivalence classes, so the fixpoint of the
        // pick/drop loop below is exactly the union of classes fully
        // contained in Δ_j:  Δ_j − group(group(Δ_j) − Δ_j).
        let closure = realizability::group(cx, &unreadable, cand);
        let missing = cx.mgr().diff(closure, cand);
        let bad = realizability::group(cx, &unreadable, missing);
        let keep = cx.mgr().diff(cand, bad);
        stats.step2_picks += 1;
        c_picks.inc();
        if keep != FALSE {
            stats.groups_kept += 1;
            c_kept.inc();
        }
        if bad != FALSE {
            stats.groups_dropped += 1;
            c_dropped.inc();
        }
        debug_assert!({
            let g = realizability::group(cx, &unreadable, keep);
            g == keep
        });
        return Ok(keep);
    }

    let all_levels: Vec<u32> = (0..cx.mgr_ref().num_vars()).collect();
    let mut delta_j = FALSE;

    // Lines 7–22: peel off one group (or its expansion) at a time.
    while cand != FALSE {
        stats.cancel_checks += 1;
        token.check_governed(cx)?;
        cx.maybe_reorder(&with_keep(&[cand, delta_j]));
        stats.step2_picks += 1;
        c_picks.inc();
        // Line 8: choose one concrete transition.
        let pick = cx.mgr().pick_cube_bdd(cand, &all_levels);
        debug_assert_ne!(pick, FALSE);
        // Line 9: its group.
        let mut g = realizability::group(cx, &unreadable, pick);
        // Line 10: all members present?
        if !cx.mgr().leq(g, cand) {
            // Line 11: incomplete group — remove it wholesale.
            cand = cx.mgr().diff(cand, g);
            stats.groups_dropped += 1;
            c_dropped.inc();
            continue;
        }
        // Lines 13–18: try to expand over each readable-but-not-written
        // variable; keep every expansion that stays inside Δ_j.
        if opts.use_expand_group {
            for &v in &expandable {
                let g2 = realizability::expand_group(cx, v, g);
                if g2 != g && cx.mgr().leq(g2, cand) {
                    g = g2;
                    stats.expansions += 1;
                    c_expansions.inc();
                }
            }
        }
        // Lines 19–20.
        delta_j = cx.mgr().or(delta_j, g);
        cand = cx.mgr().diff(cand, g);
        stats.groups_kept += 1;
        c_kept.inc();
    }
    Ok(delta_j)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_program::verify::verify_realizability;
    use ftrepair_program::{ProgramBuilder, TRUE};

    /// The Figure 3–5 universe: v0, v1, v2 booleans, p_j reads {v0,v1}
    /// writes {v1}, p_k reads {v0,v2} writes {v2}.
    fn fig_builder() -> (DistributedProgram, [ftrepair_symbolic::VarId; 3]) {
        let mut b = ProgramBuilder::new("fig");
        let v0 = b.var("v0", 2);
        let v1 = b.var("v1", 2);
        let v2 = b.var("v2", 2);
        b.process("pj", &[v0, v1], &[v1]);
        b.process("pk", &[v0, v2], &[v2]);
        b.invariant(TRUE);
        (b.build(), [v0, v1, v2])
    }

    #[test]
    fn incomplete_group_is_dropped() {
        // Candidate program = the single Figure-4 transition; span = whole
        // space, so no free additions: Step 2 must delete it.
        let (mut p, _) = fig_builder();
        let t = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let r = step2(&mut p, t, TRUE, &RepairOptions::default()).unwrap();
        assert_eq!(r.trans, FALSE);
        assert!(r.stats.groups_dropped >= 1);
        assert_eq!(r.stats.groups_kept, 0);
    }

    #[test]
    fn complete_group_is_kept_and_realizable() {
        // Candidate = the Figure-5 pair: survives and is realizable by p_j.
        let (mut p, _) = fig_builder();
        let t1 = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let t2 = p.cx.transition_cube(&[0, 0, 1], &[0, 1, 1]);
        let t = p.cx.mgr().or(t1, t2);
        let r = step2(&mut p, t, TRUE, &RepairOptions::default()).unwrap();
        assert!(p.cx.mgr().leq(t, r.trans));
        let report = verify_realizability(&mut p, &r.processes);
        assert!(report.ok(), "{report:?}");
        // It ended up in p_j's partition, not p_k's.
        assert!(p.cx.mgr().leq(t, r.processes[0].trans));
        assert_eq!(r.processes[1].trans, FALSE);
    }

    #[test]
    fn missing_member_outside_span_is_added_for_free() {
        // Figure-4 transition alone, but with the sibling's source (001)
        // outside the span: line 1 adds every transition from it, making
        // the group completable.
        let (mut p, _) = fig_builder();
        let t = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let span = {
            // span = everything except 001.
            let missing = p.cx.state_cube(&[0, 0, 1]);
            p.cx.mgr().not(missing)
        };
        let r = step2(&mut p, t, span, &RepairOptions::default()).unwrap();
        assert!(p.cx.mgr().leq(t, r.trans), "original transition kept");
        let report = verify_realizability(&mut p, &r.processes);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn output_is_always_realizable() {
        // Whatever the input relation, Step 2's per-process outputs satisfy
        // Definitions 19/20. Try a messy relation.
        let (mut p, _) = fig_builder();
        let a = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 1]); // double write
        let b = p.cx.transition_cube(&[1, 0, 0], &[1, 1, 0]);
        let c = p.cx.transition_cube(&[1, 1, 0], &[1, 1, 1]);
        let ab = p.cx.mgr().or(a, b);
        let t = p.cx.mgr().or(ab, c);
        let r = step2(&mut p, t, TRUE, &RepairOptions::default()).unwrap();
        let report = verify_realizability(&mut p, &r.processes);
        assert!(report.ok(), "{report:?}");
        // The double-write transition cannot survive (no process can do it).
        assert!(p.cx.mgr().disjoint(r.trans, a));
    }

    #[test]
    fn step2_never_adds_transitions_inside_span() {
        let (mut p, _) = fig_builder();
        let t1 = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let t2 = p.cx.transition_cube(&[0, 0, 1], &[0, 1, 1]);
        let t = p.cx.mgr().or(t1, t2);
        let r = step2(&mut p, t, TRUE, &RepairOptions::default()).unwrap();
        // span = TRUE means nothing outside: result ⊆ input.
        assert!(p.cx.mgr().leq(r.trans, t));
    }

    #[test]
    fn expand_group_reduces_iterations() {
        // A relation that is one action over an ignorable guard variable:
        // v1:=1 whenever v1=0, for both values of v0 — with expansion this
        // is a single pick; without, two.
        let (mut p, _) = fig_builder();
        let mk = |p: &mut DistributedProgram, a: u64| {
            let t1 = p.cx.transition_cube(&[a, 0, 0], &[a, 1, 0]);
            let t2 = p.cx.transition_cube(&[a, 0, 1], &[a, 1, 1]);
            p.cx.mgr().or(t1, t2)
        };
        let g0 = mk(&mut p, 0);
        let g1 = mk(&mut p, 1);
        let t = p.cx.mgr().or(g0, g1);

        let with = step2(&mut p, t, TRUE, &RepairOptions::iterative_step2()).unwrap();
        let without = step2(
            &mut p,
            t,
            TRUE,
            &RepairOptions { use_expand_group: false, ..RepairOptions::iterative_step2() },
        )
        .unwrap();
        let closed = step2(&mut p, t, TRUE, &RepairOptions::default()).unwrap();
        assert_eq!(with.trans, without.trans, "same semantics either way");
        assert_eq!(with.trans, closed.trans, "closed form matches the loop");
        assert!(p.cx.mgr().leq(t, with.trans));
        assert!(
            with.stats.step2_picks < without.stats.step2_picks,
            "expansion must save picks: {} vs {}",
            with.stats.step2_picks,
            without.stats.step2_picks
        );
        assert!(with.stats.expansions >= 1);
        assert!(
            closed.stats.step2_picks <= with.stats.step2_picks,
            "closed form does at most one pass per process"
        );
    }

    #[test]
    fn closed_form_equals_iterative_on_messy_relations() {
        let (mut p, _) = fig_builder();
        // A relation mixing complete groups, incomplete groups and write
        // violations, with a nontrivial span.
        let a = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let b = p.cx.transition_cube(&[0, 0, 1], &[0, 1, 1]);
        let c = p.cx.transition_cube(&[1, 0, 0], &[1, 1, 0]); // incomplete
        let d = p.cx.transition_cube(&[1, 1, 0], &[1, 0, 1]); // double write
        let ab = p.cx.mgr().or(a, b);
        let abc = p.cx.mgr().or(ab, c);
        let t = p.cx.mgr().or(abc, d);
        let span = {
            let missing = p.cx.state_cube(&[1, 0, 1]);
            p.cx.mgr().not(missing)
        };
        let iter = step2(&mut p, t, span, &RepairOptions::iterative_step2()).unwrap();
        let closed = step2(&mut p, t, span, &RepairOptions::default()).unwrap();
        assert_eq!(iter.trans, closed.trans);
        for (x, y) in iter.processes.iter().zip(&closed.processes) {
            assert_eq!(x.trans, y.trans, "process {} differs", x.name);
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let (mut p, _) = fig_builder();
        let r = step2(&mut p, FALSE, TRUE, &RepairOptions::default()).unwrap();
        assert_eq!(r.trans, FALSE);
        assert_eq!(r.stats.step2_picks, 0);
    }

    #[test]
    fn expired_deadline_aborts_before_any_pick() {
        let (mut p, _) = fig_builder();
        let t1 = p.cx.transition_cube(&[0, 0, 0], &[0, 1, 0]);
        let t2 = p.cx.transition_cube(&[0, 0, 1], &[0, 1, 1]);
        let t = p.cx.mgr().or(t1, t2);
        let opts =
            RepairOptions { deadline: Some(std::time::Duration::ZERO), ..Default::default() };
        let tele = Telemetry::new();
        let r = step2_traced(&mut p, t, TRUE, &opts, &tele);
        assert_eq!(r.unwrap_err(), RepairAborted::Timeout);
        assert_eq!(tele.snapshot().counter("step2.picks"), 0, "no pick before the abort");
    }

    #[test]
    fn with_outside_span_adds_full_rows() {
        let (mut p, _) = fig_builder();
        let span = p.cx.state_cube(&[0, 0, 0]); // tiny span
        let d = with_outside_span(&mut p.cx, FALSE, span);
        // 7 outside states × 8 targets.
        assert_eq!(p.cx.count_transitions(d), 56.0);
    }
}

//! Warm-start seeds for Step 1.
//!
//! A cached neighbor's invariant and fault-span BDDs (imported into the
//! current manager) let Phase 3 of Add-Masking start its forward
//! reachability from `s1 ∪ (seed ∩ universe)` instead of from `s1` alone.
//! This is sound for *any* seed: the seeded frontier only grows the
//! reachable over-approximation, and the result stays clamped to
//! `universe − ms` — exactly the span the non-heuristic mode
//! (`restrict_to_reachable = false`) uses, which the Step 1 cross-checks
//! already prove sound. Phase 4's joint fixpoint then shrinks the span to
//! the same final answer either way; what the seed buys is collapsing the
//! O(diameter) frontier expansion when the neighbor's span already covers
//! the reachable states.
//!
//! Seeds are consumed on the *first* outer iteration only — deadlock
//! retries re-enter Step 1 with a mutated safety relation, and re-seeding
//! there would just re-grow a span the retry is trying to shrink.

use ftrepair_bdd::NodeId;

/// Optional Step 1 seeds, as NodeIds in the program's own manager (import
/// cached [`ftrepair_bdd::SerializedBdd`] artifacts first).
#[derive(Clone, Copy, Debug, Default)]
pub struct WarmSeeds {
    /// A neighbor's repaired invariant.
    pub invariant: Option<NodeId>,
    /// A neighbor's fault-span.
    pub span: Option<NodeId>,
}

impl WarmSeeds {
    /// No seeds: cold behavior, bit-for-bit.
    pub fn none() -> WarmSeeds {
        WarmSeeds::default()
    }

    /// Is there anything to seed from?
    pub fn is_empty(&self) -> bool {
        self.invariant.is_none() && self.span.is_none()
    }

    /// The NodeIds that must be rooted against GC/reordering while the
    /// seeds are live.
    pub fn roots(&self) -> Vec<NodeId> {
        self.invariant.into_iter().chain(self.span).collect()
    }
}

//! Turning a finished repair run into a JSONL run-report line.
//!
//! Both the CLI's `--metrics-out` sink and `crates/bench`'s table harness
//! build their reports here, so the schema (and in particular the
//! cache-stats rendering) has exactly one producer.

use crate::options::RepairOptions;
use crate::stats::RepairStats;
use ftrepair_bdd::{CacheCounter, CacheStats};
use ftrepair_symbolic::SymbolicContext;
use ftrepair_telemetry::{Json, RunReport, Telemetry};

/// Build the run report for one repair: identification, phase timings (from
/// `stats`, so they equal what the experiment tables print), the full
/// telemetry snapshot (counters / gauges / span times / the `iterations`
/// series), and the BDD manager's cache hit rates.
pub fn build_run_report(
    case: &str,
    mode: &str,
    opts: &RepairOptions,
    stats: &RepairStats,
    failed: bool,
    tele: &Telemetry,
    cx: &SymbolicContext,
) -> RunReport {
    let mut r = RunReport::new(case, mode);
    r.set("failed", failed.into());
    r.set("outer_iterations", stats.outer_iterations.into());
    r.set("options", options_json(opts));
    r.set_phases(&[("step1", stats.step1_time), ("step2", stats.step2_time)]);
    r.set_snapshot(&tele.snapshot());
    r.set("caches", cache_stats_json(&cx.mgr_ref().cache_stats()));
    r.set("bdd", bdd_stats_json(cx));
    r
}

/// Node-count and reorder statistics from the manager: the peak live-node
/// gauge the ablation benches compare, and the sift counters.
pub fn bdd_stats_json(cx: &SymbolicContext) -> Json {
    let s = cx.mgr_ref().stats();
    let mut o = Json::obj();
    o.set("live_nodes", (s.live_nodes as u64).into());
    o.set("peak_live_nodes", (s.peak_live_nodes as u64).into());
    o.set("reorder_runs", s.reorder_runs.into());
    o.set("reorder_swaps", s.reorder_swaps.into());
    o.set("reorder_aborted", s.reorder_aborted.into());
    o.set("post_reorder_nodes", (s.post_reorder_nodes as u64).into());
    o
}

fn options_json(opts: &RepairOptions) -> Json {
    let mut o = Json::obj();
    o.set("restrict_to_reachable", opts.restrict_to_reachable.into());
    o.set("step2_closed_form", opts.step2_closed_form.into());
    o.set("use_expand_group", opts.use_expand_group.into());
    o.set("parallel_step2", opts.parallel_step2.into());
    o.set("allow_new_terminal_inside", opts.allow_new_terminal_inside.into());
    o.set("reorder", opts.reorder.as_str().into());
    o
}

/// The six op caches plus the unique table, each as
/// `{hits, misses, entries, hit_rate}` — rates are the headline number.
pub fn cache_stats_json(cs: &CacheStats) -> Json {
    fn counter_json(c: CacheCounter) -> Json {
        let mut o = Json::obj();
        o.set("hits", c.hits.into());
        o.set("misses", c.misses.into());
        o.set("entries", c.entries.into());
        o.set("hit_rate", c.hit_rate().into());
        o
    }
    let mut out = Json::obj();
    for (name, c) in cs.op_caches() {
        out.set(name, counter_json(c));
    }
    out.set("unique", counter_json(cs.unique));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::lazy_repair_traced;
    use ftrepair_program::{DistributedProgram, ProgramBuilder, Update};

    fn needs_recovery() -> DistributedProgram {
        let mut b = ProgramBuilder::new("needs-recovery");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    #[test]
    fn report_counters_match_returned_stats() {
        let mut p = needs_recovery();
        let tele = Telemetry::new();
        let opts = RepairOptions::default();
        let out = lazy_repair_traced(&mut p, &opts, &tele).unwrap();
        assert!(!out.failed);
        let r = build_run_report("toy", "lazy", &opts, &out.stats, out.failed, &tele, &p.cx);
        let j = Json::parse(&r.to_json_line()).unwrap();
        let counters = j.get("counters").unwrap();
        let c = |name: &str| counters.get(name).and_then(Json::as_u64).unwrap_or(0);
        assert_eq!(c("step2.groups_kept"), out.stats.groups_kept);
        assert_eq!(c("step2.groups_dropped"), out.stats.groups_dropped);
        assert_eq!(c("step2.expansions"), out.stats.expansions);
        assert_eq!(c("step2.picks"), out.stats.step2_picks);
        assert_eq!(c("repair.outer_iterations"), out.stats.outer_iterations as u64);
    }

    #[test]
    fn report_phases_sum_to_total() {
        let mut p = needs_recovery();
        let tele = Telemetry::new();
        let opts = RepairOptions::default();
        let out = lazy_repair_traced(&mut p, &opts, &tele).unwrap();
        let r = build_run_report("toy", "lazy", &opts, &out.stats, out.failed, &tele, &p.cx);
        let j = Json::parse(&r.to_json_line()).unwrap();
        let phases = j.get("phases_s").unwrap();
        let s1 = phases.get("step1").unwrap().as_f64().unwrap();
        let s2 = phases.get("step2").unwrap().as_f64().unwrap();
        let total = phases.get("total").unwrap().as_f64().unwrap();
        assert_eq!(s1 + s2, total);
        assert_eq!(s1, out.stats.step1_time.as_secs_f64());
    }

    #[test]
    fn report_includes_all_seven_cache_entries_and_iteration_series() {
        let mut p = needs_recovery();
        let tele = Telemetry::new();
        let opts = RepairOptions::default();
        let out = lazy_repair_traced(&mut p, &opts, &tele).unwrap();
        let r = build_run_report("toy", "lazy", &opts, &out.stats, out.failed, &tele, &p.cx);
        let j = Json::parse(&r.to_json_line()).unwrap();
        let caches = j.get("caches").unwrap().as_obj().unwrap();
        let names: Vec<&str> = caches.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(names, ["not", "apply", "ite", "quant", "and_exists", "rename", "unique"]);
        for (name, entry) in caches {
            let rate = entry.get("hit_rate").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&rate), "{name}: {rate}");
        }
        let iters = j.get("iterations").unwrap().as_arr().unwrap();
        assert_eq!(iters.len(), out.stats.outer_iterations);
        assert!(iters[0].get("invariant_nodes").unwrap().as_f64().unwrap() > 0.0);
        let gauges = j.get("gauges").unwrap();
        assert!(gauges.get("bdd.peak_live_nodes").unwrap().as_u64().unwrap() > 0);
    }

    #[test]
    fn disabled_telemetry_still_yields_a_valid_line() {
        let mut p = needs_recovery();
        let opts = RepairOptions::default();
        let out = lazy_repair_traced(&mut p, &opts, &Telemetry::off()).unwrap();
        let r = build_run_report(
            "toy",
            "lazy",
            &opts,
            &out.stats,
            out.failed,
            &Telemetry::off(),
            &p.cx,
        );
        let j = Json::parse(&r.to_json_line()).unwrap();
        assert_eq!(j.get("counters").unwrap().as_obj().unwrap().len(), 0);
        assert!(j.get("phases_s").unwrap().get("total").is_some());
    }
}

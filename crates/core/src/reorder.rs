//! Wiring between [`ReorderMode`](crate::options::ReorderMode) and the BDD
//! manager's dynamic-reordering machinery.
//!
//! Only the repair entry points (`lazy_repair_cancellable`,
//! `cautious_repair_cancellable`, and the parallel Step 2 workers) enable
//! reordering; the standalone building blocks (`add_masking`, `step2`) keep
//! the manager's defaults, so their checkpoint calls are no-ops unless a
//! caller armed the trigger. The checkpoints themselves live at the same
//! safe boundaries where the cancellation token is polled — between BDD
//! operations, with every live local passed as a root.

use crate::options::{ReorderMode, RepairOptions, AUTO_REORDER_THRESHOLD};
use ftrepair_program::DistributedProgram;
use ftrepair_telemetry::Telemetry;

/// Configure `prog`'s manager per `opts.reorder` and protect the program's
/// own roots for the run. Returns `true` iff the automatic trigger is armed
/// (callers then guard their protect/unprotect pairs on it).
pub(crate) fn configure(prog: &mut DistributedProgram, opts: &RepairOptions) -> bool {
    // The node budget rides the same checkpoints but is independent of the
    // reorder mode — arm (or clear, with 0) before the mode early-return.
    prog.cx.set_node_budget(opts.max_nodes);
    if opts.reorder == ReorderMode::None {
        return false;
    }
    let auto = opts.reorder == ReorderMode::Auto;
    prog.cx.configure_reorder(if auto { Some(AUTO_REORDER_THRESHOLD) } else { None });
    prog.protect_base();
    auto
}

/// Pin a finished repair's output nodes. The caller walks away holding
/// these `NodeId`s, and a *later* repair on the same manager may sift (and
/// garbage-collect) at its checkpoints — without a protection count the
/// outcome's nodes would be freed and their slots recycled under the
/// caller's feet. Protection is refcounted and deliberately never released:
/// outcomes are program-lifetime values (verification, serialization, and
/// cross-run comparisons all happen after repair returns).
pub(crate) fn protect_outcome(
    prog: &mut DistributedProgram,
    roots: impl IntoIterator<Item = ftrepair_bdd::NodeId>,
) {
    for n in roots {
        prog.cx.mgr().protect(n);
    }
}

/// Emit the manager's reorder/peak statistics into the telemetry registry —
/// called once when a traced repair finishes (success, declared failure, or
/// abort), so every run report carries them.
pub(crate) fn emit_bdd_tele(tele: &Telemetry, prog: &DistributedProgram) {
    if !tele.enabled() {
        return;
    }
    let s = prog.cx.mgr_ref().stats();
    tele.max_gauge("bdd.nodes.peak", s.peak_live_nodes as u64);
    tele.max_gauge("bdd.nodes.post_reorder", s.post_reorder_nodes as u64);
    tele.add("bdd.reorder.runs", s.reorder_runs);
    tele.add("bdd.reorder.swaps", s.reorder_swaps);
    tele.add("bdd.reorder.aborted", s.reorder_aborted);
}

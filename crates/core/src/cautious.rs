//! The cautious-repair baseline (Section IV): the fixpoint structure of
//! Add-Masking, but with the realizability constraints enforced in **every**
//! iteration.
//!
//! Where lazy repair runs the cheap unconstrained fixpoints to completion
//! and pays for read-restriction *groups* exactly once at the end, cautious
//! repair re-derives group-closed per-process relations inside each
//! iteration of the invariant/fault-span fixpoint, and again every time
//! cycle breaking removes a transition (removing one member means removing
//! the whole group, which can strand states, which shrinks the span, which
//! restarts the fixpoint…). The model being repaired is realizable at every
//! step — that is the property [2] maintains — and the price is exactly the
//! per-iteration group work this module does.

use crate::cancel::{RepairAborted, Token};
use crate::options::RepairOptions;
use crate::stats::RepairStats;
use crate::step2::{partition_for, with_outside_span};
use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_program::{semantics, DistributedProgram, Process};
use ftrepair_telemetry::Telemetry;
use std::time::Instant;

/// Output of cautious repair; same shape as [`crate::lazy::LazyOutcome`].
#[derive(Clone, Debug)]
pub struct CautiousOutcome {
    /// Per-process realizable transition predicates.
    pub processes: Vec<Process>,
    /// The repaired invariant `S'`.
    pub invariant: NodeId,
    /// The fault-span `T'`.
    pub span: NodeId,
    /// `δ_P'` — union of the per-process predicates.
    pub trans: NodeId,
    /// True iff the heuristics could not produce a repair.
    pub failed: bool,
    /// Counters; all time is recorded in `step1_time` (cautious has no
    /// separate Step 2).
    pub stats: RepairStats,
}

/// Run cautious repair on `prog`. Returns `Err(RepairAborted)` once
/// [`RepairOptions::deadline`] (if set) expires.
pub fn cautious_repair(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
) -> Result<CautiousOutcome, RepairAborted> {
    cautious_repair_traced(prog, opts, &Telemetry::off())
}

/// [`cautious_repair`] with telemetry: a span around each iteration's
/// group-enforcement pass (the cost this baseline exists to expose),
/// per-iteration BDD-size samples, and the same mirrored counters as the
/// lazy pipeline.
pub fn cautious_repair_traced(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
) -> Result<CautiousOutcome, RepairAborted> {
    cautious_repair_cancellable(prog, opts, tele, &Token::from_options(opts))
}

/// [`cautious_repair_traced`] against an externally owned [`Token`],
/// checked on entry and at every iteration of the main fixpoint, the inner
/// fault-closure fixpoint, and each group-enforcement pick loop.
pub fn cautious_repair_cancellable(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
) -> Result<CautiousOutcome, RepairAborted> {
    let r = cautious_repair_inner(prog, opts, tele, token);
    if let Ok(out) = &r {
        let roots: Vec<NodeId> = [out.invariant, out.span, out.trans]
            .into_iter()
            .chain(out.processes.iter().map(|p| p.trans))
            .collect();
        crate::reorder::protect_outcome(prog, roots);
    }
    crate::reorder::emit_bdd_tele(tele, prog);
    r
}

fn cautious_repair_inner(
    prog: &mut DistributedProgram,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
) -> Result<CautiousOutcome, RepairAborted> {
    token.check()?;
    let auto_reorder = crate::reorder::configure(prog, opts);
    let started = Instant::now();
    let mut stats = RepairStats::default();

    let (delta_p, faults, universe, t_universe, stutters) = {
        let mut delta_p = FALSE;
        let parts = prog.partitions();
        let cx = &mut prog.cx;
        for t in parts {
            delta_p = cx.mgr().or(delta_p, t);
        }
        let universe = cx.state_universe();
        let t_universe = cx.transition_universe();
        let stutters = cx.deadlocks(universe, delta_p);
        (delta_p, prog.faults, universe, t_universe, stutters)
    };
    let safety = prog.safety;

    // ms / mt exactly as in Step 1 — faults are not subject to grouping.
    let (ms, not_mt) = {
        let cx = &mut prog.cx;
        let bad_fault = cx.mgr().and(faults, safety.bad_trans);
        let bad_fault_sources = cx.preimage_of_anything(bad_fault);
        let mut ms = cx.mgr().or(safety.bad_states, bad_fault_sources);
        ms = cx.mgr().and(ms, universe);
        loop {
            token.check_governed(cx)?;
            let pre = cx.preimage(ms, faults);
            let next = cx.mgr().or(ms, pre);
            if next == ms {
                break;
            }
            ms = next;
        }
        let ms_next = cx.as_next(ms);
        let mut mt = cx.mgr().or(safety.bad_trans, ms_next);
        mt = cx.mgr().and(mt, t_universe);
        (ms, cx.mgr().not(mt))
    };

    // Initial estimates.
    let (mut s1, mut t1) = {
        let cx = &mut prog.cx;
        let safe_delta = cx.mgr().and(delta_p, not_mt);
        let mut s1 = cx.mgr().and(prog.invariant, universe);
        s1 = cx.mgr().diff(s1, ms);
        s1 = semantics::prune_deadlocks_except(cx, s1, safe_delta, stutters);
        let t1 = if opts.restrict_to_reachable {
            let combined = cx.mgr().or(delta_p, faults);
            let reach = cx.forward_reachable(s1, combined);
            cx.mgr().diff(reach, ms)
        } else {
            cx.mgr().diff(universe, ms)
        };
        (s1, t1)
    };

    // Recovery candidates must be single-writer (see
    // `add_masking::allowed_transitions`).
    let one_writer = {
        let frames: Vec<Vec<ftrepair_symbolic::VarId>> =
            (0..prog.processes.len()).map(|j| prog.unwritable(j)).collect();
        let cx = &mut prog.cx;
        let mut acc = FALSE;
        for unwritable in frames {
            let frame = cx.unchanged_all(&unwritable);
            acc = cx.mgr().or(acc, frame);
        }
        acc
    };

    // Transitions permanently outlawed by cycle breaking (grows only).
    let mut banned = FALSE;
    let mut grouped: Vec<NodeId> = vec![FALSE; prog.processes.len()];
    let mut p1;

    if opts.reorder == crate::options::ReorderMode::Sift {
        prog.cx.reorder_sift(&[delta_p, t_universe, stutters, not_mt, one_writer, s1, t1]);
    }

    // One observation per iteration's group-enforcement pass — the cost
    // this baseline exists to expose, now as a distribution.
    let h_group = tele.histogram("cautious.group_enforcement.seconds");

    let mut iterations = 0usize;
    let fail = |stats: RepairStats| CautiousOutcome {
        processes: Vec::new(),
        invariant: FALSE,
        span: FALSE,
        trans: FALSE,
        failed: true,
        stats,
    };

    loop {
        stats.cancel_checks += 1;
        token.check_governed(&prog.cx)?;
        if auto_reorder {
            // Previous-iteration `p1`/`grouped` values are dead here (both
            // are fully rebuilt before their next use), so only the
            // long-lived locals are roots.
            prog.cx.maybe_reorder(&[
                delta_p, t_universe, stutters, not_mt, one_writer, banned, s1, t1,
            ]);
        }
        iterations += 1;
        stats.outer_iterations = iterations;
        tele.add("repair.outer_iterations", 1);
        if iterations > opts.max_outer_iterations * 8 {
            stats.step1_time = started.elapsed();
            return Ok(fail(stats));
        }

        // Ungrouped allowed relation for the current (S₁, T₁) estimate.
        let p1_raw = {
            let cx = &mut prog.cx;
            let inside_orig = semantics::project(cx, delta_p, s1);
            let inside = cx.mgr().and(inside_orig, not_mt);
            let outside_src = cx.mgr().diff(t1, s1);
            let span_tgt = cx.as_next(t1);
            let mut recovery = cx.mgr().and(outside_src, span_tgt);
            recovery = cx.mgr().and(recovery, not_mt);
            recovery = cx.mgr().and(recovery, t_universe);
            recovery = cx.mgr().and(recovery, one_writer);
            let allowed = cx.mgr().or(inside, recovery);
            let not_banned = cx.mgr().not(banned);
            cx.mgr().and(allowed, not_banned)
        };

        // THE CAUTIOUS COST: re-derive group-closed per-process relations
        // for this iteration's estimate.
        let group_started = Instant::now();
        {
            let mut group_span = tele.span("cautious.group_enforcement");
            group_span.field("iter", ftrepair_telemetry::Json::from(iterations as u64));
            let with_free = with_outside_span(&mut prog.cx, p1_raw, t1);
            p1 = FALSE;
            for j in 0..grouped.len() {
                let read = prog.processes[j].read.clone();
                let write = prog.processes[j].write.clone();
                // Checkpoint roots: the loop's long-lived locals plus this
                // iteration's fresh partitions (earlier `grouped` slots).
                let mut keep = vec![
                    delta_p, t_universe, stutters, not_mt, one_writer, banned, s1, t1, with_free,
                    p1,
                ];
                keep.extend(grouped.iter().take(j).copied());
                let dj = partition_for(
                    &mut prog.cx,
                    &read,
                    &write,
                    with_free,
                    opts,
                    &keep,
                    &mut stats,
                    tele,
                    token,
                )?;
                grouped[j] = dj;
                p1 = prog.cx.mgr().or(p1, dj);
            }
        }
        h_group.observe_duration(group_started.elapsed());

        // Fixpoint updates against the *grouped* relation.
        let cx = &mut prog.cx;
        let can_reach = cx.backward_reachable(s1, p1);
        let mut t1_new = cx.mgr().and(t1, can_reach);
        loop {
            token.check_governed(cx)?;
            let not_t1 = cx.mgr().not(t1_new);
            let escaping = cx.preimage(not_t1, faults);
            let keep = cx.mgr().diff(t1_new, escaping);
            if keep == t1_new {
                break;
            }
            t1_new = keep;
        }
        let mut s1_new = cx.mgr().and(s1, t1_new);
        // Group enforcement may leave invariant states with no actions; by
        // default those are legal termination points (stuttering), matching
        // lazy repair's policy. With the strict policy they are pruned.
        if !opts.allow_new_terminal_inside {
            let interior = semantics::project(cx, p1, s1_new);
            s1_new = semantics::prune_deadlocks_except(cx, s1_new, interior, stutters);
        }
        if s1_new == FALSE {
            stats.step1_time = started.elapsed();
            return Ok(fail(stats));
        }

        // Per-iteration BDD shape, mirroring the lazy pipeline's series so
        // run reports of both modes plot the same columns.
        if tele.enabled() {
            let mgr = cx.mgr_ref();
            let inv_nodes = mgr.node_count(s1_new) as u64;
            let span_nodes = mgr.node_count(t1_new) as u64;
            let live = mgr.stats().live_nodes as u64;
            tele.max_gauge("bdd.peak_invariant_nodes", inv_nodes);
            tele.max_gauge("bdd.peak_span_nodes", span_nodes);
            tele.max_gauge("bdd.peak_live_nodes", live);
            tele.push_sample(
                "iterations",
                &[
                    ("iter", iterations as f64),
                    ("invariant_nodes", inv_nodes as f64),
                    ("span_nodes", span_nodes as f64),
                    ("live_nodes", live as f64),
                ],
            );
        }

        // Cycle breaking, group-consciously: compute the acyclic layered
        // subrelation (same peeling as lazy's Phase 5 — original recovery
        // first, then shortcuts, then jump layers) and outlaw everything
        // else; the next group enforcement drops the offenders' groups.
        let outside = cx.mgr().diff(t1_new, s1_new);
        let safe_orig = cx.mgr().and(delta_p, not_mt);
        let kept = crate::ranking::break_cycles(cx, p1, safe_orig, s1_new, t1_new);
        let cx = &mut prog.cx;
        let recovery_part = cx.mgr().and(p1, outside);
        let nondecreasing = cx.mgr().diff(recovery_part, kept);

        if nondecreasing != FALSE {
            banned = cx.mgr().or(banned, nondecreasing);
            s1 = s1_new;
            t1 = t1_new;
            continue;
        }

        if s1_new == s1 && t1_new == t1 {
            break;
        }
        s1 = s1_new;
        t1 = t1_new;
    }

    stats.step1_time = started.elapsed();
    let processes: Vec<Process> = prog
        .processes
        .iter()
        .zip(&grouped)
        .map(|(p, &trans)| Process {
            name: p.name.clone(),
            read: p.read.clone(),
            write: p.write.clone(),
            trans,
        })
        .collect();
    Ok(CautiousOutcome { processes, invariant: s1, span: t1, trans: p1, failed: false, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::{lazy_repair, LazyOutcome};
    use crate::verify::verify_outcome;
    use ftrepair_program::{ProgramBuilder, Update};

    fn partial_view() -> DistributedProgram {
        let mut b = ProgramBuilder::new("partialview");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("a", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        b.process("b", &[y], &[y]);
        let h0 = b.cx().assign_eq(y, 0);
        b.action(h0, &[(y, Update::Const(1))]);
        let h1 = b.cx().assign_eq(y, 1);
        b.action(h1, &[(y, Update::Const(0))]);
        let inv = {
            let a0 = b.cx().assign_eq(x, 0);
            let a1 = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a0, a1)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    fn as_lazy(out: &CautiousOutcome) -> LazyOutcome {
        LazyOutcome {
            processes: out.processes.clone(),
            invariant: out.invariant,
            span: out.span,
            trans: out.trans,
            failed: out.failed,
            stats: out.stats.clone(),
        }
    }

    #[test]
    fn cautious_repairs_and_verifies() {
        let mut p = partial_view();
        let out = cautious_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &as_lazy(&out));
        assert!(m.ok(), "{m:?}");
        assert!(r.ok(), "{r:?}");
    }

    #[test]
    fn cautious_and_lazy_agree_on_invariant() {
        let mut p = partial_view();
        let c = cautious_repair(&mut p, &RepairOptions::default()).unwrap();
        let l = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!c.failed && !l.failed);
        assert_eq!(c.invariant, l.invariant);
    }

    #[test]
    fn cautious_does_group_work_every_iteration() {
        let mut p = partial_view();
        let c = cautious_repair(&mut p, &RepairOptions::default()).unwrap();
        let l = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        // Cautious pays the pick loop at least as often as lazy.
        assert!(c.stats.step2_picks >= l.stats.step2_picks);
    }

    #[test]
    fn cautious_fails_on_hopeless_input() {
        let mut b = ProgramBuilder::new("hopeless");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g = b.cx().assign_eq(x, 0);
        b.action(g, &[(x, Update::Const(0))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 0);
        b.fault_action(fg, &[(x, Update::Const(1))]);
        let bad = b.cx().assign_eq(x, 1);
        b.bad_states(bad);
        let mut p = b.build();
        let out = cautious_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(out.failed);
    }

    #[test]
    fn expired_deadline_aborts_before_any_transition_is_added() {
        let mut p = partial_view();
        let opts =
            RepairOptions { deadline: Some(std::time::Duration::ZERO), ..RepairOptions::default() };
        let tele = ftrepair_telemetry::Telemetry::new();
        let r = cautious_repair_traced(&mut p, &opts, &tele);
        assert_eq!(r.unwrap_err(), RepairAborted::Timeout);
        let snap = tele.snapshot();
        assert_eq!(snap.counter("repair.outer_iterations"), 0, "aborted before iteration 1");
        assert_eq!(snap.counter("step2.picks"), 0);
    }
}

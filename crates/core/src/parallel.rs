//! Parallel Step 2: one worker thread per process, each with its own BDD
//! manager.
//!
//! The per-process loops of Algorithm 2 are independent — `δ_j` depends
//! only on `δ` (the Step 1 output plus the free outside-span transitions)
//! and on process `j`'s read/write sets. BDD managers, however, are not
//! shareable (hash-consing mutates the unique table on every operation), so
//! parallelism is obtained the message-passing way, per the workspace's
//! concurrency guides: fork an empty manager per worker with the same
//! variable layout, ship `δ` across as a [`SerializedBdd`] (a pure-data
//! DAG), and ship each `δ_j` back the same way. No shared mutable state, no
//! locks on the hot path.

use crate::cancel::{RepairAborted, Token};
use crate::options::RepairOptions;
use crate::stats::RepairStats;
use crate::step2::{partition_for, with_outside_span, Step2Result};
use ftrepair_bdd::{NodeId, SerializedBdd, FALSE};
use ftrepair_program::{DistributedProgram, Process};
use ftrepair_telemetry::Telemetry;

/// Parallel version of [`crate::step2::step2`]; same contract, same output
/// (checked by tests), different wall-clock profile.
pub fn step2_parallel(
    prog: &mut DistributedProgram,
    trans: NodeId,
    span: NodeId,
    opts: &RepairOptions,
) -> Result<Step2Result, RepairAborted> {
    step2_parallel_traced(prog, trans, span, opts, &Telemetry::off())
}

/// [`step2_parallel`] with telemetry: each worker shard gets its own
/// `step2.worker.<process>` span, and group counters flow into the shared
/// registry directly from the worker threads (a [`Telemetry`] clone shares
/// one registry; counter bumps are relaxed atomic adds, so no lock joins
/// the hot path).
pub fn step2_parallel_traced(
    prog: &mut DistributedProgram,
    trans: NodeId,
    span: NodeId,
    opts: &RepairOptions,
    tele: &Telemetry,
) -> Result<Step2Result, RepairAborted> {
    step2_parallel_cancellable(prog, trans, span, opts, tele, &Token::from_options(opts))
}

/// [`step2_parallel_traced`] against an externally owned [`Token`]. Each
/// worker thread gets a clone (clones share the cancellation flag), checks
/// it inside its pick loop, and the first abort wins; the other workers
/// still run to completion or abort on their own checks — BDD managers are
/// per-thread, so there is nothing to interrupt remotely.
pub fn step2_parallel_cancellable(
    prog: &mut DistributedProgram,
    trans: NodeId,
    span: NodeId,
    opts: &RepairOptions,
    tele: &Telemetry,
    token: &Token,
) -> Result<Step2Result, RepairAborted> {
    token.check()?;
    let delta = with_outside_span(&mut prog.cx, trans, span);
    let shipped = prog.cx.mgr_ref().export(delta);

    struct Job {
        name: String,
        read: Vec<ftrepair_symbolic::VarId>,
        write: Vec<ftrepair_symbolic::VarId>,
        cx: ftrepair_symbolic::SymbolicContext,
    }
    let jobs: Vec<Job> = prog
        .processes
        .iter()
        .map(|p| Job {
            name: p.name.clone(),
            read: p.read.clone(),
            write: p.write.clone(),
            cx: prog.cx.fork_layout(),
        })
        .collect();

    type WorkerResult = Result<(SerializedBdd, RepairStats), RepairAborted>;
    let results: Vec<WorkerResult> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .into_iter()
            .map(|mut job| {
                let shipped = &shipped;
                let opts = *opts;
                let tele = tele.clone();
                let token = token.clone();
                scope.spawn(move || -> WorkerResult {
                    let label = format!("step2.worker.{}", job.name);
                    let _shard = tele.span(&label);
                    // Each worker manages its own variable order: `Auto`
                    // arms the dynamic trigger on the forked manager, `Sift`
                    // runs one pass over the imported relation. Orders can
                    // diverge freely between workers — the serialized form
                    // records each side's order and import re-expresses the
                    // function (see `ftrepair_bdd::SerializedBdd`).
                    match opts.reorder {
                        crate::options::ReorderMode::Auto => {
                            job.cx.configure_reorder(Some(crate::options::AUTO_REORDER_THRESHOLD));
                        }
                        crate::options::ReorderMode::Sift => job.cx.configure_reorder(None),
                        crate::options::ReorderMode::None => {}
                    }
                    // Each forked manager polices its own copy of the node
                    // budget — the first exhausted worker aborts the run.
                    job.cx.set_node_budget(opts.max_nodes);
                    let delta = job.cx.mgr().import(shipped);
                    if opts.reorder == crate::options::ReorderMode::Sift {
                        job.cx.reorder_sift(&[delta]);
                    }
                    let mut stats = RepairStats::default();
                    let dj = partition_for(
                        &mut job.cx,
                        &job.read,
                        &job.write,
                        delta,
                        &opts,
                        &[],
                        &mut stats,
                        &tele,
                        &token,
                    )?;
                    Ok((job.cx.mgr_ref().export(dj), stats))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("step2 worker panicked")).collect()
    });

    let mut stats = RepairStats::default();
    let mut processes = Vec::with_capacity(results.len());
    let mut union = FALSE;
    for (result, p) in results.into_iter().zip(&prog.processes) {
        let (dj_shipped, worker_stats) = result?;
        let dj = prog.cx.mgr().import(&dj_shipped);
        stats.absorb(&worker_stats);
        processes.push(Process {
            name: p.name.clone(),
            read: p.read.clone(),
            write: p.write.clone(),
            trans: dj,
        });
        union = prog.cx.mgr().or(union, dj);
    }
    Ok(Step2Result { processes, trans: union, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step2::step2;
    use ftrepair_program::{ProgramBuilder, Update, TRUE};

    fn three_proc_program() -> DistributedProgram {
        let mut b = ProgramBuilder::new("threeproc");
        let x = b.var("x", 3);
        let y = b.var("y", 3);
        let z = b.var("z", 2);
        b.process("px", &[x, z], &[x]);
        for v in 0..2 {
            let g = b.cx().assign_eq(x, v);
            b.action(g, &[(x, Update::Const(v + 1))]);
        }
        b.process("py", &[y, z], &[y]);
        for v in 0..2 {
            let g = b.cx().assign_eq(y, v);
            b.action(g, &[(y, Update::Const(v + 1))]);
        }
        b.process("pz", &[x, y, z], &[z]);
        let g = b.cx().assign_eq(z, 0);
        b.action(g, &[(z, Update::Const(1))]);
        b.invariant(TRUE);
        b.build()
    }

    #[test]
    fn parallel_matches_sequential_exactly() {
        let mut p = three_proc_program();
        let t = p.program_trans();
        let opts = RepairOptions::default();
        let seq = step2(&mut p, t, TRUE, &opts).unwrap();
        let par = step2_parallel(&mut p, t, TRUE, &opts).unwrap();
        assert_eq!(seq.trans, par.trans);
        for (a, b) in seq.processes.iter().zip(&par.processes) {
            assert_eq!(a.trans, b.trans, "process {} differs", a.name);
        }
        assert_eq!(seq.stats.groups_kept, par.stats.groups_kept);
        assert_eq!(seq.stats.groups_dropped, par.stats.groups_dropped);
    }

    #[test]
    fn parallel_with_nontrivial_span() {
        let mut p = three_proc_program();
        let t = p.program_trans();
        let span = {
            let z = p.cx.find_var("z").unwrap();
            p.cx.assign_eq(z, 0)
        };
        let opts = RepairOptions::default();
        let seq = step2(&mut p, t, span, &opts).unwrap();
        let par = step2_parallel(&mut p, t, span, &opts).unwrap();
        assert_eq!(seq.trans, par.trans);
    }

    #[test]
    fn parallel_empty_input() {
        let mut p = three_proc_program();
        let opts = RepairOptions::default();
        let par = step2_parallel(&mut p, FALSE, TRUE, &opts).unwrap();
        assert_eq!(par.trans, FALSE);
    }

    #[test]
    fn expired_deadline_aborts_before_spawning_workers() {
        let mut p = three_proc_program();
        let t = p.program_trans();
        let opts =
            RepairOptions { deadline: Some(std::time::Duration::ZERO), ..Default::default() };
        let r = step2_parallel(&mut p, t, TRUE, &opts);
        assert_eq!(r.unwrap_err(), RepairAborted::Timeout);
    }

    #[test]
    fn lazy_repair_with_parallel_step2_verifies() {
        use crate::lazy::lazy_repair;
        use crate::verify::verify_outcome;
        let mut b = ProgramBuilder::new("par-lazy");
        let x = b.var("x", 3);
        let y = b.var("y", 2);
        b.process("a", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        b.process("b", &[y], &[y]);
        let h0 = b.cx().assign_eq(y, 0);
        b.action(h0, &[(y, Update::Const(1))]);
        let h1 = b.cx().assign_eq(y, 1);
        b.action(h1, &[(y, Update::Const(0))]);
        let inv = {
            let a0 = b.cx().assign_eq(x, 0);
            let a1 = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a0, a1)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let opts = RepairOptions { parallel_step2: true, ..Default::default() };
        let out = lazy_repair(&mut p, &opts).unwrap();
        assert!(!out.failed);
        let (masking, realizability) = verify_outcome(&mut p, &out);
        assert!(masking.ok(), "{masking:?}");
        assert!(realizability.ok(), "{realizability:?}");
    }
}

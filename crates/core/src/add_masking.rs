//! Step 1: symbolic Add-Masking (Kulkarni & Arora) without realizability
//! constraints.
//!
//! Mirrors `ftrepair_explicit::add_masking` fixpoint-for-fixpoint; the two
//! are required to agree exactly on enumerable instances (see the
//! cross-validation tests).

use crate::cancel::{RepairAborted, Token};
use crate::warm::WarmSeeds;
use ftrepair_bdd::{NodeId, FALSE};
use ftrepair_program::{semantics, DistributedProgram, Safety};
use ftrepair_telemetry::{Json, Telemetry};

/// Memo caches above this size are cleared between fixpoint iterations —
/// they, not the node arena, dominate memory on the big chain instances.
pub(crate) const CACHE_TRIM_THRESHOLD: usize = 8_000_000;

/// Output of symbolic Add-Masking.
#[derive(Clone, Copy, Debug)]
pub struct AddMaskingResult {
    /// States from which faults alone can violate safety.
    pub ms: NodeId,
    /// Transitions the fault-tolerant program must never execute
    /// (`Sf_bt ∨ (next ∈ ms)`).
    pub mt: NodeId,
    /// The repaired invariant `S₁` (`FALSE` iff `failed`).
    pub invariant: NodeId,
    /// The fault-span `T₁`.
    pub span: NodeId,
    /// The repaired, *unconstrained* (possibly unrealizable) transition
    /// relation `δ''` — maximal recovery, cycles broken rank-wise.
    pub trans: NodeId,
    /// The maximal allowed relation `p1` before cycle breaking (useful to
    /// diagnose how much nondeterminism cycle breaking cost).
    pub allowed: NodeId,
    /// True iff no masking-tolerant program exists under these inputs.
    pub failed: bool,
}

/// Run Add-Masking on `prog` with explicit `invariant` and `safety` inputs
/// (Algorithm 1 re-invokes it with a shrunk invariant and a grown
/// bad-transition set).
///
/// `restrict_to_reachable` is the heuristic of Section V-A. `token` is
/// checked before any work and at every fixpoint iteration; an expired
/// deadline aborts before a single transition is added.
pub fn add_masking(
    prog: &mut DistributedProgram,
    invariant: NodeId,
    safety: &Safety,
    restrict_to_reachable: bool,
    token: &Token,
) -> Result<AddMaskingResult, RepairAborted> {
    add_masking_traced(prog, invariant, safety, restrict_to_reachable, &Telemetry::off(), token)
}

/// [`add_masking`] with telemetry: a span around the Phase 1 `ms` fixpoint
/// (carrying its iteration count as a structured field) and one span per
/// Phase 4 joint-fixpoint iteration (carrying the iteration index), so a
/// Chrome trace of a repair shows exactly where a slow Step 1 spends its
/// time.
pub fn add_masking_traced(
    prog: &mut DistributedProgram,
    invariant: NodeId,
    safety: &Safety,
    restrict_to_reachable: bool,
    tele: &Telemetry,
    token: &Token,
) -> Result<AddMaskingResult, RepairAborted> {
    add_masking_seeded(
        prog,
        invariant,
        safety,
        restrict_to_reachable,
        tele,
        token,
        &WarmSeeds::none(),
    )
}

/// [`add_masking_traced`] with warm-start seeds: Phase 3's forward
/// reachability starts from `s1 ∪ (seed ∩ universe)` instead of `s1`. Any
/// seed is sound — the span stays within `universe − ms` (the
/// non-heuristic mode's span) and Phase 4 shrinks it to the same fixpoint;
/// see [`crate::warm`]. Empty seeds reproduce the cold path bit-for-bit.
pub fn add_masking_seeded(
    prog: &mut DistributedProgram,
    invariant: NodeId,
    safety: &Safety,
    restrict_to_reachable: bool,
    tele: &Telemetry,
    token: &Token,
    seeds: &WarmSeeds,
) -> Result<AddMaskingResult, RepairAborted> {
    token.check()?;
    let cx = &mut prog.cx;
    let mut delta_p = FALSE;
    for p in &prog.processes {
        delta_p = cx.mgr().or(delta_p, p.trans);
    }
    let faults = prog.faults;
    let universe = cx.state_universe();
    let t_universe = cx.transition_universe();

    // Originally-terminal states stutter (Definition 18): they are exempt
    // from deadlock pruning.
    let stutters = cx.deadlocks(universe, delta_p);

    // Phase 1: ms — least fixpoint of "some fault step violates safety or
    // re-enters ms".
    let bad_fault = cx.mgr().and(faults, safety.bad_trans);
    let bad_fault_sources = cx.preimage_of_anything(bad_fault);
    let mut ms = cx.mgr().or(safety.bad_states, bad_fault_sources);
    ms = cx.mgr().and(ms, universe);
    let mut ms_span = tele.span("step1.ms_fixpoint");
    let mut ms_iters = 0u64;
    loop {
        token.check_governed(cx)?;
        ms_iters += 1;
        // Reorder checkpoint (no-op unless the caller armed the automatic
        // trigger): every live local is a root; the caller's own roots are
        // protected in the manager.
        cx.maybe_reorder(&[
            invariant,
            safety.bad_states,
            safety.bad_trans,
            delta_p,
            universe,
            t_universe,
            stutters,
            ms,
        ]);
        let pre = cx.preimage(ms, faults);
        let next = cx.mgr().or(ms, pre);
        if next == ms {
            break;
        }
        ms = next;
    }
    ms_span.field("iters", Json::from(ms_iters));
    drop(ms_span);

    // Phase 2: mt and the safe program relation.
    let ms_next = cx.as_next(ms);
    let mut mt = cx.mgr().or(safety.bad_trans, ms_next);
    mt = cx.mgr().and(mt, t_universe);
    let not_mt = cx.mgr().not(mt);
    let safe_delta = cx.mgr().and(delta_p, not_mt);

    // Initial invariant guess.
    let mut s1 = cx.mgr().and(invariant, universe);
    s1 = cx.mgr().diff(s1, ms);
    s1 = semantics::prune_deadlocks_except(cx, s1, safe_delta, stutters);

    // Phase 3: initial fault-span guess. The reachability fixpoint is one
    // of the two places the arena peaks on the big chain instances, so it
    // checkpoints per frontier step — every local still live here rides
    // along as a root.
    let mut t1 = if restrict_to_reachable {
        let _reach_span = tele.span("step1.reachability");
        let combined = cx.mgr().or(delta_p, faults);
        // Warm start: widen the frontier with the cached neighbor's
        // invariant ∪ span, clamped to this program's universe. The fixpoint
        // from a superset start converges in O(1) frontier steps when the
        // seed already covers the reachable set, and the extra states are
        // swept out by `− ms` here and by Phase 4's shrinking fixpoint —
        // the seeded span never exceeds the non-heuristic `universe − ms`.
        let mut start = s1;
        if !seeds.is_empty() {
            tele.add("repair.warm_seeded_reachability", 1);
            let mut seed = FALSE;
            for s in [seeds.invariant, seeds.span].into_iter().flatten() {
                seed = cx.mgr().or(seed, s);
            }
            seed = cx.mgr().and(seed, universe);
            start = cx.mgr().or(start, seed);
        }
        let keep = [
            invariant,
            safety.bad_states,
            safety.bad_trans,
            delta_p,
            universe,
            t_universe,
            stutters,
            ms,
            mt,
            not_mt,
            safe_delta,
            s1,
            start,
        ];
        let reach = cx.forward_reachable_keep(start, combined, &keep);
        cx.mgr().diff(reach, ms)
    } else {
        cx.mgr().diff(universe, ms)
    };

    // Recovery candidates must be executable by *some* process, i.e.
    // change only variables inside one process's write set — anything else
    // is unconditionally deleted by Step 2's write filter, so offering it
    // as recovery would only bloat the relation and postpone failures to
    // the outer loop. (This is also how the per-process cautious tool
    // builds recovery.)
    let one_writer = {
        let frames: Vec<Vec<ftrepair_symbolic::VarId>> =
            (0..prog.processes.len()).map(|j| prog.unwritable(j)).collect();
        let cx = &mut prog.cx;
        let mut acc = FALSE;
        for unwritable in frames {
            let frame = cx.unchanged_all(&unwritable);
            acc = cx.mgr().or(acc, frame);
        }
        acc
    };

    // Phase 4: joint fixpoint on (S₁, T₁).
    let mut p1;
    let mut fixpoint_iter = 0u64;
    loop {
        // Offer (S₁, T₁, ms) before the abort check: if the token is about
        // to fire, the forced write preserves exactly the state the abort
        // would discard — the resume point for checkpoint-and-exit drains.
        token.offer_checkpoint(&prog.cx, s1, t1, ms);
        token.check_governed(&prog.cx)?;
        fixpoint_iter += 1;
        let mut fixpoint_span = tele.span("step1.fixpoint");
        fixpoint_span.field("iter", Json::from(fixpoint_iter));
        let (old_s1, old_t1) = (s1, t1);
        prog.cx.maybe_trim_caches(CACHE_TRIM_THRESHOLD);
        prog.cx.maybe_reorder(&[
            invariant,
            safety.bad_states,
            safety.bad_trans,
            delta_p,
            stutters,
            ms,
            mt,
            not_mt,
            safe_delta,
            s1,
            t1,
            one_writer,
        ]);

        p1 = allowed_transitions(prog, delta_p, not_mt, one_writer, s1, t1);
        let cx = &mut prog.cx;
        let live = [
            invariant,
            safety.bad_states,
            safety.bad_trans,
            delta_p,
            stutters,
            ms,
            mt,
            not_mt,
            safe_delta,
            s1,
            t1,
            one_writer,
            p1,
        ];

        // (a) span states must be able to recover to S₁ via p1 — the other
        // arena peak; checkpoints per frontier step like Phase 3.
        let can_reach = cx.backward_reachable_keep(s1, p1, &live);
        t1 = cx.mgr().and(t1, can_reach);

        // (b) fault closure: faults must never exit the span.
        loop {
            token.offer_checkpoint(cx, s1, t1, ms);
            token.check_governed(cx)?;
            let mut roots = live.to_vec();
            roots.push(t1);
            cx.maybe_reorder(&roots);
            let not_t1 = cx.mgr().not(t1);
            let escaping = cx.preimage(not_t1, faults);
            let keep = cx.mgr().diff(t1, escaping);
            if keep == t1 {
                break;
            }
            t1 = keep;
        }

        // (c) invariant inside span, (d) deadlock-pruned.
        s1 = cx.mgr().and(s1, t1);
        s1 = semantics::prune_deadlocks_except(cx, s1, safe_delta, stutters);

        if s1 == FALSE {
            return Ok(AddMaskingResult {
                ms,
                mt,
                invariant: FALSE,
                span: FALSE,
                trans: FALSE,
                allowed: FALSE,
                failed: true,
            });
        }
        if s1 == old_s1 && t1 == old_t1 {
            break;
        }
    }
    token.check_governed(&prog.cx)?;
    let cx = &mut prog.cx;

    // Phase 5: break recovery cycles (see `crate::ranking`): peel the
    // original program's acyclic recovery structure first so its groups
    // survive Step 2, admit shortcuts consistent with the peeling order,
    // and fall back to BFS jump layers for everything else.
    let trans = crate::ranking::break_cycles(cx, p1, safe_delta, s1, t1);

    Ok(AddMaskingResult { ms, mt, invariant: s1, span: t1, trans, allowed: p1, failed: false })
}

/// The "all possible available transitions" relation: original transitions
/// within the invariant, plus any recovery transition from `T₁ − S₁` back
/// into `T₁` — minus `mt` (already folded into `not_mt` and `safe` parts).
fn allowed_transitions(
    prog: &mut DistributedProgram,
    delta_p: NodeId,
    not_mt: NodeId,
    one_writer: NodeId,
    s1: NodeId,
    t1: NodeId,
) -> NodeId {
    let cx = &mut prog.cx;
    let inside_orig = semantics::project(cx, delta_p, s1);
    let inside = cx.mgr().and(inside_orig, not_mt);
    let outside_src = cx.mgr().diff(t1, s1);
    let span_tgt = cx.as_next(t1);
    let t_universe = cx.transition_universe();
    let mut recovery = cx.mgr().and(outside_src, span_tgt);
    recovery = cx.mgr().and(recovery, not_mt);
    recovery = cx.mgr().and(recovery, t_universe);
    recovery = cx.mgr().and(recovery, one_writer);
    cx.mgr().or(inside, recovery)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftrepair_program::{verify::verify_masking, ProgramBuilder, Update};

    fn needs_recovery() -> DistributedProgram {
        let mut b = ProgramBuilder::new("needs-recovery");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        b.build()
    }

    #[test]
    fn synthesized_recovery_verifies() {
        let mut p = needs_recovery();
        let (inv, safety) = (p.invariant, p.safety);
        let r = add_masking(&mut p, inv, &safety, true, &Token::unbounded()).unwrap();
        assert!(!r.failed);
        assert_eq!(p.cx.count_states(r.invariant), 2.0);
        assert_eq!(p.cx.count_states(r.span), 3.0);
        let orig = p.program_trans();
        let faults = p.faults;
        let report = verify_masking(&mut p.cx, orig, inv, r.trans, r.invariant, faults, &safety);
        assert!(report.ok(), "{report:?}");
    }

    #[test]
    fn ms_and_mt_shapes() {
        // Faults 1→2→3 with 3 bad: ms = {1,2,3}; mt = all transitions into
        // ms.
        let mut b = ProgramBuilder::new("chain");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(0))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let f1 = b.cx().assign_eq(x, 1);
        b.fault_action(f1, &[(x, Update::Const(2))]);
        let f2 = b.cx().assign_eq(x, 2);
        b.fault_action(f2, &[(x, Update::Const(3))]);
        let bad = b.cx().assign_eq(x, 3);
        b.bad_states(bad);
        let mut p = b.build();
        let (inv, safety) = (p.invariant, p.safety);
        let r = add_masking(&mut p, inv, &safety, true, &Token::unbounded()).unwrap();
        assert_eq!(p.cx.count_states(r.ms), 3.0);
        // mt = 4 sources × 3 targets (into ms).
        assert_eq!(p.cx.count_transitions(r.mt), 12.0);
        assert!(!r.failed);
    }

    #[test]
    fn hopeless_input_fails() {
        let mut b = ProgramBuilder::new("hopeless");
        let x = b.var("x", 2);
        b.process("p", &[x], &[x]);
        let g = b.cx().assign_eq(x, 0);
        b.action(g, &[(x, Update::Const(0))]);
        let inv = b.cx().assign_eq(x, 0);
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 0);
        b.fault_action(fg, &[(x, Update::Const(1))]);
        let bad = b.cx().assign_eq(x, 1);
        b.bad_states(bad);
        let mut p = b.build();
        let (inv, safety) = (p.invariant, p.safety);
        let r = add_masking(&mut p, inv, &safety, true, &Token::unbounded()).unwrap();
        assert!(r.failed);
        assert_eq!(r.invariant, FALSE);
    }

    #[test]
    fn heuristic_changes_span_not_soundness() {
        // With an unreachable state, both modes verify; the heuristic span
        // is strictly smaller.
        let mut b = ProgramBuilder::new("unreachable");
        let x = b.var("x", 4);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let (inv, safety) = (p.invariant, p.safety);
        let with = add_masking(&mut p, inv, &safety, true, &Token::unbounded()).unwrap();
        let without = add_masking(&mut p, inv, &safety, false, &Token::unbounded()).unwrap();
        assert!(!with.failed && !without.failed);
        assert_eq!(p.cx.count_states(with.span), 3.0);
        assert_eq!(p.cx.count_states(without.span), 4.0);
        assert!(p.cx.mgr().leq(with.span, without.span));
        for r in [with, without] {
            let orig = p.program_trans();
            let faults = p.faults;
            let report =
                verify_masking(&mut p.cx, orig, inv, r.trans, r.invariant, faults, &safety);
            assert!(report.ok(), "{report:?}");
        }
    }

    #[test]
    fn terminal_states_survive_via_stutter_exemption() {
        // Program: 0→1, 1 terminal; invariant {0,1}; fault 1→2; recovery
        // needed from 2. Without the stutter exemption, state 1 (and then
        // everything) would unwind.
        let mut b = ProgramBuilder::new("terminal");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let (inv, safety) = (p.invariant, p.safety);
        let r = add_masking(&mut p, inv, &safety, true, &Token::unbounded()).unwrap();
        assert!(!r.failed);
        assert_eq!(p.cx.count_states(r.invariant), 2.0, "terminal state must survive");
        // Recovery from 2 exists.
        let s2 = {
            let x = p.cx.find_var("x").unwrap();
            p.cx.assign_eq(x, 2)
        };
        let from2 = p.cx.mgr().and(r.trans, s2);
        assert!(from2 != FALSE);
    }

    #[test]
    fn cycle_breaking_leaves_no_loops_outside_invariant() {
        let mut p = needs_recovery();
        let (inv, safety) = (p.invariant, p.safety);
        let r = add_masking(&mut p, inv, &safety, false, &Token::unbounded()).unwrap();
        let outside = p.cx.mgr().diff(r.span, r.invariant);
        let outside_trans = semantics::project(&mut p.cx, r.trans, outside);
        // Greatest fixpoint of states with successors staying outside: ∅.
        let mut avoid = outside;
        loop {
            let within = semantics::project(&mut p.cx, outside_trans, avoid);
            let alive = p.cx.preimage_of_anything(within);
            let next = p.cx.mgr().and(avoid, alive);
            if next == avoid {
                break;
            }
            avoid = next;
        }
        assert_eq!(avoid, FALSE);
    }

    #[test]
    fn allowed_relation_is_superset_of_final() {
        let mut p = needs_recovery();
        let (inv, safety) = (p.invariant, p.safety);
        let r = add_masking(&mut p, inv, &safety, true, &Token::unbounded()).unwrap();
        assert!(p.cx.mgr().leq(r.trans, r.allowed));
    }

    #[test]
    fn expired_deadline_aborts_before_any_work() {
        let mut p = needs_recovery();
        let (inv, safety) = (p.invariant, p.safety);
        let expired = Token::deadline_in(std::time::Duration::ZERO);
        let r = add_masking(&mut p, inv, &safety, true, &expired);
        assert_eq!(r.unwrap_err(), RepairAborted::Timeout);
    }
}

//! # ftrepair-core — lazy repair for addition of fault-tolerance
//!
//! The paper's contribution, implemented symbolically over
//! [`ftrepair_bdd`] / [`ftrepair_symbolic`]:
//!
//! * [`add_masking`](crate::add_masking::add_masking) — **Step 1**: the
//!   polynomial Add-Masking algorithm of Kulkarni & Arora, *ignoring*
//!   realizability constraints, optionally restricted to the states the
//!   fault-intolerant program reaches in the presence of faults (the
//!   heuristic that makes lazy repair win — Section V-A).
//! * [`step2`](crate::step2) — **Step 2** (Algorithm 2): enforce the
//!   read/write realizability constraints *only by removing transitions*
//!   (plus adding harmless transitions that start outside the fault-span),
//!   group by group, with the exponential-savings `ExpandGroup`
//!   optimization (Section V-B).
//! * [`lazy`](crate::lazy) — **Algorithm 1**: the outer loop gluing the two
//!   steps, outlawing transitions into any deadlock created by Step 2 and
//!   re-running until quiescence.
//! * [`cautious`](crate::cautious) — the **baseline** of Section IV: the
//!   same fixpoints, but with group closure and group-conflict resolution
//!   applied inside *every* iteration, the cost lazy repair amortizes away.
//! * [`parallel`](crate::parallel) — a parallel Step 2 (one worker per
//!   process, each with its own BDD manager, shipped
//!   [`ftrepair_bdd::SerializedBdd`]s) — our HPC extension; an ablation
//!   bench quantifies it.
//! * [`checkpoint`](crate::checkpoint) — mid-repair snapshots offered at
//!   the same loop boundaries the cancellation [`Token`] polls, so a
//!   drained, timed-out, or budget-killed run leaves a resume point a
//!   later run can warm-start from.
//! * [`report`](crate::report) — the JSONL run-report builder shared by the
//!   CLI's `--metrics-out` and the bench tables; every algorithm above has
//!   a `_traced` variant taking an [`ftrepair_telemetry::Telemetry`] handle
//!   that feeds it.
//!
//! Every public entry point returns enough of the intermediate state
//! (`ms`, `mt`, invariant, fault-span, per-process relations) for the
//! explicit-state oracle in `ftrepair-explicit` to cross-validate it, and
//! [`verify::verify_outcome`] re-checks every output against the
//! definitions before an experiment reports success.

pub mod add_masking;
pub mod cancel;
pub mod cautious;
pub mod checkpoint;
pub mod lazy;
pub mod options;
pub mod parallel;
pub mod ranking;
mod reorder;
pub mod report;
pub mod stats;
pub mod step2;
pub mod verify;
pub mod warm;

pub use add_masking::{add_masking, add_masking_seeded, AddMaskingResult};
pub use cancel::{RepairAborted, Token};
pub use cautious::{
    cautious_repair, cautious_repair_cancellable, cautious_repair_traced, CautiousOutcome,
};
pub use checkpoint::{CheckpointImage, CheckpointPolicy, Checkpointer};
pub use lazy::{
    lazy_repair, lazy_repair_cancellable, lazy_repair_traced, lazy_repair_warm, LazyOutcome,
};
pub use options::{ReorderMode, RepairOptions, AUTO_REORDER_THRESHOLD};
pub use report::build_run_report;
pub use stats::RepairStats;
pub use step2::{step2, step2_cancellable, step2_traced, Step2Result};
pub use warm::WarmSeeds;

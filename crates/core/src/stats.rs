//! Instrumentation collected during repair — what the experiment tables
//! report.

use std::time::Duration;

/// Counters and timings from one repair run.
#[derive(Clone, Debug, Default)]
pub struct RepairStats {
    /// Wall time spent in Step 1 (Add-Masking), summed over outer
    /// iterations.
    pub step1_time: Duration,
    /// Wall time spent in Step 2 (realizability enforcement), summed.
    pub step2_time: Duration,
    /// Iterations of Algorithm 1's outer repeat loop.
    pub outer_iterations: usize,
    /// Groups admitted into some process's `δ_j` during Step 2.
    pub groups_kept: u64,
    /// Groups removed because a member was missing.
    pub groups_dropped: u64,
    /// Successful `ExpandGroup` applications.
    pub expansions: u64,
    /// Iterations of Step 2's inner pick-a-transition loop (the quantity
    /// `ExpandGroup` exists to shrink).
    pub step2_picks: u64,
    /// Cancellation checkpoints passed ([`crate::cancel::Token::check`]
    /// calls from the outer and Step 2 loops) — how often an abort could
    /// have been observed, i.e. the granularity of deadline enforcement.
    pub cancel_checks: u64,
}

impl RepairStats {
    /// Total wall time across both steps.
    pub fn total_time(&self) -> Duration {
        self.step1_time + self.step2_time
    }

    /// Merge counters from another run (used when the outer loop re-runs
    /// both steps).
    pub fn absorb(&mut self, other: &RepairStats) {
        self.step1_time += other.step1_time;
        self.step2_time += other.step2_time;
        self.outer_iterations += other.outer_iterations;
        self.groups_kept += other.groups_kept;
        self.groups_dropped += other.groups_dropped;
        self.expansions += other.expansions;
        self.step2_picks += other.step2_picks;
        self.cancel_checks += other.cancel_checks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_is_sum_of_steps() {
        let s = RepairStats {
            step1_time: Duration::from_millis(30),
            step2_time: Duration::from_millis(12),
            ..Default::default()
        };
        assert_eq!(s.total_time(), Duration::from_millis(42));
    }

    #[test]
    fn absorb_accumulates() {
        let mut a = RepairStats { groups_kept: 2, outer_iterations: 1, ..Default::default() };
        let b = RepairStats {
            groups_kept: 3,
            groups_dropped: 1,
            outer_iterations: 1,
            expansions: 7,
            ..Default::default()
        };
        a.absorb(&b);
        assert_eq!(a.groups_kept, 5);
        assert_eq!(a.groups_dropped, 1);
        assert_eq!(a.outer_iterations, 2);
        assert_eq!(a.expansions, 7);
    }
}

//! Convenience wrapper: verify a repair outcome against both masking
//! fault-tolerance (Definition 15) and realizability (Definitions 19/20).

use crate::lazy::LazyOutcome;
use ftrepair_program::verify::{verify_masking, verify_realizability};
use ftrepair_program::{DistributedProgram, MaskingReport, RealizabilityReport};

/// Re-check a [`LazyOutcome`] (or anything shaped like one) against the
/// original program. `verify_masking` handles Definition 18's stuttering
/// internally, so the raw process-union relation is passed.
pub fn verify_outcome(
    prog: &mut DistributedProgram,
    outcome: &LazyOutcome,
) -> (MaskingReport, RealizabilityReport) {
    let orig = prog.program_trans();
    let (orig_inv, faults) = (prog.invariant, prog.faults);
    let safety = prog.safety;
    let masking = verify_masking(
        &mut prog.cx,
        orig,
        orig_inv,
        outcome.trans,
        outcome.invariant,
        faults,
        &safety,
    );
    let realizability = verify_realizability(prog, &outcome.processes);
    (masking, realizability)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lazy::lazy_repair;
    use crate::options::RepairOptions;
    use ftrepair_program::{ProgramBuilder, Update};

    #[test]
    fn verify_outcome_flags_tampered_results() {
        let mut b = ProgramBuilder::new("tamper");
        let x = b.var("x", 3);
        b.process("p", &[x], &[x]);
        let g0 = b.cx().assign_eq(x, 0);
        b.action(g0, &[(x, Update::Const(1))]);
        let g1 = b.cx().assign_eq(x, 1);
        b.action(g1, &[(x, Update::Const(0))]);
        let inv = {
            let a = b.cx().assign_eq(x, 0);
            let c = b.cx().assign_eq(x, 1);
            b.cx().mgr().or(a, c)
        };
        b.invariant(inv);
        let fg = b.cx().assign_eq(x, 1);
        b.fault_action(fg, &[(x, Update::Const(2))]);
        let mut p = b.build();
        let mut out = lazy_repair(&mut p, &RepairOptions::default()).unwrap();
        assert!(!out.failed);
        let (m, r) = verify_outcome(&mut p, &out);
        assert!(m.ok() && r.ok());

        // Tamper: drop all recovery transitions.
        let x = p.cx.find_var("x").unwrap();
        let s2 = p.cx.assign_eq(x, 2);
        let ns2 = p.cx.mgr().not(s2);
        out.trans = p.cx.mgr().and(out.trans, ns2);
        let (m2, _) = verify_outcome(&mut p, &out);
        assert!(!m2.ok());
        assert!(!m2.recovery_guaranteed);
    }
}
